//! `mtvc` — Multi-Task processing in Vertex-Centric graph systems.
//!
//! Façade crate re-exporting the full workspace API. See the README for
//! a guided tour and `DESIGN.md` for the architecture and the mapping
//! from the EDBT 2023 paper's experiments to modules.

pub use mtvc_cluster as cluster;
pub use mtvc_core as multitask;
pub use mtvc_engine as engine;
pub use mtvc_graph as graph;
pub use mtvc_loadgen as loadgen;
pub use mtvc_metrics as metrics;
pub use mtvc_serve as serve;
pub use mtvc_systems as systems;
pub use mtvc_tasks as tasks;
pub use mtvc_tune as tune;
