//! The seven VC-system configurations evaluated in the paper (§2.2).
//!
//! Each system is expressed as an engine [`SystemProfile`] plus its
//! default graph partitioner, isolating exactly the behavioural axes
//! the paper attributes the performance differences to:
//!
//! | System           | Language | Combiner | Mode        | Sync        | Out-of-core |
//! |------------------|----------|----------|-------------|-------------|-------------|
//! | Giraph           | JVM      | no       | p2p         | sync        | no          |
//! | Giraph(async)    | JVM      | no       | p2p         | partial     | no          |
//! | Pregel+          | C++      | no       | p2p         | sync        | no          |
//! | Pregel+(mirror)  | C++      | no       | broadcast   | sync        | no          |
//! | GraphD           | C++      | no       | p2p         | sync        | yes         |
//! | GraphLab         | C++      | yes      | p2p         | sync        | no          |
//! | GraphLab(async)  | C++      | no       | p2p         | async       | no          |
//!
//! Numeric factors (JVM CPU ≈ 2.5×, JVM message-buffer overhead ≈ 3×,
//! GraphD message budget = 50 % of usable memory, mirror threshold 64)
//! are calibration constants documented in EXPERIMENTS.md; the figure
//! shapes, not the absolute values, are the reproduction target.

use mtvc_cluster::MachineSpec;
use mtvc_engine::{ExecutionMode, OocConfig, PagingConfig, SyncMode, SystemProfile};
use mtvc_graph::partition::{EdgeBalancedPartitioner, HashPartitioner, Partitioner};
use serde::{Deserialize, Serialize};

/// The seven evaluated system settings (Table 1, bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    Giraph,
    GiraphAsync,
    PregelPlus,
    PregelPlusMirror,
    GraphD,
    GraphLab,
    GraphLabAsync,
}

impl SystemKind {
    pub const ALL: [SystemKind; 7] = [
        SystemKind::Giraph,
        SystemKind::GiraphAsync,
        SystemKind::PregelPlus,
        SystemKind::PregelPlusMirror,
        SystemKind::GraphD,
        SystemKind::GraphLab,
        SystemKind::GraphLabAsync,
    ];

    /// Display name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Giraph => "Giraph",
            SystemKind::GiraphAsync => "Giraph(async)",
            SystemKind::PregelPlus => "Pregel+",
            SystemKind::PregelPlusMirror => "Pregel+(mirror)",
            SystemKind::GraphD => "GraphD",
            SystemKind::GraphLab => "GraphLab",
            SystemKind::GraphLabAsync => "GraphLab(async)",
        }
    }

    /// Is this a synchronous system in Table 1's sense?
    pub fn is_synchronous(self) -> bool {
        !matches!(self, SystemKind::GraphLabAsync)
    }

    /// Does it execute out-of-core?
    pub fn is_out_of_core(self) -> bool {
        matches!(self, SystemKind::GraphD)
    }

    /// Does it require the broadcast (mirror) task variants?
    pub fn is_broadcast(self) -> bool {
        matches!(self, SystemKind::PregelPlusMirror)
    }

    /// The engine profile for this system on machines of spec `m`.
    pub fn profile(self, m: &MachineSpec) -> SystemProfile {
        let mut p = SystemProfile::base(self.name());
        match self {
            SystemKind::Giraph => {
                p.lang_cpu_factor = 2.5;
                p.mem_overhead_factor = 3.0;
                p.graph_mem_factor = 1.6;
            }
            SystemKind::GiraphAsync => {
                p.lang_cpu_factor = 2.5;
                p.mem_overhead_factor = 3.0;
                p.graph_mem_factor = 1.6;
                p.sync = SyncMode::PartialAsync;
                // Decoupled receive/process threads reduce contention
                // on the message path (§2.2).
                p.per_msg_ops = 0.85;
            }
            SystemKind::PregelPlus => {}
            SystemKind::PregelPlusMirror => {
                p.mode = ExecutionMode::Broadcast {
                    mirror_threshold: 64,
                };
            }
            SystemKind::GraphD => {
                // GraphD keeps vertex states in memory; messages pass
                // through a small in-memory I/O buffer and stream to
                // disk beyond it (§2.2). The 2% buffer makes the
                // disk-bound knee land where Table 3 reports it.
                // Adjacency takes the *real* paging path: partitioned
                // onto a backing store at build time and streamed
                // through a bounded cache every round (RoundRobin =
                // the full semi-streaming edge pass), so the disk
                // terms are fed measured bytes.
                let budget = m.usable_memory().scaled(0.02);
                p.out_of_core = Some(OocConfig {
                    message_budget: budget,
                    stream_edges: true,
                    paging: Some(PagingConfig::with_budget(budget)),
                });
            }
            SystemKind::GraphLab => {
                p.combiner = true;
                // GAS decomposition costs a little more per vertex.
                p.per_vertex_ops = 2.5;
            }
            SystemKind::GraphLabAsync => {
                // Eager dispatch: no sender-side combining (§4.8 "can
                // incur more messages than GraphLab(sync)"), but the
                // GAS gather handles each incoming edge value with a
                // cheap accumulate rather than a full message path.
                p.combiner = false;
                p.per_msg_ops = 0.15;
                p.sync = SyncMode::Asynchronous;
                p.per_vertex_ops = 2.5;
            }
        }
        p
    }

    /// The system's default graph partitioner (§4 Experiment Setup:
    /// "Pregel+ uses random hash on vertices; GraphLab partitions the
    /// graphs by edges").
    pub fn partitioner(self) -> Box<dyn Partitioner> {
        match self {
            SystemKind::GraphLab | SystemKind::GraphLabAsync => Box::new(EdgeBalancedPartitioner),
            _ => Box::new(HashPartitioner::default()),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec::galaxy()
    }

    #[test]
    fn all_seven_present_with_unique_names() {
        let mut names: Vec<_> = SystemKind::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn table1_sync_and_ooc_columns() {
        assert!(SystemKind::Giraph.is_synchronous());
        assert!(SystemKind::GiraphAsync.is_synchronous()); // "partial"
        assert!(!SystemKind::GraphLabAsync.is_synchronous());
        assert!(SystemKind::GraphD.is_out_of_core());
        assert!(!SystemKind::PregelPlus.is_out_of_core());
    }

    #[test]
    fn jvm_systems_pay_overheads() {
        let giraph = SystemKind::Giraph.profile(&spec());
        let pregel = SystemKind::PregelPlus.profile(&spec());
        assert!(giraph.lang_cpu_factor > pregel.lang_cpu_factor);
        assert!(giraph.mem_overhead_factor > pregel.mem_overhead_factor);
    }

    #[test]
    fn graphd_budget_scales_with_machine() {
        let p = SystemKind::GraphD.profile(&spec());
        let ooc = p.out_of_core.unwrap();
        assert_eq!(ooc.message_budget, spec().usable_memory().scaled(0.02));
        assert!(ooc.stream_edges);
        let paging = ooc.paging.expect("GraphD takes the real paging path");
        assert_eq!(paging.budget, ooc.message_budget);
        assert_eq!(paging.schedule, mtvc_engine::PartitionSchedule::RoundRobin);
        let small = spec().scaled(256.0);
        let p2 = SystemKind::GraphD.profile(&small);
        assert!(p2.out_of_core.unwrap().message_budget < ooc.message_budget);
    }

    #[test]
    fn mirror_system_uses_broadcast_mode() {
        let p = SystemKind::PregelPlusMirror.profile(&spec());
        assert!(p.mode.is_broadcast());
        assert!(SystemKind::PregelPlusMirror.is_broadcast());
        assert!(!SystemKind::PregelPlus.is_broadcast());
    }

    #[test]
    fn only_graphlab_sync_combines() {
        for s in SystemKind::ALL {
            let combines = s.profile(&spec()).combiner;
            assert_eq!(combines, s == SystemKind::GraphLab, "{s}");
        }
    }

    #[test]
    fn async_profile_has_no_barrier() {
        let p = SystemKind::GraphLabAsync.profile(&spec());
        assert!(!p.has_barrier());
        let g = SystemKind::GiraphAsync.profile(&spec());
        assert!(g.has_barrier());
        assert!(g.barrier_scale() < 1.0);
    }

    #[test]
    fn partitioner_choice_follows_paper() {
        assert_eq!(SystemKind::GraphLab.partitioner().name(), "edge-balanced");
        assert_eq!(SystemKind::PregelPlus.partitioner().name(), "hash");
        assert_eq!(SystemKind::GraphD.partitioner().name(), "hash");
    }
}
