//! Property-based tests for the engine: message conservation, sampler
//! distribution laws, and scheduling-independence of results.

use mtvc_cluster::ClusterSpec;
use mtvc_engine::sampling::{binomial, multinomial_uniform};
use mtvc_engine::{Context, EngineConfig, Message, Runner, SystemProfile, VertexProgram};
use mtvc_graph::partition::HashPartitioner;
use mtvc_graph::{generators, VertexId};
use mtvc_metrics::SimTime;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binomial_stays_in_range(n in 0u64..200_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = binomial(&mut rng, n, p);
        prop_assert!(x <= n);
    }

    #[test]
    fn multinomial_conserves_count(n in 0u64..50_000, k in 1usize..500, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut total = 0u64;
        multinomial_uniform(&mut rng, n, k, |bin, c| {
            assert!(bin < k);
            total += c;
        });
        prop_assert_eq!(total, n);
    }

    #[test]
    fn binomial_mean_is_np(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let trials = 3000;
        let (n, p) = (30u64, 0.25);
        let sum: u64 = (0..trials).map(|_| binomial(&mut rng, n, p)).sum();
        let mean = sum as f64 / trials as f64;
        // 4-sigma band: sd of the mean = sqrt(np(1-p)/trials) ≈ 0.043
        prop_assert!((mean - 7.5).abs() < 0.2, "mean {mean}");
    }
}

/// Token-passing program: every vertex sends `tokens` unit messages to
/// each neighbor for `rounds` rounds; receivers count. Used to check
/// message conservation through the router.
struct TokenFlood {
    rounds: usize,
}

#[derive(Clone, Debug)]
struct Token;
impl Message for Token {
    fn combine_key(&self) -> Option<u64> {
        Some(0)
    }
    fn merge(&mut self, _o: &Self) {}
}

#[derive(Clone, Default)]
struct Received(u64);

impl VertexProgram for TokenFlood {
    type Message = Token;
    type State = Received;

    fn message_bytes(&self) -> u64 {
        8
    }

    fn init(&self, _v: VertexId, _state: &mut Received, ctx: &mut Context<'_, Token>) {
        for &t in ctx.neighbors() {
            ctx.send(t, Token, 3);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut Received,
        inbox: &[(Token, u64)],
        ctx: &mut Context<'_, Token>,
    ) {
        for (_, mult) in inbox {
            state.0 += mult;
        }
        if ctx.round() < self.rounds {
            for &t in ctx.neighbors() {
                ctx.send(t, Token, 3);
            }
        }
    }

    fn max_rounds(&self) -> Option<usize> {
        Some(self.rounds + 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn messages_are_conserved_through_routing(
        n in 8usize..120,
        workers in 1usize..9,
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi(n, n * 2, seed);
        let mut cfg = EngineConfig::new(ClusterSpec::galaxy(workers), SystemProfile::base("t"));
        cfg.cutoff = SimTime::secs(1e12);
        cfg.seed = seed;
        let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
        let result = runner.run(&TokenFlood { rounds });
        prop_assert!(result.outcome.is_completed());
        // Sending rounds are 0..rounds, each emitting 3 tokens per
        // directed edge; every one is delivered within the horizon.
        let expected = 3 * g.num_edges() as u64 * rounds as u64;
        prop_assert_eq!(result.stats.total_messages_sent, expected);
        let received: u64 = result.states.iter().map(|s| s.0).sum();
        prop_assert_eq!(received, expected);
    }

    #[test]
    fn partitioning_does_not_change_task_results(
        n in 10usize..80,
        seed in any::<u64>(),
        workers_a in 1usize..8,
        workers_b in 1usize..8,
    ) {
        // MSSP is deterministic: results must be identical regardless
        // of how vertices are partitioned (scheduling independence).
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let run = |workers: usize| {
            let mut cfg = EngineConfig::new(ClusterSpec::galaxy(workers), SystemProfile::base("t"));
            cfg.cutoff = SimTime::secs(1e12);
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run(&mtvc_tasks_free_mssp(sources.clone()))
        };
        let a = run(workers_a);
        let b = run(workers_b);
        prop_assert!(a.outcome.is_completed() && b.outcome.is_completed());
        for v in 0..n {
            prop_assert_eq!(&a.states[v].dist, &b.states[v].dist, "vertex {}", v);
        }
    }
}

/// A minimal MSSP used here so this crate's tests do not depend on
/// `mtvc-tasks` (which depends on this crate).
fn mtvc_tasks_free_mssp(sources: Vec<VertexId>) -> MiniMssp {
    MiniMssp { sources }
}

struct MiniMssp {
    sources: Vec<VertexId>,
}

#[derive(Clone, Debug)]
struct Dist {
    q: u32,
    d: u64,
}
impl Message for Dist {
    fn combine_key(&self) -> Option<u64> {
        Some(self.q as u64)
    }
    fn merge(&mut self, o: &Self) {
        self.d = self.d.min(o.d);
    }
}

#[derive(Clone, Default, Debug, PartialEq)]
struct DistMap {
    dist: std::collections::BTreeMap<u32, u64>,
}

impl VertexProgram for MiniMssp {
    type Message = Dist;
    type State = DistMap;

    fn message_bytes(&self) -> u64 {
        16
    }

    fn init(&self, v: VertexId, state: &mut DistMap, ctx: &mut Context<'_, Dist>) {
        for (q, &s) in self.sources.iter().enumerate() {
            if s == v {
                state.dist.insert(q as u32, 0);
                for &t in ctx.neighbors() {
                    ctx.send(t, Dist { q: q as u32, d: 1 }, 1);
                }
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut DistMap,
        inbox: &[(Dist, u64)],
        ctx: &mut Context<'_, Dist>,
    ) {
        let mut improved = Vec::new();
        for (m, _) in inbox {
            let cur = state.dist.get(&m.q).copied().unwrap_or(u64::MAX);
            if m.d < cur {
                state.dist.insert(m.q, m.d);
                improved.push((m.q, m.d));
            }
        }
        improved.sort_unstable();
        improved.dedup();
        for (q, d) in improved {
            for &t in ctx.neighbors() {
                ctx.send(t, Dist { q, d: d + 1 }, 1);
            }
        }
    }
}
