//! Property-based tests for the engine: message conservation, sampler
//! distribution laws, and scheduling-independence of results.

use mtvc_cluster::{ChaosMix, ClusterSpec, FaultPlan};
use mtvc_engine::sampling::{binomial, multinomial_uniform};
use mtvc_engine::{
    route_with, wire, Context, Delivery, EmitSink, EngineConfig, Envelope, Inbox, LocalIndex,
    Message, MirrorIndex, OocConfig, Outbox, PagingConfig, PartitionSchedule, PayloadCodec,
    RouteGrid, RoutePolicy, Runner, SlabProgram, SlabRecycler, SlabRowMut, StateSlab, StoreKind,
    SystemProfile, VertexProgram, WireFormat, WorkerPool, LANES,
};
use mtvc_graph::partition::{HashPartitioner, Partitioner};
use mtvc_graph::{generators, VertexId};
use mtvc_metrics::{Bytes, SimTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binomial_stays_in_range(n in 0u64..200_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = binomial(&mut rng, n, p);
        prop_assert!(x <= n);
    }

    #[test]
    fn multinomial_conserves_count(n in 0u64..50_000, k in 1usize..500, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut total = 0u64;
        multinomial_uniform(&mut rng, n, k, |bin, c| {
            assert!(bin < k);
            total += c;
        });
        prop_assert_eq!(total, n);
    }

    #[test]
    fn binomial_mean_is_np(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let trials = 3000;
        let (n, p) = (30u64, 0.25);
        let sum: u64 = (0..trials).map(|_| binomial(&mut rng, n, p)).sum();
        let mean = sum as f64 / trials as f64;
        // 4-sigma band: sd of the mean = sqrt(np(1-p)/trials) ≈ 0.043
        prop_assert!((mean - 7.5).abs() < 0.2, "mean {mean}");
    }
}

/// Token-passing program: every vertex sends `tokens` unit messages to
/// each neighbor for `rounds` rounds; receivers count. Used to check
/// message conservation through the router.
struct TokenFlood {
    rounds: usize,
}

#[derive(Clone, Debug)]
struct Token;
impl Message for Token {
    fn combine_key(&self) -> Option<u64> {
        Some(0)
    }
    fn merge(&mut self, _o: &Self) {}
}

#[derive(Clone, Default)]
struct Received(u64);

impl VertexProgram for TokenFlood {
    type Message = Token;
    type State = Received;

    fn message_bytes(&self) -> u64 {
        8
    }

    fn init(&self, _v: VertexId, _state: &mut Received, ctx: &mut Context<'_, Token>) {
        for &t in ctx.neighbors() {
            ctx.send(t, Token, 3);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut Received,
        inbox: &[Delivery<Token>],
        ctx: &mut Context<'_, Token>,
    ) {
        for d in inbox {
            state.0 += d.mult;
        }
        if ctx.round() < self.rounds {
            for &t in ctx.neighbors() {
                ctx.send(t, Token, 3);
            }
        }
    }

    fn max_rounds(&self) -> Option<usize> {
        Some(self.rounds + 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn messages_are_conserved_through_routing(
        n in 8usize..120,
        workers in 1usize..9,
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi(n, n * 2, seed);
        let mut cfg = EngineConfig::new(ClusterSpec::galaxy(workers), SystemProfile::base("t"));
        cfg.cutoff = SimTime::secs(1e12);
        cfg.seed = seed;
        let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
        let result = runner.run(&TokenFlood { rounds });
        prop_assert!(result.outcome.is_completed());
        // Sending rounds are 0..rounds, each emitting 3 tokens per
        // directed edge; every one is delivered within the horizon.
        let expected = 3 * g.num_edges() as u64 * rounds as u64;
        prop_assert_eq!(result.stats.total_messages_sent, expected);
        let received: u64 = result.states.iter().map(|s| s.0).sum();
        prop_assert_eq!(received, expected);
    }

    #[test]
    fn partitioning_does_not_change_task_results(
        n in 10usize..80,
        seed in any::<u64>(),
        workers_a in 1usize..8,
        workers_b in 1usize..8,
    ) {
        // MSSP is deterministic: results must be identical regardless
        // of how vertices are partitioned (scheduling independence).
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let run = |workers: usize| {
            let mut cfg = EngineConfig::new(ClusterSpec::galaxy(workers), SystemProfile::base("t"));
            cfg.cutoff = SimTime::secs(1e12);
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run(&mtvc_tasks_free_mssp(sources.clone()))
        };
        let a = run(workers_a);
        let b = run(workers_b);
        prop_assert!(a.outcome.is_completed() && b.outcome.is_completed());
        for v in 0..n {
            prop_assert_eq!(&a.states[v].dist, &b.states[v].dist, "vertex {}", v);
        }
    }
}

/// Payload for the routing-equivalence property: an optional combine
/// key (including the adversarial `u64::MAX`) plus a value merged by
/// summing, so combining order mistakes change observable state.
#[derive(Clone, Debug, PartialEq)]
struct Keyed {
    key: Option<u64>,
    val: u64,
}
impl Message for Keyed {
    fn combine_key(&self) -> Option<u64> {
        self.key
    }
    fn merge(&mut self, o: &Self) {
        self.val += o.val;
    }
    fn wire_query(&self) -> Option<u64> {
        self.key
    }
    fn encoded_payload_bytes(&self) -> u64 {
        wire::varint_len(self.val)
    }
}
impl PayloadCodec for Keyed {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        wire::write_varint(out, self.val);
    }
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
        Keyed {
            key: wire_query,
            val: wire::read_varint(buf, pos),
        }
    }
}

/// Build one synthetic outbox per worker from the RNG: point-to-point
/// sends with mixed keys plus broadcasts from vertices the worker owns.
fn synthetic_outboxes(
    g: &mtvc_graph::Graph,
    part: &mtvc_graph::partition::Partition,
    seed: u64,
    sends_per_worker: usize,
    broadcasts_per_worker: usize,
) -> Vec<Outbox<Keyed>> {
    use rand::Rng;
    let n = g.num_vertices() as u64;
    let workers = part.num_workers();
    let owned = part.worker_vertices();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..workers)
        .map(|w| {
            let mut ob = Outbox::new();
            for _ in 0..sends_per_worker {
                let dest = (rng.gen::<u64>() % n) as VertexId;
                let key = match rng.gen::<u64>() % 5 {
                    0 => None,
                    1 => Some(u64::MAX),
                    k => Some(k % 3),
                };
                let val = rng.gen::<u64>() % 100;
                let mult = 1 + rng.gen::<u64>() % 4;
                ob.sends.push(Envelope::new(dest, Keyed { key, val }, mult));
            }
            for _ in 0..broadcasts_per_worker {
                if owned[w].is_empty() {
                    break;
                }
                let origin = owned[w][rng.gen::<u64>() as usize % owned[w].len()];
                let key = (rng.gen::<u64>() % 2 == 0).then(|| rng.gen::<u64>() % 3);
                let val = rng.gen::<u64>() % 100;
                ob.broadcasts.push((origin, Keyed { key, val }, 1));
            }
            ob
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole invariant: the pooled two-stage grid (histogram scatter
    /// + sender-side slot-map combining) produces grouped inboxes and
    /// statistics **identical** to the serial reference `route` (stable
    /// comparison sort + plain-HashMap combining), across random
    /// graphs, worker counts, combining, and mirroring.
    #[test]
    fn parallel_route_equals_serial_route(
        n in 8usize..150,
        workers in 1usize..9,
        combine in any::<bool>(),
        mirrored in any::<bool>(),
        compact in any::<bool>(),
        caching in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi(n, n * 3, seed);
        let part = HashPartitioner { salt: seed }.partition(&g, workers);
        let locals = LocalIndex::build(&part);
        let mirrors = mirrored.then(|| MirrorIndex::build(&g, &part, 4));
        let outboxes = synthetic_outboxes(&g, &part, seed ^ 0xD1CE, 40, 6);
        let msg_bytes = 16;
        let policy = RoutePolicy {
            wire_format: if compact { WireFormat::Compact } else { WireFormat::Tuples },
            respond_cache_threshold: if caching { 4 } else { 0 },
            ..RoutePolicy::default()
        };

        // Total wire messages entering the router, counted from the raw
        // traffic — conservation baseline for the accounting checks.
        let raw_wire: u64 = outboxes.iter().map(|ob| {
            ob.sends.iter().map(|e| e.mult).sum::<u64>()
                + ob.broadcasts.iter()
                    .map(|(o, _, m)| g.degree(*o) as u64 * m)
                    .sum::<u64>()
        }).sum();

        let (serial_inboxes, serial_stats) = route_with(
            outboxes.clone(), &g, &part, &locals, mirrors.as_ref(), combine, msg_bytes, &policy,
        );

        // Wire accounting must be invariant under combining: combiners
        // fold tuples, never wire messages.
        prop_assert_eq!(serial_stats.sent_wire, raw_wire);
        prop_assert_eq!(serial_stats.delivered_wire(), raw_wire);
        let tuples: u64 = serial_inboxes.iter().map(|i| i.len() as u64).sum();
        prop_assert_eq!(serial_stats.delivered_tuples, tuples);
        let delivered_mult: u64 = serial_inboxes
            .iter()
            .flat_map(|i| i.deliveries())
            .map(|d| d.mult)
            .sum();
        prop_assert_eq!(delivered_mult, raw_wire);

        // Encoded-byte conservation: every post-codec byte sent to
        // another worker is received by exactly one worker, and without
        // mirroring (whose prepaid mirror transfers shift bytes between
        // the two views) the per-worker totals are exactly the summed
        // cross-worker bucket encodings.
        let enc_out: u64 = serial_stats.encoded_out_bytes.iter().sum();
        let enc_in: u64 = serial_stats.encoded_in_bytes.iter().sum();
        prop_assert_eq!(enc_out, enc_in);
        if !mirrored {
            prop_assert_eq!(enc_out, serial_stats.encoded_wire_bytes);
        }
        if !compact {
            prop_assert_eq!(serial_stats.encoded_wire_bytes, 0);
            prop_assert_eq!(enc_out, 0);
        }
        if !caching {
            prop_assert_eq!(serial_stats.respond_hits + serial_stats.respond_misses, 0);
        }

        // Grouped-delivery invariants: runs ascend by local index, end
        // offsets are strictly monotone and partition the buffer, and
        // every delivery sits inside the run of its own vertex.
        for (w, inbox) in serial_inboxes.iter().enumerate() {
            let mut prev_local = None;
            let mut start = 0usize;
            for run in inbox.runs() {
                prop_assert!(prev_local.is_none_or(|p| run.local > p));
                prev_local = Some(run.local);
                prop_assert!((run.end as usize) > start, "empty run");
                prop_assert_eq!(part.owner_of(run.dest) as usize, w);
                prop_assert_eq!(locals.local_of(run.dest), run.local);
                prop_assert_eq!(locals.vertex_at(w, run.local), run.dest);
                start = run.end as usize;
            }
            prop_assert_eq!(start, inbox.len(), "runs must cover the buffer");
        }

        // Pooled grid, run twice over the same traffic to also exercise
        // buffer reuse across rounds.
        let pool = WorkerPool::new(workers.min(4));
        let mut grid: RouteGrid<Keyed> = RouteGrid::new(workers);
        grid.set_policy(policy);
        let mut grid_inboxes: Vec<Inbox<Keyed>> =
            (0..workers).map(|_| Inbox::new()).collect();
        for _ in 0..2 {
            let mut working = outboxes.clone();
            grid_inboxes.iter_mut().for_each(|i| i.clear());
            let stats = grid.route_round(
                Some(&pool),
                &mut working,
                &mut grid_inboxes,
                &g,
                &part,
                &locals,
                mirrors.as_ref(),
                combine,
                msg_bytes,
            );
            prop_assert_eq!(stats, &serial_stats);
            prop_assert!(working.iter().all(|ob| ob.sends.is_empty()
                && ob.broadcasts.is_empty()));
        }
        prop_assert_eq!(&grid_inboxes, &serial_inboxes);
    }

    /// Fold-at-send tentpole invariant: replaying the same traffic
    /// through pre-sharded `ShardedOutbox` sinks (`begin_round` →
    /// `emit_sinks` → `route_presharded`) produces inboxes and
    /// statistics identical to the two-stage `route_round` — except
    /// `shard_copy_bytes`, where folding at emission time must save
    /// the flat path's per-envelope materialisation copy.
    #[test]
    fn presharded_route_equals_two_stage_route(
        n in 8usize..150,
        workers in 1usize..9,
        combine in any::<bool>(),
        mirrored in any::<bool>(),
        compact in any::<bool>(),
        caching in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi(n, n * 3, seed);
        let part = HashPartitioner { salt: seed }.partition(&g, workers);
        let locals = LocalIndex::build(&part);
        let mirrors = mirrored.then(|| MirrorIndex::build(&g, &part, 4));
        let outboxes = synthetic_outboxes(&g, &part, seed ^ 0xF01D, 40, 6);
        let msg_bytes = 16;
        let policy = RoutePolicy {
            wire_format: if compact { WireFormat::Compact } else { WireFormat::Tuples },
            respond_cache_threshold: if caching { 4 } else { 0 },
            ..RoutePolicy::default()
        };
        let pool = WorkerPool::new(workers.min(4));

        // Baseline: the two-stage grid over a flat outbox.
        let mut flat_grid: RouteGrid<Keyed> = RouteGrid::new(workers);
        flat_grid.set_policy(policy);
        let mut flat_inboxes: Vec<Inbox<Keyed>> =
            (0..workers).map(|_| Inbox::new()).collect();
        let mut working = outboxes.clone();
        let flat_stats = flat_grid.route_round(
            Some(&pool),
            &mut working,
            &mut flat_inboxes,
            &g,
            &part,
            &locals,
            mirrors.as_ref(),
            combine,
            msg_bytes,
        ).clone();

        // Pre-sharded: feed the identical traffic straight into the
        // per-destination shards, twice to exercise buffer reuse.
        let mut grid: RouteGrid<Keyed> = RouteGrid::new(workers);
        grid.set_policy(policy);
        let mut inboxes: Vec<Inbox<Keyed>> =
            (0..workers).map(|_| Inbox::new()).collect();
        for _ in 0..2 {
            inboxes.iter_mut().for_each(|i| i.clear());
            grid.begin_round(combine, &locals);
            for (sink, ob) in grid
                .emit_sinks(&g, &part, &locals, mirrors.as_ref(), msg_bytes)
                .zip(outboxes.iter())
            {
                let mut sink = sink;
                for env in &ob.sends {
                    sink.emit(env.clone());
                }
                for (origin, msg, mult) in &ob.broadcasts {
                    sink.emit_broadcast(*origin, msg.clone(), *mult);
                }
            }
            let stats = grid.route_presharded(
                Some(&pool), &mut inboxes, &locals, msg_bytes, combine,
            );

            // Folding at send must never copy more than the flat
            // path, and saves exactly the emit-materialisation pass
            // (one envelope write per send/broadcast entry).
            let env_bytes = std::mem::size_of::<Envelope<Keyed>>() as u64;
            let emit_copies: u64 = outboxes.iter().map(|ob| {
                (ob.sends.len() + ob.broadcasts.len()) as u64 * env_bytes
            }).sum();
            prop_assert_eq!(stats.shard_copy_bytes + emit_copies, flat_stats.shard_copy_bytes);

            let mut scrubbed = stats.clone();
            scrubbed.shard_copy_bytes = flat_stats.shard_copy_bytes;
            prop_assert_eq!(&scrubbed, &flat_stats);
        }
        prop_assert_eq!(&inboxes, &flat_inboxes);
    }

    /// The compact codec is lossless and exactly self-measuring: for
    /// any envelope bucket, `measure_bucket` equals the real encoded
    /// byte length and decoding restores the bucket in the canonical
    /// (local-index-sorted, stable) order with every field intact.
    #[test]
    fn codec_roundtrip_and_measure_parity(
        len in 0usize..60,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let envs: Vec<Envelope<Keyed>> = (0..len)
            .map(|_| {
                let dest = (rng.gen::<u64>() % 32) as VertexId;
                let key = match rng.gen::<u64>() % 5 {
                    0 => None,
                    1 => Some(u64::MAX),
                    k => Some(k % 3),
                };
                // Shifted values hit every varint length class.
                let val = rng.gen::<u64>() >> (rng.gen::<u64>() % 64);
                let mult = 1 + rng.gen::<u64>() % 4;
                Envelope::new(dest, Keyed { key, val }, mult)
            })
            .collect();
        let li_of = |v: VertexId| v;

        let buf = wire::encode_bucket(&envs, li_of);
        prop_assert_eq!(wire::measure_bucket(&envs, li_of), buf.len() as u64);

        let decoded: Vec<Envelope<Keyed>> = wire::decode_bucket(&buf, |li| li);
        let mut order: Vec<usize> = (0..envs.len()).collect();
        order.sort_by_key(|&i| envs[i].dest);
        prop_assert_eq!(decoded.len(), envs.len());
        for (d, &i) in decoded.iter().zip(&order) {
            prop_assert_eq!(d.dest, envs[i].dest);
            prop_assert_eq!(d.mult, envs[i].mult);
            prop_assert_eq!(&d.msg, &envs[i].msg);
        }
    }

    /// Lane-chunked slab kernels are bit-identical to the scalar
    /// operations they batch: `relax_min_lanes` against per-lane
    /// `relax_min`, then `drain_chunks` against `drain`, across batch
    /// widths on and off the [`LANES`] boundary.
    #[test]
    fn lane_relax_and_drain_match_scalar_oracle(
        width_sel in 0usize..4,
        rows in 1usize..12,
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        // On and off the LANES boundary, plus a multi-word frontier.
        let width = [1usize, 7, 8, 64][width_sel];
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut lane: StateSlab<u64> = StateSlab::new(rows, width, u64::MAX);
        let mut scalar: StateSlab<u64> = StateSlab::new(rows, width, u64::MAX);
        let chunks = width.div_ceil(LANES);

        for _ in 0..200 {
            let li = rng.gen::<u32>() % rows as u32;
            let chunk = rng.gen::<u64>() as usize % chunks;
            let mut cand = [u64::MAX; LANES];
            for c in cand.iter_mut() {
                if rng.gen::<u64>() % 3 != 0 {
                    *c = rng.gen::<u64>() % 1000;
                }
            }
            lane.row_mut(li).relax_min_lanes(chunk * LANES, &cand);
            let mut row = scalar.row_mut(li);
            for (l, &c) in cand.iter().enumerate() {
                let q = chunk * LANES + l;
                if q < width {
                    row.relax_min(q, c);
                }
            }
        }
        for li in 0..rows as u32 {
            prop_assert_eq!(lane.row(li), scalar.row(li));
        }

        // Same dirty sets, visited in the same ascending order, and
        // both drains leave the frontier clear.
        for li in 0..rows as u32 {
            let mut via_chunks: Vec<(usize, u64)> = Vec::new();
            lane.row_mut(li).drain_chunks(|chunk, mask, cells| {
                for (l, &cell) in cells.iter().enumerate() {
                    if mask & (1 << l) != 0 {
                        via_chunks.push((chunk * LANES + l, cell));
                    }
                }
            });
            let mut via_scalar: Vec<(usize, u64)> = Vec::new();
            scalar.row_mut(li).drain(|q, cell| via_scalar.push((q, *cell)));
            prop_assert_eq!(&via_chunks, &via_scalar, "row {}", li);

            let mut leftover = 0usize;
            lane.row_mut(li).drain(|_, _| leftover += 1);
            scalar.row_mut(li).drain(|_, _| leftover += 1);
            prop_assert_eq!(leftover, 0, "drain must clear the frontier");
        }
    }

    /// Full-run scheduling independence across the combiner axis: the
    /// pooled pipeline and the serial pipeline must produce identical
    /// outcomes, statistics, and per-vertex states, with the combiner
    /// on or off — end-to-end over the sender-combining grouped path.
    #[test]
    fn pooled_run_equals_serial_run(
        n in 16usize..120,
        workers in 2usize..6,
        combine in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let run = |threshold: usize| {
            let mut cfg = EngineConfig::new(
                ClusterSpec::galaxy(workers),
                SystemProfile::base("t"),
            );
            cfg.cutoff = SimTime::secs(1e12);
            cfg.profile.combiner = combine;
            cfg.parallel_vertex_threshold = threshold;
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run(&mtvc_tasks_free_mssp(sources.clone()))
        };
        let serial = run(usize::MAX);
        let pooled = run(0);
        prop_assert!(serial.outcome.is_completed());
        prop_assert_eq!(&serial.outcome, &pooled.outcome);
        prop_assert_eq!(&serial.stats, &pooled.stats);
        for v in 0..n {
            prop_assert_eq!(&serial.states[v].dist, &pooled.states[v].dist, "vertex {}", v);
        }
    }

    /// Chaos property: a run with injected machine crashes and
    /// transient delivery failures, recovered via superstep checkpoints
    /// (rollback + deterministic replay), is indistinguishable from a
    /// fault-free run — identical outcome, identical per-vertex states,
    /// and identical non-replay statistics. Replay wire traffic and
    /// recovery time are segregated into `stats.faults`, which is
    /// zeroed before the comparison.
    #[test]
    fn chaos_run_equals_fault_free_run(
        n in 16usize..100,
        workers in 2usize..6,
        pooled in any::<bool>(),
        checkpoint_every in 1usize..6,
        crashes in 0usize..3,
        losses in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let run = |faults: Option<FaultPlan>| {
            let mut cfg = EngineConfig::new(
                ClusterSpec::galaxy(workers),
                SystemProfile::base("t"),
            );
            cfg.cutoff = SimTime::secs(1e12);
            cfg.parallel_vertex_threshold = if pooled { 0 } else { usize::MAX };
            cfg.checkpoint_every = checkpoint_every;
            cfg.faults = faults;
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run(&mtvc_tasks_free_mssp(sources.clone()))
        };
        let clean = run(None);
        let chaos = run(Some(FaultPlan::random(
            seed ^ 0xFA11,
            workers,
            8,
            crashes,
            losses,
        )));
        prop_assert!(clean.outcome.is_completed());
        prop_assert_eq!(&clean.outcome, &chaos.outcome);
        let scrub = |stats: &mtvc_metrics::RunStats| {
            let mut s = stats.clone();
            s.faults = Default::default();
            s
        };
        prop_assert_eq!(scrub(&clean.stats), scrub(&chaos.stats));
        for v in 0..n {
            prop_assert_eq!(&clean.states[v].dist, &chaos.states[v].dist, "vertex {}", v);
        }
    }
}

/// A minimal MSSP used here so this crate's tests do not depend on
/// `mtvc-tasks` (which depends on this crate).
fn mtvc_tasks_free_mssp(sources: Vec<VertexId>) -> MiniMssp {
    MiniMssp { sources }
}

struct MiniMssp {
    sources: Vec<VertexId>,
}

#[derive(Clone, Debug)]
struct Dist {
    q: u32,
    d: u64,
}
impl Message for Dist {
    fn combine_key(&self) -> Option<u64> {
        Some(self.q as u64)
    }
    fn merge(&mut self, o: &Self) {
        self.d = self.d.min(o.d);
    }
}

#[derive(Clone, Default, Debug, PartialEq)]
struct DistMap {
    dist: std::collections::BTreeMap<u32, u64>,
}

impl VertexProgram for MiniMssp {
    type Message = Dist;
    type State = DistMap;

    fn message_bytes(&self) -> u64 {
        16
    }

    fn init(&self, v: VertexId, state: &mut DistMap, ctx: &mut Context<'_, Dist>) {
        for (q, &s) in self.sources.iter().enumerate() {
            if s == v {
                state.dist.insert(q as u32, 0);
                for &t in ctx.neighbors() {
                    ctx.send(t, Dist { q: q as u32, d: 1 }, 1);
                }
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut DistMap,
        inbox: &[Delivery<Dist>],
        ctx: &mut Context<'_, Dist>,
    ) {
        let mut improved = Vec::new();
        for d in inbox {
            let m = &d.msg;
            let cur = state.dist.get(&m.q).copied().unwrap_or(u64::MAX);
            if m.d < cur {
                state.dist.insert(m.q, m.d);
                improved.push((m.q, m.d));
            }
        }
        improved.sort_unstable();
        improved.dedup();
        for (q, d) in improved {
            for &t in ctx.neighbors() {
                ctx.send(t, Dist { q, d: d + 1 }, 1);
            }
        }
    }
}

/// The same MSSP on the dense slab layout: one `u64` distance cell per
/// (vertex, query), branchless min-relax, frontier-driven drain. Must
/// emit byte-identical traffic to [`MiniMssp`].
struct MiniSlabMssp {
    sources: Vec<VertexId>,
}

impl SlabProgram for MiniSlabMssp {
    type Message = Dist;
    type Cell = u64;
    type Out = DistMap;

    fn width(&self) -> usize {
        self.sources.len()
    }

    fn empty_cell(&self) -> u64 {
        u64::MAX
    }

    fn message_bytes(&self) -> u64 {
        16
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u64>, ctx: &mut Context<'_, Dist>) {
        for (q, &s) in self.sources.iter().enumerate() {
            if s == v {
                row.set(q, 0);
                for &t in ctx.neighbors() {
                    ctx.send(t, Dist { q: q as u32, d: 1 }, 1);
                }
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u64>,
        inbox: &[Delivery<Dist>],
        ctx: &mut Context<'_, Dist>,
    ) {
        for d in inbox {
            row.relax_min(d.msg.q as usize, d.msg.d);
        }
        row.drain(|q, d| {
            let d = *d;
            for &t in ctx.neighbors() {
                ctx.send(
                    t,
                    Dist {
                        q: q as u32,
                        d: d + 1,
                    },
                    1,
                );
            }
        });
    }

    fn extract(&self, _v: VertexId, row: &[u64]) -> DistMap {
        let mut out = DistMap::default();
        for (q, &d) in row.iter().enumerate() {
            if d != u64::MAX {
                out.dist.insert(q as u32, d);
            }
        }
        out
    }
}

/// Scrub the state-accounting fields that legitimately differ between
/// the ledger-tracked hashmap layout and the exactly-accounted slab
/// layout; everything else (traffic, rounds, timing) must match.
fn scrub_state_accounting(stats: &mtvc_metrics::RunStats) -> mtvc_metrics::RunStats {
    let mut s = stats.clone();
    s.peak_state_bytes = Default::default();
    s.peak_memory = Default::default();
    for r in &mut s.per_round {
        r.state_bytes = Default::default();
        r.peak_machine_memory = Default::default();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Slab-state tentpole: the dense-slab MSSP produces identical
    /// outcomes, per-vertex results, and identical traffic/round
    /// statistics to the hash-map program across random graphs, batch
    /// widths, combining on/off, and the serial/pooled axis. Only the
    /// state-byte accounting differs (exact slab capacity vs ledger).
    #[test]
    fn slab_run_equals_hashmap_run(
        n in 16usize..120,
        workers in 1usize..6,
        width in 1usize..9,
        combine in any::<bool>(),
        pooled in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources: Vec<VertexId> =
            (0..width).map(|q| ((q * 7 + 3) % n) as VertexId).collect();
        let mut cfg = EngineConfig::new(
            ClusterSpec::galaxy(workers),
            SystemProfile::base("t"),
        );
        cfg.cutoff = SimTime::secs(1e12);
        cfg.profile.combiner = combine;
        cfg.parallel_vertex_threshold = if pooled { 0 } else { usize::MAX };

        let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
        let map = runner.run(&mtvc_tasks_free_mssp(sources.clone()));
        let slab = runner.run_slab(&MiniSlabMssp { sources });

        prop_assert!(map.outcome.is_completed());
        prop_assert_eq!(&map.outcome, &slab.outcome);
        prop_assert_eq!(
            scrub_state_accounting(&map.stats),
            scrub_state_accounting(&slab.stats)
        );
        for v in 0..n {
            prop_assert_eq!(&map.states[v].dist, &slab.states[v].dist, "vertex {}", v);
        }
        // Exact accounting: the slab's resident bytes are reported
        // every round and never shrink below one row per vertex.
        prop_assert!(slab.stats.peak_state_bytes.get() > 0);
    }

    /// Slab runs are recyclable: executing the same batch through a
    /// shared `SlabRecycler` re-fills pooled slabs in place and yields
    /// results identical to fresh allocation.
    #[test]
    fn recycled_slab_run_equals_fresh_run(
        n in 16usize..80,
        workers in 1usize..5,
        width in 1usize..7,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources: Vec<VertexId> =
            (0..width).map(|q| ((q * 5 + 1) % n) as VertexId).collect();
        let mut cfg = EngineConfig::new(ClusterSpec::galaxy(workers), SystemProfile::base("t"));
        cfg.cutoff = SimTime::secs(1e12);
        let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
        let prog = MiniSlabMssp { sources };

        let fresh = runner.run_slab(&prog);
        let recycler: SlabRecycler<u64> = SlabRecycler::new();
        let first = runner.run_slab_recycled(&prog, &recycler);
        prop_assert_eq!(recycler.pooled(), workers, "all slabs returned");
        let second = runner.run_slab_recycled(&prog, &recycler);
        prop_assert_eq!(recycler.pooled(), workers, "pool is stable");

        prop_assert_eq!(&fresh.stats, &first.stats);
        prop_assert_eq!(&fresh.stats, &second.stats);
        for v in 0..n {
            prop_assert_eq!(&fresh.states[v].dist, &second.states[v].dist, "vertex {}", v);
        }
    }

    /// Chaos regression for slab state: superstep checkpoints snapshot
    /// whole slabs, rollback restores them via the buffer-reusing
    /// `clone_from`, and a crashed-and-replayed slab run is
    /// indistinguishable from a fault-free one.
    #[test]
    fn chaos_slab_run_equals_fault_free_run(
        n in 16usize..100,
        workers in 2usize..6,
        pooled in any::<bool>(),
        checkpoint_every in 1usize..6,
        crashes in 0usize..3,
        losses in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let run = |faults: Option<FaultPlan>| {
            let mut cfg = EngineConfig::new(
                ClusterSpec::galaxy(workers),
                SystemProfile::base("t"),
            );
            cfg.cutoff = SimTime::secs(1e12);
            cfg.parallel_vertex_threshold = if pooled { 0 } else { usize::MAX };
            cfg.checkpoint_every = checkpoint_every;
            cfg.faults = faults;
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run_slab(&MiniSlabMssp { sources: sources.clone() })
        };
        let clean = run(None);
        let chaos = run(Some(FaultPlan::random(
            seed ^ 0x51AB,
            workers,
            8,
            crashes,
            losses,
        )));
        prop_assert!(clean.outcome.is_completed());
        prop_assert_eq!(&clean.outcome, &chaos.outcome);
        let scrub = |stats: &mtvc_metrics::RunStats| {
            let mut s = stats.clone();
            s.faults = Default::default();
            s
        };
        prop_assert_eq!(scrub(&clean.stats), scrub(&chaos.stats));
        for v in 0..n {
            prop_assert_eq!(&clean.states[v].dist, &chaos.states[v].dist, "vertex {}", v);
        }
    }
}

fn scrub_faults(stats: &mtvc_metrics::RunStats) -> mtvc_metrics::RunStats {
    let mut s = stats.clone();
    s.faults = Default::default();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PR 9 tentpole property: a run under the full fault taxonomy —
    /// crashes, delivery failures, stragglers, network partitions, and
    /// payload corruption, several of which may land on the same round
    /// — recovers task outputs bit-identical to the fault-free run on
    /// both checkpoint paths (full snapshots and incremental deltas).
    /// Every cost of recovering — replay, stalls, slow rounds,
    /// retransmissions — lives in `stats.faults` and nowhere else.
    #[test]
    fn chaos_under_load_recovers_bit_identical(
        n in 16usize..100,
        workers in 2usize..6,
        pooled in any::<bool>(),
        checkpoint_every in 1usize..6,
        incremental in any::<bool>(),
        crashes in 0usize..2,
        losses in 0usize..2,
        stragglers in 0usize..3,
        partitions in 0usize..2,
        corruptions in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let run = |faults: Option<FaultPlan>| {
            let mut cfg = EngineConfig::new(
                ClusterSpec::galaxy(workers),
                SystemProfile::base("t"),
            );
            cfg.cutoff = SimTime::secs(1e12);
            cfg.parallel_vertex_threshold = if pooled { 0 } else { usize::MAX };
            cfg.checkpoint_every = checkpoint_every;
            if incremental {
                cfg.incremental_checkpoints = Some(3);
            }
            cfg.faults = faults;
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run_slab(&MiniSlabMssp { sources: sources.clone() })
        };
        let mix = ChaosMix { crashes, losses, stragglers, partitions, corruptions };
        let clean = run(None);
        let chaos = run(Some(FaultPlan::chaos(seed ^ 0xC405, workers, 8, mix)));
        prop_assert!(clean.outcome.is_completed());
        prop_assert_eq!(&clean.outcome, &chaos.outcome);
        prop_assert_eq!(scrub_faults(&clean.stats), scrub_faults(&chaos.stats));
        for v in 0..n {
            prop_assert_eq!(&clean.states[v].dist, &chaos.states[v].dist, "vertex {}", v);
        }
    }

    /// Chaos × out-of-core cell: under the real paging path (partition
    /// cache with a budget small enough to force eviction, message
    /// budget small enough to spill), rollback-and-replay after
    /// crashes/losses/stragglers/partitions/corruption must restore
    /// the pager's cache state and reload evicted partitions so the
    /// run stays bit-identical to the fault-free paged run — outcomes,
    /// per-vertex states, and every non-fault statistic including the
    /// measured spill/load/skip counters.
    #[test]
    fn chaos_paged_run_equals_fault_free_paged_run(
        n in 16usize..100,
        workers in 2usize..6,
        pooled in any::<bool>(),
        checkpoint_every in 1usize..6,
        incremental in any::<bool>(),
        frontier_density in any::<bool>(),
        crashes in 0usize..2,
        losses in 0usize..2,
        stragglers in 0usize..3,
        partitions in 0usize..2,
        corruptions in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let schedule = if frontier_density {
            PartitionSchedule::FrontierDensity
        } else {
            PartitionSchedule::RoundRobin
        };
        let run = |faults: Option<FaultPlan>| {
            let mut cfg = EngineConfig::new(
                ClusterSpec::galaxy(workers),
                SystemProfile::base("t"),
            );
            cfg.cutoff = SimTime::secs(1e12);
            cfg.parallel_vertex_threshold = if pooled { 0 } else { usize::MAX };
            cfg.checkpoint_every = checkpoint_every;
            if incremental {
                cfg.incremental_checkpoints = Some(3);
            }
            cfg.faults = faults;
            cfg.profile.out_of_core = Some(OocConfig {
                message_budget: Bytes::new(512),
                stream_edges: true,
                paging: Some(PagingConfig {
                    budget: Bytes::new(1024),
                    partition_bytes: Bytes::new(256),
                    schedule,
                    page_state: false,
                    store: StoreKind::Memory,
                }),
            });
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run_slab(&MiniSlabMssp { sources: sources.clone() })
        };
        let mix = ChaosMix { crashes, losses, stragglers, partitions, corruptions };
        let clean = run(None);
        let chaos = run(Some(FaultPlan::chaos(seed ^ 0x00C0, workers, 8, mix)));
        prop_assert!(clean.outcome.is_completed());
        prop_assert!(
            clean.stats.total_partition_loads > 0,
            "paging path must engage"
        );
        prop_assert_eq!(&clean.outcome, &chaos.outcome);
        prop_assert_eq!(scrub_faults(&clean.stats), scrub_faults(&chaos.stats));
        for v in 0..n {
            prop_assert_eq!(&clean.states[v].dist, &chaos.states[v].dist, "vertex {}", v);
        }
    }

    /// Incremental checkpoints are an exact drop-in for full snapshots:
    /// under the same chaos plan both modes produce identical outcomes,
    /// identical non-fault statistics, and identical per-vertex states —
    /// while never storing more full-snapshot bytes than the full mode.
    #[test]
    fn incremental_checkpoints_equal_full_checkpoints(
        n in 16usize..100,
        workers in 2usize..6,
        checkpoint_every in 1usize..5,
        full_every in 2usize..6,
        crashes in 0usize..3,
        losses in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let plan = FaultPlan::random(seed ^ 0xDE17A, workers, 8, crashes, losses);
        let run = |incremental: Option<usize>| {
            let mut cfg = EngineConfig::new(
                ClusterSpec::galaxy(workers),
                SystemProfile::base("t"),
            );
            cfg.cutoff = SimTime::secs(1e12);
            cfg.checkpoint_every = checkpoint_every;
            cfg.incremental_checkpoints = incremental;
            cfg.faults = Some(plan.clone());
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run_slab(&MiniSlabMssp { sources: sources.clone() })
        };
        let full = run(None);
        let incr = run(Some(full_every));
        prop_assert_eq!(&full.outcome, &incr.outcome);
        prop_assert_eq!(scrub_faults(&full.stats), scrub_faults(&incr.stats));
        for v in 0..n {
            prop_assert_eq!(&full.states[v].dist, &incr.states[v].dist, "vertex {}", v);
        }
        // Deltas displace full snapshots at the same cadence.
        let ff = &full.stats.faults;
        let fi = &incr.stats.faults;
        prop_assert_eq!(fi.checkpoints, ff.checkpoints);
        prop_assert_eq!(ff.delta_checkpoints, 0);
        prop_assert!(fi.checkpoint_full_bytes <= ff.checkpoint_full_bytes);
    }

    /// Checkpoint-cadence edges: `0` (the documented alias for "every
    /// round"), `1`, and a cadence far beyond the run length must all
    /// recover bit-identically — and `0` must behave exactly like `1`.
    #[test]
    fn checkpoint_cadence_edges_recover(
        n in 16usize..80,
        workers in 2usize..5,
        crashes in 1usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = vec![0 as VertexId, (n / 2) as VertexId];
        let run = |every: usize, faults: Option<FaultPlan>| {
            let mut cfg = EngineConfig::new(
                ClusterSpec::galaxy(workers),
                SystemProfile::base("t"),
            );
            cfg.cutoff = SimTime::secs(1e12);
            cfg.checkpoint_every = every;
            cfg.faults = faults;
            let runner = Runner::new(&g, &HashPartitioner { salt: seed }, cfg);
            runner.run(&mtvc_tasks_free_mssp(sources.clone()))
        };
        let clean = run(8, None);
        let plan = FaultPlan::random(seed ^ 0xCADE, workers, 6, crashes, 0);
        let zero = run(0, Some(plan.clone()));
        let one = run(1, Some(plan.clone()));
        let huge = run(usize::MAX, Some(plan));
        prop_assert_eq!(&zero.stats, &one.stats, "0 must alias 1");
        for r in [&zero, &one, &huge] {
            prop_assert_eq!(&clean.outcome, &r.outcome);
            prop_assert_eq!(scrub_faults(&clean.stats), scrub_faults(&r.stats));
            for v in 0..n {
                prop_assert_eq!(&clean.states[v].dist, &r.states[v].dist, "vertex {}", v);
            }
        }
        // Beyond-run cadence keeps exactly the round-0 snapshot.
        prop_assert_eq!(huge.stats.faults.checkpoints, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wire-integrity fuzz: framing a bucket round-trips losslessly; a
    /// random bit flip anywhere in the frame is always detected as a
    /// typed error (never a panic, never a silent wrong decode); and
    /// the checked bucket decoder is total on corrupted bodies.
    #[test]
    fn frames_detect_every_random_bit_flip(
        len in 0usize..40,
        flip in any::<u64>(),
        seed in any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let envs: Vec<Envelope<Keyed>> = (0..len)
            .map(|_| {
                let dest = (rng.gen::<u64>() % 32) as VertexId;
                let key = match rng.gen::<u64>() % 5 {
                    0 => None,
                    1 => Some(u64::MAX),
                    k => Some(k % 3),
                };
                let val = rng.gen::<u64>() >> (rng.gen::<u64>() % 64);
                let mult = 1 + rng.gen::<u64>() % 4;
                Envelope::new(dest, Keyed { key, val }, mult)
            })
            .collect();
        let li_of = |v: VertexId| v;

        let frame = wire::encode_frame(&envs, li_of);
        let decoded = wire::decode_frame::<Keyed>(&frame, |li| li);
        prop_assert!(decoded.is_ok(), "intact frame must decode");
        prop_assert_eq!(decoded.unwrap().len(), envs.len());

        let mut bad = frame.clone();
        let bit = (flip as usize) % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            wire::decode_frame::<Keyed>(&bad, |li| li).is_err(),
            "bit {} flip must be detected", bit
        );

        // The checked (unframed) decoder may accept or reject a
        // corrupted body — but it must never panic.
        let mut body = wire::encode_bucket(&envs, li_of);
        if !body.is_empty() {
            let bit = (flip as usize) % (body.len() * 8);
            body[bit / 8] ^= 1 << (bit % 8);
            let _ = wire::try_decode_bucket::<Keyed>(&body, |li| li);
        }
    }

    /// `try_decode_bucket` is total on arbitrary byte soup: any input
    /// yields `Ok` or a typed `WireError`, never a panic.
    #[test]
    fn try_decode_is_total_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = wire::try_decode_bucket::<Keyed>(&bytes, |li| li);
    }
}
