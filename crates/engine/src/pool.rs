//! A persistent pool of worker threads shared by the compute and
//! routing phases of the round pipeline.
//!
//! The BSP loop used to spawn a fresh set of scoped OS threads every
//! round, which put thread creation and teardown on the critical path
//! of every round of every run. [`WorkerPool`] spawns one long-lived
//! thread per logical worker when the [`Runner`](crate::Runner) is
//! built, and both the compute stage and the two routing stages
//! dispatch onto the *same* threads round after round — worker `w`'s
//! vertices, outbox shards, and inbox merges always execute on pool
//! thread `w`, preserving cache locality of the per-worker state.
//!
//! Dispatch follows the scoped-thread pattern: [`WorkerPool::scope`]
//! hands out a [`PoolScope`] through which borrowed (non-`'static`)
//! closures can be submitted, and does not return until every submitted
//! job has finished, so borrows of the caller's stack are sound. A
//! panic inside a job is caught on the pool thread and re-raised on the
//! dispatching thread once the scope has drained.

use crossbeam::channel::{unbounded, Sender};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle, ThreadId};

/// Type-erased unit of work executed by a pool thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads, one per logical
/// worker of the partition it serves.
pub struct WorkerPool {
    /// One dispatch lane per worker: jobs for worker `w` always run on
    /// thread `w`, keeping per-worker data hot in that thread's cache.
    lanes: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    ids: Vec<ThreadId>,
}

impl WorkerPool {
    /// Spawn `workers` threads. They idle on their lanes until work is
    /// dispatched and exit when the pool is dropped.
    pub fn new(workers: usize) -> WorkerPool {
        assert!(workers >= 1, "worker pool needs at least one thread");
        let mut lanes = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded::<Job>();
            lanes.push(tx);
            let handle = thread::Builder::new()
                .name(format!("mtvc-worker-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn pool worker thread");
            handles.push(handle);
        }
        let ids = handles.iter().map(|h| h.thread().id()).collect();
        WorkerPool {
            lanes,
            handles,
            ids,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// OS thread identities, indexed by worker. Stable for the life of
    /// the pool — no thread is ever respawned between rounds.
    pub fn thread_ids(&self) -> &[ThreadId] {
        &self.ids
    }

    /// Run `f` with a [`PoolScope`] that can dispatch borrowed closures
    /// onto the pool. Blocks until every dispatched job has completed
    /// (even if `f` unwinds), then re-raises the first job panic, if
    /// any.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = {
            // Wait on drop so borrows stay live past every job even if
            // `f` itself unwinds after dispatching work.
            let _guard = DrainGuard(&state);
            f(&scope)
        };
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        result
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the lanes disconnects the receivers; each thread
        // drains its queue and exits.
        self.lanes.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.lanes.len())
            .finish()
    }
}

/// Dispatch handle for one [`WorkerPool::scope`] invocation. `'env` is
/// the lifetime of borrows the dispatched closures may capture; the
/// scope guarantees every job finishes before those borrows expire.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, as in `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Dispatch `job` onto worker thread `worker`. Jobs for the same
    /// worker run in submission order; jobs for different workers run
    /// concurrently.
    pub fn run_on<F>(&self, worker: usize, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        // Bounds-check before `add_one`: a panic after the increment
        // would leave the scope waiting for a job that never runs.
        assert!(
            worker < self.pool.lanes.len(),
            "worker index {worker} out of range for a {}-lane pool",
            self.pool.lanes.len()
        );
        self.state.add_one();
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                state.record_panic(payload);
            }
            state.finish_one();
        });
        // SAFETY: the job only borrows data outliving 'env, and the
        // enclosing `WorkerPool::scope` call blocks (via `DrainGuard`)
        // until `finish_one` has run for every dispatched job, so the
        // closure never outlives its borrows despite the erased
        // lifetime.
        let wrapped: Job = unsafe { std::mem::transmute(wrapped) };
        if self.pool.lanes[worker].send(wrapped).is_err() {
            panic!("worker pool thread exited while scope was active");
        }
    }
}

/// Completion tracking for one scope: a pending-job count plus the
/// first panic payload observed.
struct ScopeState {
    pending: Mutex<usize>,
    drained: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> ScopeState {
        ScopeState {
            pending: Mutex::new(0),
            drained: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn add_one(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn finish_one(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.drained.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.drained.wait(pending).unwrap();
        }
    }
}

/// Blocks on scope drain when dropped, including during unwinding.
struct DrainGuard<'a>(&'a ScopeState);

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_runs_borrowed_jobs_to_completion() {
        let pool = WorkerPool::new(4);
        let mut slots = vec![0u64; 4];
        pool.scope(|s| {
            for (w, slot) in slots.iter_mut().enumerate() {
                s.run_on(w, move || *slot = (w as u64 + 1) * 10);
            }
        });
        assert_eq!(slots, vec![10, 20, 30, 40]);
    }

    #[test]
    fn jobs_land_on_their_lane_thread_and_ids_are_stable() {
        let pool = WorkerPool::new(3);
        let expected: Vec<ThreadId> = pool.thread_ids().to_vec();
        for _round in 0..20 {
            let mut seen = vec![None; 3];
            pool.scope(|s| {
                for (w, slot) in seen.iter_mut().enumerate() {
                    s.run_on(w, move || *slot = Some(thread::current().id()));
                }
            });
            let seen: Vec<ThreadId> = seen.into_iter().map(|t| t.unwrap()).collect();
            assert_eq!(seen, expected, "lane threads must never be respawned");
        }
    }

    #[test]
    fn same_lane_jobs_run_in_submission_order() {
        let pool = WorkerPool::new(1);
        let log = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..16 {
                let log = &log;
                s.run_on(0, move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(*log.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn scopes_reuse_threads_across_invocations() {
        let pool = WorkerPool::new(2);
        let mut all: HashSet<ThreadId> = HashSet::new();
        for _ in 0..10 {
            let mut ids = vec![None; 2];
            pool.scope(|s| {
                for (w, slot) in ids.iter_mut().enumerate() {
                    s.run_on(w, move || *slot = Some(thread::current().id()));
                }
            });
            all.extend(ids.into_iter().flatten());
        }
        assert_eq!(all.len(), 2, "exactly two threads across all rounds");
    }

    #[test]
    fn counter_visible_after_scope() {
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for w in 0..4 {
                let counter = &counter;
                s.run_on(w, move || {
                    for _ in 0..1000 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn job_panic_propagates_to_dispatcher() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.run_on(0, || panic!("boom"));
                s.run_on(1, || {});
            });
        }));
        assert!(result.is_err());
        // The pool survives a job panic: lanes keep working.
        let mut ok = false;
        pool.scope(|s| s.run_on(1, || ok = true));
        assert!(ok);
    }
}
