//! Message routing: outboxes → inboxes, with combining, broadcast
//! expansion, mirroring-aware wire accounting, and per-worker traffic
//! statistics.

use crate::message::{Envelope, Message};
use crate::mirror::MirrorIndex;
use crate::program::Outbox;
use mtvc_graph::partition::Partition;
use mtvc_graph::Graph;

/// Traffic measured while routing one round's messages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingStats {
    /// Wire messages produced ("messages sent within a round" — the
    /// paper's congestion numerator). Broadcasts count one message per
    /// receiving neighbor.
    pub sent_wire: u64,
    /// Envelope count after combining (what a combining system
    /// actually delivers and processes).
    pub delivered_tuples: u64,
    /// Per-worker wire messages delivered.
    pub in_wire: Vec<u64>,
    /// Per-worker tuples delivered.
    pub in_tuples: Vec<u64>,
    /// Per-worker bytes sent to other machines.
    pub net_out_bytes: Vec<u64>,
    /// Per-worker bytes received from other machines.
    pub net_in_bytes: Vec<u64>,
    /// Bytes that stayed machine-local.
    pub local_bytes: u64,
    /// Per-worker bytes of message buffers *produced* (local + remote;
    /// memory accounting — mirroring saves wire bytes, not buffers).
    pub out_buffer_bytes: Vec<u64>,
    /// Per-worker bytes of message buffers *received* (local + remote).
    pub in_buffer_bytes: Vec<u64>,
}

impl RoutingStats {
    fn new(workers: usize) -> Self {
        RoutingStats {
            sent_wire: 0,
            delivered_tuples: 0,
            in_wire: vec![0; workers],
            in_tuples: vec![0; workers],
            net_out_bytes: vec![0; workers],
            net_in_bytes: vec![0; workers],
            local_bytes: 0,
            out_buffer_bytes: vec![0; workers],
            in_buffer_bytes: vec![0; workers],
        }
    }

    /// Total wire messages delivered (= sent; nothing is dropped).
    pub fn delivered_wire(&self) -> u64 {
        self.in_wire.iter().sum()
    }
}

/// Route all outboxes into per-worker inboxes.
///
/// * `mirrors`: `Some` in broadcast (Pregel+(mirror)) mode — mirrored
///   vertices pay one wire message per remote mirror worker instead of
///   one per remote neighbor.
/// * `combine`: merge envelopes with equal `(dest, combine_key)` within
///   each (source worker → dest worker) bucket before "transmission",
///   the way sender-side Pregel combiners work.
/// * `msg_bytes`: wire size of one message.
pub(crate) fn route<M: Message>(
    outboxes: Vec<Outbox<M>>,
    graph: &Graph,
    part: &Partition,
    mirrors: Option<&MirrorIndex>,
    combine: bool,
    msg_bytes: u64,
) -> (Vec<Vec<Envelope<M>>>, RoutingStats) {
    let workers = part.num_workers();
    let mut stats = RoutingStats::new(workers);
    let mut inboxes: Vec<Vec<Envelope<M>>> = (0..workers).map(|_| Vec::new()).collect();

    for (src_worker, outbox) in outboxes.into_iter().enumerate() {
        // Bucket this worker's traffic by destination worker.
        let mut buckets: Vec<Vec<Envelope<M>>> = (0..workers).map(|_| Vec::new()).collect();
        // Bytes already paid on the wire per dest worker (mirrored
        // broadcasts pay per mirror-worker, not per envelope).
        let mut prepaid_net: Vec<u64> = vec![0; workers];
        // Envelopes whose wire cost is prepaid (count of wire messages
        // NOT to be charged per-envelope), per dest worker.
        let mut prepaid_wire: Vec<u64> = vec![0; workers];

        for env in outbox.sends {
            stats.sent_wire += env.mult;
            let dw = part.owner_of(env.dest) as usize;
            buckets[dw].push(env);
        }

        for (origin, msg, mult) in outbox.broadcasts {
            let degree = graph.degree(origin) as u64;
            stats.sent_wire += degree * mult;
            let mirrored = mirrors.map(|m| m.is_mirrored(origin)).unwrap_or(false);
            if mirrored {
                // One wire transfer per remote mirror worker replaces
                // the per-neighbor wire cost of all remote fan-outs.
                for &mw in mirrors.unwrap().workers(origin) {
                    prepaid_net[mw as usize] += msg_bytes * mult;
                }
                for &t in graph.neighbors(origin) {
                    let dw = part.owner_of(t) as usize;
                    if dw != src_worker {
                        prepaid_wire[dw] += mult;
                    }
                    buckets[dw].push(Envelope::new(t, msg.clone(), mult));
                }
            } else {
                // Unmirrored broadcast: ordinary per-neighbor sends.
                for &t in graph.neighbors(origin) {
                    buckets[part.owner_of(t) as usize].push(Envelope::new(t, msg.clone(), mult));
                }
            }
        }

        // Mirrored-broadcast envelopes must not ALSO pay per-envelope
        // network bytes. We track, per dest worker, how many wire
        // messages were prepaid; the remainder of the bucket pays
        // normally. Envelopes from `sends` and unmirrored broadcasts
        // are never prepaid.
        for (dw, mut bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() && prepaid_net[dw] == 0 {
                continue;
            }
            if combine {
                combine_bucket(&mut bucket);
            }
            let tuples = bucket.len() as u64;
            let wire: u64 = bucket.iter().map(|e| e.mult).sum();
            // Bytes on the wire: combining systems transmit tuples,
            // non-combining systems transmit every wire message.
            let payload_units = if combine { tuples } else { wire };
            let buffer_bytes = payload_units * msg_bytes;
            stats.out_buffer_bytes[src_worker] += buffer_bytes;
            stats.in_buffer_bytes[dw] += buffer_bytes;
            let mut bytes = buffer_bytes;
            if dw != src_worker {
                // Replace the prepaid portion: those wire messages
                // crossed as mirror transfers already counted.
                let prepaid_units = prepaid_wire[dw].min(payload_units);
                bytes = bytes.saturating_sub(prepaid_units * msg_bytes) + prepaid_net[dw];
                stats.net_out_bytes[src_worker] += bytes;
                stats.net_in_bytes[dw] += bytes;
            } else {
                stats.local_bytes += bytes;
            }
            stats.in_wire[dw] += wire;
            stats.in_tuples[dw] += tuples;
            stats.delivered_tuples += tuples;
            inboxes[dw].append(&mut bucket);
        }
    }
    (inboxes, stats)
}

/// Merge envelopes with equal `(dest, combine_key)`; multiplicities sum.
/// Envelopes with `combine_key() == None` are kept verbatim.
fn combine_bucket<M: Message>(bucket: &mut Vec<Envelope<M>>) {
    if bucket.len() < 2 {
        return;
    }
    bucket.sort_by_key(|e| (e.dest, e.msg.combine_key().unwrap_or(u64::MAX)));
    let mut out: Vec<Envelope<M>> = Vec::with_capacity(bucket.len());
    for env in bucket.drain(..) {
        match (out.last_mut(), env.msg.combine_key()) {
            (Some(last), Some(key))
                if last.dest == env.dest && last.msg.combine_key() == Some(key) =>
            {
                last.msg.merge(&env.msg);
                last.mult += env.mult;
            }
            _ => out.push(env),
        }
    }
    *bucket = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Outbox;
    use mtvc_graph::generators;
    use mtvc_graph::partition::{Partitioner, RangePartitioner};

    #[derive(Clone, Debug, PartialEq)]
    struct Src(u32);
    impl Message for Src {
        fn combine_key(&self) -> Option<u64> {
            Some(self.0 as u64)
        }
        fn merge(&mut self, _o: &Self) {}
    }

    fn two_worker_setup() -> (mtvc_graph::Graph, Partition) {
        let g = generators::ring(8, true);
        let p = RangePartitioner.partition(&g, 2);
        (g, p)
    }

    #[test]
    fn p2p_local_vs_network() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(1, Src(0), 1)); // 0 -> w0 local
        ob0.sends.push(Envelope::new(5, Src(0), 2)); // 0 -> w1 remote
        let ob1: Outbox<Src> = Outbox::new();
        let (inboxes, stats) = route(vec![ob0, ob1], &g, &p, None, false, 16);
        assert_eq!(stats.sent_wire, 3);
        assert_eq!(stats.local_bytes, 16);
        assert_eq!(stats.net_out_bytes, vec![32, 0]);
        assert_eq!(stats.net_in_bytes, vec![0, 32]);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.in_wire, vec![1, 2]);
    }

    #[test]
    fn combining_merges_same_dest_and_key() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 2));
        ob0.sends.push(Envelope::new(5, Src(7), 3));
        ob0.sends.push(Envelope::new(5, Src(8), 1)); // different key
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, None, true, 16);
        assert_eq!(stats.sent_wire, 6);
        assert_eq!(stats.delivered_tuples, 2);
        assert_eq!(stats.in_wire[1], 6);
        assert_eq!(stats.in_tuples[1], 2);
        // Combined transmission: 2 tuples * 16 bytes.
        assert_eq!(stats.net_in_bytes[1], 32);
        let mults: Vec<u64> = inboxes[1].iter().map(|e| e.mult).collect();
        assert_eq!(mults.iter().sum::<u64>(), 6);
    }

    #[test]
    fn without_combining_bytes_charge_every_wire_message() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 5));
        let (_, stats) = route(vec![ob0, Outbox::new()], &g, &p, None, false, 16);
        assert_eq!(stats.net_in_bytes[1], 80);
    }

    #[test]
    fn unmirrored_broadcast_expands_per_neighbor() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        // Vertex 0's neighbors on the ring: 1 (w0) and 7 (w1).
        ob0.broadcasts.push((0, Src(0), 1));
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, None, false, 16);
        assert_eq!(stats.sent_wire, 2);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.net_out_bytes[0], 16);
    }

    #[test]
    fn mirrored_broadcast_saves_network_bytes() {
        // Star: hub 0 with 16 leaves, 4 workers. Hub degree 16.
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 4);
        assert!(idx.is_mirrored(0));
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (inboxes, stats) = route(obs, &g, &p, Some(&idx), false, 16);
        // All 16 leaves receive a message.
        let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
        assert_eq!(delivered, 16);
        assert_eq!(stats.sent_wire, 16);
        // Network bytes: one transfer per remote mirror worker (3),
        // not one per remote neighbor (~12).
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 3 * 16);
    }

    #[test]
    fn mirrored_and_plain_traffic_coexist() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 4);
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        ob0.sends.push(Envelope::new(16, Src(9), 1)); // plain remote send
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (_, stats) = route(obs, &g, &p, Some(&idx), false, 16);
        // 3 mirror transfers + 1 plain remote send.
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 4 * 16);
        assert_eq!(stats.sent_wire, 17);
    }

    #[test]
    fn combine_bucket_preserves_uncombignable() {
        #[derive(Clone, Debug, PartialEq)]
        struct NoKey;
        impl Message for NoKey {
            fn combine_key(&self) -> Option<u64> {
                None
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let mut bucket = vec![
            Envelope::new(1, NoKey, 1),
            Envelope::new(1, NoKey, 1),
            Envelope::new(1, NoKey, 1),
        ];
        combine_bucket(&mut bucket);
        assert_eq!(bucket.len(), 3);
    }

    #[test]
    fn deterministic_routing_order() {
        let (g, p) = two_worker_setup();
        let make = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.sends.push(Envelope::new(5, Src(1), 1));
            ob0.sends.push(Envelope::new(6, Src(2), 1));
            let mut ob1: Outbox<Src> = Outbox::new();
            ob1.sends.push(Envelope::new(5, Src(3), 1));
            route(vec![ob0, ob1], &g, &p, None, false, 8)
        };
        let (a, _) = make();
        let (b, _) = make();
        assert_eq!(a, b);
    }
}
