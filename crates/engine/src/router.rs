//! Message routing: outboxes → inboxes, with combining, broadcast
//! expansion, mirroring-aware wire accounting, and per-worker traffic
//! statistics.
//!
//! Routing runs as a two-stage **shard-then-merge** pipeline:
//!
//! 1. **Shard** — each *source* worker buckets its outbox into one
//!    [`Shard`] per destination worker (broadcast expansion and
//!    mirror-prepaid accounting happen here). Shards of different
//!    sources are independent, so this stage parallelizes over source
//!    workers.
//! 2. **Merge** — each *destination* worker folds its column of shards
//!    (in source order) into its inbox, applying the combiner per
//!    shard and measuring the pair's traffic as a [`PairFlow`]. Columns
//!    of different destinations are independent, so this stage
//!    parallelizes over destination workers.
//!
//! [`RoutingStats`] is then a pure reduction over the per-pair flows,
//! which makes the parallel path *bit-identical* to the serial
//! reference [`route`] — same inbox contents in the same order, same
//! statistics — regardless of thread scheduling. [`RouteGrid`] owns the
//! shard matrix and recycles every envelope buffer across rounds, so a
//! steady-state round performs no envelope-`Vec` allocations: each
//! shard's capacity is exactly what the previous round's traffic on
//! that (source → destination) pair needed.

use crate::message::{Envelope, Message};
use crate::mirror::MirrorIndex;
use crate::pool::WorkerPool;
use crate::program::Outbox;
use mtvc_graph::partition::Partition;
use mtvc_graph::{Graph, VertexId};

/// Traffic measured while routing one round's messages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingStats {
    /// Wire messages produced ("messages sent within a round" — the
    /// paper's congestion numerator). Broadcasts count one message per
    /// receiving neighbor.
    pub sent_wire: u64,
    /// Envelope count after combining (what a combining system
    /// actually delivers and processes).
    pub delivered_tuples: u64,
    /// Per-worker wire messages delivered.
    pub in_wire: Vec<u64>,
    /// Per-worker tuples delivered.
    pub in_tuples: Vec<u64>,
    /// Per-worker bytes sent to other machines.
    pub net_out_bytes: Vec<u64>,
    /// Per-worker bytes received from other machines.
    pub net_in_bytes: Vec<u64>,
    /// Bytes that stayed machine-local.
    pub local_bytes: u64,
    /// Per-worker bytes of message buffers *produced* (local + remote;
    /// memory accounting — mirroring saves wire bytes, not buffers).
    pub out_buffer_bytes: Vec<u64>,
    /// Per-worker bytes of message buffers *received* (local + remote).
    pub in_buffer_bytes: Vec<u64>,
}

impl RoutingStats {
    fn new(workers: usize) -> Self {
        RoutingStats {
            sent_wire: 0,
            delivered_tuples: 0,
            in_wire: vec![0; workers],
            in_tuples: vec![0; workers],
            net_out_bytes: vec![0; workers],
            net_in_bytes: vec![0; workers],
            local_bytes: 0,
            out_buffer_bytes: vec![0; workers],
            in_buffer_bytes: vec![0; workers],
        }
    }

    /// Zero every counter in place (capacity retained).
    fn reset(&mut self) {
        self.sent_wire = 0;
        self.delivered_tuples = 0;
        self.local_bytes = 0;
        for v in [
            &mut self.in_wire,
            &mut self.in_tuples,
            &mut self.net_out_bytes,
            &mut self.net_in_bytes,
            &mut self.out_buffer_bytes,
            &mut self.in_buffer_bytes,
        ] {
            v.iter_mut().for_each(|x| *x = 0);
        }
    }

    /// Total wire messages delivered (= sent; nothing is dropped).
    pub fn delivered_wire(&self) -> u64 {
        self.in_wire.iter().sum()
    }
}

/// Traffic of one (source worker → destination worker) pair for one
/// round; folding every pair's flow yields the round's
/// [`RoutingStats`].
#[derive(Debug, Clone, Copy, Default)]
struct PairFlow {
    buffer_bytes: u64,
    net_bytes: u64,
    local_bytes: u64,
    wire: u64,
    tuples: u64,
}

/// Messages from one source worker bound for one destination worker,
/// plus the mirror-prepaid wire accounting for the pair.
#[derive(Debug)]
pub struct Shard<M> {
    bucket: Vec<Envelope<M>>,
    /// Bytes already paid on the wire for this pair (mirrored
    /// broadcasts pay per mirror-worker, not per envelope).
    prepaid_net: u64,
    /// Wire messages whose network cost is prepaid (count NOT to be
    /// charged per-envelope).
    prepaid_wire: u64,
}

impl<M> Default for Shard<M> {
    fn default() -> Self {
        Shard {
            bucket: Vec::new(),
            prepaid_net: 0,
            prepaid_wire: 0,
        }
    }
}

/// Reusable scratch for [`combine_bucket`]: envelopes paired with their
/// sort tag so `combine_key()` is computed exactly once per envelope
/// instead of `O(n log n)` times inside the sort comparator.
#[derive(Debug)]
pub struct CombineScratch<M> {
    keyed: Vec<((VertexId, bool, u64), Envelope<M>)>,
}

impl<M> Default for CombineScratch<M> {
    fn default() -> Self {
        CombineScratch { keyed: Vec::new() }
    }
}

/// Stage 1: drain `outbox` into one shard per destination worker.
/// Returns the wire messages produced by this source. Send/broadcast
/// capacity of the outbox is retained for the next round.
fn shard_outbox<M: Message>(
    src_worker: usize,
    outbox: &mut Outbox<M>,
    graph: &Graph,
    part: &Partition,
    mirrors: Option<&MirrorIndex>,
    msg_bytes: u64,
    shards: &mut [Shard<M>],
) -> u64 {
    let mut sent_wire = 0u64;
    for env in outbox.sends.drain(..) {
        sent_wire += env.mult;
        let dw = part.owner_of(env.dest) as usize;
        shards[dw].bucket.push(env);
    }

    for (origin, msg, mult) in outbox.broadcasts.drain(..) {
        let degree = graph.degree(origin) as u64;
        sent_wire += degree * mult;
        match mirrors.and_then(|m| m.fanout(origin)) {
            Some(mirror_workers) => {
                // One wire transfer per remote mirror worker replaces
                // the per-neighbor wire cost of all remote fan-outs.
                for &mw in mirror_workers {
                    shards[mw as usize].prepaid_net += msg_bytes * mult;
                }
                for &t in graph.neighbors(origin) {
                    let dw = part.owner_of(t) as usize;
                    if dw != src_worker {
                        shards[dw].prepaid_wire += mult;
                    }
                    shards[dw].bucket.push(Envelope::new(t, msg.clone(), mult));
                }
            }
            None => {
                // Unmirrored broadcast: ordinary per-neighbor sends.
                for &t in graph.neighbors(origin) {
                    shards[part.owner_of(t) as usize].bucket.push(Envelope::new(
                        t,
                        msg.clone(),
                        mult,
                    ));
                }
            }
        }
    }
    sent_wire
}

/// Stage 2: fold one shard into its destination's inbox, optionally
/// combining first, and measure the pair's traffic.
///
/// Mirrored-broadcast envelopes must not ALSO pay per-envelope network
/// bytes: the shard tracks how many wire messages were prepaid, and the
/// remainder of the bucket pays normally. Envelopes from `sends` and
/// unmirrored broadcasts are never prepaid.
fn merge_shard<M: Message>(
    src_worker: usize,
    dest_worker: usize,
    shard: &mut Shard<M>,
    combine: bool,
    msg_bytes: u64,
    scratch: &mut CombineScratch<M>,
    inbox: &mut Vec<Envelope<M>>,
) -> PairFlow {
    let prepaid_net = std::mem::take(&mut shard.prepaid_net);
    let prepaid_wire = std::mem::take(&mut shard.prepaid_wire);
    let bucket = &mut shard.bucket;
    let mut flow = PairFlow::default();
    if bucket.is_empty() && prepaid_net == 0 {
        return flow;
    }
    if combine {
        combine_bucket_keyed(bucket, scratch);
    }
    let tuples = bucket.len() as u64;
    let wire: u64 = bucket.iter().map(|e| e.mult).sum();
    // Bytes on the wire: combining systems transmit tuples,
    // non-combining systems transmit every wire message.
    let payload_units = if combine { tuples } else { wire };
    let buffer_bytes = payload_units * msg_bytes;
    flow.buffer_bytes = buffer_bytes;
    flow.wire = wire;
    flow.tuples = tuples;
    if dest_worker != src_worker {
        // Replace the prepaid portion: those wire messages crossed as
        // mirror transfers already counted.
        let prepaid_units = prepaid_wire.min(payload_units);
        flow.net_bytes = buffer_bytes.saturating_sub(prepaid_units * msg_bytes) + prepaid_net;
    } else {
        flow.local_bytes = buffer_bytes;
    }
    // `append` drains the bucket but retains its capacity — the shard
    // is pre-sized for the next round by this round's traffic.
    inbox.append(bucket);
    flow
}

/// Fold one pair's flow into the round statistics.
fn apply_flow(stats: &mut RoutingStats, src: usize, dst: usize, flow: &PairFlow) {
    stats.out_buffer_bytes[src] += flow.buffer_bytes;
    stats.in_buffer_bytes[dst] += flow.buffer_bytes;
    stats.net_out_bytes[src] += flow.net_bytes;
    stats.net_in_bytes[dst] += flow.net_bytes;
    stats.local_bytes += flow.local_bytes;
    stats.in_wire[dst] += flow.wire;
    stats.in_tuples[dst] += flow.tuples;
    stats.delivered_tuples += flow.tuples;
}

/// Route all outboxes into per-worker inboxes — the serial reference
/// implementation of the shard-then-merge pipeline. [`RouteGrid`] is
/// the buffer-recycling, pool-dispatching equivalent the engine uses;
/// both produce bit-identical inboxes and statistics.
///
/// * `mirrors`: `Some` in broadcast (Pregel+(mirror)) mode — mirrored
///   vertices pay one wire message per remote mirror worker instead of
///   one per remote neighbor.
/// * `combine`: merge envelopes with equal `(dest, combine_key)` within
///   each (source worker → dest worker) bucket before "transmission",
///   the way sender-side Pregel combiners work.
/// * `msg_bytes`: wire size of one message.
pub fn route<M: Message>(
    mut outboxes: Vec<Outbox<M>>,
    graph: &Graph,
    part: &Partition,
    mirrors: Option<&MirrorIndex>,
    combine: bool,
    msg_bytes: u64,
) -> (Vec<Vec<Envelope<M>>>, RoutingStats) {
    let workers = part.num_workers();
    let mut stats = RoutingStats::new(workers);
    let mut inboxes: Vec<Vec<Envelope<M>>> = (0..workers).map(|_| Vec::new()).collect();
    let mut shards: Vec<Shard<M>> = (0..workers).map(|_| Shard::default()).collect();
    let mut scratch = CombineScratch::default();

    for (src_worker, outbox) in outboxes.iter_mut().enumerate() {
        stats.sent_wire += shard_outbox(
            src_worker,
            outbox,
            graph,
            part,
            mirrors,
            msg_bytes,
            &mut shards,
        );
        for (dw, shard) in shards.iter_mut().enumerate() {
            let flow = merge_shard(
                src_worker,
                dw,
                shard,
                combine,
                msg_bytes,
                &mut scratch,
                &mut inboxes[dw],
            );
            apply_flow(&mut stats, src_worker, dw, &flow);
        }
    }
    (inboxes, stats)
}

/// Persistent state of the two-stage routing pipeline: the
/// workers×workers shard matrix, per-pair flow cells, and per-worker
/// combine scratch. Owned for the duration of one run and reused every
/// round, so steady-state routing allocates nothing.
pub struct RouteGrid<M> {
    workers: usize,
    /// Row-major shards, `rows[src][dst]` — the layout stage 1 writes.
    rows: Vec<Vec<Shard<M>>>,
    /// Column-major shards, `cols[dst][src]` — the layout stage 2
    /// reads. Shards shuttle between the two layouts via O(workers²)
    /// `Vec`-header moves per round; their heap buffers never move.
    cols: Vec<Vec<Shard<M>>>,
    /// Flow cells, `flows[dst * workers + src]`, written by stage 2 in
    /// disjoint per-destination chunks.
    flows: Vec<PairFlow>,
    /// Per-source wire messages produced, written by stage 1.
    sent: Vec<u64>,
    /// Per-destination combine scratch.
    scratch: Vec<CombineScratch<M>>,
    stats: RoutingStats,
}

impl<M: Message> RouteGrid<M> {
    /// Build an empty grid for `workers` logical workers.
    pub fn new(workers: usize) -> RouteGrid<M> {
        assert!(workers >= 1);
        RouteGrid {
            workers,
            rows: (0..workers)
                .map(|_| (0..workers).map(|_| Shard::default()).collect())
                .collect(),
            cols: (0..workers)
                .map(|_| (0..workers).map(|_| Shard::default()).collect())
                .collect(),
            flows: vec![PairFlow::default(); workers * workers],
            sent: vec![0; workers],
            scratch: (0..workers).map(|_| CombineScratch::default()).collect(),
            stats: RoutingStats::new(workers),
        }
    }

    /// Route one round of traffic: drain `outboxes` into `inboxes`
    /// (which must arrive empty; capacity is reused) and return the
    /// round's statistics. With `pool: Some`, the shard stage fans out
    /// over source workers and the merge stage over destination
    /// workers, each job pinned to its worker's pool thread; with
    /// `None`, both stages run inline. Results are identical either
    /// way, and bit-identical to [`route`].
    #[allow(clippy::too_many_arguments)]
    pub fn route_round(
        &mut self,
        pool: Option<&WorkerPool>,
        outboxes: &mut [Outbox<M>],
        inboxes: &mut [Vec<Envelope<M>>],
        graph: &Graph,
        part: &Partition,
        mirrors: Option<&MirrorIndex>,
        combine: bool,
        msg_bytes: u64,
    ) -> &RoutingStats {
        let workers = self.workers;
        assert_eq!(outboxes.len(), workers, "one outbox per worker");
        assert_eq!(inboxes.len(), workers, "one inbox per worker");
        debug_assert!(inboxes.iter().all(|i| i.is_empty()));

        // ---- stage 1: shard, parallel over source workers ----------
        // Lane assignment is `worker % pool.workers()`: normally the
        // pool is partition-sized and this is the identity, but it also
        // keeps a smaller pool (fewer cores than workers) correct.
        match pool {
            Some(pool) => pool.scope(|s| {
                let lanes = pool.workers();
                for (src, ((outbox, row), sent)) in outboxes
                    .iter_mut()
                    .zip(self.rows.iter_mut())
                    .zip(self.sent.iter_mut())
                    .enumerate()
                {
                    s.run_on(src % lanes, move || {
                        *sent = shard_outbox(src, outbox, graph, part, mirrors, msg_bytes, row);
                    });
                }
            }),
            None => {
                for (src, ((outbox, row), sent)) in outboxes
                    .iter_mut()
                    .zip(self.rows.iter_mut())
                    .zip(self.sent.iter_mut())
                    .enumerate()
                {
                    *sent = shard_outbox(src, outbox, graph, part, mirrors, msg_bytes, row);
                }
            }
        }

        // ---- transpose: hand each destination its shard column -----
        for (src, row) in self.rows.iter_mut().enumerate() {
            for (dst, shard) in row.iter_mut().enumerate() {
                self.cols[dst][src] = std::mem::take(shard);
            }
        }

        // ---- stage 2: merge, parallel over destination workers -----
        match pool {
            Some(pool) => pool.scope(|s| {
                let lanes = pool.workers();
                for (dst, (((col, inbox), flows), scratch)) in self
                    .cols
                    .iter_mut()
                    .zip(inboxes.iter_mut())
                    .zip(self.flows.chunks_mut(workers))
                    .zip(self.scratch.iter_mut())
                    .enumerate()
                {
                    s.run_on(dst % lanes, move || {
                        for (src, shard) in col.iter_mut().enumerate() {
                            flows[src] =
                                merge_shard(src, dst, shard, combine, msg_bytes, scratch, inbox);
                        }
                    });
                }
            }),
            None => {
                for (dst, (((col, inbox), flows), scratch)) in self
                    .cols
                    .iter_mut()
                    .zip(inboxes.iter_mut())
                    .zip(self.flows.chunks_mut(workers))
                    .zip(self.scratch.iter_mut())
                    .enumerate()
                {
                    for (src, shard) in col.iter_mut().enumerate() {
                        flows[src] =
                            merge_shard(src, dst, shard, combine, msg_bytes, scratch, inbox);
                    }
                }
            }
        }

        // ---- transpose back: return drained shards (and their
        // capacity) to the stage-1 layout for the next round ---------
        for (dst, col) in self.cols.iter_mut().enumerate() {
            for (src, shard) in col.iter_mut().enumerate() {
                self.rows[src][dst] = std::mem::take(shard);
            }
        }

        // ---- reduction: fold per-pair flows into round stats -------
        self.stats.reset();
        self.stats.sent_wire = self.sent.iter().sum();
        for src in 0..workers {
            for dst in 0..workers {
                let flow = self.flows[dst * workers + src];
                apply_flow(&mut self.stats, src, dst, &flow);
            }
        }
        &self.stats
    }
}

impl<M> std::fmt::Debug for RouteGrid<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteGrid")
            .field("workers", &self.workers)
            .finish()
    }
}

/// Merge envelopes with equal `(dest, combine_key)`; multiplicities
/// sum. Envelopes with `combine_key() == None` are kept verbatim — they
/// sort *after* every keyed envelope of the same destination, so a
/// `Some(u64::MAX)` key can never interleave with (and be split by)
/// unkeyed envelopes. Keys are computed once per envelope into the
/// scratch buffer, not re-derived inside the sort comparator.
fn combine_bucket_keyed<M: Message>(
    bucket: &mut Vec<Envelope<M>>,
    scratch: &mut CombineScratch<M>,
) {
    if bucket.len() < 2 {
        return;
    }
    scratch.keyed.clear();
    scratch
        .keyed
        .extend(bucket.drain(..).map(|e| (e.sort_tag(), e)));
    // Stable: envelopes with equal tags keep arrival order, so merge
    // order (and thus non-commutative `merge` results) is deterministic.
    scratch.keyed.sort_by_key(|a| a.0);
    let mut last_key: Option<(VertexId, u64)> = None;
    for ((dest, uncombinable, key), env) in scratch.keyed.drain(..) {
        if !uncombinable && last_key == Some((dest, key)) {
            let last = bucket.last_mut().expect("merge target exists");
            last.msg.merge(&env.msg);
            last.mult += env.mult;
        } else {
            last_key = (!uncombinable).then_some((dest, key));
            bucket.push(env);
        }
    }
}

/// [`combine_bucket_keyed`] with owned scratch, for tests.
#[cfg(test)]
fn combine_bucket<M: Message>(bucket: &mut Vec<Envelope<M>>) {
    combine_bucket_keyed(bucket, &mut CombineScratch::default());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Outbox;
    use mtvc_graph::generators;
    use mtvc_graph::partition::{Partitioner, RangePartitioner};

    #[derive(Clone, Debug, PartialEq)]
    struct Src(u32);
    impl Message for Src {
        fn combine_key(&self) -> Option<u64> {
            Some(self.0 as u64)
        }
        fn merge(&mut self, _o: &Self) {}
    }

    fn two_worker_setup() -> (mtvc_graph::Graph, Partition) {
        let g = generators::ring(8, true);
        let p = RangePartitioner.partition(&g, 2);
        (g, p)
    }

    #[test]
    fn p2p_local_vs_network() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(1, Src(0), 1)); // 0 -> w0 local
        ob0.sends.push(Envelope::new(5, Src(0), 2)); // 0 -> w1 remote
        let ob1: Outbox<Src> = Outbox::new();
        let (inboxes, stats) = route(vec![ob0, ob1], &g, &p, None, false, 16);
        assert_eq!(stats.sent_wire, 3);
        assert_eq!(stats.local_bytes, 16);
        assert_eq!(stats.net_out_bytes, vec![32, 0]);
        assert_eq!(stats.net_in_bytes, vec![0, 32]);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.in_wire, vec![1, 2]);
    }

    #[test]
    fn combining_merges_same_dest_and_key() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 2));
        ob0.sends.push(Envelope::new(5, Src(7), 3));
        ob0.sends.push(Envelope::new(5, Src(8), 1)); // different key
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, None, true, 16);
        assert_eq!(stats.sent_wire, 6);
        assert_eq!(stats.delivered_tuples, 2);
        assert_eq!(stats.in_wire[1], 6);
        assert_eq!(stats.in_tuples[1], 2);
        // Combined transmission: 2 tuples * 16 bytes.
        assert_eq!(stats.net_in_bytes[1], 32);
        let mults: Vec<u64> = inboxes[1].iter().map(|e| e.mult).collect();
        assert_eq!(mults.iter().sum::<u64>(), 6);
    }

    #[test]
    fn without_combining_bytes_charge_every_wire_message() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 5));
        let (_, stats) = route(vec![ob0, Outbox::new()], &g, &p, None, false, 16);
        assert_eq!(stats.net_in_bytes[1], 80);
    }

    #[test]
    fn unmirrored_broadcast_expands_per_neighbor() {
        let (g, p) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        // Vertex 0's neighbors on the ring: 1 (w0) and 7 (w1).
        ob0.broadcasts.push((0, Src(0), 1));
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, None, false, 16);
        assert_eq!(stats.sent_wire, 2);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.net_out_bytes[0], 16);
    }

    #[test]
    fn mirrored_broadcast_saves_network_bytes() {
        // Star: hub 0 with 16 leaves, 4 workers. Hub degree 16.
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 4);
        assert!(idx.is_mirrored(0));
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (inboxes, stats) = route(obs, &g, &p, Some(&idx), false, 16);
        // All 16 leaves receive a message.
        let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
        assert_eq!(delivered, 16);
        assert_eq!(stats.sent_wire, 16);
        // Network bytes: one transfer per remote mirror worker (3),
        // not one per remote neighbor (~12).
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 3 * 16);
    }

    #[test]
    fn mirrored_and_plain_traffic_coexist() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 4);
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        ob0.sends.push(Envelope::new(16, Src(9), 1)); // plain remote send
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (_, stats) = route(obs, &g, &p, Some(&idx), false, 16);
        // 3 mirror transfers + 1 plain remote send.
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 4 * 16);
        assert_eq!(stats.sent_wire, 17);
    }

    #[test]
    fn combine_bucket_preserves_uncombignable() {
        #[derive(Clone, Debug, PartialEq)]
        struct NoKey;
        impl Message for NoKey {
            fn combine_key(&self) -> Option<u64> {
                None
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let mut bucket = vec![
            Envelope::new(1, NoKey, 1),
            Envelope::new(1, NoKey, 1),
            Envelope::new(1, NoKey, 1),
        ];
        combine_bucket(&mut bucket);
        assert_eq!(bucket.len(), 3);
    }

    #[test]
    fn combine_bucket_max_key_does_not_interleave_with_unkeyed() {
        // Messages whose combine key is Some(u64::MAX) must all merge
        // even when unkeyed envelopes arrive between them. The old
        // comparator mapped both to u64::MAX and interleaved them.
        #[derive(Clone, Debug, PartialEq)]
        struct MaybeKey(Option<u64>);
        impl Message for MaybeKey {
            fn combine_key(&self) -> Option<u64> {
                self.0
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let mut bucket = vec![
            Envelope::new(1, MaybeKey(Some(u64::MAX)), 1),
            Envelope::new(1, MaybeKey(None), 1),
            Envelope::new(1, MaybeKey(Some(u64::MAX)), 1),
            Envelope::new(1, MaybeKey(None), 1),
            Envelope::new(1, MaybeKey(Some(u64::MAX)), 1),
        ];
        combine_bucket(&mut bucket);
        // 1 merged MAX-keyed envelope (mult 3) + 2 unkeyed kept verbatim.
        assert_eq!(bucket.len(), 3);
        let max_keyed: Vec<&Envelope<MaybeKey>> =
            bucket.iter().filter(|e| e.msg.0.is_some()).collect();
        assert_eq!(max_keyed.len(), 1);
        assert_eq!(max_keyed[0].mult, 3);
    }

    #[test]
    fn deterministic_routing_order() {
        let (g, p) = two_worker_setup();
        let make = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.sends.push(Envelope::new(5, Src(1), 1));
            ob0.sends.push(Envelope::new(6, Src(2), 1));
            let mut ob1: Outbox<Src> = Outbox::new();
            ob1.sends.push(Envelope::new(5, Src(3), 1));
            route(vec![ob0, ob1], &g, &p, None, false, 8)
        };
        let (a, _) = make();
        let (b, _) = make();
        assert_eq!(a, b);
    }

    #[test]
    fn grid_matches_serial_route_with_and_without_pool() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 4);
        let make_outboxes = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.broadcasts.push((0, Src(0), 1));
            ob0.sends.push(Envelope::new(16, Src(9), 2));
            ob0.sends.push(Envelope::new(16, Src(9), 3));
            let mut obs = vec![ob0];
            obs.extend((1..4).map(|_| Outbox::new()));
            obs
        };
        for combine in [false, true] {
            let (want_in, want_stats) = route(make_outboxes(), &g, &p, Some(&idx), combine, 16);
            for pooled in [false, true] {
                let pool = pooled.then(|| WorkerPool::new(4));
                let mut grid: RouteGrid<Src> = RouteGrid::new(4);
                let mut outboxes = make_outboxes();
                let mut inboxes: Vec<Vec<Envelope<Src>>> = vec![Vec::new(); 4];
                let stats = grid.route_round(
                    pool.as_ref(),
                    &mut outboxes,
                    &mut inboxes,
                    &g,
                    &p,
                    Some(&idx),
                    combine,
                    16,
                );
                assert_eq!(stats, &want_stats, "combine={combine} pooled={pooled}");
                assert_eq!(inboxes, want_in, "combine={combine} pooled={pooled}");
            }
        }
    }

    #[test]
    fn grid_reuses_buffers_across_rounds() {
        let (g, p) = two_worker_setup();
        let mut grid: RouteGrid<Src> = RouteGrid::new(2);
        let mut inboxes: Vec<Vec<Envelope<Src>>> = vec![Vec::new(); 2];
        for round in 0..3 {
            let mut obs: Vec<Outbox<Src>> = vec![Outbox::new(), Outbox::new()];
            for d in 0..8u32 {
                obs[0].sends.push(Envelope::new(d, Src(d), 1));
            }
            let stats = grid.route_round(None, &mut obs, &mut inboxes, &g, &p, None, false, 8);
            assert_eq!(stats.sent_wire, 8, "round {round}");
            assert!(obs.iter().all(|o| o.sends.is_empty()), "outboxes drained");
            let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
            assert_eq!(delivered, 8);
            inboxes.iter_mut().for_each(|i| i.clear());
        }
    }
}
