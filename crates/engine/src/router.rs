//! Message routing: outboxes → grouped inboxes, with sender-side
//! combining, broadcast expansion, mirroring-aware wire accounting, and
//! per-worker traffic statistics.
//!
//! Routing runs as a two-stage **shard-then-merge** pipeline:
//!
//! 1. **Shard** — each *source* worker buckets its outbox into one
//!    [`Shard`] per destination worker. When the system profile enables
//!    combining, envelopes with equal `(dest, combine_key)` are folded
//!    *here*, at the source, through a recycled slot map — before any
//!    "transmission" — so the shard columns the merge stage sees are
//!    already combined (sender-side combining, the Pregel+ technique).
//!    Each shard additionally keeps a histogram of destination local
//!    indices, and since a shard's content is final after this stage,
//!    its traffic ([`PairFlow`]) is measured here too. Shards of
//!    different sources are independent, so this stage parallelizes
//!    over source workers.
//! 2. **Merge** — each *destination* worker folds its column of shards
//!    (in source order) into a grouped [`Inbox`]: the per-shard
//!    histograms are summed into per-vertex offsets, and every
//!    envelope's payload is *moved* (never cloned) straight into its
//!    vertex's contiguous run of [`Delivery`] slots. Columns of
//!    different destinations are independent, so this stage
//!    parallelizes over destination workers.
//!
//! The grouped inbox hands `compute` a borrowed `&[Delivery<M>]` run
//! per vertex, which eliminates the per-round counting sort and the
//! per-delivery message clone the compute phase used to pay.
//! [`RoutingStats`] is a pure reduction over the per-pair flows, which
//! makes the parallel path *bit-identical* to the serial reference
//! [`route`] — same runs in the same order, same statistics —
//! regardless of thread scheduling. [`RouteGrid`] owns the shard
//! matrix, slot maps, and offset buffers and recycles all of them
//! across rounds, so a steady-state round performs zero allocations and
//! zero message clones between `send()` and `compute()`.

use crate::message::{Delivery, Envelope, Message};
use crate::mirror::MirrorIndex;
use crate::pool::WorkerPool;
use crate::program::{EmitSink, Outbox};
use crate::wire::{self, WireFormat};
use mtvc_graph::hash::FastMap;
use mtvc_graph::partition::Partition;
use mtvc_graph::{Graph, VertexId};
use std::collections::hash_map::Entry;

/// Encoded bytes of one mirror transfer under the compact wire format,
/// on top of the payload: the mirrored origin's index plus the stream
/// flag. (Tuples mode charges `msg_bytes` per transfer instead.)
const MIRROR_ENC_OVERHEAD: u64 = 2;

/// Adaptive combining keeps a source worker's combiner on only while
/// the observed fold yield — payload units merged away per slot probe
/// — stays at or above `ADAPTIVE_HIT_RATE_NUM / ADAPTIVE_HIT_RATE_DEN`.
/// For scalar (mult 1) messages this is the plain hit rate: merging
/// must fold at least 3 of every 4 keyed envelopes to pay for the
/// per-envelope probes. Batched envelopes (e.g. lane-chunked MSSP)
/// weigh each fold by its multiplicity, since one merge then saves a
/// whole chunk of downstream copy and delivery work. A single
/// sub-threshold round does not turn the combiner off: frontier
/// algorithms ramp through sparse low-yield rounds before saturating,
/// so eviction takes [`ADAPTIVE_OFF_STRIKES`] consecutive bad verdicts
/// (a re-probed worker re-enters one strike short — the prior evidence
/// still counts). While off, the combiner re-probes one round out of
/// every [`ADAPTIVE_PROBE_PERIOD`] in case the traffic shape changed.
const ADAPTIVE_HIT_RATE_NUM: u64 = 3;
const ADAPTIVE_HIT_RATE_DEN: u64 = 4;
const ADAPTIVE_PROBE_PERIOD: u32 = 8;
const ADAPTIVE_OFF_STRIKES: u32 = 2;

/// Routing behaviour knobs beyond the per-round `combine` flag: the
/// wire format the accounting assumes, whether sender-side combining
/// adapts per (worker, round), and the receiver-side request-respond
/// cache threshold. The default policy reproduces the historic
/// pipeline bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePolicy {
    /// Network accounting representation; [`WireFormat::Compact`]
    /// measures real encoded bucket bytes instead of
    /// `payload_units * msg_bytes`.
    pub wire_format: WireFormat,
    /// When set (and the profile enables combining at all), each source
    /// worker toggles its combiner per round from the observed fold
    /// yield — the fix for combining that costs more than it saves at
    /// wide batch widths. Decisions land in [`RoutingStats::combine_on`].
    pub adaptive_combine: bool,
    /// Rounds whose combiner probed fewer keyed envelopes than this
    /// keep the combiner armed instead of updating the adaptive toggle:
    /// a near-empty round (init traffic, a draining frontier) carries
    /// no statistical signal, and letting it shut combining off wastes
    /// the following full-size rounds until the next re-probe.
    pub adaptive_min_tries: u64,
    /// Receiver-side request-respond cache (Yan et al.): an unmirrored
    /// broadcast origin with at least this many neighbors sends each
    /// destination worker its payload once; further copies to the same
    /// worker ship index-only and are served from the receiver's cache.
    /// `0` disables the cache. Bytes shrink only under
    /// [`WireFormat::Compact`]; hit/miss counters accrue regardless.
    pub respond_cache_threshold: u32,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        RoutePolicy {
            wire_format: WireFormat::default(),
            adaptive_combine: false,
            adaptive_min_tries: 1024,
            respond_cache_threshold: 0,
        }
    }
}

/// Traffic measured while routing one round's messages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingStats {
    /// Wire messages produced ("messages sent within a round" — the
    /// paper's congestion numerator). Broadcasts count one message per
    /// receiving neighbor.
    pub sent_wire: u64,
    /// Envelope count after combining (what a combining system
    /// actually delivers and processes).
    pub delivered_tuples: u64,
    /// Per-worker wire messages delivered.
    pub in_wire: Vec<u64>,
    /// Per-worker tuples delivered.
    pub in_tuples: Vec<u64>,
    /// Per-worker bytes sent to other machines.
    pub net_out_bytes: Vec<u64>,
    /// Per-worker bytes received from other machines.
    pub net_in_bytes: Vec<u64>,
    /// Bytes that stayed machine-local.
    pub local_bytes: u64,
    /// Per-worker bytes of message buffers *produced* (local + remote;
    /// memory accounting — mirroring saves wire bytes, not buffers).
    pub out_buffer_bytes: Vec<u64>,
    /// Per-worker bytes of message buffers *received* (local + remote).
    pub in_buffer_bytes: Vec<u64>,
    /// Post-codec bytes of every cross-worker shard bucket produced
    /// this round, under the compact wire format. Local buckets are
    /// delivered by pointer and never serialize, so they contribute
    /// nothing. Zero in [`WireFormat::Tuples`] mode.
    pub encoded_wire_bytes: u64,
    /// Per-worker post-codec bytes sent to other machines.
    pub encoded_out_bytes: Vec<u64>,
    /// Per-worker post-codec bytes received from other machines.
    pub encoded_in_bytes: Vec<u64>,
    /// Per-source-worker combining decision this round (static profiles
    /// repeat the profile flag; adaptive combining varies it).
    pub combine_on: Vec<bool>,
    /// Broadcast copies served from receiver-side request-respond
    /// caches (payload not re-shipped).
    pub respond_hits: u64,
    /// Broadcast payloads shipped to prime a receiver's cache.
    pub respond_misses: u64,
    /// Bytes of envelopes materialised in routing buffers *before*
    /// encode: every envelope written into a flat outbox at emit time
    /// plus every envelope appended to a shard bucket. The two-stage
    /// path writes each surviving envelope twice (outbox, then bucket)
    /// and each folded envelope once (outbox only); the fold-at-send
    /// pre-sharded path writes survivors once and folded envelopes
    /// never — this counter is what the copy-elimination claim is
    /// measured on. Pure accounting; no other statistic depends on it.
    pub shard_copy_bytes: u64,
    /// True when this round re-transmitted traffic during
    /// rollback-replay recovery. Replayed wire traffic must never be
    /// folded into a run's first-run totals; the runner branches its
    /// accounting on this flag.
    pub replay: bool,
}

impl RoutingStats {
    fn new(workers: usize) -> Self {
        RoutingStats {
            sent_wire: 0,
            delivered_tuples: 0,
            in_wire: vec![0; workers],
            in_tuples: vec![0; workers],
            net_out_bytes: vec![0; workers],
            net_in_bytes: vec![0; workers],
            local_bytes: 0,
            out_buffer_bytes: vec![0; workers],
            in_buffer_bytes: vec![0; workers],
            encoded_wire_bytes: 0,
            encoded_out_bytes: vec![0; workers],
            encoded_in_bytes: vec![0; workers],
            combine_on: vec![false; workers],
            respond_hits: 0,
            respond_misses: 0,
            shard_copy_bytes: 0,
            replay: false,
        }
    }

    /// Zero every counter in place (capacity retained).
    fn reset(&mut self) {
        self.sent_wire = 0;
        self.delivered_tuples = 0;
        self.local_bytes = 0;
        self.encoded_wire_bytes = 0;
        self.respond_hits = 0;
        self.respond_misses = 0;
        self.shard_copy_bytes = 0;
        self.replay = false;
        for v in [
            &mut self.in_wire,
            &mut self.in_tuples,
            &mut self.net_out_bytes,
            &mut self.net_in_bytes,
            &mut self.out_buffer_bytes,
            &mut self.in_buffer_bytes,
            &mut self.encoded_out_bytes,
            &mut self.encoded_in_bytes,
        ] {
            v.iter_mut().for_each(|x| *x = 0);
        }
        self.combine_on.iter_mut().for_each(|x| *x = false);
    }

    /// Total wire messages delivered (= sent; nothing is dropped).
    pub fn delivered_wire(&self) -> u64 {
        self.in_wire.iter().sum()
    }
}

/// Vertex ↔ (worker, local index) addressing for one partition.
///
/// The shard stage uses `local_of` to histogram destinations; the merge
/// stage uses `vertex_at` to label the grouped runs. Built once per run
/// (the [`Runner`](crate::Runner) owns one) and shared read-only by
/// every routing stage.
#[derive(Debug, Clone)]
pub struct LocalIndex {
    /// vertex id → index within its owner's vertex list.
    index: Vec<u32>,
    /// worker → owned vertices, in local-index order.
    vertices: Vec<Vec<VertexId>>,
}

impl LocalIndex {
    /// Build the two-way mapping from a partition.
    pub fn build(part: &Partition) -> LocalIndex {
        let vertices = part.worker_vertices();
        let mut index = vec![0u32; part.num_vertices()];
        for list in &vertices {
            for (i, &v) in list.iter().enumerate() {
                index[v as usize] = i as u32;
            }
        }
        LocalIndex { index, vertices }
    }

    /// Index of `v` within its owning worker's vertex list.
    #[inline]
    pub fn local_of(&self, v: VertexId) -> u32 {
        self.index[v as usize]
    }

    /// The vertex at `(worker, local index)`.
    #[inline]
    pub fn vertex_at(&self, worker: usize, local: u32) -> VertexId {
        self.vertices[worker][local as usize]
    }

    /// Vertices owned by `worker`.
    pub fn count(&self, worker: usize) -> usize {
        self.vertices[worker].len()
    }

    /// Per-worker vertex lists, in local-index order.
    pub fn worker_vertices(&self) -> &[Vec<VertexId>] {
        &self.vertices
    }
}

/// One vertex's contiguous slice of [`Delivery`] slots within an
/// [`Inbox`]. The run starts where the previous run ended (offset 0 for
/// the first run); runs are stored in ascending local-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Destination vertex.
    pub dest: VertexId,
    /// Destination's local index within its worker.
    pub local: u32,
    /// Exclusive end offset into the delivery buffer.
    pub end: u32,
}

/// One worker's round inbox, already grouped for the compute phase:
/// deliveries are laid out in destination-local-index order (stable by
/// source worker, then send order within a source) and partitioned into
/// per-vertex [`Run`]s. The compute phase hands each vertex its run as
/// a borrowed slice — no sort, no clone, no per-round allocation.
#[derive(Debug, PartialEq)]
pub struct Inbox<M> {
    deliveries: Vec<Delivery<M>>,
    runs: Vec<Run>,
}

impl<M: Clone> Clone for Inbox<M> {
    fn clone(&self) -> Self {
        Inbox {
            deliveries: self.deliveries.clone(),
            runs: self.runs.clone(),
        }
    }

    /// Buffer-reusing clone: checkpoint snapshots call this every
    /// cadence round, so the snapshot buffers are recycled instead of
    /// reallocated.
    fn clone_from(&mut self, src: &Self) {
        self.deliveries.clear();
        self.deliveries.extend(src.deliveries.iter().cloned());
        self.runs.clear();
        self.runs.extend_from_slice(&src.runs);
    }
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<M> Inbox<M> {
    pub fn new() -> Inbox<M> {
        Inbox {
            deliveries: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// True when no messages were delivered (quiescence test).
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// Delivered tuples in this inbox.
    pub fn len(&self) -> usize {
        self.deliveries.len()
    }

    /// The grouped delivery buffer.
    pub fn deliveries(&self) -> &[Delivery<M>] {
        &self.deliveries
    }

    /// The per-vertex runs, ascending by local index.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Iterate `(dest, local index, deliveries)` per active vertex.
    pub fn iter_runs(&self) -> impl Iterator<Item = (VertexId, u32, &[Delivery<M>])> {
        let mut start = 0usize;
        self.runs.iter().map(move |r| {
            let slice = &self.deliveries[start..r.end as usize];
            start = r.end as usize;
            (r.dest, r.local, slice)
        })
    }

    /// Reset for reuse across rounds; capacity is retained.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.runs.clear();
    }
}

/// Traffic of one (source worker → destination worker) pair for one
/// round; folding every pair's flow yields the round's
/// [`RoutingStats`].
#[derive(Debug, Clone, Copy, Default)]
struct PairFlow {
    buffer_bytes: u64,
    net_bytes: u64,
    local_bytes: u64,
    wire: u64,
    tuples: u64,
    /// Post-codec bucket bytes (compact wire format only).
    encoded_bytes: u64,
    /// Post-codec bytes actually crossing machines (mirror-prepaid
    /// transfers replace the prepaid fraction).
    encoded_net_bytes: u64,
    /// Request-respond cache hits / primes on this pair.
    respond_hits: u64,
    respond_misses: u64,
    /// Envelope bytes appended to this pair's bucket (the shard-stage
    /// half of [`RoutingStats::shard_copy_bytes`]).
    copy_bytes: u64,
}

/// Messages from one source worker bound for one destination worker:
/// the (already sender-combined) envelope bucket, a histogram of
/// destination local indices, the mirror-prepaid wire accounting, and
/// the pair's measured flow. All buffers are recycled across rounds.
#[derive(Debug)]
pub struct Shard<M> {
    bucket: Vec<Envelope<M>>,
    /// Destination local index of each bucket envelope (parallel to
    /// `bucket`): computed once at append time so the compact-measure
    /// and merge scatters read it sequentially instead of re-deriving
    /// it with a random `LocalIndex` lookup per envelope.
    lis: Vec<u32>,
    /// Envelopes per destination local index (len = destination
    /// worker's vertex count; all-zero outside the pipeline).
    hist: Vec<u32>,
    /// Local indices with `hist > 0`, in first-touch order — makes
    /// re-zeroing `hist` O(distinct destinations), not O(n).
    touched: Vec<u32>,
    /// Wire messages in the bucket (multiplicity sum; combining folds
    /// envelopes but preserves this total).
    wire: u64,
    /// Envelope bytes appended to the bucket this round (one
    /// `size_of::<Envelope<M>>()` per surviving append; folds add
    /// nothing) — the shard half of
    /// [`RoutingStats::shard_copy_bytes`].
    copied: u64,
    /// Bytes already paid on the wire for this pair (mirrored
    /// broadcasts pay per mirror-worker, not per envelope).
    prepaid_net: u64,
    /// Wire messages whose network cost is prepaid (count NOT to be
    /// charged per-envelope).
    prepaid_wire: u64,
    /// Post-codec bytes already paid as mirror transfers (compact
    /// analogue of `prepaid_net`).
    prepaid_net_encoded: u64,
    /// Payload bytes the request-respond cache elides from this pair's
    /// encoded bucket, plus the hit/prime counts behind them.
    cached_payload: u64,
    respond_hits: u64,
    respond_misses: u64,
    /// Compact-measure scratch: per-local-index write cursors (all-zero
    /// between rounds, like `hist`) and the bucket's query keys in
    /// delivery order.
    cursors: Vec<u32>,
    qkeys: Vec<(bool, u64)>,
    /// Dense sender-combining table for small combine keys: slot
    /// `key * nloc + li` holds `epoch << 32 | bucket position` for
    /// that `(destination, key)` pair, valid when the epoch half
    /// equals `fold_round`. Turns the hash probe on the combining hot
    /// path into one multiply and an epoch compare (and packing both
    /// halves into one word keeps a probe to a single cache touch);
    /// keys whose row would push the table past
    /// [`DENSE_FOLD_SLOTS_MAX`] fall back to the sender's hash map.
    fold_slots: Vec<u64>,
    fold_round: u32,
    /// Destination worker's vertex count, refreshed each round (the
    /// dense table's row stride).
    nloc: usize,
    /// The pair's traffic, measured at the end of the shard stage
    /// (bucket content is final once combining happened at the source).
    flow: PairFlow,
}

impl<M> Default for Shard<M> {
    fn default() -> Self {
        Shard {
            bucket: Vec::new(),
            lis: Vec::new(),
            hist: Vec::new(),
            touched: Vec::new(),
            wire: 0,
            copied: 0,
            prepaid_net: 0,
            prepaid_wire: 0,
            prepaid_net_encoded: 0,
            cached_payload: 0,
            respond_hits: 0,
            respond_misses: 0,
            cursors: Vec::new(),
            qkeys: Vec::new(),
            fold_slots: Vec::new(),
            fold_round: 0,
            nloc: 0,
            flow: PairFlow::default(),
        }
    }
}

/// Upper bound on a [`Shard`]'s dense combining table, in slots
/// (`rows * nloc`). At 8 bytes per slot this caps the table at 32 MiB
/// per shard; combine keys whose row starts beyond the cap use the
/// sender's hash map instead, so arbitrarily large or sparse key
/// domains stay correct — just not dense-accelerated.
const DENSE_FOLD_SLOTS_MAX: usize = 1 << 22;

/// Fresh [`Shard::fold_slots`] entry: epoch half 0 never matches a
/// live `fold_round` (rounds count from 1).
const FOLD_SLOT_EMPTY: u64 = 0;

/// Sender-side combining state for one source worker: maps
/// `(dest, combine_key)` to the envelope's position within the
/// destination shard's bucket, plus the round's slot probe/hit counters
/// (the adaptive-combining signal) and the request-respond cache's
/// seen-worker scratch. Recycled across rounds (cleared, never
/// dropped), so steady-state combining allocates nothing.
#[derive(Debug, Default)]
pub struct SenderSlots {
    map: FastMap<(VertexId, u64), u32>,
    /// Keyed envelopes probed this round, and the payload units folded
    /// away by slot hits (valid for rounds the combiner actually ran).
    /// Hits are **unit-weighted**: folding a lane-batched envelope of
    /// multiplicity 8 saves eight payload units of downstream copy and
    /// delivery work for one probe, so it counts 8 — for scalar
    /// (mult 1) messages this is exactly the envelope hit count.
    tries: u64,
    hits: u64,
    /// Request-respond scratch: `seen[dw] == epoch` marks a destination
    /// worker already primed by the current broadcast origin.
    seen: Vec<u64>,
    epoch: u64,
}

/// Append `env` to `shard`, maintaining the wire count and the
/// local-index histogram.
#[inline]
fn append_env<M>(shard: &mut Shard<M>, li: u32, env: Envelope<M>) {
    shard.wire += env.mult;
    shard.copied += std::mem::size_of::<Envelope<M>>() as u64;
    let h = &mut shard.hist[li as usize];
    if *h == 0 {
        shard.touched.push(li);
    }
    *h += 1;
    shard.bucket.push(env);
    shard.lis.push(li);
}

/// Probe the sender-combining structures for `(dest, key)`: the shard's
/// dense epoch-tagged table when the key's row fits under
/// [`DENSE_FOLD_SLOTS_MAX`], the sender's hash map otherwise. Returns
/// the bucket position of an equal-keyed envelope appended earlier this
/// round, or `None` after recording that the next appended envelope
/// (at `bucket.len()`) owns the slot.
#[inline]
fn fold_probe<M>(
    shard: &mut Shard<M>,
    map: &mut FastMap<(VertexId, u64), u32>,
    dest: VertexId,
    li: u32,
    key: u64,
) -> Option<u32> {
    let idx = (key as usize)
        .checked_mul(shard.nloc)
        .map(|row| row + li as usize);
    match idx {
        Some(idx) if idx < DENSE_FOLD_SLOTS_MAX => {
            if shard.fold_slots.len() <= idx {
                let end = (key as usize + 1) * shard.nloc;
                shard.fold_slots.resize(end, FOLD_SLOT_EMPTY);
            }
            let slot = shard.fold_slots[idx];
            if (slot >> 32) as u32 == shard.fold_round {
                Some(slot as u32)
            } else {
                shard.fold_slots[idx] = (shard.fold_round as u64) << 32 | shard.bucket.len() as u64;
                None
            }
        }
        _ => match map.entry((dest, key)) {
            Entry::Occupied(o) => Some(*o.get()),
            Entry::Vacant(vac) => {
                vac.insert(shard.bucket.len() as u32);
                None
            }
        },
    }
}

/// Route one point-to-point envelope into its shard, folding it into an
/// existing slot when combining is on and an equal `(dest, key)`
/// envelope was already sent this round.
#[inline]
fn push_send<M: Message>(
    env: Envelope<M>,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    shards: &mut [Shard<M>],
    slots: &mut SenderSlots,
) {
    let dw = part.owner_of(env.dest) as usize;
    let li = locals.local_of(env.dest);
    if combine {
        if let Some(key) = env.msg.combine_key() {
            slots.tries += 1;
            let shard = &mut shards[dw];
            if let Some(pos) = fold_probe(shard, &mut slots.map, env.dest, li, key) {
                slots.hits += env.mult;
                let slot = &mut shard.bucket[pos as usize];
                slot.msg.merge(&env.msg);
                slot.mult += env.mult;
                shard.wire += env.mult;
                return;
            }
        }
    }
    append_env(&mut shards[dw], li, env);
}

/// Route one broadcast-expanded message. On a combining hit the clone
/// is skipped entirely — the borrowed payload merges into the slot.
/// Returns whether a new envelope was appended (false on a combining
/// hit) — the request-respond cache only accounts appended copies.
#[inline]
#[allow(clippy::too_many_arguments)]
fn push_broadcast<M: Message>(
    dest: VertexId,
    msg: &M,
    mult: u64,
    dw: usize,
    locals: &LocalIndex,
    combine: bool,
    shards: &mut [Shard<M>],
    slots: &mut SenderSlots,
) -> bool {
    let li = locals.local_of(dest);
    if combine {
        if let Some(key) = msg.combine_key() {
            slots.tries += 1;
            let shard = &mut shards[dw];
            if let Some(pos) = fold_probe(shard, &mut slots.map, dest, li, key) {
                slots.hits += mult;
                let slot = &mut shard.bucket[pos as usize];
                slot.msg.merge(msg);
                slot.mult += mult;
                shard.wire += mult;
                return false;
            }
        }
    }
    append_env(&mut shards[dw], li, Envelope::new(dest, msg.clone(), mult));
    true
}

/// Reset one source's shard row for a new round of appends: refresh the
/// destination vertex counts, size the histograms, and (when combining)
/// advance the dense fold tables' epoch. Shared by the flat
/// [`shard_outbox`] prologue and [`RouteGrid::begin_round`] (the
/// fold-at-send path, which must prepare the row *before* the compute
/// phase starts emitting into it).
fn prepare_shards<M>(shards: &mut [Shard<M>], locals: &LocalIndex, combine: bool) {
    for (dw, shard) in shards.iter_mut().enumerate() {
        let nloc = locals.count(dw);
        if shard.hist.len() < nloc {
            shard.hist.resize(nloc, 0);
        }
        shard.nloc = nloc;
        if combine {
            shard.fold_round = shard.fold_round.wrapping_add(1);
            if shard.fold_round == 0 {
                // Epoch tag wrapped: stale tags from 2^32 rounds ago
                // would alias the new epoch, so clear them once.
                shard.fold_slots.fill(FOLD_SLOT_EMPTY);
                shard.fold_round = 1;
            }
        }
    }
}

/// Reset one source's sender-combining slots for a new round (companion
/// to [`prepare_shards`], same two call sites).
fn prepare_slots(slots: &mut SenderSlots, combine: bool, workers: usize) {
    if combine {
        slots.map.clear();
        slots.tries = 0;
        slots.hits = 0;
    }
    if slots.seen.len() < workers {
        slots.seen.resize(workers, 0);
    }
}

/// Stage 1: drain `outbox` into one shard per destination worker,
/// sender-combining when `combine` is set, and measure each pair's
/// flow. Returns `(wire messages produced, emit-materialisation bytes)`
/// for this source — the latter is the flat-outbox half of
/// [`RoutingStats::shard_copy_bytes`]: every send and broadcast entry
/// was written once into the outbox at emit time before this re-walk
/// copies survivors into their buckets. Send/broadcast capacity of the
/// outbox is retained for the next round.
#[allow(clippy::too_many_arguments)]
fn shard_outbox<M: Message>(
    src_worker: usize,
    outbox: &mut Outbox<M>,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    mirrors: Option<&MirrorIndex>,
    combine: bool,
    msg_bytes: u64,
    policy: &RoutePolicy,
    shards: &mut [Shard<M>],
    slots: &mut SenderSlots,
) -> (u64, u64) {
    prepare_shards(shards, locals, combine);
    prepare_slots(slots, combine, shards.len());
    let compact = policy.wire_format == WireFormat::Compact;
    let emit_copies = (outbox.sends.len() + outbox.broadcasts.len()) as u64
        * std::mem::size_of::<Envelope<M>>() as u64;

    let mut sent_wire = 0u64;
    for env in outbox.sends.drain(..) {
        sent_wire += env.mult;
        push_send(env, part, locals, combine, shards, slots);
    }

    for (origin, msg, mult) in outbox.broadcasts.drain(..) {
        let degree = graph.degree(origin) as u64;
        sent_wire += degree * mult;
        match mirrors.and_then(|m| m.fanout(origin)) {
            Some(mirror_workers) => {
                // One wire transfer per remote mirror worker replaces
                // the per-neighbor wire cost of all remote fan-outs.
                let enc_xfer = if compact {
                    (MIRROR_ENC_OVERHEAD + msg.encoded_payload_bytes()) * mult
                } else {
                    0
                };
                for &mw in mirror_workers {
                    shards[mw as usize].prepaid_net += msg_bytes * mult;
                    shards[mw as usize].prepaid_net_encoded += enc_xfer;
                }
                for &t in graph.neighbors(origin) {
                    let dw = part.owner_of(t) as usize;
                    if dw != src_worker {
                        shards[dw].prepaid_wire += mult;
                    }
                    push_broadcast(t, &msg, mult, dw, locals, combine, shards, slots);
                }
            }
            None => {
                // Unmirrored broadcast: ordinary per-neighbor sends,
                // with the request-respond cache eliding repeat
                // payloads to the same remote worker for high-degree
                // origins.
                let caching = policy.respond_cache_threshold != 0
                    && degree >= policy.respond_cache_threshold as u64;
                if caching {
                    slots.epoch += 1;
                }
                for &t in graph.neighbors(origin) {
                    let dw = part.owner_of(t) as usize;
                    let appended =
                        push_broadcast(t, &msg, mult, dw, locals, combine, shards, slots);
                    if caching && dw != src_worker && appended {
                        if slots.seen[dw] == slots.epoch {
                            shards[dw].respond_hits += 1;
                            shards[dw].cached_payload += msg.encoded_payload_bytes();
                        } else {
                            slots.seen[dw] = slots.epoch;
                            shards[dw].respond_misses += 1;
                        }
                    }
                }
            }
        }
    }

    for (dw, shard) in shards.iter_mut().enumerate() {
        finish_shard(src_worker, dw, shard, combine, msg_bytes, policy);
    }
    (sent_wire, emit_copies)
}

/// Measure one shard's pair traffic after its content is final.
///
/// Mirrored-broadcast envelopes must not ALSO pay per-envelope network
/// bytes: the shard tracks how many wire messages were prepaid, and the
/// remainder of the bucket pays normally. Envelopes from `sends` and
/// unmirrored broadcasts are never prepaid.
fn finish_shard<M: Message>(
    src: usize,
    dst: usize,
    shard: &mut Shard<M>,
    combine: bool,
    msg_bytes: u64,
    policy: &RoutePolicy,
) {
    let prepaid_net = std::mem::take(&mut shard.prepaid_net);
    let prepaid_wire = std::mem::take(&mut shard.prepaid_wire);
    let prepaid_net_enc = std::mem::take(&mut shard.prepaid_net_encoded);
    let cached_payload = std::mem::take(&mut shard.cached_payload);
    let respond_hits = std::mem::take(&mut shard.respond_hits);
    let respond_misses = std::mem::take(&mut shard.respond_misses);
    let wire = std::mem::take(&mut shard.wire);
    let copied = std::mem::take(&mut shard.copied);
    let mut flow = PairFlow::default();
    if !shard.bucket.is_empty() || prepaid_net != 0 {
        let tuples = shard.bucket.len() as u64;
        flow.copy_bytes = copied;
        // Bytes on the wire: combining systems transmit tuples,
        // non-combining systems transmit every wire message.
        let payload_units = if combine { tuples } else { wire };
        let buffer_bytes = payload_units * msg_bytes;
        flow.buffer_bytes = buffer_bytes;
        flow.wire = wire;
        flow.tuples = tuples;
        flow.respond_hits = respond_hits;
        flow.respond_misses = respond_misses;
        // The codec models wire serialization, so only cross-worker
        // buckets are measured: local delivery hands envelopes over by
        // pointer and never encodes.
        if policy.wire_format == WireFormat::Compact && dst != src {
            let enc = measure_shard_encoded(shard).saturating_sub(cached_payload);
            flow.encoded_bytes = enc;
            // Prepaid wire messages already crossed as mirror
            // transfers; keep only the unpaid fraction of the
            // encoded bucket (integer scaling by wire share).
            let prepaid_units = prepaid_wire.min(wire);
            // `wire == 0` means an empty bucket, so `enc` is 0 too.
            let kept = (enc * prepaid_units)
                .checked_div(wire)
                .map_or(0, |folded| enc - folded);
            flow.encoded_net_bytes = kept + prepaid_net_enc;
        }
        if dst != src {
            // Replace the prepaid portion: those wire messages crossed
            // as mirror transfers already counted.
            let prepaid_units = prepaid_wire.min(payload_units);
            flow.net_bytes = buffer_bytes.saturating_sub(prepaid_units * msg_bytes) + prepaid_net;
        } else {
            flow.local_bytes = buffer_bytes;
        }
    }
    shard.flow = flow;
}

/// Compact-format size of one shard bucket, computed **without sorting
/// the bucket**: the directory comes from the (sorted) touched list and
/// histogram, order-independent streams from one bucket pass, and the
/// query run-length stream from a counting scatter of the query keys
/// into delivery order — the same permutation the merge stage will
/// apply. Must equal [`wire::measure_bucket`] (the serial oracle's
/// sort-based measurement); pinned by the routing property tests.
fn measure_shard_encoded<M: Message>(shard: &mut Shard<M>) -> u64 {
    let n = shard.bucket.len();
    if n == 0 {
        return 0;
    }
    // Sorting `touched` is safe: the merge stage treats it as a set.
    shard.touched.sort_unstable();
    if shard.cursors.len() < shard.hist.len() {
        shard.cursors.resize(shard.hist.len(), 0);
    }
    let mut bytes = wire::varint_len(n as u64) + wire::varint_len(shard.touched.len() as u64);
    let mut prev = 0u32;
    let mut running = 0u32;
    for &li in &shard.touched {
        let h = shard.hist[li as usize];
        bytes += wire::varint_len((li - prev) as u64) + wire::varint_len(h as u64);
        prev = li;
        shard.cursors[li as usize] = running;
        running += h;
    }
    // The counting scatter writes every slot in 0..n exactly once (the
    // histogram sums to the bucket length), so the buffer only ever
    // needs to grow — no per-round fill.
    if shard.qkeys.len() < n {
        shard.qkeys.resize(n, (false, 0));
    }
    for (env, &li) in shard.bucket.iter().zip(&shard.lis) {
        let slot = shard.cursors[li as usize] as usize;
        shard.cursors[li as usize] += 1;
        shard.qkeys[slot] = match env.msg.wire_query() {
            Some(q) => (true, q),
            None => (false, 0),
        };
        bytes += wire::varint_len(env.mult) + env.msg.encoded_payload_bytes();
    }
    // Restore the all-zero cursor buffer for the next round.
    for &li in &shard.touched {
        shard.cursors[li as usize] = 0;
    }
    // Query-RLE size, accumulated branchlessly: lane-chunk traffic
    // makes runs short and boundaries effectively random, so a
    // run-at-a-time loop pays a branch mispredict per envelope. Each
    // run costs varint_len(len) + flag byte + optional key varint;
    // varint_len(len) is 1 plus one extra byte per 7-bit threshold the
    // running length crosses, so every component is a masked add.
    let mut prev = shard.qkeys[0];
    let mut run_len = 1u64;
    let mut runs = 1u64;
    let mut key_bytes = 1 + if prev.0 { wire::varint_len(prev.1) } else { 0 };
    let mut long_extra = 0u64;
    for &key in &shard.qkeys[1..n] {
        let boundary = (key != prev) as u64;
        runs += boundary;
        key_bytes += boundary * (1 + key.0 as u64 * wire::varint_len(key.1));
        run_len = run_len * (1 - boundary) + 1;
        long_extra += (run_len.count_ones() == 1
            && run_len.trailing_zeros().is_multiple_of(7)
            && run_len > 1) as u64;
        prev = key;
    }
    bytes + runs + key_bytes + long_extra
}

/// Stage 2: fold one destination's shard column (in source order) into
/// its grouped [`Inbox`].
///
/// The per-shard histograms are summed into per-vertex offsets, every
/// envelope payload is moved into its vertex's delivery run, and the
/// runs are emitted in ascending local-index order — the exact grouping
/// the compute phase used to derive with a per-round counting sort.
fn merge_column<M: Message>(
    dst: usize,
    col: &mut [Shard<M>],
    locals: &LocalIndex,
    counts: &mut Vec<u32>,
    active: &mut Vec<u32>,
    inbox: &mut Inbox<M>,
    flows: &mut [PairFlow],
) {
    let nloc = locals.count(dst);
    if counts.len() < nloc {
        counts.resize(nloc, 0);
    }
    debug_assert!(inbox.is_empty(), "inboxes must arrive empty");
    debug_assert!(counts.iter().all(|&c| c == 0), "offset buffer not reset");
    active.clear();

    // Sum the shard histograms; `active` collects the distinct local
    // indices so nothing here is O(worker vertex count).
    let mut total = 0usize;
    for (src, shard) in col.iter_mut().enumerate() {
        flows[src] = std::mem::take(&mut shard.flow);
        total += shard.bucket.len();
        for &li in &shard.touched {
            if counts[li as usize] == 0 {
                active.push(li);
            }
            counts[li as usize] += shard.hist[li as usize];
        }
    }
    if total == 0 {
        return;
    }
    assert!(total <= u32::MAX as usize, "round inbox exceeds u32 range");

    // Prefix-sum in ascending local order: counts[li] becomes the write
    // cursor of li's run.
    active.sort_unstable();
    let mut running = 0u32;
    for &li in active.iter() {
        let c = counts[li as usize];
        counts[li as usize] = running;
        running += c;
    }
    debug_assert_eq!(running as usize, total);

    // Scatter: move each envelope's payload straight into its run slot.
    // Iterating shards in source order keeps runs stable by (source,
    // send order) — the same order the counting sort used to produce.
    inbox.deliveries.reserve(total);
    let spare = inbox.deliveries.spare_capacity_mut();
    for shard in col.iter_mut() {
        for (env, li) in shard.bucket.drain(..).zip(shard.lis.drain(..)) {
            let slot = counts[li as usize] as usize;
            counts[li as usize] += 1;
            spare[slot].write(Delivery {
                msg: env.msg,
                mult: env.mult,
            });
        }
        // Restore the shard's all-zero histogram for the next round.
        for &li in &shard.touched {
            shard.hist[li as usize] = 0;
        }
        shard.touched.clear();
    }
    // SAFETY: the cursors partition 0..total into disjoint runs (run li
    // starts at its prefix sum and receives exactly hist-sum(li)
    // writes), so every slot in 0..total was written exactly once
    // above, and `reserve(total)` guaranteed the spare capacity.
    unsafe { inbox.deliveries.set_len(total) };

    // After the scatter each cursor sits at its run's end offset; emit
    // the runs and restore the all-zero offset buffer.
    inbox.runs.reserve(active.len());
    for &li in active.iter() {
        inbox.runs.push(Run {
            dest: locals.vertex_at(dst, li),
            local: li,
            end: counts[li as usize],
        });
        counts[li as usize] = 0;
    }
}

/// Fold one pair's flow into the round statistics.
fn apply_flow(stats: &mut RoutingStats, src: usize, dst: usize, flow: &PairFlow) {
    stats.out_buffer_bytes[src] += flow.buffer_bytes;
    stats.in_buffer_bytes[dst] += flow.buffer_bytes;
    stats.net_out_bytes[src] += flow.net_bytes;
    stats.net_in_bytes[dst] += flow.net_bytes;
    stats.local_bytes += flow.local_bytes;
    stats.in_wire[dst] += flow.wire;
    stats.in_tuples[dst] += flow.tuples;
    stats.delivered_tuples += flow.tuples;
    stats.encoded_wire_bytes += flow.encoded_bytes;
    stats.encoded_out_bytes[src] += flow.encoded_net_bytes;
    stats.encoded_in_bytes[dst] += flow.encoded_net_bytes;
    stats.respond_hits += flow.respond_hits;
    stats.respond_misses += flow.respond_misses;
    stats.shard_copy_bytes += flow.copy_bytes;
}

/// Route all outboxes into grouped per-worker inboxes — the serial
/// reference implementation of the sender-combining shard-then-merge
/// pipeline. [`RouteGrid`] is the buffer-recycling, pool-dispatching
/// equivalent the engine uses; both produce bit-identical inboxes and
/// statistics. This implementation is deliberately different machinery
/// (fresh per-call buffers, a plain `HashMap` for combining, a stable
/// comparison sort for grouping) so the property tests pin the grid
/// against genuinely independent code.
///
/// * `mirrors`: `Some` in broadcast (Pregel+(mirror)) mode — mirrored
///   vertices pay one wire message per remote mirror worker instead of
///   one per remote neighbor.
/// * `combine`: fold envelopes with equal `(dest, combine_key)` at the
///   source worker before "transmission", the way sender-side Pregel
///   combiners work. Multiplicities sum; payloads merge in send order.
/// * `msg_bytes`: wire size of one message.
pub fn route<M: Message>(
    outboxes: Vec<Outbox<M>>,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    mirrors: Option<&MirrorIndex>,
    combine: bool,
    msg_bytes: u64,
) -> (Vec<Inbox<M>>, RoutingStats) {
    route_with(
        outboxes,
        graph,
        part,
        locals,
        mirrors,
        combine,
        msg_bytes,
        &RoutePolicy::default(),
    )
}

/// [`route`] with an explicit [`RoutePolicy`]: the serial oracle for
/// the compact wire format and the request-respond cache. Combining
/// stays static here (`policy.adaptive_combine` is ignored — the
/// adaptive toggle is per-grid state, covered by its own determinism
/// and conservation properties).
#[allow(clippy::too_many_arguments)]
pub fn route_with<M: Message>(
    mut outboxes: Vec<Outbox<M>>,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    mirrors: Option<&MirrorIndex>,
    combine: bool,
    msg_bytes: u64,
    policy: &RoutePolicy,
) -> (Vec<Inbox<M>>, RoutingStats) {
    use std::collections::{HashMap, HashSet};

    let workers = part.num_workers();
    let compact = policy.wire_format == WireFormat::Compact;
    let mut stats = RoutingStats::new(workers);
    stats.combine_on.iter_mut().for_each(|c| *c = combine);
    // columns[dst][src]: combined envelope buckets in source order.
    let mut columns: Vec<Vec<Vec<Envelope<M>>>> =
        (0..workers).map(|_| Vec::with_capacity(workers)).collect();

    let env_bytes = std::mem::size_of::<Envelope<M>>() as u64;
    for (src, outbox) in outboxes.iter_mut().enumerate() {
        // Flat-outbox emit materialisation: one envelope write per
        // send/broadcast entry, independently of combining.
        stats.shard_copy_bytes += (outbox.sends.len() + outbox.broadcasts.len()) as u64 * env_bytes;
        let mut buckets: Vec<Vec<Envelope<M>>> = (0..workers).map(|_| Vec::new()).collect();
        let mut prepaid_net = vec![0u64; workers];
        let mut prepaid_wire = vec![0u64; workers];
        let mut prepaid_net_enc = vec![0u64; workers];
        let mut cached_payload = vec![0u64; workers];
        let mut respond_hits = vec![0u64; workers];
        let mut respond_misses = vec![0u64; workers];
        let mut slots: HashMap<(VertexId, u64), usize> = HashMap::new();

        // Returns whether a new envelope was appended (false = merged).
        let deposit = |buckets: &mut Vec<Vec<Envelope<M>>>,
                       slots: &mut HashMap<(VertexId, u64), usize>,
                       dest: VertexId,
                       msg: &M,
                       mult: u64|
         -> bool {
            let dw = part.owner_of(dest) as usize;
            if combine {
                if let Some(key) = msg.combine_key() {
                    if let Some(&pos) = slots.get(&(dest, key)) {
                        let slot = &mut buckets[dw][pos];
                        slot.msg.merge(msg);
                        slot.mult += mult;
                        return false;
                    }
                    slots.insert((dest, key), buckets[dw].len());
                }
            }
            buckets[dw].push(Envelope::new(dest, msg.clone(), mult));
            true
        };

        for env in outbox.sends.drain(..) {
            stats.sent_wire += env.mult;
            deposit(&mut buckets, &mut slots, env.dest, &env.msg, env.mult);
        }
        for (origin, msg, mult) in outbox.broadcasts.drain(..) {
            let degree = graph.degree(origin) as u64;
            stats.sent_wire += degree * mult;
            let fanout = mirrors.and_then(|m| m.fanout(origin));
            if let Some(mirror_workers) = fanout {
                for &mw in mirror_workers {
                    prepaid_net[mw as usize] += msg_bytes * mult;
                    if compact {
                        prepaid_net_enc[mw as usize] +=
                            (MIRROR_ENC_OVERHEAD + msg.encoded_payload_bytes()) * mult;
                    }
                }
            }
            let caching = fanout.is_none()
                && policy.respond_cache_threshold != 0
                && degree >= policy.respond_cache_threshold as u64;
            let mut primed: HashSet<usize> = HashSet::new();
            for &t in graph.neighbors(origin) {
                let dw = part.owner_of(t) as usize;
                if fanout.is_some() && dw != src {
                    prepaid_wire[dw] += mult;
                }
                let appended = deposit(&mut buckets, &mut slots, t, &msg, mult);
                if caching && dw != src && appended {
                    if primed.contains(&dw) {
                        respond_hits[dw] += 1;
                        cached_payload[dw] += msg.encoded_payload_bytes();
                    } else {
                        primed.insert(dw);
                        respond_misses[dw] += 1;
                    }
                }
            }
        }

        for (dw, bucket) in buckets.into_iter().enumerate() {
            let mut flow = PairFlow::default();
            if !bucket.is_empty() || prepaid_net[dw] != 0 {
                let tuples = bucket.len() as u64;
                // Shard-stage appends: merges never append, so the
                // bucket length is exactly the appended-envelope count.
                flow.copy_bytes = tuples * env_bytes;
                let wire: u64 = bucket.iter().map(|e| e.mult).sum();
                let payload_units = if combine { tuples } else { wire };
                let buffer_bytes = payload_units * msg_bytes;
                flow.buffer_bytes = buffer_bytes;
                flow.wire = wire;
                flow.tuples = tuples;
                flow.respond_hits = respond_hits[dw];
                flow.respond_misses = respond_misses[dw];
                // Wire-only, matching `finish_shard`: local buckets
                // never serialize.
                if compact && dw != src {
                    let enc = wire::measure_bucket(&bucket, |v| locals.local_of(v))
                        .saturating_sub(cached_payload[dw]);
                    flow.encoded_bytes = enc;
                    let prepaid_units = prepaid_wire[dw].min(wire);
                    let kept = (enc * prepaid_units)
                        .checked_div(wire)
                        .map_or(0, |folded| enc - folded);
                    flow.encoded_net_bytes = kept + prepaid_net_enc[dw];
                }
                if dw != src {
                    let prepaid_units = prepaid_wire[dw].min(payload_units);
                    flow.net_bytes =
                        buffer_bytes.saturating_sub(prepaid_units * msg_bytes) + prepaid_net[dw];
                } else {
                    flow.local_bytes = buffer_bytes;
                }
            }
            apply_flow(&mut stats, src, dw, &flow);
            columns[dw].push(bucket);
        }
    }

    // Grouped delivery: concatenate each column in source order and
    // stable-sort by local index (the grid derives the same order from
    // histograms instead).
    let inboxes = columns
        .into_iter()
        .map(|column| {
            let mut all: Vec<Envelope<M>> = column.into_iter().flatten().collect();
            all.sort_by_key(|e| locals.local_of(e.dest)); // stable
            let mut inbox = Inbox::new();
            for env in all {
                let li = locals.local_of(env.dest);
                if inbox.runs.last().map(|r| r.local) != Some(li) {
                    inbox.runs.push(Run {
                        dest: env.dest,
                        local: li,
                        end: inbox.deliveries.len() as u32,
                    });
                }
                inbox.deliveries.push(Delivery {
                    msg: env.msg,
                    mult: env.mult,
                });
                inbox.runs.last_mut().expect("run exists").end = inbox.deliveries.len() as u32;
            }
            inbox
        })
        .collect();
    (inboxes, stats)
}

/// Persistent state of the two-stage routing pipeline: the
/// workers×workers shard matrix, per-pair flow cells, per-source
/// combining slot maps, and per-destination offset buffers. Owned for
/// the duration of one run and reused every round, so steady-state
/// routing allocates nothing.
pub struct RouteGrid<M> {
    workers: usize,
    /// Row-major shards, `rows[src][dst]` — the layout stage 1 writes.
    rows: Vec<Vec<Shard<M>>>,
    /// Column-major shards, `cols[dst][src]` — the layout stage 2
    /// reads. Shards shuttle between the two layouts via O(workers²)
    /// `Vec`-header moves per round; their heap buffers never move.
    cols: Vec<Vec<Shard<M>>>,
    /// Flow cells, `flows[dst * workers + src]`, written by stage 2 in
    /// disjoint per-destination chunks.
    flows: Vec<PairFlow>,
    /// Per-source wire messages produced, written by stage 1.
    sent: Vec<u64>,
    /// Per-source flat-outbox emit-materialisation bytes, written by
    /// stage 1 (all-zero on the fold-at-send path, which has no flat
    /// outbox to materialise).
    copied: Vec<u64>,
    /// Per-source sender-combining slot maps.
    slots: Vec<SenderSlots>,
    /// Per-destination run-offset buffers (all-zero between rounds).
    counts: Vec<Vec<u32>>,
    /// Per-destination active-local-index scratch.
    active: Vec<Vec<u32>>,
    stats: RoutingStats,
    /// Routing behaviour (wire format, adaptive combining, respond
    /// cache). Default reproduces the historic pipeline bit-for-bit.
    policy: RoutePolicy,
    /// Adaptive combining state: next-round decision per source worker,
    /// rounds spent off since the last probe, and the payload-unit
    /// volume observed in the round that last voted the combiner off
    /// (frontier-driven workloads are non-stationary, so a traffic
    /// regime shift while sitting out forces an immediate re-probe).
    combine_next: Vec<bool>,
    since_probe: Vec<u32>,
    off_sent: Vec<u64>,
    off_streak: Vec<u32>,
    /// Previous round's per-source payload units: rounds whose traffic
    /// more than doubles over it are still ramping, and their fold
    /// yields don't predict the saturated regime's — no verdict is
    /// taken from them.
    prev_sent: Vec<u64>,
    /// This round's effective per-source combining decisions.
    decisions: Vec<bool>,
    /// When set, rounds routed by this grid are tagged as
    /// rollback-replay retransmissions in their [`RoutingStats`].
    replay: bool,
}

impl<M: Message> RouteGrid<M> {
    /// Build an empty grid for `workers` logical workers.
    pub fn new(workers: usize) -> RouteGrid<M> {
        assert!(workers >= 1);
        RouteGrid {
            workers,
            rows: (0..workers)
                .map(|_| (0..workers).map(|_| Shard::default()).collect())
                .collect(),
            cols: (0..workers)
                .map(|_| (0..workers).map(|_| Shard::default()).collect())
                .collect(),
            flows: vec![PairFlow::default(); workers * workers],
            sent: vec![0; workers],
            copied: vec![0; workers],
            slots: (0..workers).map(|_| SenderSlots::default()).collect(),
            counts: (0..workers).map(|_| Vec::new()).collect(),
            active: (0..workers).map(|_| Vec::new()).collect(),
            stats: RoutingStats::new(workers),
            policy: RoutePolicy::default(),
            combine_next: vec![true; workers],
            since_probe: vec![0; workers],
            off_sent: vec![0; workers],
            off_streak: vec![0; workers],
            prev_sent: vec![0; workers],
            decisions: vec![false; workers],
            replay: false,
        }
    }

    /// Mark subsequent rounds as replayed (or first-run) traffic; see
    /// [`RoutingStats::replay`].
    pub fn set_replay(&mut self, replay: bool) {
        self.replay = replay;
    }

    /// Install a routing policy for subsequent rounds, resetting the
    /// adaptive-combining state (combiners start on and must earn their
    /// keep).
    pub fn set_policy(&mut self, policy: RoutePolicy) {
        self.policy = policy;
        self.combine_next.iter_mut().for_each(|c| *c = true);
        self.since_probe.iter_mut().for_each(|p| *p = 0);
        self.off_sent.iter_mut().for_each(|s| *s = 0);
        self.off_streak.iter_mut().for_each(|s| *s = 0);
        self.prev_sent.iter_mut().for_each(|s| *s = 0);
    }

    /// The active routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Route one round of traffic: drain `outboxes` into the grouped
    /// `inboxes` (which must arrive empty; capacity is reused) and
    /// return the round's statistics. With `pool: Some`, the shard
    /// stage fans out over source workers and the merge stage over
    /// destination workers, each job pinned to its worker's pool
    /// thread; with `None`, both stages run inline. Results are
    /// identical either way, and bit-identical to [`route`].
    #[allow(clippy::too_many_arguments)]
    pub fn route_round(
        &mut self,
        pool: Option<&WorkerPool>,
        outboxes: &mut [Outbox<M>],
        inboxes: &mut [Inbox<M>],
        graph: &Graph,
        part: &Partition,
        locals: &LocalIndex,
        mirrors: Option<&MirrorIndex>,
        combine: bool,
        msg_bytes: u64,
    ) -> &RoutingStats {
        let workers = self.workers;
        assert_eq!(outboxes.len(), workers, "one outbox per worker");
        assert_eq!(inboxes.len(), workers, "one inbox per worker");

        self.compute_decisions(combine);
        let policy = self.policy;

        // ---- stage 1: shard + combine, parallel over sources --------
        // Lane assignment is `worker % pool.workers()`: normally the
        // pool is partition-sized and this is the identity, but it also
        // keeps a smaller pool (fewer cores than workers) correct.
        match pool {
            Some(pool) => pool.scope(|s| {
                let lanes = pool.workers();
                for (src, (((((outbox, row), sent), copied), slots), &dec)) in outboxes
                    .iter_mut()
                    .zip(self.rows.iter_mut())
                    .zip(self.sent.iter_mut())
                    .zip(self.copied.iter_mut())
                    .zip(self.slots.iter_mut())
                    .zip(self.decisions.iter())
                    .enumerate()
                {
                    s.run_on(src % lanes, move || {
                        (*sent, *copied) = shard_outbox(
                            src, outbox, graph, part, locals, mirrors, dec, msg_bytes, &policy,
                            row, slots,
                        );
                    });
                }
            }),
            None => {
                for (src, (((((outbox, row), sent), copied), slots), &dec)) in outboxes
                    .iter_mut()
                    .zip(self.rows.iter_mut())
                    .zip(self.sent.iter_mut())
                    .zip(self.copied.iter_mut())
                    .zip(self.slots.iter_mut())
                    .zip(self.decisions.iter())
                    .enumerate()
                {
                    (*sent, *copied) = shard_outbox(
                        src, outbox, graph, part, locals, mirrors, dec, msg_bytes, &policy, row,
                        slots,
                    );
                }
            }
        }

        self.adaptive_update(combine);
        self.merge_and_reduce(pool, inboxes, locals)
    }

    /// Compute this round's effective per-source combining decisions:
    /// the profile flag, gated by the adaptive toggle's last verdict
    /// when enabled. Called at the top of [`Self::route_round`], and by
    /// [`Self::begin_round`] on the fold-at-send path — in both cases
    /// *before* any traffic of the round is observed, so the two paths
    /// see identical decisions (adaptive state only changes during
    /// routing).
    fn compute_decisions(&mut self, combine: bool) {
        for (src, dec) in self.decisions.iter_mut().enumerate() {
            *dec = combine && (!self.policy.adaptive_combine || self.combine_next[src]);
        }
    }

    /// Adaptive update: a source that combined this round keeps its
    /// combiner iff the fold yield met the threshold; a source that
    /// sat out re-probes every ADAPTIVE_PROBE_PERIOD rounds, or
    /// immediately once its payload-unit volume grows past twice
    /// what the OFF-voting round saw — frontier algorithms ramp from
    /// sparse (low-yield) early rounds into dense (high-yield)
    /// saturation, and waiting out the full period there forfeits
    /// the combiner's best rounds. Pure per-source arithmetic on
    /// stage-1 counters, so pooled and serial execution decide
    /// identically (and the fold-at-send path, whose counters accrue
    /// during compute instead, decides identically too).
    fn adaptive_update(&mut self, combine: bool) {
        let workers = self.workers;
        if combine && self.policy.adaptive_combine {
            let min_tries = self.policy.adaptive_min_tries.max(1);
            for src in 0..workers {
                // A round whose traffic more than doubled is still
                // ramping: its fold yield reflects a sparse frontier,
                // not the saturated regime the decision is for, so it
                // casts no verdict (and round one always ramps).
                let ramping = self.sent[src] > self.prev_sent[src].saturating_mul(2);
                if self.decisions[src] {
                    let (h, t) = (self.slots[src].hits, self.slots[src].tries);
                    // Below the probe floor (idle workers included) the
                    // round has no signal: stay armed.
                    if t < min_tries || ramping {
                        self.combine_next[src] = true;
                    } else if h * ADAPTIVE_HIT_RATE_DEN >= t * ADAPTIVE_HIT_RATE_NUM {
                        self.combine_next[src] = true;
                        self.off_streak[src] = 0;
                    } else {
                        self.off_streak[src] += 1;
                        self.combine_next[src] = self.off_streak[src] < ADAPTIVE_OFF_STRIKES;
                        if !self.combine_next[src] {
                            self.off_sent[src] = self.sent[src].max(1);
                        }
                    }
                    self.since_probe[src] = 0;
                } else {
                    self.since_probe[src] += 1;
                    let regime_shift = self.sent[src] > self.off_sent[src].saturating_mul(2);
                    if self.since_probe[src] >= ADAPTIVE_PROBE_PERIOD || regime_shift {
                        // Re-enter one strike short: the evidence that
                        // evicted this worker still stands, so one bad
                        // probe round sends it straight back off.
                        self.combine_next[src] = true;
                        self.since_probe[src] = 0;
                        self.off_streak[src] = ADAPTIVE_OFF_STRIKES - 1;
                    }
                }
                self.prev_sent[src] = self.sent[src];
            }
        }
    }

    /// Stage 2 plus reduction, shared by both routing paths: transpose
    /// the shard matrix, merge each destination's column into its
    /// grouped inbox, transpose back, and fold the per-pair flows into
    /// the round's [`RoutingStats`].
    fn merge_and_reduce(
        &mut self,
        pool: Option<&WorkerPool>,
        inboxes: &mut [Inbox<M>],
        locals: &LocalIndex,
    ) -> &RoutingStats {
        let workers = self.workers;

        // ---- transpose: hand each destination its shard column -----
        for (src, row) in self.rows.iter_mut().enumerate() {
            for (dst, shard) in row.iter_mut().enumerate() {
                self.cols[dst][src] = std::mem::take(shard);
            }
        }

        // ---- stage 2: grouped merge, parallel over destinations ----
        match pool {
            Some(pool) => pool.scope(|s| {
                let lanes = pool.workers();
                for (dst, ((((col, inbox), flows), counts), active)) in self
                    .cols
                    .iter_mut()
                    .zip(inboxes.iter_mut())
                    .zip(self.flows.chunks_mut(workers))
                    .zip(self.counts.iter_mut())
                    .zip(self.active.iter_mut())
                    .enumerate()
                {
                    s.run_on(dst % lanes, move || {
                        merge_column(dst, col, locals, counts, active, inbox, flows);
                    });
                }
            }),
            None => {
                for (dst, ((((col, inbox), flows), counts), active)) in self
                    .cols
                    .iter_mut()
                    .zip(inboxes.iter_mut())
                    .zip(self.flows.chunks_mut(workers))
                    .zip(self.counts.iter_mut())
                    .zip(self.active.iter_mut())
                    .enumerate()
                {
                    merge_column(dst, col, locals, counts, active, inbox, flows);
                }
            }
        }

        // ---- transpose back: return drained shards (and their
        // capacity) to the stage-1 layout for the next round ---------
        for (dst, col) in self.cols.iter_mut().enumerate() {
            for (src, shard) in col.iter_mut().enumerate() {
                self.rows[src][dst] = std::mem::take(shard);
            }
        }

        // ---- reduction: fold per-pair flows into round stats -------
        self.stats.reset();
        self.stats.replay = self.replay;
        self.stats.sent_wire = self.sent.iter().sum();
        self.stats.shard_copy_bytes = self.copied.iter().sum();
        self.stats.combine_on.copy_from_slice(&self.decisions);
        for src in 0..workers {
            for dst in 0..workers {
                let flow = self.flows[dst * workers + src];
                apply_flow(&mut self.stats, src, dst, &flow);
            }
        }
        &self.stats
    }

    /// Fold-at-send entry point, part 1 of 3: prepare the grid for a
    /// round whose envelopes will be emitted straight into the shard
    /// matrix by the compute phase (via [`Self::emit_sinks`]) instead
    /// of through flat outboxes. Computes the round's combining
    /// decisions and readies every source's shard row and slot map —
    /// work [`shard_outbox`] does lazily at the top of stage 1, which
    /// here must happen before `compute()` runs. Call once per round,
    /// before handing out sinks.
    pub fn begin_round(&mut self, combine: bool, locals: &LocalIndex) {
        self.compute_decisions(combine);
        let workers = self.workers;
        for ((row, slots), &dec) in self
            .rows
            .iter_mut()
            .zip(self.slots.iter_mut())
            .zip(self.decisions.iter())
        {
            debug_assert!(
                row.iter().all(|s| s.bucket.is_empty()),
                "shard rows must be drained between rounds"
            );
            prepare_shards(row, locals, dec);
            prepare_slots(slots, dec, workers);
        }
        self.sent.iter_mut().for_each(|s| *s = 0);
        // No flat outbox exists on this path, so no emit-
        // materialisation bytes accrue: survivors are written exactly
        // once, by `append_env`.
        self.copied.iter_mut().for_each(|c| *c = 0);
    }

    /// Fold-at-send entry point, part 2 of 3: one [`ShardedOutbox`]
    /// emit sink per source worker, in worker order. Each sink borrows
    /// its worker's shard row, slot map, and wire counter disjointly,
    /// so the compute phase can drive all of them in parallel. Valid
    /// for one round, after [`Self::begin_round`].
    pub fn emit_sinks<'a>(
        &'a mut self,
        graph: &'a Graph,
        part: &'a Partition,
        locals: &'a LocalIndex,
        mirrors: Option<&'a MirrorIndex>,
        msg_bytes: u64,
    ) -> impl Iterator<Item = ShardedOutbox<'a, M>> + 'a {
        let policy = self.policy;
        self.rows
            .iter_mut()
            .zip(self.slots.iter_mut())
            .zip(self.sent.iter_mut())
            .zip(self.decisions.iter())
            .enumerate()
            .map(move |(src, (((row, slots), sent), &dec))| ShardedOutbox {
                src,
                shards: row.as_mut_slice(),
                slots,
                sent,
                graph,
                part,
                locals,
                mirrors,
                combine: dec,
                msg_bytes,
                policy,
                state_bytes_added: 0,
            })
    }

    /// Fold-at-send entry point, part 3 of 3: finish the round after
    /// the compute phase filled the shard matrix through its sinks.
    /// Measures every pair's flow (the stage-1 epilogue), updates the
    /// adaptive-combining state, and runs the shared merge + reduction
    /// — bit-identical inboxes and statistics to routing the same
    /// emissions through [`Self::route_round`], except that
    /// [`RoutingStats::shard_copy_bytes`] reflects the copies this
    /// path never performed.
    pub fn route_presharded(
        &mut self,
        pool: Option<&WorkerPool>,
        inboxes: &mut [Inbox<M>],
        locals: &LocalIndex,
        msg_bytes: u64,
        combine: bool,
    ) -> &RoutingStats {
        let workers = self.workers;
        assert_eq!(inboxes.len(), workers, "one inbox per worker");
        let policy = self.policy;

        // Stage-1 epilogue: shard content is final once compute ended,
        // so measure each pair's flow. Parallel over sources, like the
        // stage it completes.
        match pool {
            Some(pool) => pool.scope(|s| {
                let lanes = pool.workers();
                for (src, (row, &dec)) in
                    self.rows.iter_mut().zip(self.decisions.iter()).enumerate()
                {
                    s.run_on(src % lanes, move || {
                        for (dst, shard) in row.iter_mut().enumerate() {
                            finish_shard(src, dst, shard, dec, msg_bytes, &policy);
                        }
                    });
                }
            }),
            None => {
                for (src, (row, &dec)) in
                    self.rows.iter_mut().zip(self.decisions.iter()).enumerate()
                {
                    for (dst, shard) in row.iter_mut().enumerate() {
                        finish_shard(src, dst, shard, dec, msg_bytes, &policy);
                    }
                }
            }
        }

        self.adaptive_update(combine);
        self.merge_and_reduce(pool, inboxes, locals)
    }
}

/// Per-source emit sink for the fold-at-send pre-sharded path: the
/// compute phase's `send()`/`broadcast()` land here and are routed
/// straight into the destination worker's [`Shard`] — probing the fold
/// table at emission time — instead of being materialised in a flat
/// [`Outbox`] for [`shard_outbox`] to re-walk. Folded envelopes are
/// never written anywhere; survivors are written exactly once. All
/// accounting (`sent_wire`, prepaid mirror bytes, the request-respond
/// cache, fold-yield counters) is the same code the flat path runs, so
/// the two paths stay bit-identical in traffic and statistics.
///
/// Obtained from [`RouteGrid::emit_sinks`] after
/// [`RouteGrid::begin_round`]; handed to the compute phase as its
/// [`EmitSink`].
pub struct ShardedOutbox<'a, M: Message> {
    src: usize,
    shards: &'a mut [Shard<M>],
    slots: &'a mut SenderSlots,
    sent: &'a mut u64,
    graph: &'a Graph,
    part: &'a Partition,
    locals: &'a LocalIndex,
    mirrors: Option<&'a MirrorIndex>,
    /// This source's effective combining decision for the round.
    combine: bool,
    msg_bytes: u64,
    policy: RoutePolicy,
    /// Exact-store-bytes escape hatch, mirroring
    /// [`Outbox::state_bytes_added`]: the runner reads it back after
    /// the compute phase.
    pub state_bytes_added: u64,
}

impl<M: Message> EmitSink<M> for ShardedOutbox<'_, M> {
    #[inline]
    fn emit(&mut self, env: Envelope<M>) {
        *self.sent += env.mult;
        push_send(
            env,
            self.part,
            self.locals,
            self.combine,
            self.shards,
            self.slots,
        );
    }

    fn emit_broadcast(&mut self, origin: VertexId, msg: M, mult: u64) {
        let degree = self.graph.degree(origin) as u64;
        *self.sent += degree * mult;
        let compact = self.policy.wire_format == WireFormat::Compact;
        match self.mirrors.and_then(|m| m.fanout(origin)) {
            Some(mirror_workers) => {
                // One wire transfer per remote mirror worker replaces
                // the per-neighbor wire cost of all remote fan-outs.
                let enc_xfer = if compact {
                    (MIRROR_ENC_OVERHEAD + msg.encoded_payload_bytes()) * mult
                } else {
                    0
                };
                for &mw in mirror_workers {
                    self.shards[mw as usize].prepaid_net += self.msg_bytes * mult;
                    self.shards[mw as usize].prepaid_net_encoded += enc_xfer;
                }
                for &t in self.graph.neighbors(origin) {
                    let dw = self.part.owner_of(t) as usize;
                    if dw != self.src {
                        self.shards[dw].prepaid_wire += mult;
                    }
                    push_broadcast(
                        t,
                        &msg,
                        mult,
                        dw,
                        self.locals,
                        self.combine,
                        self.shards,
                        self.slots,
                    );
                }
            }
            None => {
                // Unmirrored broadcast: ordinary per-neighbor sends,
                // with the request-respond cache eliding repeat
                // payloads to the same remote worker for high-degree
                // origins.
                let caching = self.policy.respond_cache_threshold != 0
                    && degree >= self.policy.respond_cache_threshold as u64;
                if caching {
                    self.slots.epoch += 1;
                }
                for &t in self.graph.neighbors(origin) {
                    let dw = self.part.owner_of(t) as usize;
                    let appended = push_broadcast(
                        t,
                        &msg,
                        mult,
                        dw,
                        self.locals,
                        self.combine,
                        self.shards,
                        self.slots,
                    );
                    if caching && dw != self.src && appended {
                        if self.slots.seen[dw] == self.slots.epoch {
                            self.shards[dw].respond_hits += 1;
                            self.shards[dw].cached_payload += msg.encoded_payload_bytes();
                        } else {
                            self.slots.seen[dw] = self.slots.epoch;
                            self.shards[dw].respond_misses += 1;
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn add_state_bytes(&mut self, bytes: u64) {
        self.state_bytes_added += bytes;
    }
}

impl<M: Message> std::fmt::Debug for ShardedOutbox<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOutbox")
            .field("src", &self.src)
            .finish()
    }
}

impl<M> std::fmt::Debug for RouteGrid<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteGrid")
            .field("workers", &self.workers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Outbox;
    use mtvc_graph::generators;
    use mtvc_graph::partition::{Partitioner, RangePartitioner};

    #[derive(Clone, Debug, PartialEq)]
    struct Src(u32);
    impl Message for Src {
        fn combine_key(&self) -> Option<u64> {
            Some(self.0 as u64)
        }
        fn merge(&mut self, _o: &Self) {}
    }

    fn two_worker_setup() -> (mtvc_graph::Graph, Partition, LocalIndex) {
        let g = generators::ring(8, true);
        let p = RangePartitioner.partition(&g, 2);
        let l = LocalIndex::build(&p);
        (g, p, l)
    }

    #[test]
    fn p2p_local_vs_network() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(1, Src(0), 1)); // 0 -> w0 local
        ob0.sends.push(Envelope::new(5, Src(0), 2)); // 0 -> w1 remote
        let ob1: Outbox<Src> = Outbox::new();
        let (inboxes, stats) = route(vec![ob0, ob1], &g, &p, &l, None, false, 16);
        assert_eq!(stats.sent_wire, 3);
        assert_eq!(stats.local_bytes, 16);
        assert_eq!(stats.net_out_bytes, vec![32, 0]);
        assert_eq!(stats.net_in_bytes, vec![0, 32]);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.in_wire, vec![1, 2]);
    }

    #[test]
    fn combining_merges_same_dest_and_key() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 2));
        ob0.sends.push(Envelope::new(5, Src(7), 3));
        ob0.sends.push(Envelope::new(5, Src(8), 1)); // different key
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, true, 16);
        assert_eq!(stats.sent_wire, 6);
        assert_eq!(stats.delivered_tuples, 2);
        assert_eq!(stats.in_wire[1], 6);
        assert_eq!(stats.in_tuples[1], 2);
        // Combined transmission: 2 tuples * 16 bytes.
        assert_eq!(stats.net_in_bytes[1], 32);
        let mults: Vec<u64> = inboxes[1].deliveries().iter().map(|d| d.mult).collect();
        assert_eq!(mults.iter().sum::<u64>(), 6);
        // Sender combining keeps first-send order: Src(7) then Src(8).
        assert_eq!(inboxes[1].deliveries()[0].mult, 5);
        assert_eq!(inboxes[1].deliveries()[1].mult, 1);
    }

    #[test]
    fn fold_table_cap_falls_back_to_hash_map() {
        #[derive(Clone, Debug, PartialEq)]
        struct Key64(u64);
        impl Message for Key64 {
            fn combine_key(&self) -> Option<u64> {
                Some(self.0)
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let (g, p, l) = two_worker_setup();
        // Row start past the dense cap, and a key whose row offset
        // overflows `usize` outright: both must combine via the
        // sender's hash-map fallback, interleaved with a dense key.
        let past_cap = DENSE_FOLD_SLOTS_MAX as u64 + 3;
        let mut ob0: Outbox<Key64> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Key64(past_cap), 2));
        ob0.sends.push(Envelope::new(5, Key64(7), 1)); // dense row
        ob0.sends.push(Envelope::new(5, Key64(past_cap), 3));
        ob0.sends.push(Envelope::new(5, Key64(u64::MAX), 1));
        ob0.sends.push(Envelope::new(5, Key64(u64::MAX), 4));
        ob0.sends.push(Envelope::new(5, Key64(7), 2));
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, true, 16);
        assert_eq!(stats.sent_wire, 13);
        assert_eq!(stats.delivered_tuples, 3, "three distinct keys");
        // First-send order with per-key mult sums, dense and fallback
        // keys folding independently.
        let folded: Vec<(u64, u64)> = inboxes[1]
            .deliveries()
            .iter()
            .map(|d| (d.msg.0, d.mult))
            .collect();
        assert_eq!(folded, vec![(past_cap, 5), (7, 3), (u64::MAX, 5)]);
    }

    #[test]
    fn without_combining_bytes_charge_every_wire_message() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 5));
        let (_, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, false, 16);
        assert_eq!(stats.net_in_bytes[1], 80);
    }

    #[test]
    fn unmirrored_broadcast_expands_per_neighbor() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        // Vertex 0's neighbors on the ring: 1 (w0) and 7 (w1).
        ob0.broadcasts.push((0, Src(0), 1));
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, false, 16);
        assert_eq!(stats.sent_wire, 2);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.net_out_bytes[0], 16);
    }

    #[test]
    fn mirrored_broadcast_saves_network_bytes() {
        // Star: hub 0 with 16 leaves, 4 workers. Hub degree 16.
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let idx = MirrorIndex::build(&g, &p, 4);
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (inboxes, stats) = route(obs, &g, &p, &l, Some(&idx), false, 16);
        // All 16 leaves receive a message.
        let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
        assert_eq!(delivered, 16);
        assert_eq!(stats.sent_wire, 16);
        // Network bytes: one transfer per remote mirror worker (3),
        // not one per remote neighbor (~12).
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 3 * 16);
    }

    #[test]
    fn mirrored_and_plain_traffic_coexist() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let idx = MirrorIndex::build(&g, &p, 4);
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        ob0.sends.push(Envelope::new(16, Src(9), 1)); // plain remote send
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (_, stats) = route(obs, &g, &p, &l, Some(&idx), false, 16);
        // 3 mirror transfers + 1 plain remote send.
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 4 * 16);
        assert_eq!(stats.sent_wire, 17);
    }

    #[test]
    fn combining_preserves_uncombinable() {
        #[derive(Clone, Debug, PartialEq)]
        struct NoKey;
        impl Message for NoKey {
            fn combine_key(&self) -> Option<u64> {
                None
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<NoKey> = Outbox::new();
        ob0.sends.push(Envelope::new(1, NoKey, 1));
        ob0.sends.push(Envelope::new(1, NoKey, 1));
        ob0.sends.push(Envelope::new(1, NoKey, 1));
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, true, 16);
        assert_eq!(stats.delivered_tuples, 3);
        assert_eq!(inboxes[0].len(), 3);
    }

    #[test]
    fn combining_max_key_does_not_merge_with_unkeyed() {
        // Messages whose combine key is Some(u64::MAX) must all merge
        // even when unkeyed envelopes arrive between them, and the
        // unkeyed ones must stay distinct.
        #[derive(Clone, Debug, PartialEq)]
        struct MaybeKey(Option<u64>);
        impl Message for MaybeKey {
            fn combine_key(&self) -> Option<u64> {
                self.0
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<MaybeKey> = Outbox::new();
        for msg in [
            MaybeKey(Some(u64::MAX)),
            MaybeKey(None),
            MaybeKey(Some(u64::MAX)),
            MaybeKey(None),
            MaybeKey(Some(u64::MAX)),
        ] {
            ob0.sends.push(Envelope::new(1, msg, 1));
        }
        let (inboxes, _) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, true, 16);
        // 1 merged MAX-keyed delivery (mult 3) + 2 unkeyed kept verbatim.
        assert_eq!(inboxes[0].len(), 3);
        let max_keyed: Vec<&Delivery<MaybeKey>> = inboxes[0]
            .deliveries()
            .iter()
            .filter(|d| d.msg.0.is_some())
            .collect();
        assert_eq!(max_keyed.len(), 1);
        assert_eq!(max_keyed[0].mult, 3);
    }

    #[test]
    fn deterministic_routing_order() {
        let (g, p, l) = two_worker_setup();
        let make = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.sends.push(Envelope::new(5, Src(1), 1));
            ob0.sends.push(Envelope::new(6, Src(2), 1));
            let mut ob1: Outbox<Src> = Outbox::new();
            ob1.sends.push(Envelope::new(5, Src(3), 1));
            route(vec![ob0, ob1], &g, &p, &l, None, false, 8)
        };
        let (a, _) = make();
        let (b, _) = make();
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_grouped_and_ascending() {
        let (g, p, l) = two_worker_setup();
        // Worker 1 owns vertices 4..8; interleave traffic to 5 and 7.
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(7, Src(1), 1));
        ob0.sends.push(Envelope::new(5, Src(2), 1));
        ob0.sends.push(Envelope::new(7, Src(3), 1));
        let mut ob1: Outbox<Src> = Outbox::new();
        ob1.sends.push(Envelope::new(5, Src(4), 1));
        let (inboxes, _) = route(vec![ob0, ob1], &g, &p, &l, None, false, 8);
        let runs: Vec<(VertexId, u32, Vec<u32>)> = inboxes[1]
            .iter_runs()
            .map(|(dest, li, ds)| (dest, li, ds.iter().map(|d| d.msg.0).collect()))
            .collect();
        // Ascending local index; within a run, source order then send
        // order: vertex 5 hears Src(2) from w0 before Src(4) from w1.
        assert_eq!(runs, vec![(5, 1, vec![2, 4]), (7, 3, vec![1, 3])]);
    }

    #[test]
    fn grid_matches_serial_route_with_and_without_pool() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let idx = MirrorIndex::build(&g, &p, 4);
        let make_outboxes = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.broadcasts.push((0, Src(0), 1));
            ob0.sends.push(Envelope::new(16, Src(9), 2));
            ob0.sends.push(Envelope::new(16, Src(9), 3));
            let mut obs = vec![ob0];
            obs.extend((1..4).map(|_| Outbox::new()));
            obs
        };
        for combine in [false, true] {
            let (want_in, want_stats) = route(make_outboxes(), &g, &p, &l, Some(&idx), combine, 16);
            for pooled in [false, true] {
                let pool = pooled.then(|| WorkerPool::new(4));
                let mut grid: RouteGrid<Src> = RouteGrid::new(4);
                let mut outboxes = make_outboxes();
                let mut inboxes: Vec<Inbox<Src>> = (0..4).map(|_| Inbox::new()).collect();
                let stats = grid.route_round(
                    pool.as_ref(),
                    &mut outboxes,
                    &mut inboxes,
                    &g,
                    &p,
                    &l,
                    Some(&idx),
                    combine,
                    16,
                );
                assert_eq!(stats, &want_stats, "combine={combine} pooled={pooled}");
                assert_eq!(inboxes, want_in, "combine={combine} pooled={pooled}");
            }
        }
    }

    #[test]
    fn compact_grid_matches_serial_and_shrinks_bytes() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let idx = MirrorIndex::build(&g, &p, 4);
        let policy = RoutePolicy {
            wire_format: WireFormat::Compact,
            ..RoutePolicy::default()
        };
        let make_outboxes = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.broadcasts.push((0, Src(0), 1));
            ob0.sends.push(Envelope::new(16, Src(9), 2));
            ob0.sends.push(Envelope::new(12, Src(9), 3));
            let mut obs = vec![ob0];
            obs.extend((1..4).map(|_| Outbox::new()));
            obs
        };
        for combine in [false, true] {
            let (want_in, want_stats) = route_with(
                make_outboxes(),
                &g,
                &p,
                &l,
                Some(&idx),
                combine,
                16,
                &policy,
            );
            assert!(want_stats.encoded_wire_bytes > 0);
            let estimate: u64 = want_stats.out_buffer_bytes.iter().sum();
            assert!(
                want_stats.encoded_wire_bytes < estimate,
                "encoded {} must undercut the {} byte estimate",
                want_stats.encoded_wire_bytes,
                estimate
            );
            let mut grid: RouteGrid<Src> = RouteGrid::new(4);
            grid.set_policy(policy);
            let mut outboxes = make_outboxes();
            let mut inboxes: Vec<Inbox<Src>> = (0..4).map(|_| Inbox::new()).collect();
            let stats = grid.route_round(
                None,
                &mut outboxes,
                &mut inboxes,
                &g,
                &p,
                &l,
                Some(&idx),
                combine,
                16,
            );
            assert_eq!(stats, &want_stats, "combine={combine}");
            assert_eq!(inboxes, want_in, "combine={combine}");
        }
    }

    #[test]
    fn respond_cache_counts_hits_and_elides_payload() {
        // Unmirrored star broadcast: hub 0 fans 16 copies to 4 workers;
        // each remote worker gets 1 prime + 3 cache hits.
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let policy = |threshold| RoutePolicy {
            wire_format: WireFormat::Compact,
            respond_cache_threshold: threshold,
            ..RoutePolicy::default()
        };
        let run = |pol: RoutePolicy| {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.broadcasts.push((0, Src(0), 1));
            let mut obs = vec![ob0];
            obs.extend((1..4).map(|_| Outbox::new()));
            route_with(obs, &g, &p, &l, None, false, 16, &pol)
        };
        let (in_off, off) = run(policy(0));
        let (in_on, on) = run(policy(8));
        assert_eq!(in_on, in_off, "the cache is accounting-only");
        assert_eq!(off.respond_hits, 0);
        assert_eq!(off.respond_misses, 0);
        // Worker 0 owns hub + leaves 1..4 (local, uncached); workers
        // 1..3 each receive 4 copies: 1 miss + 3 hits.
        assert_eq!(on.respond_misses, 3);
        assert_eq!(on.respond_hits, 9);
        // Each hit elides one 8-byte default payload.
        assert_eq!(on.encoded_wire_bytes + 9 * 8, off.encoded_wire_bytes);
        assert_eq!(on.sent_wire, off.sent_wire, "wire count never changes");
        // A threshold above the hub degree leaves the cache cold.
        let (_, over) = run(policy(64));
        assert_eq!(over.respond_hits, 0);
        assert_eq!(over.encoded_wire_bytes, off.encoded_wire_bytes);
    }

    #[test]
    fn adaptive_combining_turns_off_on_low_hit_rate_and_reprobes() {
        // All-distinct destinations: combining probes every envelope
        // and never merges (fold yield 0), so the adaptive toggle must
        // shut it off after two strikes and re-probe later. The probe
        // floor drops to 1 so these eight-envelope rounds count as
        // full-signal rounds; constant traffic volume means round 0 is
        // the only ramp round (no verdict) and no regime-shift
        // re-probe fires while the combiner sits out.
        let (g, p, l) = two_worker_setup();
        let mut grid: RouteGrid<Src> = RouteGrid::new(2);
        grid.set_policy(RoutePolicy {
            adaptive_combine: true,
            adaptive_min_tries: 1,
            ..RoutePolicy::default()
        });
        let mut inboxes: Vec<Inbox<Src>> = (0..2).map(|_| Inbox::new()).collect();
        let mut on_rounds = Vec::new();
        for _round in 0..ADAPTIVE_PROBE_PERIOD + 4 {
            let mut obs: Vec<Outbox<Src>> = vec![Outbox::new(), Outbox::new()];
            for d in 0..8u32 {
                obs[0].sends.push(Envelope::new(d, Src(d), 1));
            }
            let stats = grid.route_round(None, &mut obs, &mut inboxes, &g, &p, &l, None, true, 8);
            assert_eq!(stats.sent_wire, 8);
            assert_eq!(stats.delivered_tuples, 8);
            on_rounds.push(stats.combine_on[0]);
            // An idle worker observes no probes (t == 0) and keeps its
            // combiner armed.
            assert!(stats.combine_on[1]);
            inboxes.iter_mut().for_each(|i| i.clear());
        }
        // Round 0 ramps (no verdict), rounds 1-2 strike, rounds
        // 3..PROBE_PERIOD+3 stay OFF, then one probe round turns it
        // back ON — and, re-entering one strike short, a single bad
        // verdict would evict it again.
        assert!(on_rounds[0] && on_rounds[1] && on_rounds[2]);
        assert!(on_rounds[3..ADAPTIVE_PROBE_PERIOD as usize + 3]
            .iter()
            .all(|&c| !c));
        assert!(on_rounds[ADAPTIVE_PROBE_PERIOD as usize + 3]);
    }

    #[test]
    fn adaptive_combining_stays_on_at_high_hit_rate() {
        let (g, p, l) = two_worker_setup();
        let mut grid: RouteGrid<Src> = RouteGrid::new(2);
        grid.set_policy(RoutePolicy {
            adaptive_combine: true,
            adaptive_min_tries: 1,
            ..RoutePolicy::default()
        });
        let mut inboxes: Vec<Inbox<Src>> = (0..2).map(|_| Inbox::new()).collect();
        for round in 0..4 {
            let mut obs: Vec<Outbox<Src>> = vec![Outbox::new(), Outbox::new()];
            // 8 sends, one destination+key: 7/8 fold yield ≥ 3/4.
            for _ in 0..8 {
                obs[0].sends.push(Envelope::new(5, Src(1), 1));
            }
            let stats = grid.route_round(None, &mut obs, &mut inboxes, &g, &p, &l, None, true, 8);
            assert!(stats.combine_on[0], "round {round} stays combined");
            assert_eq!(stats.delivered_tuples, 1);
            inboxes.iter_mut().for_each(|i| i.clear());
        }
    }

    #[test]
    fn grid_reuses_buffers_across_rounds() {
        let (g, p, l) = two_worker_setup();
        let mut grid: RouteGrid<Src> = RouteGrid::new(2);
        let mut inboxes: Vec<Inbox<Src>> = (0..2).map(|_| Inbox::new()).collect();
        for round in 0..3 {
            let mut obs: Vec<Outbox<Src>> = vec![Outbox::new(), Outbox::new()];
            for d in 0..8u32 {
                obs[0].sends.push(Envelope::new(d, Src(d), 1));
            }
            let stats = grid.route_round(None, &mut obs, &mut inboxes, &g, &p, &l, None, false, 8);
            assert_eq!(stats.sent_wire, 8, "round {round}");
            assert!(obs.iter().all(|o| o.sends.is_empty()), "outboxes drained");
            let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
            assert_eq!(delivered, 8);
            inboxes.iter_mut().for_each(|i| i.clear());
        }
    }
}
