//! Message routing: outboxes → grouped inboxes, with sender-side
//! combining, broadcast expansion, mirroring-aware wire accounting, and
//! per-worker traffic statistics.
//!
//! Routing runs as a two-stage **shard-then-merge** pipeline:
//!
//! 1. **Shard** — each *source* worker buckets its outbox into one
//!    [`Shard`] per destination worker. When the system profile enables
//!    combining, envelopes with equal `(dest, combine_key)` are folded
//!    *here*, at the source, through a recycled slot map — before any
//!    "transmission" — so the shard columns the merge stage sees are
//!    already combined (sender-side combining, the Pregel+ technique).
//!    Each shard additionally keeps a histogram of destination local
//!    indices, and since a shard's content is final after this stage,
//!    its traffic ([`PairFlow`]) is measured here too. Shards of
//!    different sources are independent, so this stage parallelizes
//!    over source workers.
//! 2. **Merge** — each *destination* worker folds its column of shards
//!    (in source order) into a grouped [`Inbox`]: the per-shard
//!    histograms are summed into per-vertex offsets, and every
//!    envelope's payload is *moved* (never cloned) straight into its
//!    vertex's contiguous run of [`Delivery`] slots. Columns of
//!    different destinations are independent, so this stage
//!    parallelizes over destination workers.
//!
//! The grouped inbox hands `compute` a borrowed `&[Delivery<M>]` run
//! per vertex, which eliminates the per-round counting sort and the
//! per-delivery message clone the compute phase used to pay.
//! [`RoutingStats`] is a pure reduction over the per-pair flows, which
//! makes the parallel path *bit-identical* to the serial reference
//! [`route`] — same runs in the same order, same statistics —
//! regardless of thread scheduling. [`RouteGrid`] owns the shard
//! matrix, slot maps, and offset buffers and recycles all of them
//! across rounds, so a steady-state round performs zero allocations and
//! zero message clones between `send()` and `compute()`.

use crate::message::{Delivery, Envelope, Message};
use crate::mirror::MirrorIndex;
use crate::pool::WorkerPool;
use crate::program::Outbox;
use mtvc_graph::hash::FastMap;
use mtvc_graph::partition::Partition;
use mtvc_graph::{Graph, VertexId};
use std::collections::hash_map::Entry;

/// Traffic measured while routing one round's messages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingStats {
    /// Wire messages produced ("messages sent within a round" — the
    /// paper's congestion numerator). Broadcasts count one message per
    /// receiving neighbor.
    pub sent_wire: u64,
    /// Envelope count after combining (what a combining system
    /// actually delivers and processes).
    pub delivered_tuples: u64,
    /// Per-worker wire messages delivered.
    pub in_wire: Vec<u64>,
    /// Per-worker tuples delivered.
    pub in_tuples: Vec<u64>,
    /// Per-worker bytes sent to other machines.
    pub net_out_bytes: Vec<u64>,
    /// Per-worker bytes received from other machines.
    pub net_in_bytes: Vec<u64>,
    /// Bytes that stayed machine-local.
    pub local_bytes: u64,
    /// Per-worker bytes of message buffers *produced* (local + remote;
    /// memory accounting — mirroring saves wire bytes, not buffers).
    pub out_buffer_bytes: Vec<u64>,
    /// Per-worker bytes of message buffers *received* (local + remote).
    pub in_buffer_bytes: Vec<u64>,
    /// True when this round re-transmitted traffic during
    /// rollback-replay recovery. Replayed wire traffic must never be
    /// folded into a run's first-run totals; the runner branches its
    /// accounting on this flag.
    pub replay: bool,
}

impl RoutingStats {
    fn new(workers: usize) -> Self {
        RoutingStats {
            sent_wire: 0,
            delivered_tuples: 0,
            in_wire: vec![0; workers],
            in_tuples: vec![0; workers],
            net_out_bytes: vec![0; workers],
            net_in_bytes: vec![0; workers],
            local_bytes: 0,
            out_buffer_bytes: vec![0; workers],
            in_buffer_bytes: vec![0; workers],
            replay: false,
        }
    }

    /// Zero every counter in place (capacity retained).
    fn reset(&mut self) {
        self.sent_wire = 0;
        self.delivered_tuples = 0;
        self.local_bytes = 0;
        self.replay = false;
        for v in [
            &mut self.in_wire,
            &mut self.in_tuples,
            &mut self.net_out_bytes,
            &mut self.net_in_bytes,
            &mut self.out_buffer_bytes,
            &mut self.in_buffer_bytes,
        ] {
            v.iter_mut().for_each(|x| *x = 0);
        }
    }

    /// Total wire messages delivered (= sent; nothing is dropped).
    pub fn delivered_wire(&self) -> u64 {
        self.in_wire.iter().sum()
    }
}

/// Vertex ↔ (worker, local index) addressing for one partition.
///
/// The shard stage uses `local_of` to histogram destinations; the merge
/// stage uses `vertex_at` to label the grouped runs. Built once per run
/// (the [`Runner`](crate::Runner) owns one) and shared read-only by
/// every routing stage.
#[derive(Debug, Clone)]
pub struct LocalIndex {
    /// vertex id → index within its owner's vertex list.
    index: Vec<u32>,
    /// worker → owned vertices, in local-index order.
    vertices: Vec<Vec<VertexId>>,
}

impl LocalIndex {
    /// Build the two-way mapping from a partition.
    pub fn build(part: &Partition) -> LocalIndex {
        let vertices = part.worker_vertices();
        let mut index = vec![0u32; part.num_vertices()];
        for list in &vertices {
            for (i, &v) in list.iter().enumerate() {
                index[v as usize] = i as u32;
            }
        }
        LocalIndex { index, vertices }
    }

    /// Index of `v` within its owning worker's vertex list.
    #[inline]
    pub fn local_of(&self, v: VertexId) -> u32 {
        self.index[v as usize]
    }

    /// The vertex at `(worker, local index)`.
    #[inline]
    pub fn vertex_at(&self, worker: usize, local: u32) -> VertexId {
        self.vertices[worker][local as usize]
    }

    /// Vertices owned by `worker`.
    pub fn count(&self, worker: usize) -> usize {
        self.vertices[worker].len()
    }

    /// Per-worker vertex lists, in local-index order.
    pub fn worker_vertices(&self) -> &[Vec<VertexId>] {
        &self.vertices
    }
}

/// One vertex's contiguous slice of [`Delivery`] slots within an
/// [`Inbox`]. The run starts where the previous run ended (offset 0 for
/// the first run); runs are stored in ascending local-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Destination vertex.
    pub dest: VertexId,
    /// Destination's local index within its worker.
    pub local: u32,
    /// Exclusive end offset into the delivery buffer.
    pub end: u32,
}

/// One worker's round inbox, already grouped for the compute phase:
/// deliveries are laid out in destination-local-index order (stable by
/// source worker, then send order within a source) and partitioned into
/// per-vertex [`Run`]s. The compute phase hands each vertex its run as
/// a borrowed slice — no sort, no clone, no per-round allocation.
#[derive(Debug, PartialEq)]
pub struct Inbox<M> {
    deliveries: Vec<Delivery<M>>,
    runs: Vec<Run>,
}

impl<M: Clone> Clone for Inbox<M> {
    fn clone(&self) -> Self {
        Inbox {
            deliveries: self.deliveries.clone(),
            runs: self.runs.clone(),
        }
    }

    /// Buffer-reusing clone: checkpoint snapshots call this every
    /// cadence round, so the snapshot buffers are recycled instead of
    /// reallocated.
    fn clone_from(&mut self, src: &Self) {
        self.deliveries.clear();
        self.deliveries.extend(src.deliveries.iter().cloned());
        self.runs.clear();
        self.runs.extend_from_slice(&src.runs);
    }
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<M> Inbox<M> {
    pub fn new() -> Inbox<M> {
        Inbox {
            deliveries: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// True when no messages were delivered (quiescence test).
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// Delivered tuples in this inbox.
    pub fn len(&self) -> usize {
        self.deliveries.len()
    }

    /// The grouped delivery buffer.
    pub fn deliveries(&self) -> &[Delivery<M>] {
        &self.deliveries
    }

    /// The per-vertex runs, ascending by local index.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Iterate `(dest, local index, deliveries)` per active vertex.
    pub fn iter_runs(&self) -> impl Iterator<Item = (VertexId, u32, &[Delivery<M>])> {
        let mut start = 0usize;
        self.runs.iter().map(move |r| {
            let slice = &self.deliveries[start..r.end as usize];
            start = r.end as usize;
            (r.dest, r.local, slice)
        })
    }

    /// Reset for reuse across rounds; capacity is retained.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.runs.clear();
    }
}

/// Traffic of one (source worker → destination worker) pair for one
/// round; folding every pair's flow yields the round's
/// [`RoutingStats`].
#[derive(Debug, Clone, Copy, Default)]
struct PairFlow {
    buffer_bytes: u64,
    net_bytes: u64,
    local_bytes: u64,
    wire: u64,
    tuples: u64,
}

/// Messages from one source worker bound for one destination worker:
/// the (already sender-combined) envelope bucket, a histogram of
/// destination local indices, the mirror-prepaid wire accounting, and
/// the pair's measured flow. All buffers are recycled across rounds.
#[derive(Debug)]
pub struct Shard<M> {
    bucket: Vec<Envelope<M>>,
    /// Envelopes per destination local index (len = destination
    /// worker's vertex count; all-zero outside the pipeline).
    hist: Vec<u32>,
    /// Local indices with `hist > 0`, in first-touch order — makes
    /// re-zeroing `hist` O(distinct destinations), not O(n).
    touched: Vec<u32>,
    /// Wire messages in the bucket (multiplicity sum; combining folds
    /// envelopes but preserves this total).
    wire: u64,
    /// Bytes already paid on the wire for this pair (mirrored
    /// broadcasts pay per mirror-worker, not per envelope).
    prepaid_net: u64,
    /// Wire messages whose network cost is prepaid (count NOT to be
    /// charged per-envelope).
    prepaid_wire: u64,
    /// The pair's traffic, measured at the end of the shard stage
    /// (bucket content is final once combining happened at the source).
    flow: PairFlow,
}

impl<M> Default for Shard<M> {
    fn default() -> Self {
        Shard {
            bucket: Vec::new(),
            hist: Vec::new(),
            touched: Vec::new(),
            wire: 0,
            prepaid_net: 0,
            prepaid_wire: 0,
            flow: PairFlow::default(),
        }
    }
}

/// Sender-side combining state for one source worker: maps
/// `(dest, combine_key)` to the envelope's position within the
/// destination shard's bucket. Recycled across rounds (cleared, never
/// dropped), so steady-state combining allocates nothing.
#[derive(Debug, Default)]
pub struct SenderSlots {
    map: FastMap<(VertexId, u64), u32>,
}

/// Append `env` to `shard`, maintaining the wire count and the
/// local-index histogram.
#[inline]
fn append_env<M>(shard: &mut Shard<M>, li: u32, env: Envelope<M>) {
    shard.wire += env.mult;
    let h = &mut shard.hist[li as usize];
    if *h == 0 {
        shard.touched.push(li);
    }
    *h += 1;
    shard.bucket.push(env);
}

/// Route one point-to-point envelope into its shard, folding it into an
/// existing slot when combining is on and an equal `(dest, key)`
/// envelope was already sent this round.
#[inline]
fn push_send<M: Message>(
    env: Envelope<M>,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    shards: &mut [Shard<M>],
    slots: &mut SenderSlots,
) {
    let dw = part.owner_of(env.dest) as usize;
    if combine {
        if let Some(key) = env.msg.combine_key() {
            match slots.map.entry((env.dest, key)) {
                Entry::Occupied(o) => {
                    let shard = &mut shards[dw];
                    let slot = &mut shard.bucket[*o.get() as usize];
                    slot.msg.merge(&env.msg);
                    slot.mult += env.mult;
                    shard.wire += env.mult;
                    return;
                }
                Entry::Vacant(vac) => {
                    vac.insert(shards[dw].bucket.len() as u32);
                }
            }
        }
    }
    append_env(&mut shards[dw], locals.local_of(env.dest), env);
}

/// Route one broadcast-expanded message. On a combining hit the clone
/// is skipped entirely — the borrowed payload merges into the slot.
#[inline]
#[allow(clippy::too_many_arguments)]
fn push_broadcast<M: Message>(
    dest: VertexId,
    msg: &M,
    mult: u64,
    dw: usize,
    locals: &LocalIndex,
    combine: bool,
    shards: &mut [Shard<M>],
    slots: &mut SenderSlots,
) {
    if combine {
        if let Some(key) = msg.combine_key() {
            match slots.map.entry((dest, key)) {
                Entry::Occupied(o) => {
                    let shard = &mut shards[dw];
                    let slot = &mut shard.bucket[*o.get() as usize];
                    slot.msg.merge(msg);
                    slot.mult += mult;
                    shard.wire += mult;
                    return;
                }
                Entry::Vacant(vac) => {
                    vac.insert(shards[dw].bucket.len() as u32);
                }
            }
        }
    }
    append_env(
        &mut shards[dw],
        locals.local_of(dest),
        Envelope::new(dest, msg.clone(), mult),
    );
}

/// Stage 1: drain `outbox` into one shard per destination worker,
/// sender-combining when `combine` is set, and measure each pair's
/// flow. Returns the wire messages produced by this source.
/// Send/broadcast capacity of the outbox is retained for the next
/// round.
#[allow(clippy::too_many_arguments)]
fn shard_outbox<M: Message>(
    src_worker: usize,
    outbox: &mut Outbox<M>,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    mirrors: Option<&MirrorIndex>,
    combine: bool,
    msg_bytes: u64,
    shards: &mut [Shard<M>],
    slots: &mut SenderSlots,
) -> u64 {
    for (dw, shard) in shards.iter_mut().enumerate() {
        let nloc = locals.count(dw);
        if shard.hist.len() < nloc {
            shard.hist.resize(nloc, 0);
        }
    }
    if combine {
        slots.map.clear();
    }

    let mut sent_wire = 0u64;
    for env in outbox.sends.drain(..) {
        sent_wire += env.mult;
        push_send(env, part, locals, combine, shards, slots);
    }

    for (origin, msg, mult) in outbox.broadcasts.drain(..) {
        let degree = graph.degree(origin) as u64;
        sent_wire += degree * mult;
        match mirrors.and_then(|m| m.fanout(origin)) {
            Some(mirror_workers) => {
                // One wire transfer per remote mirror worker replaces
                // the per-neighbor wire cost of all remote fan-outs.
                for &mw in mirror_workers {
                    shards[mw as usize].prepaid_net += msg_bytes * mult;
                }
                for &t in graph.neighbors(origin) {
                    let dw = part.owner_of(t) as usize;
                    if dw != src_worker {
                        shards[dw].prepaid_wire += mult;
                    }
                    push_broadcast(t, &msg, mult, dw, locals, combine, shards, slots);
                }
            }
            None => {
                // Unmirrored broadcast: ordinary per-neighbor sends.
                for &t in graph.neighbors(origin) {
                    let dw = part.owner_of(t) as usize;
                    push_broadcast(t, &msg, mult, dw, locals, combine, shards, slots);
                }
            }
        }
    }

    for (dw, shard) in shards.iter_mut().enumerate() {
        finish_shard(src_worker, dw, shard, combine, msg_bytes);
    }
    sent_wire
}

/// Measure one shard's pair traffic after its content is final.
///
/// Mirrored-broadcast envelopes must not ALSO pay per-envelope network
/// bytes: the shard tracks how many wire messages were prepaid, and the
/// remainder of the bucket pays normally. Envelopes from `sends` and
/// unmirrored broadcasts are never prepaid.
fn finish_shard<M>(src: usize, dst: usize, shard: &mut Shard<M>, combine: bool, msg_bytes: u64) {
    let prepaid_net = std::mem::take(&mut shard.prepaid_net);
    let prepaid_wire = std::mem::take(&mut shard.prepaid_wire);
    let wire = std::mem::take(&mut shard.wire);
    let mut flow = PairFlow::default();
    if !shard.bucket.is_empty() || prepaid_net != 0 {
        let tuples = shard.bucket.len() as u64;
        // Bytes on the wire: combining systems transmit tuples,
        // non-combining systems transmit every wire message.
        let payload_units = if combine { tuples } else { wire };
        let buffer_bytes = payload_units * msg_bytes;
        flow.buffer_bytes = buffer_bytes;
        flow.wire = wire;
        flow.tuples = tuples;
        if dst != src {
            // Replace the prepaid portion: those wire messages crossed
            // as mirror transfers already counted.
            let prepaid_units = prepaid_wire.min(payload_units);
            flow.net_bytes = buffer_bytes.saturating_sub(prepaid_units * msg_bytes) + prepaid_net;
        } else {
            flow.local_bytes = buffer_bytes;
        }
    }
    shard.flow = flow;
}

/// Stage 2: fold one destination's shard column (in source order) into
/// its grouped [`Inbox`].
///
/// The per-shard histograms are summed into per-vertex offsets, every
/// envelope payload is moved into its vertex's delivery run, and the
/// runs are emitted in ascending local-index order — the exact grouping
/// the compute phase used to derive with a per-round counting sort.
fn merge_column<M: Message>(
    dst: usize,
    col: &mut [Shard<M>],
    locals: &LocalIndex,
    counts: &mut Vec<u32>,
    active: &mut Vec<u32>,
    inbox: &mut Inbox<M>,
    flows: &mut [PairFlow],
) {
    let nloc = locals.count(dst);
    if counts.len() < nloc {
        counts.resize(nloc, 0);
    }
    debug_assert!(inbox.is_empty(), "inboxes must arrive empty");
    debug_assert!(counts.iter().all(|&c| c == 0), "offset buffer not reset");
    active.clear();

    // Sum the shard histograms; `active` collects the distinct local
    // indices so nothing here is O(worker vertex count).
    let mut total = 0usize;
    for (src, shard) in col.iter_mut().enumerate() {
        flows[src] = std::mem::take(&mut shard.flow);
        total += shard.bucket.len();
        for &li in &shard.touched {
            if counts[li as usize] == 0 {
                active.push(li);
            }
            counts[li as usize] += shard.hist[li as usize];
        }
    }
    if total == 0 {
        return;
    }
    assert!(total <= u32::MAX as usize, "round inbox exceeds u32 range");

    // Prefix-sum in ascending local order: counts[li] becomes the write
    // cursor of li's run.
    active.sort_unstable();
    let mut running = 0u32;
    for &li in active.iter() {
        let c = counts[li as usize];
        counts[li as usize] = running;
        running += c;
    }
    debug_assert_eq!(running as usize, total);

    // Scatter: move each envelope's payload straight into its run slot.
    // Iterating shards in source order keeps runs stable by (source,
    // send order) — the same order the counting sort used to produce.
    inbox.deliveries.reserve(total);
    let spare = inbox.deliveries.spare_capacity_mut();
    for shard in col.iter_mut() {
        for env in shard.bucket.drain(..) {
            let li = locals.local_of(env.dest) as usize;
            let slot = counts[li] as usize;
            counts[li] += 1;
            spare[slot].write(Delivery {
                msg: env.msg,
                mult: env.mult,
            });
        }
        // Restore the shard's all-zero histogram for the next round.
        for &li in &shard.touched {
            shard.hist[li as usize] = 0;
        }
        shard.touched.clear();
    }
    // SAFETY: the cursors partition 0..total into disjoint runs (run li
    // starts at its prefix sum and receives exactly hist-sum(li)
    // writes), so every slot in 0..total was written exactly once
    // above, and `reserve(total)` guaranteed the spare capacity.
    unsafe { inbox.deliveries.set_len(total) };

    // After the scatter each cursor sits at its run's end offset; emit
    // the runs and restore the all-zero offset buffer.
    inbox.runs.reserve(active.len());
    for &li in active.iter() {
        inbox.runs.push(Run {
            dest: locals.vertex_at(dst, li),
            local: li,
            end: counts[li as usize],
        });
        counts[li as usize] = 0;
    }
}

/// Fold one pair's flow into the round statistics.
fn apply_flow(stats: &mut RoutingStats, src: usize, dst: usize, flow: &PairFlow) {
    stats.out_buffer_bytes[src] += flow.buffer_bytes;
    stats.in_buffer_bytes[dst] += flow.buffer_bytes;
    stats.net_out_bytes[src] += flow.net_bytes;
    stats.net_in_bytes[dst] += flow.net_bytes;
    stats.local_bytes += flow.local_bytes;
    stats.in_wire[dst] += flow.wire;
    stats.in_tuples[dst] += flow.tuples;
    stats.delivered_tuples += flow.tuples;
}

/// Route all outboxes into grouped per-worker inboxes — the serial
/// reference implementation of the sender-combining shard-then-merge
/// pipeline. [`RouteGrid`] is the buffer-recycling, pool-dispatching
/// equivalent the engine uses; both produce bit-identical inboxes and
/// statistics. This implementation is deliberately different machinery
/// (fresh per-call buffers, a plain `HashMap` for combining, a stable
/// comparison sort for grouping) so the property tests pin the grid
/// against genuinely independent code.
///
/// * `mirrors`: `Some` in broadcast (Pregel+(mirror)) mode — mirrored
///   vertices pay one wire message per remote mirror worker instead of
///   one per remote neighbor.
/// * `combine`: fold envelopes with equal `(dest, combine_key)` at the
///   source worker before "transmission", the way sender-side Pregel
///   combiners work. Multiplicities sum; payloads merge in send order.
/// * `msg_bytes`: wire size of one message.
pub fn route<M: Message>(
    mut outboxes: Vec<Outbox<M>>,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    mirrors: Option<&MirrorIndex>,
    combine: bool,
    msg_bytes: u64,
) -> (Vec<Inbox<M>>, RoutingStats) {
    use std::collections::HashMap;

    let workers = part.num_workers();
    let mut stats = RoutingStats::new(workers);
    // columns[dst][src]: combined envelope buckets in source order.
    let mut columns: Vec<Vec<Vec<Envelope<M>>>> =
        (0..workers).map(|_| Vec::with_capacity(workers)).collect();

    for (src, outbox) in outboxes.iter_mut().enumerate() {
        let mut buckets: Vec<Vec<Envelope<M>>> = (0..workers).map(|_| Vec::new()).collect();
        let mut prepaid_net = vec![0u64; workers];
        let mut prepaid_wire = vec![0u64; workers];
        let mut slots: HashMap<(VertexId, u64), usize> = HashMap::new();

        let deposit = |buckets: &mut Vec<Vec<Envelope<M>>>,
                       slots: &mut HashMap<(VertexId, u64), usize>,
                       dest: VertexId,
                       msg: &M,
                       mult: u64| {
            let dw = part.owner_of(dest) as usize;
            if combine {
                if let Some(key) = msg.combine_key() {
                    if let Some(&pos) = slots.get(&(dest, key)) {
                        let slot = &mut buckets[dw][pos];
                        slot.msg.merge(msg);
                        slot.mult += mult;
                        return;
                    }
                    slots.insert((dest, key), buckets[dw].len());
                }
            }
            buckets[dw].push(Envelope::new(dest, msg.clone(), mult));
        };

        for env in outbox.sends.drain(..) {
            stats.sent_wire += env.mult;
            deposit(&mut buckets, &mut slots, env.dest, &env.msg, env.mult);
        }
        for (origin, msg, mult) in outbox.broadcasts.drain(..) {
            stats.sent_wire += graph.degree(origin) as u64 * mult;
            let fanout = mirrors.and_then(|m| m.fanout(origin));
            if let Some(mirror_workers) = fanout {
                for &mw in mirror_workers {
                    prepaid_net[mw as usize] += msg_bytes * mult;
                }
            }
            for &t in graph.neighbors(origin) {
                let dw = part.owner_of(t) as usize;
                if fanout.is_some() && dw != src {
                    prepaid_wire[dw] += mult;
                }
                deposit(&mut buckets, &mut slots, t, &msg, mult);
            }
        }

        for (dw, bucket) in buckets.into_iter().enumerate() {
            let mut flow = PairFlow::default();
            if !bucket.is_empty() || prepaid_net[dw] != 0 {
                let tuples = bucket.len() as u64;
                let wire: u64 = bucket.iter().map(|e| e.mult).sum();
                let payload_units = if combine { tuples } else { wire };
                let buffer_bytes = payload_units * msg_bytes;
                flow.buffer_bytes = buffer_bytes;
                flow.wire = wire;
                flow.tuples = tuples;
                if dw != src {
                    let prepaid_units = prepaid_wire[dw].min(payload_units);
                    flow.net_bytes =
                        buffer_bytes.saturating_sub(prepaid_units * msg_bytes) + prepaid_net[dw];
                } else {
                    flow.local_bytes = buffer_bytes;
                }
            }
            apply_flow(&mut stats, src, dw, &flow);
            columns[dw].push(bucket);
        }
    }

    // Grouped delivery: concatenate each column in source order and
    // stable-sort by local index (the grid derives the same order from
    // histograms instead).
    let inboxes = columns
        .into_iter()
        .map(|column| {
            let mut all: Vec<Envelope<M>> = column.into_iter().flatten().collect();
            all.sort_by_key(|e| locals.local_of(e.dest)); // stable
            let mut inbox = Inbox::new();
            for env in all {
                let li = locals.local_of(env.dest);
                if inbox.runs.last().map(|r| r.local) != Some(li) {
                    inbox.runs.push(Run {
                        dest: env.dest,
                        local: li,
                        end: inbox.deliveries.len() as u32,
                    });
                }
                inbox.deliveries.push(Delivery {
                    msg: env.msg,
                    mult: env.mult,
                });
                inbox.runs.last_mut().expect("run exists").end = inbox.deliveries.len() as u32;
            }
            inbox
        })
        .collect();
    (inboxes, stats)
}

/// Persistent state of the two-stage routing pipeline: the
/// workers×workers shard matrix, per-pair flow cells, per-source
/// combining slot maps, and per-destination offset buffers. Owned for
/// the duration of one run and reused every round, so steady-state
/// routing allocates nothing.
pub struct RouteGrid<M> {
    workers: usize,
    /// Row-major shards, `rows[src][dst]` — the layout stage 1 writes.
    rows: Vec<Vec<Shard<M>>>,
    /// Column-major shards, `cols[dst][src]` — the layout stage 2
    /// reads. Shards shuttle between the two layouts via O(workers²)
    /// `Vec`-header moves per round; their heap buffers never move.
    cols: Vec<Vec<Shard<M>>>,
    /// Flow cells, `flows[dst * workers + src]`, written by stage 2 in
    /// disjoint per-destination chunks.
    flows: Vec<PairFlow>,
    /// Per-source wire messages produced, written by stage 1.
    sent: Vec<u64>,
    /// Per-source sender-combining slot maps.
    slots: Vec<SenderSlots>,
    /// Per-destination run-offset buffers (all-zero between rounds).
    counts: Vec<Vec<u32>>,
    /// Per-destination active-local-index scratch.
    active: Vec<Vec<u32>>,
    stats: RoutingStats,
    /// When set, rounds routed by this grid are tagged as
    /// rollback-replay retransmissions in their [`RoutingStats`].
    replay: bool,
}

impl<M: Message> RouteGrid<M> {
    /// Build an empty grid for `workers` logical workers.
    pub fn new(workers: usize) -> RouteGrid<M> {
        assert!(workers >= 1);
        RouteGrid {
            workers,
            rows: (0..workers)
                .map(|_| (0..workers).map(|_| Shard::default()).collect())
                .collect(),
            cols: (0..workers)
                .map(|_| (0..workers).map(|_| Shard::default()).collect())
                .collect(),
            flows: vec![PairFlow::default(); workers * workers],
            sent: vec![0; workers],
            slots: (0..workers).map(|_| SenderSlots::default()).collect(),
            counts: (0..workers).map(|_| Vec::new()).collect(),
            active: (0..workers).map(|_| Vec::new()).collect(),
            stats: RoutingStats::new(workers),
            replay: false,
        }
    }

    /// Mark subsequent rounds as replayed (or first-run) traffic; see
    /// [`RoutingStats::replay`].
    pub fn set_replay(&mut self, replay: bool) {
        self.replay = replay;
    }

    /// Route one round of traffic: drain `outboxes` into the grouped
    /// `inboxes` (which must arrive empty; capacity is reused) and
    /// return the round's statistics. With `pool: Some`, the shard
    /// stage fans out over source workers and the merge stage over
    /// destination workers, each job pinned to its worker's pool
    /// thread; with `None`, both stages run inline. Results are
    /// identical either way, and bit-identical to [`route`].
    #[allow(clippy::too_many_arguments)]
    pub fn route_round(
        &mut self,
        pool: Option<&WorkerPool>,
        outboxes: &mut [Outbox<M>],
        inboxes: &mut [Inbox<M>],
        graph: &Graph,
        part: &Partition,
        locals: &LocalIndex,
        mirrors: Option<&MirrorIndex>,
        combine: bool,
        msg_bytes: u64,
    ) -> &RoutingStats {
        let workers = self.workers;
        assert_eq!(outboxes.len(), workers, "one outbox per worker");
        assert_eq!(inboxes.len(), workers, "one inbox per worker");

        // ---- stage 1: shard + combine, parallel over sources --------
        // Lane assignment is `worker % pool.workers()`: normally the
        // pool is partition-sized and this is the identity, but it also
        // keeps a smaller pool (fewer cores than workers) correct.
        match pool {
            Some(pool) => pool.scope(|s| {
                let lanes = pool.workers();
                for (src, (((outbox, row), sent), slots)) in outboxes
                    .iter_mut()
                    .zip(self.rows.iter_mut())
                    .zip(self.sent.iter_mut())
                    .zip(self.slots.iter_mut())
                    .enumerate()
                {
                    s.run_on(src % lanes, move || {
                        *sent = shard_outbox(
                            src, outbox, graph, part, locals, mirrors, combine, msg_bytes, row,
                            slots,
                        );
                    });
                }
            }),
            None => {
                for (src, (((outbox, row), sent), slots)) in outboxes
                    .iter_mut()
                    .zip(self.rows.iter_mut())
                    .zip(self.sent.iter_mut())
                    .zip(self.slots.iter_mut())
                    .enumerate()
                {
                    *sent = shard_outbox(
                        src, outbox, graph, part, locals, mirrors, combine, msg_bytes, row, slots,
                    );
                }
            }
        }

        // ---- transpose: hand each destination its shard column -----
        for (src, row) in self.rows.iter_mut().enumerate() {
            for (dst, shard) in row.iter_mut().enumerate() {
                self.cols[dst][src] = std::mem::take(shard);
            }
        }

        // ---- stage 2: grouped merge, parallel over destinations ----
        match pool {
            Some(pool) => pool.scope(|s| {
                let lanes = pool.workers();
                for (dst, ((((col, inbox), flows), counts), active)) in self
                    .cols
                    .iter_mut()
                    .zip(inboxes.iter_mut())
                    .zip(self.flows.chunks_mut(workers))
                    .zip(self.counts.iter_mut())
                    .zip(self.active.iter_mut())
                    .enumerate()
                {
                    s.run_on(dst % lanes, move || {
                        merge_column(dst, col, locals, counts, active, inbox, flows);
                    });
                }
            }),
            None => {
                for (dst, ((((col, inbox), flows), counts), active)) in self
                    .cols
                    .iter_mut()
                    .zip(inboxes.iter_mut())
                    .zip(self.flows.chunks_mut(workers))
                    .zip(self.counts.iter_mut())
                    .zip(self.active.iter_mut())
                    .enumerate()
                {
                    merge_column(dst, col, locals, counts, active, inbox, flows);
                }
            }
        }

        // ---- transpose back: return drained shards (and their
        // capacity) to the stage-1 layout for the next round ---------
        for (dst, col) in self.cols.iter_mut().enumerate() {
            for (src, shard) in col.iter_mut().enumerate() {
                self.rows[src][dst] = std::mem::take(shard);
            }
        }

        // ---- reduction: fold per-pair flows into round stats -------
        self.stats.reset();
        self.stats.replay = self.replay;
        self.stats.sent_wire = self.sent.iter().sum();
        for src in 0..workers {
            for dst in 0..workers {
                let flow = self.flows[dst * workers + src];
                apply_flow(&mut self.stats, src, dst, &flow);
            }
        }
        &self.stats
    }
}

impl<M> std::fmt::Debug for RouteGrid<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteGrid")
            .field("workers", &self.workers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Outbox;
    use mtvc_graph::generators;
    use mtvc_graph::partition::{Partitioner, RangePartitioner};

    #[derive(Clone, Debug, PartialEq)]
    struct Src(u32);
    impl Message for Src {
        fn combine_key(&self) -> Option<u64> {
            Some(self.0 as u64)
        }
        fn merge(&mut self, _o: &Self) {}
    }

    fn two_worker_setup() -> (mtvc_graph::Graph, Partition, LocalIndex) {
        let g = generators::ring(8, true);
        let p = RangePartitioner.partition(&g, 2);
        let l = LocalIndex::build(&p);
        (g, p, l)
    }

    #[test]
    fn p2p_local_vs_network() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(1, Src(0), 1)); // 0 -> w0 local
        ob0.sends.push(Envelope::new(5, Src(0), 2)); // 0 -> w1 remote
        let ob1: Outbox<Src> = Outbox::new();
        let (inboxes, stats) = route(vec![ob0, ob1], &g, &p, &l, None, false, 16);
        assert_eq!(stats.sent_wire, 3);
        assert_eq!(stats.local_bytes, 16);
        assert_eq!(stats.net_out_bytes, vec![32, 0]);
        assert_eq!(stats.net_in_bytes, vec![0, 32]);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.in_wire, vec![1, 2]);
    }

    #[test]
    fn combining_merges_same_dest_and_key() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 2));
        ob0.sends.push(Envelope::new(5, Src(7), 3));
        ob0.sends.push(Envelope::new(5, Src(8), 1)); // different key
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, true, 16);
        assert_eq!(stats.sent_wire, 6);
        assert_eq!(stats.delivered_tuples, 2);
        assert_eq!(stats.in_wire[1], 6);
        assert_eq!(stats.in_tuples[1], 2);
        // Combined transmission: 2 tuples * 16 bytes.
        assert_eq!(stats.net_in_bytes[1], 32);
        let mults: Vec<u64> = inboxes[1].deliveries().iter().map(|d| d.mult).collect();
        assert_eq!(mults.iter().sum::<u64>(), 6);
        // Sender combining keeps first-send order: Src(7) then Src(8).
        assert_eq!(inboxes[1].deliveries()[0].mult, 5);
        assert_eq!(inboxes[1].deliveries()[1].mult, 1);
    }

    #[test]
    fn without_combining_bytes_charge_every_wire_message() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(5, Src(7), 5));
        let (_, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, false, 16);
        assert_eq!(stats.net_in_bytes[1], 80);
    }

    #[test]
    fn unmirrored_broadcast_expands_per_neighbor() {
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<Src> = Outbox::new();
        // Vertex 0's neighbors on the ring: 1 (w0) and 7 (w1).
        ob0.broadcasts.push((0, Src(0), 1));
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, false, 16);
        assert_eq!(stats.sent_wire, 2);
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[1].len(), 1);
        assert_eq!(stats.net_out_bytes[0], 16);
    }

    #[test]
    fn mirrored_broadcast_saves_network_bytes() {
        // Star: hub 0 with 16 leaves, 4 workers. Hub degree 16.
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let idx = MirrorIndex::build(&g, &p, 4);
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (inboxes, stats) = route(obs, &g, &p, &l, Some(&idx), false, 16);
        // All 16 leaves receive a message.
        let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
        assert_eq!(delivered, 16);
        assert_eq!(stats.sent_wire, 16);
        // Network bytes: one transfer per remote mirror worker (3),
        // not one per remote neighbor (~12).
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 3 * 16);
    }

    #[test]
    fn mirrored_and_plain_traffic_coexist() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let idx = MirrorIndex::build(&g, &p, 4);
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.broadcasts.push((0, Src(0), 1));
        ob0.sends.push(Envelope::new(16, Src(9), 1)); // plain remote send
        let mut obs = vec![ob0];
        obs.extend((1..4).map(|_| Outbox::new()));
        let (_, stats) = route(obs, &g, &p, &l, Some(&idx), false, 16);
        // 3 mirror transfers + 1 plain remote send.
        let total_net: u64 = stats.net_out_bytes.iter().sum();
        assert_eq!(total_net, 4 * 16);
        assert_eq!(stats.sent_wire, 17);
    }

    #[test]
    fn combining_preserves_uncombinable() {
        #[derive(Clone, Debug, PartialEq)]
        struct NoKey;
        impl Message for NoKey {
            fn combine_key(&self) -> Option<u64> {
                None
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<NoKey> = Outbox::new();
        ob0.sends.push(Envelope::new(1, NoKey, 1));
        ob0.sends.push(Envelope::new(1, NoKey, 1));
        ob0.sends.push(Envelope::new(1, NoKey, 1));
        let (inboxes, stats) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, true, 16);
        assert_eq!(stats.delivered_tuples, 3);
        assert_eq!(inboxes[0].len(), 3);
    }

    #[test]
    fn combining_max_key_does_not_merge_with_unkeyed() {
        // Messages whose combine key is Some(u64::MAX) must all merge
        // even when unkeyed envelopes arrive between them, and the
        // unkeyed ones must stay distinct.
        #[derive(Clone, Debug, PartialEq)]
        struct MaybeKey(Option<u64>);
        impl Message for MaybeKey {
            fn combine_key(&self) -> Option<u64> {
                self.0
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let (g, p, l) = two_worker_setup();
        let mut ob0: Outbox<MaybeKey> = Outbox::new();
        for msg in [
            MaybeKey(Some(u64::MAX)),
            MaybeKey(None),
            MaybeKey(Some(u64::MAX)),
            MaybeKey(None),
            MaybeKey(Some(u64::MAX)),
        ] {
            ob0.sends.push(Envelope::new(1, msg, 1));
        }
        let (inboxes, _) = route(vec![ob0, Outbox::new()], &g, &p, &l, None, true, 16);
        // 1 merged MAX-keyed delivery (mult 3) + 2 unkeyed kept verbatim.
        assert_eq!(inboxes[0].len(), 3);
        let max_keyed: Vec<&Delivery<MaybeKey>> = inboxes[0]
            .deliveries()
            .iter()
            .filter(|d| d.msg.0.is_some())
            .collect();
        assert_eq!(max_keyed.len(), 1);
        assert_eq!(max_keyed[0].mult, 3);
    }

    #[test]
    fn deterministic_routing_order() {
        let (g, p, l) = two_worker_setup();
        let make = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.sends.push(Envelope::new(5, Src(1), 1));
            ob0.sends.push(Envelope::new(6, Src(2), 1));
            let mut ob1: Outbox<Src> = Outbox::new();
            ob1.sends.push(Envelope::new(5, Src(3), 1));
            route(vec![ob0, ob1], &g, &p, &l, None, false, 8)
        };
        let (a, _) = make();
        let (b, _) = make();
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_grouped_and_ascending() {
        let (g, p, l) = two_worker_setup();
        // Worker 1 owns vertices 4..8; interleave traffic to 5 and 7.
        let mut ob0: Outbox<Src> = Outbox::new();
        ob0.sends.push(Envelope::new(7, Src(1), 1));
        ob0.sends.push(Envelope::new(5, Src(2), 1));
        ob0.sends.push(Envelope::new(7, Src(3), 1));
        let mut ob1: Outbox<Src> = Outbox::new();
        ob1.sends.push(Envelope::new(5, Src(4), 1));
        let (inboxes, _) = route(vec![ob0, ob1], &g, &p, &l, None, false, 8);
        let runs: Vec<(VertexId, u32, Vec<u32>)> = inboxes[1]
            .iter_runs()
            .map(|(dest, li, ds)| (dest, li, ds.iter().map(|d| d.msg.0).collect()))
            .collect();
        // Ascending local index; within a run, source order then send
        // order: vertex 5 hears Src(2) from w0 before Src(4) from w1.
        assert_eq!(runs, vec![(5, 1, vec![2, 4]), (7, 3, vec![1, 3])]);
    }

    #[test]
    fn grid_matches_serial_route_with_and_without_pool() {
        let g = generators::star(17);
        let p = RangePartitioner.partition(&g, 4);
        let l = LocalIndex::build(&p);
        let idx = MirrorIndex::build(&g, &p, 4);
        let make_outboxes = || {
            let mut ob0: Outbox<Src> = Outbox::new();
            ob0.broadcasts.push((0, Src(0), 1));
            ob0.sends.push(Envelope::new(16, Src(9), 2));
            ob0.sends.push(Envelope::new(16, Src(9), 3));
            let mut obs = vec![ob0];
            obs.extend((1..4).map(|_| Outbox::new()));
            obs
        };
        for combine in [false, true] {
            let (want_in, want_stats) = route(make_outboxes(), &g, &p, &l, Some(&idx), combine, 16);
            for pooled in [false, true] {
                let pool = pooled.then(|| WorkerPool::new(4));
                let mut grid: RouteGrid<Src> = RouteGrid::new(4);
                let mut outboxes = make_outboxes();
                let mut inboxes: Vec<Inbox<Src>> = (0..4).map(|_| Inbox::new()).collect();
                let stats = grid.route_round(
                    pool.as_ref(),
                    &mut outboxes,
                    &mut inboxes,
                    &g,
                    &p,
                    &l,
                    Some(&idx),
                    combine,
                    16,
                );
                assert_eq!(stats, &want_stats, "combine={combine} pooled={pooled}");
                assert_eq!(inboxes, want_in, "combine={combine} pooled={pooled}");
            }
        }
    }

    #[test]
    fn grid_reuses_buffers_across_rounds() {
        let (g, p, l) = two_worker_setup();
        let mut grid: RouteGrid<Src> = RouteGrid::new(2);
        let mut inboxes: Vec<Inbox<Src>> = (0..2).map(|_| Inbox::new()).collect();
        for round in 0..3 {
            let mut obs: Vec<Outbox<Src>> = vec![Outbox::new(), Outbox::new()];
            for d in 0..8u32 {
                obs[0].sends.push(Envelope::new(d, Src(d), 1));
            }
            let stats = grid.route_round(None, &mut obs, &mut inboxes, &g, &p, &l, None, false, 8);
            assert_eq!(stats.sent_wire, 8, "round {round}");
            assert!(obs.iter().all(|o| o.sends.is_empty()), "outboxes drained");
            let delivered: usize = inboxes.iter().map(|i| i.len()).sum();
            assert_eq!(delivered, 8);
            inboxes.iter_mut().for_each(|i| i.clear());
        }
    }
}
