//! The vertex-centric execution engine.
//!
//! Implements the "think like a vertex" model of Pregel (§2.1 of the
//! paper): computation proceeds in synchronous rounds; each round every
//! active vertex consumes the messages sent to it in the previous round,
//! updates local state, and emits messages. On top of the base BSP loop
//! the engine supports the behavioural axes that distinguish the seven
//! evaluated systems:
//!
//! * **combiners** (GraphLab(sync) merges same-source messages, §4.8),
//! * **mirroring / broadcast interface** (Pregel+(mirror), §2.2 & §3),
//! * **out-of-core spill + edge streaming** (GraphD, §2.2 & §4.4),
//! * **asynchronous execution** (no barrier, no combining, distributed
//!   lock contention — GraphLab(async), §4.8),
//! * **language overheads** (JVM vs C++ CPU and memory factors).
//!
//! The engine *really executes* the vertex programs (results are
//! checked against sequential references in `mtvc-tasks`), measures
//! exact per-round resource demand, and prices it through
//! [`mtvc_cluster::CostModel`] to obtain simulated running times.

pub mod message;
pub mod mirror;
pub mod paging;
pub mod pool;
pub mod profile;
pub mod program;
pub mod router;
pub mod runner;
pub mod sampling;
pub mod slab;
pub mod wire;

pub use message::{Delivery, Envelope, Message};
pub use mirror::MirrorIndex;
pub use paging::{PagedLayout, PagerSnapshot, WorkerPager};
pub use pool::WorkerPool;
pub use profile::{
    ExecutionMode, OocConfig, PagingConfig, PartitionSchedule, StoreKind, SyncMode, SystemProfile,
};
pub use program::{
    Context, EmitSink, Outbox, PagedNeighbors, PerVertex, ProgramCore, VertexProgram,
};
pub use router::{
    route, route_with, Inbox, LocalIndex, RouteGrid, RoutePolicy, RoutingStats, Run, ShardedOutbox,
};
pub use runner::{vertex_rng, EngineConfig, RunResult, Runner, PARALLEL_VERTEX_THRESHOLD};
pub use slab::{
    PageableCell, PerSlab, SlabDelta, SlabProgram, SlabRecycler, SlabRowMut, StateSlab, LANES,
};
pub use wire::{PayloadCodec, WireError, WireFormat, FRAME_HEADER_BYTES};
