//! The partition pager: real out-of-core adjacency (and slab-state)
//! movement for over-budget runs.
//!
//! When a profile's [`OocConfig`](crate::profile::OocConfig) carries a
//! [`PagingConfig`], the runner stops *estimating* disk traffic and
//! starts *measuring* it: at partition time the graph's adjacency is
//! sliced into contiguous-CSR chunks and written to a
//! [`BackingStore`](mtvc_graph::ooc::BackingStore)
//! ([`PagedLayout::build`]), and each worker streams partitions through
//! a budget-bounded [`WorkerPager`] cache every round. Compute reads
//! neighbors from the decoded chunks (via
//! [`PagedNeighbors`](crate::program::PagedNeighbors)), so the paging
//! path is the *hot path*, not an accounting shadow — a codec or cache
//! bug breaks results.
//!
//! Two schedules ([`PartitionSchedule`]):
//!
//! * **RoundRobin** — every partition is loaded every round in
//!   local-index order: GraphD's semi-streaming full edge pass (§2.2).
//! * **FrontierDensity** — partitions whose frontier is empty (zero
//!   delivered runs this round) are skipped entirely, and cache
//!   eviction prefers the *sparsest* resident partition (fewest active
//!   vertices this round, ties by least recent use), so dense
//!   partitions stay resident as BFS/MSSP frontiers shrink.
//!
//! Compute order is unaffected by either schedule — vertices always run
//! in ascending local-index order — so a paged run is bit-identical to
//! a fully-resident run by construction; the schedule only changes
//! which bytes move.
//!
//! **Determinism / replay**: eviction decisions are pure functions of
//! the cache's recency order and the current round's frontier
//! densities. Checkpoints capture a [`PagerSnapshot`] (resident
//! partition ids in recency order — metadata, not decoded bytes);
//! rollback restores that exact cache state, so replayed rounds evolve
//! the cache identically to the first execution and every post-replay
//! round sees identical load/skip counters.

use crate::profile::{PagingConfig, PartitionSchedule, StoreKind};
use mtvc_graph::ooc::{
    alloc_key_namespace, BackingStore, DecodedChunk, FileStore, MemStore, PartitionedAdjacency,
};
use mtvc_graph::{Graph, VertexId};
use std::sync::Arc;

/// The per-run paged-adjacency layout: the partitioned on-store
/// adjacency plus the paging configuration, shared by every run of a
/// [`Runner`](crate::runner::Runner).
pub struct PagedLayout {
    adjacency: Arc<PartitionedAdjacency>,
    config: PagingConfig,
}

impl std::fmt::Debug for PagedLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedLayout")
            .field("adjacency", &self.adjacency)
            .field("config", &self.config)
            .finish()
    }
}

impl PagedLayout {
    /// Partition `graph`'s adjacency along `locals` (each worker's
    /// vertex list in local-index order), encode every partition, and
    /// write them to the store `config` selects. After this the store
    /// holds the copy the pagers read; the resident [`Graph`] is no
    /// longer consulted for neighbors on the paged path.
    pub fn build(graph: &Graph, locals: &[Vec<VertexId>], config: PagingConfig) -> PagedLayout {
        let store: Arc<dyn BackingStore> = match config.store {
            StoreKind::Memory => Arc::new(MemStore::new()),
            StoreKind::TempFile => {
                Arc::new(FileStore::new_temp().expect("create temp dir for paging store"))
            }
        };
        let adjacency = Arc::new(PartitionedAdjacency::build(
            graph,
            locals,
            config.partition_bytes.get(),
            store,
        ));
        PagedLayout { adjacency, config }
    }

    pub fn config(&self) -> PagingConfig {
        self.config
    }

    pub fn adjacency(&self) -> &Arc<PartitionedAdjacency> {
        &self.adjacency
    }

    /// Fresh per-worker pagers for one run (cold caches).
    pub fn make_pagers(&self) -> Vec<WorkerPager> {
        (0..self.adjacency.workers())
            .map(|w| WorkerPager::new(self.adjacency.clone(), w, self.config))
            .collect()
    }
}

/// Measured paging activity of one worker over one round, harvested by
/// the runner via [`WorkerPager::take_round`] and fed to the cost
/// model's disk terms and the round's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerRound {
    /// Encoded bytes read from the store this round (adjacency loads
    /// plus slab-state page-ins).
    pub loaded_bytes: u64,
    /// Adjacency partitions loaded.
    pub partition_loads: u64,
    /// Partitions skipped outright (frontier-density schedule only).
    pub partitions_skipped: u64,
    /// Slab-state bytes paged *out* to the store this round — measured
    /// spill.
    pub state_spill_bytes: u64,
    /// Peak decoded adjacency bytes resident in the cache this round —
    /// what the memory ledger charges instead of the
    /// `graph_bytes × graph_mem_factor` estimate.
    pub peak_resident_bytes: u64,
}

/// Resident-set snapshot of one worker's pager: partition ids in
/// recency order (least → most recent). Captured into checkpoints so
/// rollback restores the exact cache state; cheap metadata, never
/// decoded bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PagerSnapshot {
    resident: Vec<u32>,
}

/// One worker's bounded partition cache over the shared
/// [`PartitionedAdjacency`]. Loads decode real store bytes; eviction
/// recycles decode buffers; every byte moved lands in [`PagerRound`].
pub struct WorkerPager {
    adj: Arc<PartitionedAdjacency>,
    worker: usize,
    budget: u64,
    schedule: PartitionSchedule,
    page_state: bool,
    resident: Vec<Option<DecodedChunk>>,
    /// Partition ids, least recently used first.
    recency: Vec<u32>,
    resident_bytes: u64,
    free_chunks: Vec<DecodedChunk>,
    raw: Vec<u8>,
    /// Delivered-run count per partition, this round.
    density: Vec<u32>,
    /// Per partition: encoded size of its paged-out slab-state rows,
    /// if currently on the store.
    state_out: Vec<Option<u64>>,
    state_out_total: u64,
    state_ns: u64,
    round: PagerRound,
}

impl std::fmt::Debug for WorkerPager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPager")
            .field("worker", &self.worker)
            .field("partitions", &self.resident.len())
            .field("resident_bytes", &self.resident_bytes)
            .finish()
    }
}

impl WorkerPager {
    fn new(adj: Arc<PartitionedAdjacency>, worker: usize, config: PagingConfig) -> WorkerPager {
        let nparts = adj.partitions(worker).len();
        WorkerPager {
            adj,
            worker,
            budget: config.budget.get(),
            schedule: config.schedule,
            page_state: config.page_state,
            resident: (0..nparts).map(|_| None).collect(),
            recency: Vec::with_capacity(nparts),
            resident_bytes: 0,
            free_chunks: Vec::new(),
            raw: Vec::new(),
            density: vec![0; nparts],
            state_out: vec![None; nparts],
            state_out_total: 0,
            state_ns: alloc_key_namespace(),
            round: PagerRound::default(),
        }
    }

    /// Adjacency partitions of this worker.
    pub fn partitions(&self) -> usize {
        self.resident.len()
    }

    /// Local-index range `[start, end)` of partition `p`.
    pub fn partition_range(&self, p: usize) -> (u32, u32) {
        let m = self.adj.partitions(self.worker)[p];
        (m.li_start, m.li_end)
    }

    /// Whether slab-state paging is enabled for this run.
    pub fn pages_state(&self) -> bool {
        self.page_state
    }

    /// Turn slab-state paging off for this run (checkpointed runs
    /// snapshot states by value and must see every row resident).
    pub fn disable_state_paging(&mut self) {
        self.page_state = false;
    }

    /// Reset this round's frontier densities (call before
    /// [`Self::bump_density`] over the round's runs).
    pub fn clear_density(&mut self) {
        self.density.fill(0);
    }

    /// Count one delivered run landing in partition `p`.
    pub fn bump_density(&mut self, p: usize) {
        self.density[p] += 1;
    }

    /// Frontier density (delivered runs) of partition `p` this round.
    pub fn density(&self, p: usize) -> u32 {
        self.density[p]
    }

    /// Whether the schedule skips partition `p` this round (empty
    /// frontier under [`PartitionSchedule::FrontierDensity`]; round 0
    /// never consults this — every vertex initializes).
    pub fn should_skip(&self, p: usize) -> bool {
        self.schedule == PartitionSchedule::FrontierDensity && self.density[p] == 0
    }

    /// Record a skipped partition.
    pub fn note_skip(&mut self) {
        self.round.partitions_skipped += 1;
    }

    /// Make partition `p` resident (loading and decoding it from the
    /// store if it is not), evicting other partitions as needed to
    /// respect the budget. `p` itself is pinned and never evicted by
    /// its own load; a single partition larger than the whole budget
    /// is allowed to be the sole resident.
    pub fn ensure_resident(&mut self, p: usize) {
        if self.resident[p].is_some() {
            self.touch(p);
            return;
        }
        let meta = self.adj.partitions(self.worker)[p];
        // Evict-before-load: the incoming decoded size is known from
        // the partition meta, so the cache never transiently exceeds
        // its budget.
        while self.resident_bytes + meta.decoded_bytes > self.budget {
            match self.pick_victim(p) {
                Some(victim) => self.evict(victim),
                None => break,
            }
        }
        let mut chunk = self.free_chunks.pop().unwrap_or_default();
        let read = self
            .adj
            .load_into(self.worker, p, &mut self.raw, &mut chunk);
        debug_assert_eq!(chunk.resident_bytes(), meta.decoded_bytes);
        self.resident_bytes += chunk.resident_bytes();
        self.resident[p] = Some(chunk);
        self.recency.push(p as u32);
        self.round.loaded_bytes += read;
        self.round.partition_loads += 1;
        self.round.peak_resident_bytes = self.round.peak_resident_bytes.max(self.resident_bytes);
    }

    /// The decoded chunk of partition `p`; must be resident.
    pub fn chunk(&self, p: usize) -> &DecodedChunk {
        self.resident[p].as_ref().expect("partition not resident")
    }

    fn touch(&mut self, p: usize) {
        if let Some(pos) = self.recency.iter().position(|&q| q == p as u32) {
            let id = self.recency.remove(pos);
            self.recency.push(id);
        }
    }

    /// Eviction victim among residents other than the pinned `keep`:
    /// plain LRU under RoundRobin; under FrontierDensity the sparsest
    /// partition this round (ties by least recent use), so dense
    /// partitions survive as frontiers shrink. Pure in recency order +
    /// densities, which is what makes replay evolve the cache
    /// identically.
    fn pick_victim(&self, keep: usize) -> Option<usize> {
        let candidates = self
            .recency
            .iter()
            .map(|&q| q as usize)
            .filter(|&q| q != keep);
        match self.schedule {
            PartitionSchedule::RoundRobin => candidates
                .min_by_key(|&q| self.recency.iter().position(|&r| r as usize == q).unwrap()),
            PartitionSchedule::FrontierDensity => candidates.min_by_key(|&q| {
                let pos = self.recency.iter().position(|&r| r as usize == q).unwrap();
                (self.density[q], pos)
            }),
        }
    }

    fn evict(&mut self, p: usize) {
        if let Some(chunk) = self.resident[p].take() {
            self.resident_bytes -= chunk.resident_bytes();
            self.free_chunks.push(chunk);
            if let Some(pos) = self.recency.iter().position(|&q| q == p as u32) {
                self.recency.remove(pos);
            }
        }
    }

    /// Key under which partition `p`'s slab-state rows live on the
    /// store while paged out.
    pub fn state_key(&self, p: usize) -> u64 {
        self.state_ns | ((self.worker as u64) << 24) | p as u64
    }

    /// Encoded size of `p`'s paged-out state rows, if they are on the
    /// store.
    pub fn state_paged_out(&self, p: usize) -> Option<u64> {
        self.state_out[p]
    }

    /// Record that `p`'s state rows were written to the store
    /// (`bytes` encoded) — measured spill.
    pub fn note_state_paged_out(&mut self, p: usize, bytes: u64) {
        debug_assert!(self.state_out[p].is_none());
        self.state_out[p] = Some(bytes);
        self.state_out_total += bytes;
        self.round.state_spill_bytes += bytes;
    }

    /// Record that `p`'s state rows were read back and restored;
    /// returns the bytes read.
    pub fn note_state_paged_in(&mut self, p: usize) -> u64 {
        let bytes = self.state_out[p].take().expect("state not paged out");
        self.state_out_total -= bytes;
        self.round.loaded_bytes += bytes;
        bytes
    }

    /// Partitions whose state rows are currently on the store, in
    /// ascending order.
    pub fn state_paged_partitions(&self) -> Vec<usize> {
        self.state_out
            .iter()
            .enumerate()
            .filter_map(|(p, b)| b.map(|_| p))
            .collect()
    }

    /// Total slab-state bytes currently living on the store instead of
    /// in memory — subtracted from the worker's state ledger.
    pub fn state_evicted_bytes(&self) -> u64 {
        self.state_out_total
    }

    /// The shared backing store (state page-outs write through this).
    pub fn store(&self) -> Arc<dyn BackingStore> {
        self.adj.store().clone()
    }

    /// Decoded adjacency bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Harvest and reset this round's measured counters. The next
    /// round's peak starts from the bytes still resident.
    pub fn take_round(&mut self) -> PagerRound {
        let mut out = std::mem::take(&mut self.round);
        out.peak_resident_bytes = out.peak_resident_bytes.max(self.resident_bytes);
        self.round.peak_resident_bytes = self.resident_bytes;
        out
    }

    /// Capture the resident set (recency order) for a checkpoint.
    pub fn snapshot(&self) -> PagerSnapshot {
        PagerSnapshot {
            resident: self.recency.clone(),
        }
    }

    /// Restore the cache to a checkpoint's resident set: drop
    /// partitions the snapshot lacks, reload ones it has (reloads are
    /// rollback repair traffic, recorded nowhere), and adopt the
    /// snapshot's recency order exactly, so replayed rounds evolve the
    /// cache identically to the first execution.
    pub fn restore(&mut self, snap: &PagerSnapshot) {
        for p in 0..self.resident.len() {
            if self.resident[p].is_some() && !snap.resident.contains(&(p as u32)) {
                self.evict(p);
            }
        }
        for &p in &snap.resident {
            let p = p as usize;
            if self.resident[p].is_none() {
                let mut chunk = self.free_chunks.pop().unwrap_or_default();
                self.adj
                    .load_into(self.worker, p, &mut self.raw, &mut chunk);
                self.resident_bytes += chunk.resident_bytes();
                self.resident[p] = Some(chunk);
            }
        }
        self.recency = snap.resident.clone();
        self.round = PagerRound {
            peak_resident_bytes: self.resident_bytes,
            ..PagerRound::default()
        };
        debug_assert!(
            self.state_out.iter().all(Option::is_none),
            "state paging never coexists with checkpoints"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;
    use mtvc_graph::partition::{HashPartitioner, Partitioner};
    use mtvc_metrics::Bytes;

    fn layout(budget: u64, schedule: PartitionSchedule) -> (PagedLayout, Vec<Vec<VertexId>>) {
        let g = generators::power_law(600, 3000, 2.3, 11);
        let locals = HashPartitioner::default()
            .partition(&g, 2)
            .worker_vertices();
        let config = PagingConfig {
            budget: Bytes::new(budget),
            partition_bytes: Bytes::new(512),
            schedule,
            page_state: false,
            store: StoreKind::Memory,
        };
        (PagedLayout::build(&g, &locals, config), locals)
    }

    #[test]
    fn cache_respects_budget_and_counts_real_bytes() {
        let (layout, _) = layout(4096, PartitionSchedule::RoundRobin);
        let mut pagers = layout.make_pagers();
        let pager = &mut pagers[0];
        let nparts = pager.partitions();
        assert!(nparts > 4, "graph must split into several partitions");
        for p in 0..nparts {
            pager.ensure_resident(p);
            assert!(!pager.chunk(p).is_empty());
        }
        let round = pager.take_round();
        assert_eq!(round.partition_loads, nparts as u64);
        assert_eq!(round.loaded_bytes, layout.adjacency().encoded_bytes(0));
        // Budget was enforced throughout (partitions decode well under
        // 4 KiB each here, so the pinned-overflow case never applies).
        assert!(round.peak_resident_bytes <= 4096);
        assert!(pager.resident_bytes() <= 4096);
    }

    #[test]
    fn revisiting_resident_partition_loads_nothing() {
        let (layout, _) = layout(1 << 20, PartitionSchedule::RoundRobin);
        let mut pager = layout.make_pagers().remove(0);
        pager.ensure_resident(0);
        pager.ensure_resident(1);
        let first = pager.take_round();
        assert_eq!(first.partition_loads, 2);
        pager.ensure_resident(0);
        pager.ensure_resident(1);
        let second = pager.take_round();
        assert_eq!(second.partition_loads, 0, "warm cache: no traffic");
        assert_eq!(second.loaded_bytes, 0);
        assert_eq!(second.peak_resident_bytes, pager.resident_bytes());
    }

    #[test]
    fn frontier_density_skips_and_evicts_sparse_first() {
        let (layout, _) = layout(4096, PartitionSchedule::FrontierDensity);
        let metas = layout.adjacency().partitions(0);
        assert!(metas.len() >= 4, "graph must split into several partitions");
        let d = |p: usize| metas[p].decoded_bytes;
        // Budget fits {0, 2} exactly; loading 3 then forces one
        // eviction, and the sparsest resident must be the victim.
        let config = PagingConfig {
            budget: Bytes::new(d(0) + d(2) + d(3) - 1),
            partition_bytes: Bytes::new(512),
            schedule: PartitionSchedule::FrontierDensity,
            page_state: false,
            store: StoreKind::Memory,
        };
        let mut pager = WorkerPager::new(layout.adjacency().clone(), 0, config);
        pager.clear_density();
        pager.bump_density(0);
        pager.bump_density(0);
        pager.bump_density(2);
        assert!(!pager.should_skip(0));
        assert!(pager.should_skip(1), "zero-density partition is skipped");
        assert!(!pager.should_skip(2));
        pager.ensure_resident(0);
        pager.ensure_resident(2);
        assert!(pager.resident[0].is_some() && pager.resident[2].is_some());
        pager.ensure_resident(3);
        assert!(
            pager.resident[2].is_none(),
            "sparsest resident is evicted first"
        );
        assert!(
            pager.resident[0].is_some(),
            "denser partition must outlive sparser one in cache"
        );
    }

    #[test]
    fn snapshot_restore_reproduces_resident_set() {
        let (layout, _) = layout(8192, PartitionSchedule::RoundRobin);
        let mut pager = layout.make_pagers().remove(0);
        for p in 0..pager.partitions() {
            pager.ensure_resident(p);
        }
        let snap = pager.snapshot();
        let resident_before: Vec<bool> = pager.resident.iter().map(Option::is_some).collect();
        let bytes_before = pager.resident_bytes();
        // Mutate the cache, then restore.
        for p in 0..pager.partitions() {
            pager.evict(p);
        }
        pager.ensure_resident(0);
        pager.restore(&snap);
        let resident_after: Vec<bool> = pager.resident.iter().map(Option::is_some).collect();
        assert_eq!(resident_before, resident_after);
        assert_eq!(bytes_before, pager.resident_bytes());
        assert_eq!(pager.snapshot(), snap, "recency order restored exactly");
        let round = pager.take_round();
        assert_eq!(round.loaded_bytes, 0, "restore traffic is recorded nowhere");
    }

    #[test]
    fn state_page_bookkeeping_tracks_spill_and_readback() {
        let (layout, _) = layout(4096, PartitionSchedule::FrontierDensity);
        let mut pager = layout.make_pagers().remove(0);
        assert_eq!(pager.state_evicted_bytes(), 0);
        pager.note_state_paged_out(1, 640);
        pager.note_state_paged_out(3, 320);
        assert_eq!(pager.state_evicted_bytes(), 960);
        assert_eq!(pager.state_paged_partitions(), vec![1, 3]);
        assert_eq!(pager.state_paged_out(1), Some(640));
        assert_eq!(pager.note_state_paged_in(1), 640);
        assert_eq!(pager.state_evicted_bytes(), 320);
        let round = pager.take_round();
        assert_eq!(round.state_spill_bytes, 960);
        assert_eq!(round.loaded_bytes, 640, "state read-back is measured");
        assert_ne!(pager.state_key(0), pager.state_key(1));
    }
}
