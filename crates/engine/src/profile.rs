//! System behaviour profiles.
//!
//! A [`SystemProfile`] captures everything that distinguishes one of the
//! paper's seven evaluated systems from another, as orthogonal knobs
//! consumed by the engine and cost model. The `mtvc-systems` crate
//! provides the seven concrete presets; this module defines the axes.

use crate::router::RoutePolicy;
use crate::wire::WireFormat;
use mtvc_metrics::Bytes;
use serde::{Deserialize, Serialize};

/// How messages are addressed (§2.2, §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Plain Pregel point-to-point sends.
    PointToPoint,
    /// Pregel+(mirror): only a broadcast interface is available, and
    /// vertices with degree above the threshold are mirrored — one wire
    /// message per remote worker hosting neighbors instead of one per
    /// neighbor.
    Broadcast {
        /// Degree above which a vertex is mirrored.
        mirror_threshold: usize,
    },
}

impl ExecutionMode {
    pub fn is_broadcast(self) -> bool {
        matches!(self, ExecutionMode::Broadcast { .. })
    }
}

/// Synchronization discipline (§4.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// BSP barrier at the end of every round.
    Synchronous,
    /// No barrier; vertices fire when inputs are ready. Modeled as
    /// barrier-free rounds with distributed-lock contention and eager
    /// (uncombined) message dispatch.
    Asynchronous,
    /// Giraph(async): message receiving/processing decoupled into
    /// separate threads, but rounds still synchronize. Modeled as a
    /// reduced-cost barrier with slightly cheaper per-message handling.
    PartialAsync,
}

/// Out-of-core execution parameters (GraphD, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OocConfig {
    /// In-memory message budget per machine; message bytes beyond this
    /// spill to disk ("writes excessive messages whose total size is
    /// greater than a predefined memory budget").
    pub message_budget: Bytes,
    /// Whether edges are streamed from disk every round (GraphD's
    /// distributed semi-streaming model keeps only vertex state
    /// resident).
    pub stream_edges: bool,
    /// Real paging path: adjacency partitioned onto a backing store and
    /// moved through a bounded cache, with every load/evict byte
    /// measured. `None` keeps the historical demand-based accounting
    /// estimate (retained as an oracle for the measured path).
    #[serde(default)]
    pub paging: Option<PagingConfig>,
}

/// How the pager orders and prunes partition loads each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PartitionSchedule {
    /// Stream every partition every round in local-index order —
    /// GraphD's semi-streaming baseline (the full edge pass the paper's
    /// §2.2 describes).
    #[default]
    RoundRobin,
    /// Order retention by per-partition active-vertex count and skip
    /// partitions whose frontier is empty entirely (PartitionedVC-style
    /// frontier-density scheduling).
    FrontierDensity,
}

/// Which [`mtvc_graph::ooc::BackingStore`] the engine constructs for a
/// paged run. An enum rather than a trait object so [`SystemProfile`]
/// stays `Serialize`/`Deserialize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StoreKind {
    /// Deterministic in-memory byte store — tests and CI, no disk
    /// fixtures, but the same real encode/write/read/decode traffic.
    #[default]
    Memory,
    /// One file per partition under a private temp dir — benches, so
    /// paging exercises the real filesystem.
    TempFile,
}

/// Configuration of the real adjacency/state paging path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PagingConfig {
    /// Decoded-byte budget of the per-worker partition cache. The
    /// pager never holds more than this resident (beyond a single
    /// pinned in-use partition) and the ledger charges the measured
    /// peak.
    pub budget: Bytes,
    /// Target encoded bytes per adjacency partition.
    pub partition_bytes: Bytes,
    /// Load order / skip policy.
    pub schedule: PartitionSchedule,
    /// Also page slab state rows of inactive partitions out to the
    /// store (only effective for slab programs on fault-free runs).
    pub page_state: bool,
    /// Backing store implementation.
    pub store: StoreKind,
}

impl PagingConfig {
    /// A small-budget paging setup suitable for tests: in-memory store,
    /// round-robin streaming, no state paging.
    pub fn with_budget(budget: Bytes) -> PagingConfig {
        PagingConfig {
            budget,
            partition_bytes: Bytes::new(budget.get().div_ceil(4).max(1)),
            schedule: PartitionSchedule::RoundRobin,
            page_state: false,
            store: StoreKind::Memory,
        }
    }
}

/// Complete behavioural description of a VC-system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Display name ("Pregel+", "Giraph(async)", …).
    pub name: String,
    /// CPU cost multiplier of the implementation language/runtime
    /// (JVM systems pay more per message than C++/MPI systems).
    pub lang_cpu_factor: f64,
    /// Memory overhead multiplier on message buffers (JVM object
    /// headers and boxing vs flat C++ buffers; Facebook's Giraph work
    /// (§2.2) reduced exactly this overhead by serializing messages).
    pub mem_overhead_factor: f64,
    /// Memory overhead multiplier on the resident adjacency structures
    /// (JVM systems store edges as objects unless serialized).
    pub graph_mem_factor: f64,
    /// Whether the engine runs the task's combiner before delivery.
    pub combiner: bool,
    /// Message addressing mode.
    pub mode: ExecutionMode,
    /// Synchronization discipline.
    pub sync: SyncMode,
    /// Out-of-core execution (None = fully in-memory).
    pub out_of_core: Option<OocConfig>,
    /// Abstract CPU operations to handle one wire message.
    pub per_msg_ops: f64,
    /// Abstract CPU operations to activate one vertex.
    pub per_vertex_ops: f64,
    /// Wire representation the network accounting assumes:
    /// [`WireFormat::Compact`] charges real post-codec bucket bytes
    /// instead of `payload_units * msg_bytes`.
    pub wire_format: WireFormat,
    /// With `combiner`, toggle sender-side combining per (worker,
    /// round) from the observed slot hit rate instead of running it
    /// unconditionally.
    pub adaptive_combiner: bool,
    /// Receiver-side request-respond cache threshold for unmirrored
    /// broadcast origins (0 = off); see
    /// [`RoutePolicy::respond_cache_threshold`].
    pub respond_cache_threshold: u32,
    /// Emit straight into pre-sharded per-destination buckets (folding
    /// at emission time) instead of materialising a flat outbox that
    /// the shard stage re-walks. On by default ([`Self::base`]) —
    /// bit-identical traffic and statistics either way; this knob only
    /// exists so benchmarks can measure the copy elimination against
    /// the two-stage baseline.
    pub fold_at_send: bool,
}

impl SystemProfile {
    /// A neutral C++-like synchronous in-memory profile, the base the
    /// `mtvc-systems` presets derive from.
    pub fn base(name: impl Into<String>) -> SystemProfile {
        SystemProfile {
            name: name.into(),
            lang_cpu_factor: 1.0,
            mem_overhead_factor: 1.0,
            graph_mem_factor: 1.0,
            combiner: false,
            mode: ExecutionMode::PointToPoint,
            sync: SyncMode::Synchronous,
            out_of_core: None,
            per_msg_ops: 1.0,
            per_vertex_ops: 2.0,
            wire_format: WireFormat::Tuples,
            adaptive_combiner: false,
            respond_cache_threshold: 0,
            fold_at_send: true,
        }
    }

    /// The routing-pipeline policy this profile implies. Adaptive
    /// combining is disabled while fault injection is armed: the grid's
    /// toggle state is not checkpointed, so rollback-replay rounds must
    /// route with static decisions to stay bit-identical.
    pub fn route_policy(&self, faults_armed: bool) -> RoutePolicy {
        RoutePolicy {
            wire_format: self.wire_format,
            adaptive_combine: self.adaptive_combiner && !faults_armed,
            respond_cache_threshold: self.respond_cache_threshold,
            ..RoutePolicy::default()
        }
    }

    /// True when rounds end with a synchronization barrier.
    pub fn has_barrier(&self) -> bool {
        !matches!(self.sync, SyncMode::Asynchronous)
    }

    /// Barrier cost scale: PartialAsync overlaps receive/process
    /// threads and pays a reduced barrier.
    pub fn barrier_scale(&self) -> f64 {
        match self.sync {
            SyncMode::Synchronous => 1.0,
            SyncMode::PartialAsync => 0.6,
            SyncMode::Asynchronous => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_profile_is_neutral() {
        let p = SystemProfile::base("test");
        assert_eq!(p.lang_cpu_factor, 1.0);
        assert!(!p.combiner);
        assert!(p.has_barrier());
        assert_eq!(p.barrier_scale(), 1.0);
    }

    #[test]
    fn async_has_no_barrier() {
        let mut p = SystemProfile::base("a");
        p.sync = SyncMode::Asynchronous;
        assert!(!p.has_barrier());
        assert_eq!(p.barrier_scale(), 0.0);
    }

    #[test]
    fn partial_async_reduced_barrier() {
        let mut p = SystemProfile::base("g");
        p.sync = SyncMode::PartialAsync;
        assert!(p.has_barrier());
        assert!(p.barrier_scale() < 1.0 && p.barrier_scale() > 0.0);
    }

    #[test]
    fn broadcast_mode_detection() {
        assert!(!ExecutionMode::PointToPoint.is_broadcast());
        assert!(ExecutionMode::Broadcast {
            mirror_threshold: 64
        }
        .is_broadcast());
    }
}
