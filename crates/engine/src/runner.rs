//! The BSP round loop: execute, route, price, repeat.
//!
//! [`Runner::run`] executes a [`VertexProgram`] over a partitioned graph
//! under a [`SystemProfile`], assembling a [`RoundDemand`] per round and
//! pricing it with the cluster's [`CostModel`]. Execution is *real* —
//! states and messages are actually computed, so task outputs can be
//! validated — while time, memory pressure, spill, and overuse are
//! simulated (DESIGN.md §4).
//!
//! Large runs execute on a persistent [`WorkerPool`] owned by the
//! runner: one long-lived thread per partition worker, onto which both
//! the compute phase and the two routing stages are dispatched each
//! round. No thread is ever spawned inside the round loop, and the
//! round buffers (inboxes, outboxes, routing shards) are recycled
//! across rounds, so a steady-state round is allocation-free on the
//! envelope path.

use crate::mirror::MirrorIndex;
use crate::paging::{PagedLayout, PagerRound, PagerSnapshot, WorkerPager};
use crate::pool::WorkerPool;
use crate::profile::{ExecutionMode, SyncMode, SystemProfile};
use crate::program::{
    Context, EmitSink, Outbox, PagedNeighbors, PerVertex, ProgramCore, VertexProgram,
};
use crate::router::{Inbox, LocalIndex, RouteGrid, RoutingStats};
use crate::slab::{PerSlab, SlabProgram, SlabRecycler};
use crate::wire::WireFormat;
use mtvc_cluster::{
    ChargeError, ClusterSpec, CostModel, FaultInjector, FaultKind, FaultPlan, RoundDemand,
};
use mtvc_graph::hash::mix64;
use mtvc_graph::partition::{Partition, Partitioner};
use mtvc_graph::{Graph, VertexId};
use mtvc_metrics::{Bytes, RoundStats, RunOutcome, RunStats, SimTime, OVERLOAD_CUTOFF};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Default vertex count below which the thread fan-out costs more than
/// it saves; smaller graphs run workers sequentially on the calling
/// thread. Configurable per run via
/// [`EngineConfig::parallel_vertex_threshold`].
pub const PARALLEL_VERTEX_THRESHOLD: usize = 65_536;

/// Everything needed to execute one run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub cluster: ClusterSpec,
    pub cost: CostModel,
    pub profile: SystemProfile,
    /// Seed for all per-vertex randomness (deterministic runs).
    pub seed: u64,
    /// Hard bound on rounds (runaway guard; exceeding it = Overload).
    pub max_rounds: usize,
    /// Simulated-time cutoff; exceeding it = Overload (paper: 6000 s).
    pub cutoff: SimTime,
    /// Residual memory per worker left behind by earlier batches
    /// (§4.5/§4.7); empty = zeros.
    pub residual_bytes: Vec<u64>,
    /// Vertex count at which (with more than one worker) the runner
    /// builds its persistent [`WorkerPool`] and executes the compute
    /// and routing phases in parallel. `0` forces the pool on, and
    /// `usize::MAX` forces the serial path — benches sweep this
    /// cutover.
    pub parallel_vertex_threshold: usize,
    /// Checkpoint cadence for fault-tolerant runs: with `faults` set, a
    /// snapshot of vertex states and in-flight aggregates is taken
    /// before round 0 and thereafter every `checkpoint_every` rounds
    /// (values `0` and `1` both mean every round). Fault-free runs
    /// never checkpoint, so the clean path stays snapshot-free.
    pub checkpoint_every: usize,
    /// Incremental checkpoint mode: `Some(k)` stores a sparse state
    /// delta (the cells touched since the previous checkpoint, via
    /// [`ProgramCore::store_delta`]) at the cadence, taking a fresh
    /// full snapshot every `k` deltas. Programs that do not produce
    /// deltas (per-vertex ledger stores) fall back to full snapshots
    /// transparently. `None` (the default) is PR 4's full-snapshot
    /// path. Rollback reconstructs the state bit-identically either
    /// way; only the stored bytes differ (`FaultStats`'s
    /// `checkpoint_full_bytes` / `checkpoint_delta_bytes`).
    pub incremental_checkpoints: Option<usize>,
    /// Injected-fault schedule; `None` = fault-free run. With a plan
    /// set, the runner checkpoints and recovers injected crashes,
    /// delivery failures, and network partitions by rollback-replay;
    /// payload corruption is repaired by per-bucket retransmission and
    /// stragglers are priced as slowed rounds — in every case the
    /// extra work is recorded in `RunStats::faults` only, so every
    /// other statistic — and the final states and outcome — match the
    /// fault-free run bit for bit.
    pub faults: Option<FaultPlan>,
}

impl EngineConfig {
    pub fn new(cluster: ClusterSpec, profile: SystemProfile) -> EngineConfig {
        EngineConfig {
            cluster,
            cost: CostModel::default(),
            profile,
            seed: 0x5EED,
            max_rounds: 10_000,
            cutoff: OVERLOAD_CUTOFF,
            residual_bytes: Vec::new(),
            parallel_vertex_threshold: PARALLEL_VERTEX_THRESHOLD,
            checkpoint_every: 8,
            incremental_checkpoints: None,
            faults: None,
        }
    }

    /// Set the parallel cutover ([`EngineConfig::parallel_vertex_threshold`]).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_vertex_threshold = threshold;
        self
    }

    /// Set the checkpoint cadence ([`EngineConfig::checkpoint_every`]).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Store sparse deltas at the checkpoint cadence, with a full
    /// snapshot every `k` deltas
    /// ([`EngineConfig::incremental_checkpoints`]).
    pub fn with_incremental_checkpoints(mut self, k: usize) -> Self {
        assert!(k >= 1, "incremental checkpoints need k >= 1");
        self.incremental_checkpoints = Some(k);
        self
    }

    /// Arm an injected-fault schedule ([`EngineConfig::faults`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunResult<S> {
    pub outcome: RunOutcome,
    pub stats: RunStats,
    /// Final per-vertex states, indexed by vertex id. Valid even for
    /// Overload (partial progress); empty only if the run overflowed
    /// before round 0 completed.
    pub states: Vec<S>,
}

/// Snapshot of everything the round loop needs to re-enter a superstep:
/// per-worker vertex states, the grouped inboxes holding the in-flight
/// messages of the checkpointed round, the state-size accumulators, and
/// the previous round's delivery aggregates that feed demand assembly.
/// One buffer per run, refilled in place every cadence round
/// (`clone_from` reuses capacity), so steady-state checkpointing
/// allocates only when traffic grows.
struct Checkpoint<S, M> {
    round: usize,
    states: Vec<S>,
    inboxes: Vec<Inbox<M>>,
    state_bytes: Vec<u64>,
    prev_in_wire: Vec<u64>,
    prev_in_tuples: Vec<u64>,
    prev_in_bytes: Vec<u64>,
    /// Per-worker pager resident sets (empty on fully-resident runs):
    /// rollback restores the partition caches to this exact state so
    /// replayed rounds evolve them identically to the first execution.
    pagers: Vec<PagerSnapshot>,
}

/// `dst.clone_from(src)` for vectors, guaranteed to reuse both the
/// outer buffer and (via each element's `clone_from`) the inner ones.
fn recycle_into<T: Clone>(dst: &mut Vec<T>, src: &[T]) {
    dst.truncate(src.len());
    let shared = dst.len();
    for (d, s) in dst.iter_mut().zip(src) {
        d.clone_from(s);
    }
    dst.extend(src[shared..].iter().cloned());
}

impl<S: Clone, M: Clone> Checkpoint<S, M> {
    fn empty() -> Self {
        Checkpoint {
            round: 0,
            states: Vec::new(),
            inboxes: Vec::new(),
            state_bytes: Vec::new(),
            prev_in_wire: Vec::new(),
            prev_in_tuples: Vec::new(),
            prev_in_bytes: Vec::new(),
            pagers: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn save(
        &mut self,
        round: usize,
        states: &[S],
        inboxes: &[Inbox<M>],
        state_bytes: &[u64],
        prev_in_wire: &[u64],
        prev_in_tuples: &[u64],
        prev_in_bytes: &[u64],
        pagers: Vec<PagerSnapshot>,
    ) {
        self.round = round;
        recycle_into(&mut self.states, states);
        recycle_into(&mut self.inboxes, inboxes);
        recycle_into(&mut self.state_bytes, state_bytes);
        recycle_into(&mut self.prev_in_wire, prev_in_wire);
        recycle_into(&mut self.prev_in_tuples, prev_in_tuples);
        recycle_into(&mut self.prev_in_bytes, prev_in_bytes);
        self.pagers = pagers;
    }

    #[allow(clippy::too_many_arguments)]
    fn restore(
        &self,
        states: &mut Vec<S>,
        inboxes: &mut Vec<Inbox<M>>,
        state_bytes: &mut Vec<u64>,
        prev_in_wire: &mut Vec<u64>,
        prev_in_tuples: &mut Vec<u64>,
        prev_in_bytes: &mut Vec<u64>,
    ) -> usize {
        recycle_into(states, &self.states);
        recycle_into(inboxes, &self.inboxes);
        recycle_into(state_bytes, &self.state_bytes);
        recycle_into(prev_in_wire, &self.prev_in_wire);
        recycle_into(prev_in_tuples, &self.prev_in_tuples);
        recycle_into(prev_in_bytes, &self.prev_in_bytes);
        self.round
    }
}

/// One incremental checkpoint: per-worker sparse state deltas since
/// the previous checkpoint (base snapshot or earlier delta) plus full
/// copies of the small round-loop aggregates. Rollback reconstructs
/// the state by cloning the base [`Checkpoint`] and replaying every
/// delta in order — bit-identical to a full snapshot of the same
/// round, but storing only the cells the frontier actually touched.
struct DeltaRecord<D, M> {
    round: usize,
    diffs: Vec<D>,
    inboxes: Vec<Inbox<M>>,
    state_bytes: Vec<u64>,
    prev_in_wire: Vec<u64>,
    prev_in_tuples: Vec<u64>,
    prev_in_bytes: Vec<u64>,
    pagers: Vec<PagerSnapshot>,
}

/// A prepared executor bound to a graph, partition, and configuration.
pub struct Runner<'g> {
    graph: &'g Graph,
    partition: Partition,
    mirrors: Option<MirrorIndex>,
    config: EngineConfig,
    /// Vertex ↔ (worker, local index) addressing, shared by the compute
    /// phase (state vectors, inbox runs) and the routing pipeline
    /// (shard histograms, grouped merge).
    locals: LocalIndex,
    /// Adjacency bytes per worker (resident unless streamed).
    graph_bytes: Vec<u64>,
    /// The real out-of-core layout: adjacency partitioned, encoded, and
    /// written to a backing store at construction time. Present iff the
    /// profile carries an [`OocConfig`](crate::profile::OocConfig) with
    /// a `paging` config and the mode is point-to-point; each run then
    /// streams partitions through budget-bounded per-worker caches and
    /// the demand assembly uses *measured* load/spill bytes instead of
    /// the resident-graph estimate.
    paged: Option<PagedLayout>,
    /// Persistent worker threads, present iff the run qualifies for
    /// parallel execution. Spawned once here — never per round.
    pool: Option<WorkerPool>,
}

impl<'g> Runner<'g> {
    /// Prepare a runner. The partitioner must produce exactly
    /// `config.cluster.machines` workers.
    pub fn new(
        graph: &'g Graph,
        partitioner: &dyn Partitioner,
        config: EngineConfig,
    ) -> Runner<'g> {
        let partition = partitioner.partition(graph, config.cluster.machines);
        Self::with_partition(graph, partition, config)
    }

    /// Prepare a runner with a pre-built partition.
    pub fn with_partition(
        graph: &'g Graph,
        partition: Partition,
        config: EngineConfig,
    ) -> Runner<'g> {
        assert_eq!(
            partition.num_workers(),
            config.cluster.machines,
            "partition workers must match cluster machines"
        );
        assert_eq!(partition.num_vertices(), graph.num_vertices());
        assert!(
            config.residual_bytes.is_empty()
                || config.residual_bytes.len() == partition.num_workers(),
            "residual_bytes must be empty or per-worker"
        );
        let mirrors = match config.profile.mode {
            ExecutionMode::Broadcast { mirror_threshold } => {
                Some(MirrorIndex::build(graph, &partition, mirror_threshold))
            }
            ExecutionMode::PointToPoint => None,
        };
        let locals = LocalIndex::build(&partition);
        let weighted = graph.is_weighted();
        let graph_bytes = locals
            .worker_vertices()
            .iter()
            .map(|list| {
                list.iter()
                    .map(|&v| 16 + graph.degree(v) as u64 * if weighted { 8 } else { 4 })
                    .sum()
            })
            .collect();
        // Broadcast mode reads mirror adjacency during routing, so the
        // paged path (which serves neighbors from decoded chunks) is
        // restricted to point-to-point profiles; anything else keeps
        // the demand-based estimate.
        let paged = match (&mirrors, config.profile.out_of_core.and_then(|o| o.paging)) {
            (None, Some(pcfg)) => Some(PagedLayout::build(graph, locals.worker_vertices(), pcfg)),
            _ => None,
        };
        let pool = (partition.num_workers() > 1
            && graph.num_vertices() >= config.parallel_vertex_threshold)
            .then(|| WorkerPool::new(partition.num_workers()));
        Runner {
            graph,
            partition,
            mirrors,
            config,
            locals,
            graph_bytes,
            paged,
            pool,
        }
    }

    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The persistent worker pool, if this run qualifies for parallel
    /// execution (more than one worker and a graph at or above
    /// [`EngineConfig::parallel_vertex_threshold`]).
    pub fn pool(&self) -> Option<&WorkerPool> {
        self.pool.as_ref()
    }

    /// The paged-adjacency layout, if this runner executes the real
    /// out-of-core path (see [`PagedLayout`]).
    pub fn paged_layout(&self) -> Option<&PagedLayout> {
        self.paged.as_ref()
    }

    /// Execute `program` to completion (quiescence, fixed round bound,
    /// overload cutoff, or overflow).
    pub fn run<P: VertexProgram>(&self, program: &P) -> RunResult<P::State> {
        self.run_core(&PerVertex(program))
    }

    /// Execute a slab-backed program ([`SlabProgram`]): one dense
    /// [`StateSlab`](crate::slab::StateSlab) per worker instead of
    /// per-vertex state values, with exact state-byte accounting.
    pub fn run_slab<P: SlabProgram>(&self, program: &P) -> RunResult<P::Out> {
        self.run_core(&PerSlab::new(program))
    }

    /// [`Runner::run_slab`], drawing worker slabs from (and retiring
    /// them to) `recycler` so consecutive batches reuse allocations.
    pub fn run_slab_recycled<P: SlabProgram>(
        &self,
        program: &P,
        recycler: &SlabRecycler<P::Cell>,
    ) -> RunResult<P::Out> {
        self.run_core(&PerSlab::with_recycler(program, recycler))
    }

    /// The round loop, generic over how worker state is stored
    /// ([`ProgramCore`]). Everything observable — traffic, pricing,
    /// checkpointing, fault recovery — is identical across store
    /// shapes; only state addressing and accounting differ.
    fn run_core<C: ProgramCore>(&self, program: &C) -> RunResult<C::Out> {
        let workers = self.partition.num_workers();
        let profile = &self.config.profile;
        let cost = &self.config.cost;
        let spec = &self.config.cluster.machine;
        let msg_bytes = program.message_bytes();
        let async_mode = matches!(profile.sync, SyncMode::Asynchronous);

        let mut states: Vec<C::Store> = self
            .locals
            .worker_vertices()
            .iter()
            .map(|list| program.make_store(list))
            .collect();
        // Exactly-accounted programs (slabs) report resident capacity;
        // ledger programs start from the per-vertex baseline and
        // accumulate `add_state_bytes` deltas.
        let mut state_bytes: Vec<u64> = self
            .locals
            .worker_vertices()
            .iter()
            .zip(&states)
            .map(|(list, store)| {
                program
                    .exact_store_bytes(store)
                    .unwrap_or(list.len() as u64 * program.initial_state_bytes())
            })
            .collect();

        let mut stats = RunStats::new();
        let mut total = SimTime::ZERO;
        // Round buffers, all recycled across rounds: the compute phase
        // drains the inboxes in place, the shard stage drains the
        // outboxes in place, and the merge stage refills the inboxes —
        // every Vec keeps the capacity last round's traffic shaped.
        let mut inboxes: Vec<Inbox<C::Message>> = (0..workers).map(|_| Inbox::new()).collect();
        let mut outboxes: Vec<Outbox<C::Message>> = (0..workers).map(|_| Outbox::new()).collect();
        let mut grid: RouteGrid<C::Message> = RouteGrid::new(workers);
        grid.set_policy(profile.route_policy(self.config.faults.is_some()));
        // Delivered-message statistics of the previous routing step:
        // those messages are processed (and their buffers are resident)
        // in the *current* round.
        let mut prev_in_wire: Vec<u64> = vec![0; workers];
        let mut prev_in_tuples: Vec<u64> = vec![0; workers];
        let mut prev_in_bytes: Vec<u64> = vec![0; workers];
        let mut outcome: Option<RunOutcome> = None;

        // Real paging path: fresh (cold) per-worker partition caches
        // for this run. Slab-state paging is disabled whenever a fault
        // plan is armed — checkpoints snapshot states by value and must
        // see every row resident.
        let mut pagers: Option<Vec<WorkerPager>> = self.paged.as_ref().map(|l| l.make_pagers());
        if self.config.faults.is_some() {
            if let Some(ps) = pagers.as_mut() {
                for p in ps.iter_mut() {
                    p.disable_state_paging();
                }
            }
        }

        // Fault machinery, armed only when a plan is present — the
        // clean path takes no snapshots and pays no per-round checks.
        let mut injector = self.config.faults.as_ref().map(FaultInjector::new);
        let hard_oom = injector.as_ref().is_some_and(|i| i.hard_oom());
        let ckpt_every = self.config.checkpoint_every.max(1);
        let incremental = self.config.incremental_checkpoints;
        let mut checkpoint: Option<Checkpoint<C::Store, C::Message>> = None;
        // Incremental mode: deltas since the base snapshot, plus a
        // shadow store mirroring "base + all deltas" so each new delta
        // diffs against the previously checkpointed state.
        let mut deltas: Vec<DeltaRecord<C::Delta, C::Message>> = Vec::new();
        let mut shadow: Vec<C::Store> = Vec::new();
        // Rounds below this index were already executed (and recorded)
        // before a rollback; re-running them is replay, not first-run.
        let mut replay_until = 0usize;
        // Straggler windows: machine `m` runs its compute slowed by
        // `straggler_factor[m]` until round `straggler_until[m]`.
        let mut straggler_until: Vec<usize> = vec![0; workers];
        let mut straggler_factor: Vec<f64> = vec![1.0; workers];

        let mut round = 0usize;
        loop {
            if round > 0 {
                if inboxes.iter().all(|i| i.is_empty()) {
                    break; // quiescent
                }
                if let Some(max) = program.max_rounds() {
                    if round > max {
                        break; // fixed-horizon programs (BKHS)
                    }
                }
            }
            if round > self.config.max_rounds {
                outcome = Some(RunOutcome::Overload);
                break;
            }

            let replaying = round < replay_until;
            if let Some(inj) = injector.as_mut() {
                // ---- checkpoint ------------------------------------
                // Snapshot at the cadence, before this round's compute
                // touches anything — but never during replay (the saved
                // snapshot already covers the replay window).
                if !replaying && round.is_multiple_of(ckpt_every) {
                    // Incremental mode stores a sparse delta against
                    // the previously checkpointed state (mirrored in
                    // `shadow`), falling back to a full snapshot every
                    // `k` deltas or whenever the program declines to
                    // produce one (shape change, non-delta store).
                    let diffs: Option<Vec<C::Delta>> = match incremental {
                        Some(k) if checkpoint.is_some() && deltas.len() < k => shadow
                            .iter()
                            .zip(&states)
                            .map(|(prev, cur)| program.store_delta(prev, cur))
                            .collect(),
                        _ => None,
                    };
                    if let Some(diffs) = diffs {
                        let delta_bytes: u64 = diffs.iter().map(|d| program.delta_bytes(d)).sum();
                        for (s, d) in shadow.iter_mut().zip(&diffs) {
                            program.apply_store_delta(s, d);
                        }
                        deltas.push(DeltaRecord {
                            round,
                            diffs,
                            inboxes: inboxes.clone(),
                            state_bytes: state_bytes.clone(),
                            prev_in_wire: prev_in_wire.clone(),
                            prev_in_tuples: prev_in_tuples.clone(),
                            prev_in_bytes: prev_in_bytes.clone(),
                            pagers: pager_snaps(&pagers),
                        });
                        stats.faults.delta_checkpoints += 1;
                        stats.faults.checkpoint_delta_bytes += Bytes(delta_bytes);
                    } else {
                        let ckpt = checkpoint.get_or_insert_with(Checkpoint::empty);
                        ckpt.save(
                            round,
                            &states,
                            &inboxes,
                            &state_bytes,
                            &prev_in_wire,
                            &prev_in_tuples,
                            &prev_in_bytes,
                            pager_snaps(&pagers),
                        );
                        stats.faults.checkpoint_full_bytes += Bytes(state_bytes.iter().sum());
                        if incremental.is_some() {
                            deltas.clear();
                            recycle_into(&mut shadow, &states);
                        }
                    }
                    stats.faults.checkpoints += 1;
                }
                // ---- fault firing ----------------------------------
                // Every event co-scheduled for this round fires in one
                // call; the rollback (if any of them demands one)
                // happens once, after all of them are booked.
                let mut rollback = false;
                for event in inj.take_all_at(round) {
                    stats.faults.injected += 1;
                    match event.kind {
                        FaultKind::MachineCrash { .. } => {
                            stats.faults.crashes += 1;
                            rollback = true;
                        }
                        FaultKind::DeliveryFailure { .. } => {
                            stats.faults.delivery_failures += 1;
                            rollback = true;
                        }
                        FaultKind::Partition { rounds } => {
                            // Connectivity is gone for `rounds` rounds:
                            // every machine stalls at the barrier until
                            // the partition heals, then the lost
                            // deliveries recover by rollback-replay
                            // like any other delivery failure.
                            stats.faults.partitions += 1;
                            let stall = rounds as f64
                                * (cost.barrier_base + cost.barrier_per_machine * workers as f64);
                            stats.faults.recovery_time += SimTime::secs(stall);
                            rollback = true;
                        }
                        FaultKind::Straggler {
                            machine,
                            factor_pct,
                            rounds,
                        } => {
                            stats.faults.stragglers += 1;
                            if machine < workers {
                                let f = f64::from(factor_pct) / 100.0;
                                straggler_factor[machine] = if round >= straggler_until[machine] {
                                    f
                                } else {
                                    straggler_factor[machine].max(f)
                                };
                                straggler_until[machine] =
                                    straggler_until[machine].max(round + rounds);
                            }
                        }
                        FaultKind::PayloadCorruption { machine, flips } => {
                            // Detected at decode by the wire frame
                            // checksum; repaired by re-sending each
                            // corrupted bucket from the sender's
                            // retained shard buffers — no rollback.
                            // Each flip costs one bucket-sized
                            // retransfer, modeled as the machine's
                            // per-peer share of last round's inbound
                            // buffer bytes.
                            stats.faults.corrupted_buckets += u64::from(flips);
                            stats.faults.retransmitted_buckets += u64::from(flips);
                            let inbound = prev_in_bytes.get(machine).copied().unwrap_or(0);
                            let peers = (workers as u64 - 1).max(1);
                            let bytes = u64::from(flips) * (inbound / peers);
                            stats.faults.retransmitted_bytes += Bytes(bytes);
                            if spec.network_bandwidth > 0.0 {
                                stats.faults.recovery_time +=
                                    SimTime::secs(bytes as f64 / spec.network_bandwidth);
                            }
                        }
                    }
                }
                if rollback {
                    // Global rollback — the canonical Pregel recovery:
                    // restore the last checkpoint and replay forward.
                    // The events are consumed (transient semantics), so
                    // the replayed superstep passes the failure point
                    // cleanly and recovery terminates.
                    let ckpt = checkpoint
                        .as_ref()
                        .expect("a checkpoint is saved at round 0 before any fault can fire");
                    replay_until = replay_until.max(round);
                    round = if let Some(rec) = deltas.last() {
                        // Incremental restore: clone the base snapshot
                        // and replay every delta in order — the result
                        // is bit-identical to a full snapshot of the
                        // last checkpointed round.
                        recycle_into(&mut states, &ckpt.states);
                        for rec in &deltas {
                            for (s, d) in states.iter_mut().zip(&rec.diffs) {
                                program.apply_store_delta(s, d);
                            }
                        }
                        recycle_into(&mut inboxes, &rec.inboxes);
                        recycle_into(&mut state_bytes, &rec.state_bytes);
                        recycle_into(&mut prev_in_wire, &rec.prev_in_wire);
                        recycle_into(&mut prev_in_tuples, &rec.prev_in_tuples);
                        recycle_into(&mut prev_in_bytes, &rec.prev_in_bytes);
                        restore_pagers(&mut pagers, &rec.pagers);
                        rec.round
                    } else {
                        restore_pagers(&mut pagers, &ckpt.pagers);
                        ckpt.restore(
                            &mut states,
                            &mut inboxes,
                            &mut state_bytes,
                            &mut prev_in_wire,
                            &mut prev_in_tuples,
                            &mut prev_in_bytes,
                        )
                    };
                    continue; // re-enter the loop at the restored round
                }
            }

            // ---- compute phase -------------------------------------
            // Fold-at-send profiles emit straight into the prepared
            // shard matrix; the two-stage baseline emits into flat
            // outboxes that the routing stage re-walks. Same traffic,
            // same statistics (minus the copies the former never
            // performs).
            grid.set_replay(replaying);
            let fold_at_send = profile.fold_at_send;
            let (active, state_added) = if fold_at_send {
                grid.begin_round(profile.combiner, &self.locals);
                self.compute_phase_presharded(
                    program,
                    round,
                    &mut inboxes,
                    &mut grid,
                    &mut states,
                    msg_bytes,
                    pagers.as_mut(),
                )
            } else {
                let active = self.compute_phase(
                    program,
                    round,
                    &mut inboxes,
                    &mut outboxes,
                    &mut states,
                    pagers.as_mut(),
                );
                let added = outboxes.iter().map(|ob| ob.state_bytes_added).collect();
                (active, added)
            };

            // Harvest the pagers' measured movement: loaded and spilled
            // bytes feed the cost model's disk terms in place of the
            // demand-based estimate, and the cache's decoded peak feeds
            // the memory ledger in place of resident-graph bytes. The
            // second element is each worker's slab-state bytes
            // currently living on the store (subtracted from its state
            // ledger below).
            let paged_rounds: Option<Vec<(PagerRound, u64)>> = pagers.as_mut().map(|ps| {
                ps.iter_mut()
                    .map(|p| {
                        let evicted = p.state_evicted_bytes();
                        (p.take_round(), evicted)
                    })
                    .collect()
            });

            // Persist state growth before pricing the round: the new
            // state is resident while the round runs. Exact stores
            // (slabs) report their capacity directly; ledger stores
            // accumulate what compute declared.
            for (w, &added) in state_added.iter().enumerate() {
                match program.exact_store_bytes(&states[w]) {
                    Some(exact) => {
                        debug_assert_eq!(
                            added, 0,
                            "exactly-accounted programs must not call add_state_bytes"
                        );
                        state_bytes[w] = exact;
                    }
                    None => state_bytes[w] += added,
                }
            }

            // ---- routing phase -------------------------------------
            let routing = if fold_at_send {
                grid.route_presharded(
                    self.pool.as_ref(),
                    &mut inboxes,
                    &self.locals,
                    msg_bytes,
                    profile.combiner,
                )
            } else {
                grid.route_round(
                    self.pool.as_ref(),
                    &mut outboxes,
                    &mut inboxes,
                    self.graph,
                    &self.partition,
                    &self.locals,
                    self.mirrors.as_ref(),
                    profile.combiner,
                    msg_bytes,
                )
            };
            if fold_at_send {
                // Conservation pins for the pre-sharded path, matching
                // the grid path's property-test guarantees: nothing is
                // dropped between emission and delivery, and every
                // encoded byte sent is an encoded byte received.
                debug_assert_eq!(
                    routing.sent_wire,
                    routing.delivered_wire(),
                    "pre-sharded routing must deliver every wire message"
                );
                debug_assert_eq!(
                    routing.encoded_out_bytes.iter().sum::<u64>(),
                    routing.encoded_in_bytes.iter().sum::<u64>(),
                    "pre-sharded routing must conserve encoded wire bytes"
                );
            }

            // ---- demand assembly -----------------------------------
            let demand = self.assemble_demand(
                profile,
                &active,
                &prev_in_wire,
                &prev_in_tuples,
                &prev_in_bytes,
                routing,
                &state_bytes,
                msg_bytes,
                async_mode,
                paged_rounds.as_deref(),
            );

            // ---- hard OOM kill -------------------------------------
            // With the hard fault armed, a machine whose memory demand
            // exceeds physical capacity is killed outright — no
            // thrashing grace up to the cost model's overflow limit.
            // Replay rounds completed under capacity on their first
            // run, so they cannot trip this.
            if hard_oom && !replaying && demand.memory.iter().any(|&m| m > spec.memory) {
                let peak = demand.memory.iter().copied().max().unwrap_or(Bytes::ZERO);
                stats.record_round(RoundStats {
                    round,
                    peak_machine_memory: peak,
                    ..RoundStats::default()
                });
                stats.faults.oom_kills += 1;
                outcome = Some(RunOutcome::Overflow);
                break;
            }

            // ---- pricing -------------------------------------------
            match cost.charge(spec, &demand) {
                Err(ChargeError::MemoryOverflow { .. }) => {
                    // Record the failed round's memory pressure so
                    // reports can show what blew up, then abort.
                    let peak = demand.memory.iter().copied().max().unwrap_or(Bytes::ZERO);
                    stats.record_round(RoundStats {
                        round,
                        peak_machine_memory: peak,
                        ..RoundStats::default()
                    });
                    outcome = Some(RunOutcome::Overflow);
                    break;
                }
                Ok(charge) => {
                    let barrier_t = profile.barrier_scale()
                        * (cost.barrier_base + cost.barrier_per_machine * workers as f64);
                    let duration = charge.duration + SimTime::secs(barrier_t);
                    // Straggler windows: re-price the round with the
                    // slowed machines' compute scaled up and book only
                    // the *excess* over the healthy charge, to the
                    // fault record — first-run totals, recorded rounds,
                    // and the final states stay bit-identical to the
                    // fault-free run.
                    if !routing.replay && straggler_until.iter().any(|&until| round < until) {
                        let mut slow = demand.clone();
                        for (m, ops) in slow.compute_ops.iter_mut().enumerate() {
                            if round < straggler_until[m] {
                                *ops *= straggler_factor[m];
                            }
                        }
                        if let Ok(slow_charge) = cost.charge(spec, &slow) {
                            let excess = slow_charge.duration - charge.duration;
                            if excess > SimTime::ZERO {
                                stats.faults.straggler_time += excess;
                            }
                        }
                    }
                    if routing.replay {
                        // Replayed work is pure recovery cost. Its time
                        // and traffic must not skew the run's first-run
                        // totals — the original execution of this
                        // superstep is already on the books — so it is
                        // accounted to the fault record only.
                        stats.faults.replayed_rounds += 1;
                        stats.faults.replayed_wire += routing.sent_wire;
                        stats.faults.recovery_time += duration;
                    } else {
                        total += duration;
                        // Disk overuse means 100% utilization (§4.4);
                        // with the barrier included in the round
                        // duration the disk may no longer dominate.
                        let disk_overuse = if duration.as_secs() > 0.0
                            && charge.disk_busy.as_secs() / duration.as_secs() < 0.9
                        {
                            SimTime::ZERO
                        } else {
                            charge.disk_overuse
                        };
                        let delivered = if profile.combiner {
                            routing.delivered_tuples
                        } else {
                            routing.delivered_wire()
                        };
                        // Under the compact wire format the cross-
                        // machine traffic that actually hits the
                        // network is the post-codec byte count, so
                        // that is what the round records (and what the
                        // cost model was charged above).
                        let network_bytes = if profile.wire_format == WireFormat::Compact {
                            Bytes(routing.encoded_out_bytes.iter().sum())
                        } else {
                            Bytes(routing.net_out_bytes.iter().sum())
                        };
                        // Replay rounds never reach this branch, so the
                        // recorded pager counters are first-run only.
                        let (loaded, loads, skipped, paged_peak) =
                            paged_rounds.as_deref().map_or((0, 0, 0, 0), |ps| {
                                ps.iter().fold((0, 0, 0, 0), |(b, l, s, m), (pr, _)| {
                                    (
                                        b + pr.loaded_bytes,
                                        l + pr.partition_loads,
                                        s + pr.partitions_skipped,
                                        m.max(pr.peak_resident_bytes),
                                    )
                                })
                            });
                        stats.record_round(RoundStats {
                            round,
                            messages_sent: routing.sent_wire,
                            messages_delivered: delivered,
                            network_bytes,
                            local_bytes: Bytes(routing.local_bytes),
                            encoded_wire_bytes: Bytes(routing.encoded_wire_bytes),
                            respond_cache_hits: routing.respond_hits,
                            respond_cache_misses: routing.respond_misses,
                            shard_copy_bytes: Bytes(routing.shard_copy_bytes),
                            active_vertices: active.iter().sum(),
                            peak_machine_memory: charge.peak_memory,
                            state_bytes: Bytes(state_bytes.iter().copied().max().unwrap_or(0)),
                            spilled_bytes: Bytes(demand.spill.iter().map(|b| b.get()).sum()),
                            loaded_bytes: Bytes(loaded),
                            partition_loads: loads,
                            partitions_skipped: skipped,
                            paged_resident_bytes: Bytes(paged_peak),
                            duration,
                            network_overuse: charge.network_overuse,
                            disk_overuse,
                            disk_busy: charge.disk_busy,
                            io_queue_len: charge.io_queue_len,
                        });
                        if total > self.config.cutoff {
                            outcome = Some(RunOutcome::Overload);
                            break;
                        }
                    }
                }
            }

            // ---- advance -------------------------------------------
            prev_in_wire.copy_from_slice(&routing.in_wire);
            prev_in_tuples.copy_from_slice(&routing.in_tuples);
            prev_in_bytes.copy_from_slice(&routing.in_buffer_bytes);
            round += 1;
        }

        // Page back any slab state still on the store so the flattened
        // outputs see every row. This is post-run repatriation, not
        // round traffic — it lands in no counter.
        if let Some(ps) = pagers.as_mut() {
            let mut buf = Vec::new();
            for (w, pager) in ps.iter_mut().enumerate() {
                for p in pager.state_paged_partitions() {
                    let (lo, hi) = pager.partition_range(p);
                    let key = pager.state_key(p);
                    let found = pager.store().get(key, &mut buf);
                    debug_assert!(found, "paged-out state rows must be on the store");
                    program.page_in_rows(&mut states[w], lo, hi, &buf);
                    pager.store().remove(key);
                    pager.note_state_paged_in(p);
                }
            }
        }

        let outcome = outcome.unwrap_or(RunOutcome::Completed(total));
        let states_flat = self.flatten_states(program, states);
        RunResult {
            outcome,
            stats,
            states: states_flat,
        }
    }

    /// Run every worker's compute for one round, draining each inbox
    /// into its worker's outbox; returns per-worker active-vertex
    /// counts. With a pool, worker `w` always executes on pool thread
    /// `w`.
    fn compute_phase<C: ProgramCore>(
        &self,
        program: &C,
        round: usize,
        inboxes: &mut [Inbox<C::Message>],
        outboxes: &mut [Outbox<C::Message>],
        states: &mut [C::Store],
        pagers: Option<&mut Vec<WorkerPager>>,
    ) -> Vec<u64> {
        let seed = self.config.seed;
        let mut active = vec![0u64; states.len()];
        let slots = pager_slots(pagers, states.len());
        match &self.pool {
            Some(pool) => {
                pool.scope(|s| {
                    for (w, ((((inbox, outbox), worker_states), slot), pager)) in inboxes
                        .iter_mut()
                        .zip(outboxes.iter_mut())
                        .zip(states.iter_mut())
                        .zip(active.iter_mut())
                        .zip(slots)
                        .enumerate()
                    {
                        let graph = self.graph;
                        let vertices = &self.locals.worker_vertices()[w];
                        s.run_on(w, move || {
                            outbox.clear();
                            *slot = match pager {
                                Some(pager) => worker_pass_paged(
                                    program,
                                    graph,
                                    round,
                                    seed,
                                    vertices,
                                    inbox,
                                    outbox,
                                    worker_states,
                                    pager,
                                ),
                                None => worker_pass(
                                    program,
                                    graph,
                                    round,
                                    seed,
                                    vertices,
                                    inbox,
                                    outbox,
                                    worker_states,
                                ),
                            };
                        });
                    }
                });
            }
            None => {
                for (w, ((((inbox, outbox), worker_states), slot), pager)) in inboxes
                    .iter_mut()
                    .zip(outboxes.iter_mut())
                    .zip(states.iter_mut())
                    .zip(active.iter_mut())
                    .zip(slots)
                    .enumerate()
                {
                    outbox.clear();
                    let vertices = &self.locals.worker_vertices()[w];
                    *slot = match pager {
                        Some(pager) => worker_pass_paged(
                            program,
                            self.graph,
                            round,
                            seed,
                            vertices,
                            inbox,
                            outbox,
                            worker_states,
                            pager,
                        ),
                        None => worker_pass(
                            program,
                            self.graph,
                            round,
                            seed,
                            vertices,
                            inbox,
                            outbox,
                            worker_states,
                        ),
                    };
                }
            }
        }
        active
    }

    /// [`Self::compute_phase`] for the fold-at-send path: each worker
    /// emits through its [`ShardedOutbox`](crate::ShardedOutbox) sink
    /// (obtained from the prepared `grid`) instead of a flat outbox, so
    /// envelopes land pre-sharded — and pre-folded — as they are
    /// produced. Returns per-worker `(active vertices, state bytes
    /// added)`; the latter replaces the flat outbox's
    /// `state_bytes_added` ledger.
    #[allow(clippy::too_many_arguments)]
    fn compute_phase_presharded<C: ProgramCore>(
        &self,
        program: &C,
        round: usize,
        inboxes: &mut [Inbox<C::Message>],
        grid: &mut RouteGrid<C::Message>,
        states: &mut [C::Store],
        msg_bytes: u64,
        pagers: Option<&mut Vec<WorkerPager>>,
    ) -> (Vec<u64>, Vec<u64>) {
        let seed = self.config.seed;
        let mut active = vec![0u64; states.len()];
        let mut state_added = vec![0u64; states.len()];
        let slots = pager_slots(pagers, states.len());
        let sinks = grid.emit_sinks(
            self.graph,
            &self.partition,
            &self.locals,
            self.mirrors.as_ref(),
            msg_bytes,
        );
        match &self.pool {
            Some(pool) => {
                pool.scope(|s| {
                    for (w, (((((inbox, mut sink), worker_states), slot), added), pager)) in inboxes
                        .iter_mut()
                        .zip(sinks)
                        .zip(states.iter_mut())
                        .zip(active.iter_mut())
                        .zip(state_added.iter_mut())
                        .zip(slots)
                        .enumerate()
                    {
                        let graph = self.graph;
                        let vertices = &self.locals.worker_vertices()[w];
                        s.run_on(w, move || {
                            *slot = match pager {
                                Some(pager) => worker_pass_paged(
                                    program,
                                    graph,
                                    round,
                                    seed,
                                    vertices,
                                    inbox,
                                    &mut sink,
                                    worker_states,
                                    pager,
                                ),
                                None => worker_pass(
                                    program,
                                    graph,
                                    round,
                                    seed,
                                    vertices,
                                    inbox,
                                    &mut sink,
                                    worker_states,
                                ),
                            };
                            *added = sink.state_bytes_added;
                        });
                    }
                });
            }
            None => {
                for (w, (((((inbox, mut sink), worker_states), slot), added), pager)) in inboxes
                    .iter_mut()
                    .zip(sinks)
                    .zip(states.iter_mut())
                    .zip(active.iter_mut())
                    .zip(state_added.iter_mut())
                    .zip(slots)
                    .enumerate()
                {
                    let vertices = &self.locals.worker_vertices()[w];
                    *slot = match pager {
                        Some(pager) => worker_pass_paged(
                            program,
                            self.graph,
                            round,
                            seed,
                            vertices,
                            inbox,
                            &mut sink,
                            worker_states,
                            pager,
                        ),
                        None => worker_pass(
                            program,
                            self.graph,
                            round,
                            seed,
                            vertices,
                            inbox,
                            &mut sink,
                            worker_states,
                        ),
                    };
                    *added = sink.state_bytes_added;
                }
            }
        }
        (active, state_added)
    }

    /// Build the [`RoundDemand`] for the cost model from this round's
    /// measurements (see DESIGN.md §4 for the formulas).
    #[allow(clippy::too_many_arguments)]
    fn assemble_demand(
        &self,
        profile: &SystemProfile,
        active: &[u64],
        prev_in_wire: &[u64],
        prev_in_tuples: &[u64],
        prev_in_bytes: &[u64],
        routing: &RoutingStats,
        state_bytes: &[u64],
        msg_bytes: u64,
        async_mode: bool,
        paged: Option<&[(PagerRound, u64)]>,
    ) -> RoundDemand {
        let workers = active.len();
        let mut demand = RoundDemand::zeros(workers, false);
        let mut total_processed = 0u64;
        for w in 0..workers {
            let processed = if profile.combiner {
                prev_in_tuples[w]
            } else {
                prev_in_wire[w]
            };
            total_processed += processed;
            demand.compute_ops[w] = (active[w] as f64 * profile.per_vertex_ops
                + processed as f64 * profile.per_msg_ops)
                * profile.lang_cpu_factor;
            // The compact wire format replaces the size_of-based
            // traffic estimate with real post-codec bucket bytes; the
            // cost model then prices what actually crosses the wire.
            if profile.wire_format == WireFormat::Compact {
                demand.net_out[w] = Bytes(routing.encoded_out_bytes[w]);
                demand.net_in[w] = Bytes(routing.encoded_in_bytes[w]);
            } else {
                demand.net_out[w] = Bytes(routing.net_out_bytes[w]);
                demand.net_in[w] = Bytes(routing.net_in_bytes[w]);
            }

            let msg_buffer = prev_in_bytes[w] + routing.out_buffer_bytes[w];
            let paged_w = paged.map(|p| p[w]);
            // Slab-state rows paged out to the store are not resident;
            // the ledger charges only what stayed in memory.
            let resident_state =
                state_bytes[w].saturating_sub(paged_w.map_or(0, |(_, evicted)| evicted));
            let mut memory = (resident_state as f64 * profile.mem_overhead_factor) as u64;
            if !self.config.residual_bytes.is_empty() {
                memory += self.config.residual_bytes[w];
            }
            match profile.out_of_core {
                Some(ooc) => {
                    let budget = ooc.message_budget.get();
                    let overhead_buf = (msg_buffer as f64 * profile.mem_overhead_factor) as u64;
                    let resident = overhead_buf.min(budget);
                    let msg_spill = overhead_buf.saturating_sub(budget);
                    memory += resident;
                    demand.spill_messages[w] = msg_spill.checked_div(msg_bytes).unwrap_or(0);
                    match paged_w {
                        // Real paging path: the disk terms are fed the
                        // bytes that actually moved this round, and
                        // memory is charged the cache's decoded peak —
                        // measurements, not the demand-based estimate
                        // of the `None` arm below (kept as the oracle).
                        Some((pr, _)) => {
                            demand.spill[w] = Bytes(msg_spill + pr.state_spill_bytes);
                            demand.stream[w] = Bytes(pr.loaded_bytes);
                            memory += pr.peak_resident_bytes;
                        }
                        None => {
                            demand.spill[w] = Bytes(msg_spill);
                            if ooc.stream_edges {
                                demand.stream[w] = Bytes(self.graph_bytes[w]);
                            } else {
                                memory +=
                                    (self.graph_bytes[w] as f64 * profile.graph_mem_factor) as u64;
                            }
                        }
                    }
                }
                None => {
                    memory += (msg_buffer as f64 * profile.mem_overhead_factor) as u64;
                    memory += (self.graph_bytes[w] as f64 * profile.graph_mem_factor) as u64;
                }
            }
            demand.memory[w] = Bytes(memory);
        }
        demand.lock_ops = if async_mode {
            total_processed as f64
        } else {
            0.0
        };
        demand
    }

    fn flatten_states<C: ProgramCore>(
        &self,
        program: &C,
        mut states: Vec<C::Store>,
    ) -> Vec<C::Out> {
        let mut out = vec![C::Out::default(); self.graph.num_vertices()];
        for (w, list) in self.locals.worker_vertices().iter().enumerate() {
            for (i, &v) in list.iter().enumerate() {
                out[v as usize] = program.take_out(v, i as u32, &mut states[w]);
            }
        }
        program.recycle(states);
        out
    }
}

/// Execute one worker's share of a round. The inbox arrives already
/// grouped by destination local index (the routing merge stage wrote it
/// that way), so this is a single pass over its runs — each vertex's
/// messages are handed to `compute` as a borrowed slice, with no
/// sorting, no clones, and no per-round allocation. The inbox is
/// cleared afterwards (capacity retained for the next routing round).
/// Emissions land in `sink` — a (cleared) flat [`Outbox`] on the
/// two-stage grid path, a [`ShardedOutbox`](crate::ShardedOutbox) on
/// the fold-at-send path; both observe the identical emission sequence.
#[allow(clippy::too_many_arguments)]
fn worker_pass<C: ProgramCore>(
    program: &C,
    graph: &Graph,
    round: usize,
    seed: u64,
    vertices: &[VertexId],
    inbox: &mut Inbox<C::Message>,
    sink: &mut dyn EmitSink<C::Message>,
    store: &mut C::Store,
) -> u64 {
    let active;
    if round == 0 {
        // A worker's vertex list is in local-index order, so position
        // IS the state index.
        for (li, &v) in vertices.iter().enumerate() {
            let mut rng = vertex_rng(seed, round, v);
            let mut ctx = Context::new(v, round, graph, &mut rng, sink);
            program.init_vertex(v, li as u32, store, &mut ctx);
        }
        active = vertices.len() as u64;
    } else {
        active = inbox.runs().len() as u64;
        let mut start = 0usize;
        for run in inbox.runs() {
            let msgs = &inbox.deliveries()[start..run.end as usize];
            start = run.end as usize;
            let mut rng = vertex_rng(seed, round, run.dest);
            let mut ctx = Context::new(run.dest, round, graph, &mut rng, sink);
            program.compute_vertex(run.dest, run.local, store, msgs, &mut ctx);
        }
        // Recycle: the routing merge stage refills this inbox, reusing
        // the capacity this round's traffic established.
        inbox.clear();
    }
    active
}

/// [`worker_pass`] on the real out-of-core path: neighbors are served
/// from decoded partition chunks streamed through `pager`'s bounded
/// cache, never from the resident [`Graph`]. Partitions are visited in
/// ascending local-index order and the inbox's runs are ascending by
/// local index, so the compute sequence — and therefore every emission
/// and state update — is bit-identical to [`worker_pass`]; the pager
/// only changes which bytes move. Under the frontier-density schedule,
/// partitions with no delivered runs this round are skipped outright
/// (nothing loaded, nothing visited); with slab-state paging on, the
/// skipped partitions' state rows are encoded to the store and blanked
/// (measured spill), and paged back in before their next compute.
#[allow(clippy::too_many_arguments)]
fn worker_pass_paged<C: ProgramCore>(
    program: &C,
    graph: &Graph,
    round: usize,
    seed: u64,
    vertices: &[VertexId],
    inbox: &mut Inbox<C::Message>,
    sink: &mut dyn EmitSink<C::Message>,
    store: &mut C::Store,
    pager: &mut WorkerPager,
) -> u64 {
    let mut state_buf = Vec::new();
    let active;
    if round == 0 {
        // Every vertex initializes, so every partition streams through
        // the cache regardless of schedule.
        for p in 0..pager.partitions() {
            pager.ensure_resident(p);
            let (lo, hi) = pager.partition_range(p);
            let chunk = pager.chunk(p);
            for li in lo..hi {
                let v = vertices[li as usize];
                let paged = PagedNeighbors {
                    neighbors: chunk.neighbors_of(li),
                    weights: chunk.weights_of(li),
                };
                let mut rng = vertex_rng(seed, round, v);
                let mut ctx = Context::new_paged(v, round, graph, paged, &mut rng, sink);
                program.init_vertex(v, li, store, &mut ctx);
            }
        }
        active = vertices.len() as u64;
    } else {
        // Frontier densities: count delivered runs per partition. Runs
        // ascend by local index and partitions are contiguous
        // local-index ranges, so one forward scan suffices.
        pager.clear_density();
        {
            let mut p = 0usize;
            for run in inbox.runs() {
                while pager.partition_range(p).1 <= run.local {
                    p += 1;
                }
                pager.bump_density(p);
            }
        }
        active = inbox.runs().len() as u64;
        let runs = inbox.runs();
        let deliveries = inbox.deliveries();
        let mut ri = 0usize;
        let mut start = 0usize;
        for p in 0..pager.partitions() {
            if pager.should_skip(p) {
                // Empty frontier: zero runs land here, so skipping
                // moves no bytes and visits no vertices.
                pager.note_skip();
                continue;
            }
            pager.ensure_resident(p);
            page_state_in(program, store, pager, p, &mut state_buf);
            let (_, hi) = pager.partition_range(p);
            while ri < runs.len() && runs[ri].local < hi {
                let run = runs[ri];
                let msgs = &deliveries[start..run.end as usize];
                start = run.end as usize;
                ri += 1;
                let chunk = pager.chunk(p);
                let paged = PagedNeighbors {
                    neighbors: chunk.neighbors_of(run.local),
                    weights: chunk.weights_of(run.local),
                };
                let mut rng = vertex_rng(seed, round, run.dest);
                let mut ctx = Context::new_paged(run.dest, round, graph, paged, &mut rng, sink);
                program.compute_vertex(run.dest, run.local, store, msgs, &mut ctx);
            }
        }
        debug_assert_eq!(ri, runs.len(), "every delivered run must compute");
        inbox.clear();
        // Slab-state paging: rows of partitions the frontier left
        // behind this round move to the store until messages return.
        if pager.pages_state() {
            for p in 0..pager.partitions() {
                if pager.density(p) == 0 && pager.state_paged_out(p).is_none() {
                    let (lo, hi) = pager.partition_range(p);
                    match program.page_out_rows(store, lo, hi, &mut state_buf) {
                        Some(bytes) => {
                            pager.store().put(pager.state_key(p), &state_buf);
                            pager.note_state_paged_out(p, bytes);
                        }
                        // The program keeps no pageable rows
                        // (per-vertex ledger store): nothing to move.
                        None => break,
                    }
                }
            }
        }
    }
    active
}

/// Restore partition `p`'s slab-state rows from the store if they are
/// paged out there, so its vertices compute on real state.
fn page_state_in<C: ProgramCore>(
    program: &C,
    store: &mut C::Store,
    pager: &mut WorkerPager,
    p: usize,
    buf: &mut Vec<u8>,
) {
    if pager.state_paged_out(p).is_none() {
        return;
    }
    let (lo, hi) = pager.partition_range(p);
    let key = pager.state_key(p);
    let found = pager.store().get(key, buf);
    debug_assert!(found, "paged-out state rows must be on the store");
    program.page_in_rows(store, lo, hi, buf);
    pager.store().remove(key);
    pager.note_state_paged_in(p);
}

/// One `Option<&mut WorkerPager>` per worker, so the zipped compute
/// loops hand each worker its own pager without sharing a borrow.
fn pager_slots(
    pagers: Option<&mut Vec<WorkerPager>>,
    workers: usize,
) -> Vec<Option<&mut WorkerPager>> {
    match pagers {
        Some(v) => v.iter_mut().map(Some).collect(),
        None => (0..workers).map(|_| None).collect(),
    }
}

/// Capture every worker pager's resident set for a checkpoint (empty
/// when the run is fully resident).
fn pager_snaps(pagers: &Option<Vec<WorkerPager>>) -> Vec<PagerSnapshot> {
    pagers
        .as_ref()
        .map(|ps| ps.iter().map(WorkerPager::snapshot).collect())
        .unwrap_or_default()
}

/// Roll every worker pager back to a checkpoint's resident sets.
fn restore_pagers(pagers: &mut Option<Vec<WorkerPager>>, snaps: &[PagerSnapshot]) {
    if let Some(ps) = pagers.as_mut() {
        for (pager, snap) in ps.iter_mut().zip(snaps) {
            pager.restore(snap);
        }
    }
}

/// Deterministic per-(round, vertex) RNG: thread scheduling cannot
/// affect results. Public so harnesses driving programs outside the
/// engine (benches) reproduce a [`Runner`] run bit-for-bit.
pub fn vertex_rng(seed: u64, round: usize, v: VertexId) -> SmallRng {
    SmallRng::seed_from_u64(mix64(
        seed ^ ((round as u64) << 40) ^ ((v as u64).wrapping_mul(0x9E37_79B9)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Delivery, Message};
    use mtvc_cluster::ChaosMix;
    use mtvc_graph::generators;
    use mtvc_graph::partition::HashPartitioner;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    /// Flood: source 0 broadcasts its id; every vertex forwards once.
    /// Computes hop levels — checkable against BFS.
    struct Flood;

    #[derive(Clone, Debug)]
    struct Hop(u32);
    impl Message for Hop {
        fn combine_key(&self) -> Option<u64> {
            Some(0)
        }
        fn merge(&mut self, other: &Self) {
            self.0 = self.0.min(other.0);
        }
    }

    #[derive(Clone, Default)]
    struct Level(Option<u32>);

    impl VertexProgram for Flood {
        type Message = Hop;
        type State = Level;

        fn message_bytes(&self) -> u64 {
            8
        }

        fn init(&self, v: VertexId, state: &mut Level, ctx: &mut Context<'_, Hop>) {
            if v == 0 {
                state.0 = Some(0);
                for &t in ctx.neighbors() {
                    ctx.send(t, Hop(1), 1);
                }
            }
        }

        fn compute(
            &self,
            _v: VertexId,
            state: &mut Level,
            inbox: &[Delivery<Hop>],
            ctx: &mut Context<'_, Hop>,
        ) {
            let best = inbox.iter().map(|d| d.msg.0).min().unwrap();
            if state.0.map(|l| best < l).unwrap_or(true) {
                state.0 = Some(best);
                ctx.add_state_bytes(4);
                for &t in ctx.neighbors() {
                    ctx.send(t, Hop(best + 1), 1);
                }
            }
        }
    }

    fn config(machines: usize) -> EngineConfig {
        EngineConfig::new(ClusterSpec::galaxy(machines), SystemProfile::base("test"))
    }

    #[test]
    fn flood_levels_match_bfs() {
        let g = generators::grid(8, 9);
        let runner = Runner::new(&g, &HashPartitioner::default(), config(4));
        let result = runner.run(&Flood);
        assert!(result.outcome.is_completed());
        let reference = mtvc_graph::reference::bfs_levels(&g, 0);
        for v in g.vertices() {
            let got = result.states[v as usize].0;
            let want = reference[v as usize];
            if want == u32::MAX {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(want), "vertex {v}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs_and_partitions_counts() {
        let g = generators::power_law(300, 1200, 2.3, 5);
        let r1 = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        let r2 = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        assert_eq!(r1.stats.total_messages_sent, r2.stats.total_messages_sent);
        assert_eq!(r1.outcome, r2.outcome);
    }

    #[test]
    fn stats_record_rounds_and_messages() {
        let g = generators::ring(16, true);
        let result = Runner::new(&g, &HashPartitioner::default(), config(2)).run(&Flood);
        // Ring of 16: flood takes ~8 forwarding rounds.
        assert!(result.stats.rounds >= 8);
        assert!(result.stats.total_messages_sent > 16);
        assert!(result.stats.total_time > SimTime::ZERO);
    }

    #[test]
    fn combiner_reduces_delivered_messages() {
        let g = generators::complete(24);
        let mut cfg = config(4);
        cfg.profile.combiner = true;
        let with = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        let without = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        assert_eq!(
            with.stats.total_messages_sent,
            without.stats.total_messages_sent
        );
        assert!(
            with.stats.total_messages_delivered < without.stats.total_messages_delivered,
            "combined {} vs uncombined {}",
            with.stats.total_messages_delivered,
            without.stats.total_messages_delivered
        );
    }

    #[test]
    fn compact_profile_matches_tuples_and_records_encoded_bytes() {
        let g = generators::power_law(300, 1200, 2.3, 5);
        let tuples = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        let mut cfg = config(4);
        cfg.profile.wire_format = WireFormat::Compact;
        cfg.profile.respond_cache_threshold = 8;
        let compact = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        // The codec changes accounting, never delivery: same rounds,
        // same message counts, same final levels.
        assert_eq!(compact.stats.rounds, tuples.stats.rounds);
        assert_eq!(
            compact.stats.total_messages_sent,
            tuples.stats.total_messages_sent
        );
        for (a, b) in compact.states.iter().zip(tuples.states.iter()) {
            assert_eq!(a.0, b.0);
        }
        assert!(compact.stats.total_encoded_wire_bytes.get() > 0);
        assert_eq!(tuples.stats.total_encoded_wire_bytes.get(), 0);
        // Flood sends point-to-point, so the (broadcast-only) respond
        // cache stays cold; its hit path is pinned by router tests.
        assert_eq!(compact.stats.respond_cache_hits, 0);
    }

    #[test]
    fn fold_at_send_matches_flat_and_halves_copy_traffic() {
        let g = generators::power_law(300, 1200, 2.3, 5);
        let pre = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        let mut cfg = config(4);
        cfg.profile.fold_at_send = false;
        let flat = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        // Pre-sharded emission changes where envelopes are copied,
        // never what is delivered: same rounds, counts, and levels.
        assert_eq!(pre.stats.rounds, flat.stats.rounds);
        assert_eq!(
            pre.stats.total_messages_sent,
            flat.stats.total_messages_sent
        );
        assert_eq!(
            pre.stats.total_messages_delivered,
            flat.stats.total_messages_delivered
        );
        for (a, b) in pre.states.iter().zip(flat.states.iter()) {
            assert_eq!(a.0, b.0);
        }
        // The flat path materialises each surviving envelope in an
        // outbox and copies it again into its shard bucket; the
        // pre-sharded path writes it once.
        assert!(pre.stats.total_shard_copy_bytes.get() > 0);
        assert!(
            pre.stats.total_shard_copy_bytes < flat.stats.total_shard_copy_bytes,
            "presharded {} vs flat {}",
            pre.stats.total_shard_copy_bytes.get(),
            flat.stats.total_shard_copy_bytes.get()
        );
    }

    #[test]
    fn adaptive_combiner_run_matches_static_outputs() {
        let g = generators::complete(24);
        let mut on = config(4);
        on.profile.combiner = true;
        on.profile.adaptive_combiner = true;
        let mut off = config(4);
        off.profile.combiner = true;
        let a = Runner::new(&g, &HashPartitioner::default(), on).run(&Flood);
        let b = Runner::new(&g, &HashPartitioner::default(), off).run(&Flood);
        // Adaptive toggling changes when the combiner runs, never what
        // is computed: sends and final states are invariant.
        assert_eq!(a.stats.total_messages_sent, b.stats.total_messages_sent);
        assert_eq!(a.stats.rounds, b.stats.rounds);
        for (x, y) in a.states.iter().zip(b.states.iter()) {
            assert_eq!(x.0, y.0);
        }
    }

    #[test]
    fn cutoff_yields_overload() {
        let g = generators::grid(20, 20);
        let mut cfg = config(2);
        cfg.cutoff = SimTime::secs(0.5);
        let result = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        assert!(result.outcome.is_overload());
    }

    #[test]
    fn tiny_memory_overflows() {
        let g = generators::complete(64);
        let mut cfg = config(2);
        // Capacity of ~1 KB cannot hold anything.
        cfg.cluster.machine.memory = Bytes::kib(1);
        let result = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        assert!(result.outcome.is_overflow());
    }

    #[test]
    fn residual_memory_raises_pressure() {
        let g = generators::ring(64, true);
        let base = Runner::new(&g, &HashPartitioner::default(), config(2))
            .run(&Flood)
            .stats
            .peak_memory;
        let mut cfg = config(2);
        cfg.residual_bytes = vec![1_000_000; 2];
        let with = Runner::new(&g, &HashPartitioner::default(), cfg)
            .run(&Flood)
            .stats
            .peak_memory;
        assert!(with > base);
    }

    #[test]
    fn async_profile_runs_and_skips_barrier() {
        let g = generators::ring(64, true);
        let mut cfg = config(4);
        cfg.profile.sync = SyncMode::Asynchronous;
        let async_run = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        let sync_run = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        assert!(async_run.outcome.is_completed());
        // Light load: no barrier makes async faster (§4.8's PageRank
        // observation).
        assert!(async_run.stats.total_time < sync_run.stats.total_time);
    }

    /// An [`OocConfig`](crate::profile::OocConfig) with the estimate
    /// path (`paging: None`) — the pre-paging oracle.
    fn ooc_estimated(message_budget: u64) -> crate::profile::OocConfig {
        crate::profile::OocConfig {
            message_budget: Bytes::new(message_budget),
            stream_edges: true,
            paging: None,
        }
    }

    /// An [`OocConfig`](crate::profile::OocConfig) on the real paging
    /// path: `message_budget` governs the message-spill arithmetic,
    /// `page_budget`/`partition_bytes` the partition cache.
    fn ooc_paged(
        message_budget: u64,
        page_budget: u64,
        partition_bytes: u64,
        schedule: crate::profile::PartitionSchedule,
    ) -> crate::profile::OocConfig {
        crate::profile::OocConfig {
            message_budget: Bytes::new(message_budget),
            stream_edges: true,
            paging: Some(crate::profile::PagingConfig {
                budget: Bytes::new(page_budget),
                partition_bytes: Bytes::new(partition_bytes),
                schedule,
                page_state: false,
                store: crate::profile::StoreKind::Memory,
            }),
        }
    }

    #[test]
    fn ooc_profile_spills_when_budget_tiny() {
        let g = generators::complete(48);
        let mut cfg = config(2);
        cfg.profile.out_of_core = Some(ooc_estimated(64));
        let result = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        assert!(result.outcome.is_completed());
        assert!(result.stats.total_spilled_bytes > Bytes::ZERO);
        assert!(result.stats.max_disk_utilization > 0.0);
        // The estimate path never touches the pager counters.
        assert_eq!(result.stats.total_loaded_bytes, Bytes::ZERO);
        assert_eq!(result.stats.total_partition_loads, 0);
        assert_eq!(result.stats.peak_paged_resident_bytes, Bytes::ZERO);
        // Every round streamed the full worker adjacency (the
        // demand-based estimate's disk term).
        assert!(result
            .stats
            .per_round
            .iter()
            .all(|r| r.spilled_bytes > Bytes::ZERO));
    }

    #[test]
    fn paged_run_matches_resident_run_bit_identical() {
        let g = generators::grid(12, 12);
        let resident = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        for schedule in [
            crate::profile::PartitionSchedule::RoundRobin,
            crate::profile::PartitionSchedule::FrontierDensity,
        ] {
            let mut cfg = config(4);
            cfg.profile.out_of_core = Some(ooc_paged(1 << 20, 1024, 256, schedule));
            let runner = Runner::new(&g, &HashPartitioner::default(), cfg);
            assert!(runner.paged_layout().is_some(), "paging path must engage");
            let paged = runner.run(&Flood);
            assert_eq!(
                resident.outcome.is_completed(),
                paged.outcome.is_completed()
            );
            for v in g.vertices() {
                assert_eq!(
                    resident.states[v as usize].0, paged.states[v as usize].0,
                    "vertex {v} under {schedule:?}"
                );
            }
            // Identical compute ⇒ identical traffic; only I/O differs.
            assert_eq!(
                resident.stats.total_messages_sent,
                paged.stats.total_messages_sent
            );
            assert_eq!(resident.stats.rounds, paged.stats.rounds);
            assert!(paged.stats.total_loaded_bytes > Bytes::ZERO, "real loads");
            assert!(paged.stats.total_partition_loads > 0);
            assert!(
                paged.stats.peak_paged_resident_bytes <= Bytes::new(1024),
                "cache never exceeds its budget"
            );
        }
    }

    #[test]
    fn paged_runs_are_deterministic_and_pool_invariant() {
        let g = generators::grid(12, 12);
        let make = |threshold: usize| {
            let mut cfg = config(4).with_parallel_threshold(threshold);
            cfg.profile.out_of_core = Some(ooc_paged(
                1 << 20,
                1024,
                256,
                crate::profile::PartitionSchedule::FrontierDensity,
            ));
            Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood)
        };
        let serial = make(usize::MAX);
        let again = make(usize::MAX);
        let pooled = make(1);
        assert_eq!(serial.outcome, again.outcome);
        assert_eq!(serial.stats, again.stats, "paged runs must be repeatable");
        assert_eq!(serial.outcome, pooled.outcome);
        assert_eq!(serial.stats, pooled.stats, "pager counters included");
        for v in g.vertices() {
            assert_eq!(serial.states[v as usize].0, pooled.states[v as usize].0);
        }
    }

    #[test]
    fn frontier_density_skips_partitions_and_loads_fewer_bytes() {
        // A long path keeps a one-vertex frontier for hundreds of
        // rounds — the frontier-density scheduler's best case.
        let g = generators::ring(512, false);
        // A budget well under one worker's decoded adjacency, so the
        // round-robin full pass re-streams evicted partitions every
        // round while frontier-density touches only the live one.
        let run = |schedule| {
            let mut cfg = config(4);
            cfg.profile.out_of_core = Some(ooc_paged(1 << 20, 384, 96, schedule));
            Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood)
        };
        let rr = run(crate::profile::PartitionSchedule::RoundRobin);
        let fd = run(crate::profile::PartitionSchedule::FrontierDensity);
        assert!(rr.outcome.is_completed() && fd.outcome.is_completed());
        for v in g.vertices() {
            assert_eq!(rr.states[v as usize].0, fd.states[v as usize].0);
        }
        assert_eq!(
            rr.stats.total_partitions_skipped, 0,
            "round-robin never skips"
        );
        assert!(
            fd.stats.total_partitions_skipped > 0,
            "sparse frontiers skip"
        );
        assert!(
            fd.stats.total_loaded_bytes < rr.stats.total_loaded_bytes,
            "frontier-density must move strictly fewer bytes ({} vs {})",
            fd.stats.total_loaded_bytes.get(),
            rr.stats.total_loaded_bytes.get()
        );
    }

    #[test]
    fn measured_spill_matches_estimate_regimes() {
        // The old demand-based estimate stays alive as the oracle: in
        // the budget-tiny regime both paths spill, in the ample regime
        // neither does.
        let g = generators::complete(48);
        let run = |ooc: crate::profile::OocConfig| {
            let mut cfg = config(2);
            cfg.profile.out_of_core = Some(ooc);
            Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood)
        };
        let tiny_est = run(ooc_estimated(64));
        let tiny_paged = run(ooc_paged(
            64,
            4096,
            1024,
            crate::profile::PartitionSchedule::RoundRobin,
        ));
        assert!(tiny_est.stats.total_spilled_bytes > Bytes::ZERO);
        assert!(tiny_paged.stats.total_spilled_bytes > Bytes::ZERO);
        let ample_est = run(ooc_estimated(1 << 30));
        let ample_paged = run(ooc_paged(
            1 << 30,
            1 << 30,
            1 << 16,
            crate::profile::PartitionSchedule::RoundRobin,
        ));
        assert_eq!(ample_est.stats.total_spilled_bytes, Bytes::ZERO);
        assert_eq!(ample_paged.stats.total_spilled_bytes, Bytes::ZERO);
        // Same message-overflow arithmetic on both paths.
        assert_eq!(
            tiny_est.stats.total_spilled_bytes,
            tiny_paged.stats.total_spilled_bytes
        );
        // Disk streaming differs: measured encoded bytes vs the
        // resident-size estimate (the estimate path streams the full
        // adjacency every round; the pager's warm cache loads less).
        assert!(ample_paged.stats.total_loaded_bytes > Bytes::ZERO);
    }

    #[test]
    fn paged_chaos_recovers_bit_identical() {
        let g = generators::grid(12, 12);
        let base = || {
            let mut cfg = config(4);
            cfg.profile.out_of_core = Some(ooc_paged(
                1 << 20,
                1024,
                256,
                crate::profile::PartitionSchedule::FrontierDensity,
            ));
            cfg
        };
        let clean = Runner::new(&g, &HashPartitioner::default(), base()).run(&Flood);
        let plan = FaultPlan::none()
            .with_crash(3, 1)
            .with_delivery_failure(5, 0)
            .with_crash(7, 2);
        let cfg = base().with_checkpoint_every(2).with_faults(plan);
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        assert_eq!(clean.outcome, chaos.outcome);
        for v in g.vertices() {
            assert_eq!(clean.states[v as usize].0, chaos.states[v as usize].0);
        }
        assert!(
            chaos.stats.faults.replayed_rounds > 0,
            "rollback must replay"
        );
        // Rollback restored the partition caches exactly, so every
        // first-run round's pager counters — and everything else —
        // match the fault-free run bit for bit.
        assert_eq!(without_faults(chaos.stats), without_faults(clean.stats));
    }

    #[test]
    fn slab_state_paging_moves_state_and_preserves_results() {
        let g = generators::ring(256, false);
        let program = SlabFlood { width: 4 };
        let resident = Runner::new(&g, &HashPartitioner::default(), config(4)).run_slab(&program);
        let mut cfg = config(4);
        // Huge message budget isolates the measured state spill: any
        // spilled byte below is a slab row that really moved.
        let mut ooc = ooc_paged(
            1 << 30,
            2048,
            512,
            crate::profile::PartitionSchedule::FrontierDensity,
        );
        ooc.paging.as_mut().unwrap().page_state = true;
        cfg.profile.out_of_core = Some(ooc);
        let paged = Runner::new(&g, &HashPartitioner::default(), cfg).run_slab(&program);
        assert_eq!(
            resident.outcome.is_completed(),
            paged.outcome.is_completed()
        );
        for v in g.vertices() {
            assert_eq!(
                resident.states[v as usize], paged.states[v as usize],
                "vertex {v}"
            );
        }
        assert!(
            paged.stats.total_spilled_bytes > Bytes::ZERO,
            "inactive partitions' slab rows must page out"
        );
        assert!(paged.stats.total_partitions_skipped > 0);
    }

    #[test]
    fn broadcast_mode_runs_flood_equivalently() {
        /// Broadcast flood: same levels via ctx.broadcast.
        struct BFlood;
        impl VertexProgram for BFlood {
            type Message = Hop;
            type State = Level;
            fn message_bytes(&self) -> u64 {
                8
            }
            fn init(&self, v: VertexId, state: &mut Level, ctx: &mut Context<'_, Hop>) {
                if v == 0 {
                    state.0 = Some(0);
                    ctx.broadcast(Hop(1), 1);
                }
            }
            fn compute(
                &self,
                _v: VertexId,
                state: &mut Level,
                inbox: &[Delivery<Hop>],
                ctx: &mut Context<'_, Hop>,
            ) {
                let best = inbox.iter().map(|d| d.msg.0).min().unwrap();
                if state.0.map(|l| best < l).unwrap_or(true) {
                    state.0 = Some(best);
                    ctx.broadcast(Hop(best + 1), 1);
                }
            }
        }
        let g = generators::power_law(200, 900, 2.2, 3);
        let mut cfg = config(4);
        cfg.profile.mode = ExecutionMode::Broadcast {
            mirror_threshold: 8,
        };
        let result = Runner::new(&g, &HashPartitioner::default(), cfg).run(&BFlood);
        assert!(result.outcome.is_completed());
        let reference = mtvc_graph::reference::bfs_levels(&g, 0);
        for v in g.vertices() {
            let got = result.states[v as usize].0;
            let want = reference[v as usize];
            if want == u32::MAX {
                assert_eq!(got, None, "vertex {v}");
            } else {
                assert_eq!(got, Some(want), "vertex {v}");
            }
        }
    }

    #[test]
    fn max_rounds_guard_overloads() {
        let g = generators::ring(32, true);
        let mut cfg = config(2);
        cfg.max_rounds = 3;
        let result = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        assert!(result.outcome.is_overload());
    }

    #[test]
    fn threshold_controls_pool_creation() {
        let g = generators::ring(64, true);
        let serial = Runner::new(
            &g,
            &HashPartitioner::default(),
            config(4).with_parallel_threshold(usize::MAX),
        );
        assert!(serial.pool().is_none());
        let pooled = Runner::new(
            &g,
            &HashPartitioner::default(),
            config(4).with_parallel_threshold(1),
        );
        let pool = pooled.pool().expect("threshold 1 must build the pool");
        assert_eq!(pool.workers(), 4);
        // Single worker never pools, regardless of threshold.
        let single = Runner::new(
            &g,
            &HashPartitioner::default(),
            config(1).with_parallel_threshold(0),
        );
        assert!(single.pool().is_none());
    }

    #[test]
    fn pooled_pipeline_matches_serial_pipeline() {
        let g = generators::power_law(400, 1600, 2.3, 11);
        let serial = Runner::new(
            &g,
            &HashPartitioner::default(),
            config(4).with_parallel_threshold(usize::MAX),
        )
        .run(&Flood);
        let pooled = Runner::new(
            &g,
            &HashPartitioner::default(),
            config(4).with_parallel_threshold(1),
        )
        .run(&Flood);
        assert_eq!(serial.outcome, pooled.outcome);
        assert_eq!(serial.stats, pooled.stats, "RunStats must be bit-identical");
        for v in g.vertices() {
            assert_eq!(
                serial.states[v as usize].0, pooled.states[v as usize].0,
                "vertex {v}"
            );
        }
    }

    #[test]
    fn threaded_runs_are_deterministic() {
        let g = generators::power_law(300, 1200, 2.4, 17);
        let run = || {
            Runner::new(
                &g,
                &HashPartitioner::default(),
                config(4).with_parallel_threshold(1),
            )
            .run(&Flood)
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.stats, b.stats);
        for v in g.vertices() {
            assert_eq!(a.states[v as usize].0, b.states[v as usize].0);
        }
    }

    /// Zero the fault record so a chaos run can be compared field-for-
    /// field against a fault-free run (recovery cost is the only
    /// permitted difference).
    fn without_faults(mut stats: RunStats) -> RunStats {
        stats.faults = Default::default();
        stats
    }

    #[test]
    fn injected_crashes_recover_bit_identical() {
        // A grid's flood runs ~23 rounds, so every scheduled fault
        // fires well before quiescence.
        let g = generators::grid(12, 12);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        let plan = FaultPlan::none()
            .with_crash(3, 1)
            .with_delivery_failure(5, 0)
            .with_crash(5, 2);
        let cfg = config(4).with_checkpoint_every(2).with_faults(plan);
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);

        assert_eq!(clean.outcome, chaos.outcome);
        for v in g.vertices() {
            assert_eq!(
                clean.states[v as usize].0, chaos.states[v as usize].0,
                "vertex {v}"
            );
        }
        let f = chaos.stats.faults;
        assert_eq!(f.injected, 3);
        assert_eq!(f.crashes, 2);
        assert_eq!(f.delivery_failures, 1);
        assert!(f.checkpoints > 0);
        assert!(f.replayed_rounds > 0, "rollback must replay rounds");
        assert!(f.replayed_wire > 0, "replay retransmits wire traffic");
        assert!(f.recovery_time > SimTime::ZERO);
        assert_eq!(
            without_faults(chaos.stats),
            without_faults(clean.stats),
            "non-replay statistics must match the fault-free run"
        );
    }

    #[test]
    fn fault_at_round_zero_recovers() {
        let g = generators::ring(32, true);
        let cfg = config(2)
            .with_checkpoint_every(4)
            .with_faults(FaultPlan::none().with_crash(0, 0));
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(2)).run(&Flood);
        assert_eq!(clean.outcome, chaos.outcome);
        assert_eq!(chaos.stats.faults.injected, 1);
        assert_eq!(without_faults(chaos.stats), without_faults(clean.stats));
    }

    #[test]
    fn empty_plan_checkpoints_but_changes_nothing() {
        let g = generators::ring(64, true);
        let cfg = config(2)
            .with_checkpoint_every(3)
            .with_faults(FaultPlan::none());
        let armed = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(2)).run(&Flood);
        assert!(armed.stats.faults.checkpoints > 1);
        assert_eq!(armed.stats.faults.injected, 0);
        assert_eq!(armed.stats.faults.replayed_rounds, 0);
        assert_eq!(without_faults(armed.stats), without_faults(clean.stats));
    }

    #[test]
    fn hard_oom_kills_where_soft_model_survives() {
        let g = generators::complete(48);
        let peak = Runner::new(&g, &HashPartitioner::default(), config(2))
            .run(&Flood)
            .stats
            .peak_memory;
        // Capacity just under the observed peak: the soft cost model
        // tolerates demand up to 1.4× capacity (thrashing regime), so
        // the run completes; the hard OOM kill fires the moment demand
        // exceeds capacity.
        let cap = Bytes((peak.get() as f64 * 0.9) as u64);
        let mut soft = config(2);
        soft.cluster.machine.memory = cap;
        let soft_run = Runner::new(&g, &HashPartitioner::default(), soft.clone()).run(&Flood);
        assert!(
            soft_run.outcome.is_completed(),
            "soft model thrashes through"
        );

        let hard = soft.with_faults(FaultPlan::none().with_hard_oom());
        let hard_run = Runner::new(&g, &HashPartitioner::default(), hard).run(&Flood);
        assert!(hard_run.outcome.is_overflow(), "hard OOM kill aborts");
        assert_eq!(hard_run.stats.faults.oom_kills, 1);
        assert!(hard_run.stats.peak_memory > cap);
    }

    #[test]
    fn pooled_chaos_matches_serial_chaos() {
        let g = generators::power_law(400, 1600, 2.3, 11);
        let plan = FaultPlan::random(7, 4, 12, 2, 2);
        let make = |threshold: usize| {
            Runner::new(
                &g,
                &HashPartitioner::default(),
                config(4)
                    .with_parallel_threshold(threshold)
                    .with_checkpoint_every(3)
                    .with_faults(plan.clone()),
            )
            .run(&Flood)
        };
        let serial = make(usize::MAX);
        let pooled = make(1);
        assert_eq!(serial.outcome, pooled.outcome);
        assert_eq!(serial.stats, pooled.stats, "fault record included");
        for v in g.vertices() {
            assert_eq!(serial.states[v as usize].0, pooled.states[v as usize].0);
        }
    }

    #[test]
    fn pool_thread_ids_stable_across_rounds() {
        /// Flood variant that records which OS thread computed each
        /// round, proving no per-round thread churn.
        struct TracingFlood {
            log: Mutex<Vec<(usize, ThreadId)>>,
        }
        impl VertexProgram for TracingFlood {
            type Message = Hop;
            type State = Level;
            fn message_bytes(&self) -> u64 {
                8
            }
            fn init(&self, v: VertexId, state: &mut Level, ctx: &mut Context<'_, Hop>) {
                self.log
                    .lock()
                    .unwrap()
                    .push((ctx.round(), std::thread::current().id()));
                if v == 0 {
                    state.0 = Some(0);
                    for &t in ctx.neighbors() {
                        ctx.send(t, Hop(1), 1);
                    }
                }
            }
            fn compute(
                &self,
                _v: VertexId,
                state: &mut Level,
                inbox: &[Delivery<Hop>],
                ctx: &mut Context<'_, Hop>,
            ) {
                self.log
                    .lock()
                    .unwrap()
                    .push((ctx.round(), std::thread::current().id()));
                let best = inbox.iter().map(|d| d.msg.0).min().unwrap();
                if state.0.map(|l| best < l).unwrap_or(true) {
                    state.0 = Some(best);
                    for &t in ctx.neighbors() {
                        ctx.send(t, Hop(best + 1), 1);
                    }
                }
            }
        }

        let g = generators::ring(64, true);
        let runner = Runner::new(
            &g,
            &HashPartitioner::default(),
            config(4).with_parallel_threshold(1),
        );
        let pool_ids: std::collections::HashSet<ThreadId> = runner
            .pool()
            .unwrap()
            .thread_ids()
            .iter()
            .copied()
            .collect();
        let program = TracingFlood {
            log: Mutex::new(Vec::new()),
        };
        let result = runner.run(&program);
        assert!(result.outcome.is_completed());

        let log = program.log.into_inner().unwrap();
        let rounds = log.iter().map(|&(r, _)| r).max().unwrap();
        assert!(rounds >= 8, "flood over a 64-ring runs many rounds");
        let ids_in = |r: usize| -> std::collections::HashSet<ThreadId> {
            log.iter()
                .filter(|&&(round, _)| round == r)
                .map(|&(_, id)| id)
                .collect()
        };
        let first = ids_in(0);
        assert!(!first.is_empty());
        assert!(
            first.is_subset(&pool_ids),
            "compute must run on pool threads"
        );
        for r in 1..=rounds {
            let ids = ids_in(r);
            if ids.is_empty() {
                continue; // quiescent tail round
            }
            assert!(
                ids.is_subset(&first),
                "round {r} ran on threads outside round 0's set"
            );
        }
    }

    #[test]
    fn co_scheduled_faults_all_fire_and_recover() {
        let g = generators::grid(12, 12);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        // Four different fault kinds, all at round 3: one take_all_at
        // call must fire every one of them.
        let plan = FaultPlan::none()
            .with_crash(3, 1)
            .with_delivery_failure(3, 0)
            .with_corruption(3, 2, 1)
            .with_straggler(3, 3, 100_000, 2);
        let cfg = config(4).with_checkpoint_every(2).with_faults(plan);
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);

        assert_eq!(clean.outcome, chaos.outcome);
        let f = chaos.stats.faults;
        assert_eq!(f.injected, 4, "all co-scheduled events fire");
        assert_eq!(f.crashes, 1);
        assert_eq!(f.delivery_failures, 1);
        assert_eq!(f.stragglers, 1);
        assert_eq!(f.corrupted_buckets, 1);
        assert!(f.replayed_rounds > 0);
        assert_eq!(without_faults(chaos.stats), without_faults(clean.stats));
        for v in g.vertices() {
            assert_eq!(clean.states[v as usize].0, chaos.states[v as usize].0);
        }
    }

    #[test]
    fn corruption_retransmits_without_rollback() {
        let g = generators::grid(12, 12);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        let plan = FaultPlan::none()
            .with_corruption(4, 1, 2)
            .with_corruption(6, 3, 1);
        let cfg = config(4).with_checkpoint_every(2).with_faults(plan);
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);

        assert_eq!(clean.outcome, chaos.outcome);
        let f = chaos.stats.faults;
        assert_eq!(f.injected, 2);
        assert_eq!(f.corrupted_buckets, 3);
        assert_eq!(f.retransmitted_buckets, 3);
        assert!(f.retransmitted_bytes.get() > 0, "buckets carry bytes");
        assert!(f.recovery_time > SimTime::ZERO, "retransfer costs time");
        assert_eq!(
            f.replayed_rounds, 0,
            "corruption repairs by retransmission, not rollback"
        );
        assert_eq!(f.replayed_wire, 0);
        assert_eq!(without_faults(chaos.stats), without_faults(clean.stats));
        for v in g.vertices() {
            assert_eq!(clean.states[v as usize].0, chaos.states[v as usize].0);
        }
    }

    #[test]
    fn stragglers_cost_time_without_changing_outputs() {
        let g = generators::grid(12, 12);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        // 1000x slowdown guarantees the straggler dominates its rounds'
        // critical path, whatever the compute/network balance.
        let plan = FaultPlan::none()
            .with_straggler(2, 1, 100_000, 3)
            .with_straggler(3, 2, 200, 2);
        let cfg = config(4).with_checkpoint_every(2).with_faults(plan);
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);

        assert_eq!(clean.outcome, chaos.outcome);
        let f = chaos.stats.faults;
        assert_eq!(f.injected, 2);
        assert_eq!(f.stragglers, 2);
        assert!(f.straggler_time > SimTime::ZERO, "slow window costs time");
        assert_eq!(f.replayed_rounds, 0, "stragglers never roll back");
        assert_eq!(without_faults(chaos.stats), without_faults(clean.stats));
        for v in g.vertices() {
            assert_eq!(clean.states[v as usize].0, chaos.states[v as usize].0);
        }
    }

    #[test]
    fn partitions_roll_back_and_recover() {
        let g = generators::grid(12, 12);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        // Round 5 is off the checkpoint cadence, so healing the
        // partition really does replay a round.
        let plan = FaultPlan::none().with_partition(5, 2);
        let cfg = config(4).with_checkpoint_every(2).with_faults(plan);
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);

        assert_eq!(clean.outcome, chaos.outcome);
        let f = chaos.stats.faults;
        assert_eq!(f.injected, 1);
        assert_eq!(f.partitions, 1);
        assert!(f.replayed_rounds > 0, "lost deliveries replay");
        assert!(f.recovery_time > SimTime::ZERO, "stall plus replay");
        assert_eq!(without_faults(chaos.stats), without_faults(clean.stats));
        for v in g.vertices() {
            assert_eq!(clean.states[v as usize].0, chaos.states[v as usize].0);
        }
    }

    #[test]
    fn chaos_mix_recovers_bit_identical() {
        let g = generators::grid(12, 12);
        let clean = Runner::new(&g, &HashPartitioner::default(), config(4)).run(&Flood);
        let mix = ChaosMix {
            crashes: 1,
            losses: 1,
            stragglers: 2,
            partitions: 1,
            corruptions: 2,
        };
        let plan = FaultPlan::chaos(0xC1A0, 4, 8, mix);
        let cfg = config(4).with_checkpoint_every(2).with_faults(plan);
        let chaos = Runner::new(&g, &HashPartitioner::default(), cfg).run(&Flood);

        assert_eq!(clean.outcome, chaos.outcome);
        assert_eq!(chaos.stats.faults.injected as usize, mix.total());
        assert_eq!(without_faults(chaos.stats), without_faults(clean.stats));
        for v in g.vertices() {
            assert_eq!(clean.states[v as usize].0, chaos.states[v as usize].0);
        }
    }

    #[test]
    fn checkpoint_cadence_edges_are_safe() {
        let g = generators::ring(32, true);
        let plan = FaultPlan::none().with_crash(3, 0);
        let run = |every: usize| {
            Runner::new(
                &g,
                &HashPartitioner::default(),
                config(2)
                    .with_checkpoint_every(every)
                    .with_faults(plan.clone()),
            )
            .run(&Flood)
        };
        let clean = Runner::new(&g, &HashPartitioner::default(), config(2)).run(&Flood);
        let every_round = run(1);
        let zero = run(0);
        let sparse = run(10_000);
        // `0` is documented to mean "every round" — identical to 1.
        assert_eq!(every_round.stats, zero.stats);
        // Cadence beyond the run length: only the round-0 snapshot
        // exists, so recovery replays from the very start.
        assert_eq!(sparse.stats.faults.checkpoints, 1);
        assert!(sparse.stats.faults.replayed_rounds >= 3);
        for r in [&every_round, &zero, &sparse] {
            assert_eq!(r.outcome, clean.outcome);
            assert_eq!(
                without_faults(r.stats.clone()),
                without_faults(clean.stats.clone())
            );
            for v in g.vertices() {
                assert_eq!(clean.states[v as usize].0, r.states[v as usize].0);
            }
        }
    }

    /// Multi-lane flood over a state slab: lane `q` floods hop counts
    /// from source vertex `q`. Exercises the slab delta path of
    /// incremental checkpoints.
    struct SlabFlood {
        width: usize,
    }

    #[derive(Clone, Debug)]
    struct LaneHop {
        lane: u16,
        dist: u64,
    }
    impl Message for LaneHop {
        fn combine_key(&self) -> Option<u64> {
            Some(u64::from(self.lane))
        }
        fn merge(&mut self, other: &Self) {
            self.dist = self.dist.min(other.dist);
        }
    }

    impl crate::slab::SlabProgram for SlabFlood {
        type Message = LaneHop;
        type Cell = u64;
        type Out = Vec<u64>;

        fn width(&self) -> usize {
            self.width
        }
        fn empty_cell(&self) -> u64 {
            u64::MAX
        }
        fn message_bytes(&self) -> u64 {
            12
        }

        fn init(
            &self,
            v: VertexId,
            mut row: crate::slab::SlabRowMut<'_, u64>,
            ctx: &mut Context<'_, LaneHop>,
        ) {
            if (v as usize) < self.width {
                let q = v as usize;
                row.relax_min(q, 0);
                for &t in ctx.neighbors() {
                    ctx.send(
                        t,
                        LaneHop {
                            lane: q as u16,
                            dist: 1,
                        },
                        1,
                    );
                }
            }
        }

        fn compute(
            &self,
            _v: VertexId,
            mut row: crate::slab::SlabRowMut<'_, u64>,
            inbox: &[Delivery<LaneHop>],
            ctx: &mut Context<'_, LaneHop>,
        ) {
            for d in inbox {
                row.relax_min(d.msg.lane as usize, d.msg.dist);
            }
            let mut improved = Vec::new();
            row.drain(|q, cell| improved.push((q, *cell)));
            for (q, dist) in improved {
                for &t in ctx.neighbors() {
                    ctx.send(
                        t,
                        LaneHop {
                            lane: q as u16,
                            dist: dist + 1,
                        },
                        1,
                    );
                }
            }
        }

        fn extract(&self, _v: VertexId, row: &[u64]) -> Vec<u64> {
            row.to_vec()
        }
    }

    #[test]
    fn incremental_checkpoints_match_full_and_store_less() {
        let g = generators::grid(12, 12);
        let program = SlabFlood { width: 4 };
        let plan = FaultPlan::none()
            .with_crash(5, 1)
            .with_delivery_failure(9, 0);
        let base = || config(4).with_checkpoint_every(2).with_faults(plan.clone());
        let clean = Runner::new(&g, &HashPartitioner::default(), config(4)).run_slab(&program);
        let full = Runner::new(&g, &HashPartitioner::default(), base()).run_slab(&program);
        let incr = Runner::new(
            &g,
            &HashPartitioner::default(),
            base().with_incremental_checkpoints(4),
        )
        .run_slab(&program);

        assert_eq!(full.outcome, incr.outcome);
        assert_eq!(clean.outcome, incr.outcome);
        for v in g.vertices() {
            assert_eq!(
                full.states[v as usize], incr.states[v as usize],
                "vertex {v}"
            );
            assert_eq!(
                clean.states[v as usize], incr.states[v as usize],
                "vertex {v}"
            );
        }
        assert_eq!(
            without_faults(full.stats.clone()),
            without_faults(incr.stats.clone()),
            "delta storage must not change execution"
        );
        let fi = &incr.stats.faults;
        let ff = &full.stats.faults;
        assert!(fi.delta_checkpoints > 0, "cadence rounds store deltas");
        assert!(fi.checkpoint_delta_bytes.get() > 0);
        assert!(fi.checkpoint_full_bytes.get() > 0, "base snapshots remain");
        assert_eq!(fi.checkpoints, ff.checkpoints, "same cadence either way");
        assert_eq!(ff.delta_checkpoints, 0);
        assert!(
            fi.checkpoint_full_bytes < ff.checkpoint_full_bytes,
            "deltas displace full snapshots"
        );
        // On the sparse wavefront a delta is far smaller than a full
        // snapshot of the same round.
        let per_delta = fi.checkpoint_delta_bytes.get() / fi.delta_checkpoints;
        let per_full = ff.checkpoint_full_bytes.get() / ff.checkpoints;
        assert!(
            per_delta < per_full,
            "delta {per_delta}B per checkpoint vs full {per_full}B"
        );
    }
}
