//! Messages and envelopes.
//!
//! The engine moves [`Envelope`]s: a destination, a payload, and a
//! **multiplicity** — how many wire-level messages the envelope stands
//! for. Multiplicity lets the tasks run in aggregated form (e.g. BPPR
//! moves *counts* of random walks rather than individual walks, which is
//! distributionally identical — see `mtvc-tasks::bppr`) while the cost
//! accounting still charges a non-combining system for every individual
//! wire message, exactly as the paper's Pregel+ implementation pays.

use mtvc_graph::VertexId;

/// Payload trait. Combinable payloads expose a key: the engine merges
/// envelopes with equal `(destination, key)` when the active system
/// profile enables combining (GraphLab(sync)-style).
pub trait Message: Clone + Send + Sync {
    /// Combining key within a destination vertex; `None` disables
    /// combining for this payload entirely.
    fn combine_key(&self) -> Option<u64>;

    /// Merge `other` into `self`. Only called for equal
    /// `(destination, combine_key)`; multiplicities are summed by the
    /// engine separately.
    fn merge(&mut self, other: &Self);
}

/// Unit payload for tests and simple notifications.
impl Message for () {
    fn combine_key(&self) -> Option<u64> {
        None
    }
    fn merge(&mut self, _other: &Self) {}
}

/// A routed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    pub dest: VertexId,
    pub msg: M,
    /// Number of wire messages this envelope represents (≥ 1).
    pub mult: u64,
}

impl<M> Envelope<M> {
    pub fn new(dest: VertexId, msg: M, mult: u64) -> Self {
        debug_assert!(mult >= 1, "envelope multiplicity must be >= 1");
        Envelope { dest, msg, mult }
    }
}

impl<M: Message> Envelope<M> {
    /// Combining sort tag: `(dest, key-is-None, key)`. Computed once
    /// per envelope and cached by the router's combine stage, so the
    /// sort comparator never re-invokes [`Message::combine_key`].
    /// Unkeyed envelopes (`None`) order strictly after every keyed
    /// envelope of the same destination — a `Some(u64::MAX)` key can
    /// never interleave with them.
    pub(crate) fn sort_tag(&self) -> (VertexId, bool, u64) {
        let key = self.msg.combine_key();
        (self.dest, key.is_none(), key.unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Walk {
        source: u32,
    }

    impl Message for Walk {
        fn combine_key(&self) -> Option<u64> {
            Some(self.source as u64)
        }
        fn merge(&mut self, _other: &Self) {}
    }

    #[test]
    fn unit_message_never_combines() {
        assert_eq!(().combine_key(), None);
    }

    #[test]
    fn sort_tag_orders_unkeyed_after_all_keys() {
        #[derive(Clone, Debug)]
        struct K(Option<u64>);
        impl Message for K {
            fn combine_key(&self) -> Option<u64> {
                self.0
            }
            fn merge(&mut self, _o: &Self) {}
        }
        let max = Envelope::new(3, K(Some(u64::MAX)), 1);
        let none = Envelope::new(3, K(None), 1);
        let zero = Envelope::new(3, K(Some(0)), 1);
        assert!(zero.sort_tag() < max.sort_tag());
        assert!(max.sort_tag() < none.sort_tag());
    }

    #[test]
    fn envelope_carries_multiplicity() {
        let e = Envelope::new(3, Walk { source: 7 }, 12);
        assert_eq!(e.dest, 3);
        assert_eq!(e.mult, 12);
        assert_eq!(e.msg.combine_key(), Some(7));
    }

    #[test]
    #[should_panic(expected = "multiplicity")]
    #[cfg(debug_assertions)]
    fn zero_multiplicity_rejected() {
        let _ = Envelope::new(0, (), 0);
    }
}
