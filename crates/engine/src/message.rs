//! Messages and envelopes.
//!
//! The engine moves [`Envelope`]s: a destination, a payload, and a
//! **multiplicity** — how many wire-level messages the envelope stands
//! for. Multiplicity lets the tasks run in aggregated form (e.g. BPPR
//! moves *counts* of random walks rather than individual walks, which is
//! distributionally identical — see `mtvc-tasks::bppr`) while the cost
//! accounting still charges a non-combining system for every individual
//! wire message, exactly as the paper's Pregel+ implementation pays.

use mtvc_graph::VertexId;

/// Payload trait. Combinable payloads expose a key: the engine merges
/// envelopes with equal `(destination, key)` when the active system
/// profile enables combining (GraphLab(sync)-style).
pub trait Message: Clone + Send + Sync {
    /// Combining key within a destination vertex; `None` disables
    /// combining for this payload entirely.
    fn combine_key(&self) -> Option<u64>;

    /// Merge `other` into `self`. Only called for equal
    /// `(destination, combine_key)`; multiplicities are summed by the
    /// engine separately.
    fn merge(&mut self, other: &Self);

    /// Query/group id carried by the compact wire format's run-length
    /// stream (`engine::wire`) instead of inside each payload. Payloads
    /// without a natural grouping id return `None` and ride a one-byte
    /// flag per run.
    fn wire_query(&self) -> Option<u64> {
        None
    }

    /// Size of this payload under the compact wire format, **excluding**
    /// the destination index and [`wire_query`] (both carried by shared
    /// bucket streams). The default is a conservative fixed-width word.
    ///
    /// [`wire_query`]: Message::wire_query
    fn encoded_payload_bytes(&self) -> u64 {
        8
    }
}

/// Unit payload for tests and simple notifications.
impl Message for () {
    fn combine_key(&self) -> Option<u64> {
        None
    }
    fn merge(&mut self, _other: &Self) {}
    fn encoded_payload_bytes(&self) -> u64 {
        0
    }
}

/// A routed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    pub dest: VertexId,
    pub msg: M,
    /// Number of wire messages this envelope represents (≥ 1).
    pub mult: u64,
}

impl<M> Envelope<M> {
    pub fn new(dest: VertexId, msg: M, mult: u64) -> Self {
        debug_assert!(mult >= 1, "envelope multiplicity must be >= 1");
        Envelope { dest, msg, mult }
    }
}

/// One delivered message run entry: the payload plus the wire
/// multiplicity it stands for. This is what [`VertexProgram::compute`]
/// receives — the routing merge stage moves each envelope's payload
/// into a grouped delivery buffer exactly once, so the compute phase
/// never clones a message.
///
/// [`VertexProgram::compute`]: crate::program::VertexProgram::compute
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<M> {
    pub msg: M,
    /// Number of wire messages this delivery represents (≥ 1).
    pub mult: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Walk {
        source: u32,
    }

    impl Message for Walk {
        fn combine_key(&self) -> Option<u64> {
            Some(self.source as u64)
        }
        fn merge(&mut self, _other: &Self) {}
    }

    #[test]
    fn unit_message_never_combines() {
        assert_eq!(().combine_key(), None);
    }

    #[test]
    fn delivery_preserves_payload_and_multiplicity() {
        let d = Delivery {
            msg: Walk { source: 7 },
            mult: 4,
        };
        assert_eq!(d.msg.combine_key(), Some(7));
        assert_eq!(d.mult, 4);
    }

    #[test]
    fn envelope_carries_multiplicity() {
        let e = Envelope::new(3, Walk { source: 7 }, 12);
        assert_eq!(e.dest, 3);
        assert_eq!(e.mult, 12);
        assert_eq!(e.msg.combine_key(), Some(7));
    }

    #[test]
    #[should_panic(expected = "multiplicity")]
    #[cfg(debug_assertions)]
    fn zero_multiplicity_rejected() {
        let _ = Envelope::new(0, (), 0);
    }
}
