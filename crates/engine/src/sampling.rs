//! Random-variate sampling used by the aggregated random-walk tasks
//! and by [`crate::Context::send_uniform_spread`].
//!
//! BPPR moves random walks in aggregated form: a vertex holding `n`
//! walks of one source samples how many stop (binomial) and how the
//! rest spread over `d` neighbors (uniform multinomial). The samplers
//! here are exact for small counts and use a moment-matched normal
//! approximation for large counts, keeping expectations exact — which
//! is what the unbiasedness of the PPR estimator requires.

use rand::rngs::SmallRng;
use rand::Rng;

/// Sample `Binomial(n, p)`.
///
/// Exact Bernoulli summation for `n ≤ 64`; otherwise a normal
/// approximation with continuity correction, clamped to `[0, n]`. The
/// approximation error is negligible for the n where it is used
/// (`n > 64` ⇒ `np(1-p)` large for the p ∈ [0.1, 0.9] range BPPR uses).
pub fn binomial(rng: &mut SmallRng, n: u64, p: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        let mut count = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                count += 1;
            }
        }
        count
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let z = standard_normal(rng);
        let x = (mean + sd * z).round();
        x.clamp(0.0, n as f64) as u64
    }
}

/// Standard normal variate via Box–Muller.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Spread `n` items uniformly over `k` bins (multinomial with equal
/// probabilities). Calls `emit(bin, count)` for non-empty bins; a bin
/// may be emitted more than once (callers must treat emissions as
/// additive).
///
/// Two regimes: when `n` is tiny it is cheaper to place each item
/// individually (no allocation); otherwise the conditional binomial
/// method runs in `O(k)`.
pub fn multinomial_uniform(rng: &mut SmallRng, n: u64, k: usize, mut emit: impl FnMut(usize, u64)) {
    if n == 0 || k == 0 {
        return;
    }
    if k == 1 {
        emit(0, n);
        return;
    }
    if n < k as u64 && n <= 32 {
        // Sparse placement: one draw per item, no allocation. The same
        // bin may be emitted repeatedly; emissions are additive.
        for _ in 0..n {
            emit(rng.gen_range(0..k), 1);
        }
    } else {
        // Conditional binomials: bin i gets Binomial(rem, 1/(k-i)).
        let mut rem = n;
        for i in 0..k {
            if rem == 0 {
                break;
            }
            let left = (k - i) as f64;
            let c = if i == k - 1 {
                rem
            } else {
                binomial(rng, rem, 1.0 / left)
            };
            if c > 0 {
                emit(i, c);
            }
            rem -= c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(1);
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
    }

    #[test]
    fn binomial_small_n_mean() {
        let mut r = rng(2);
        let trials = 20_000;
        let sum: u64 = (0..trials).map(|_| binomial(&mut r, 20, 0.3)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn binomial_large_n_mean_and_bounds() {
        let mut r = rng(3);
        let trials = 5_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let x = binomial(&mut r, 10_000, 0.2);
            assert!(x <= 10_000);
            sum += x;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 2000.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn multinomial_conserves_total() {
        let mut r = rng(4);
        for &(n, k) in &[(100u64, 7usize), (5, 100), (1000, 3), (0, 5), (64, 64)] {
            let mut total = 0;
            multinomial_uniform(&mut r, n, k, |b, c| {
                assert!(b < k);
                total += c;
            });
            assert_eq!(total, n, "n={n} k={k}");
        }
    }

    #[test]
    fn multinomial_is_roughly_uniform() {
        let mut r = rng(5);
        let k = 8;
        let mut counts = vec![0u64; k];
        for _ in 0..200 {
            multinomial_uniform(&mut r, 400, k, |b, c| counts[b] += c);
        }
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 80_000);
        let expect = total as f64 / k as f64;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bin {b}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn multinomial_single_bin() {
        let mut r = rng(6);
        let mut got = None;
        multinomial_uniform(&mut r, 42, 1, |b, c| got = Some((b, c)));
        assert_eq!(got, Some((0, 42)));
    }

    #[test]
    fn sparse_branch_hits_each_item() {
        let mut r = rng(7);
        let mut total = 0;
        // n=3 < k=1000 triggers the sparse path.
        multinomial_uniform(&mut r, 3, 1000, |b, c| {
            assert!(b < 1000);
            total += c;
        });
        assert_eq!(total, 3);
    }
}
