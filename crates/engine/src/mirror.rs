//! Mirroring index for the Pregel+(mirror) broadcast interface.
//!
//! Section 2.2: "a mirror is created for each high-degree vertex v on
//! all other workers that contain v's neighbor(s). … When forwarding a
//! message from v to its neighbors, the mirror workers act as v's
//! proxies." A broadcast from a mirrored vertex therefore costs one wire
//! message per *remote worker hosting neighbors*, instead of one per
//! neighbor; the mirror fans out locally.

use mtvc_graph::partition::{Partition, WorkerId};
use mtvc_graph::{Graph, VertexId};

/// Precomputed mirroring information for one (graph, partition,
/// threshold) combination.
#[derive(Debug, Clone)]
pub struct MirrorIndex {
    /// Degree threshold above which a vertex is mirrored.
    threshold: usize,
    /// For each vertex: `None` if not mirrored; otherwise the list of
    /// workers (other than the owner) hosting at least one neighbor.
    mirror_workers: Vec<Option<Vec<WorkerId>>>,
}

impl MirrorIndex {
    /// Build the index. O(m) over the graph.
    pub fn build(g: &Graph, part: &Partition, threshold: usize) -> MirrorIndex {
        let mut mirror_workers = vec![None; g.num_vertices()];
        let mut scratch = vec![false; part.num_workers()];
        for v in g.vertices() {
            if g.degree(v) <= threshold {
                continue;
            }
            scratch.iter_mut().for_each(|b| *b = false);
            let owner = part.owner_of(v);
            for &t in g.neighbors(v) {
                scratch[part.owner_of(t) as usize] = true;
            }
            scratch[owner as usize] = false; // local fan-out is free
            let workers: Vec<WorkerId> = scratch
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(w, _)| w as WorkerId)
                .collect();
            mirror_workers[v as usize] = Some(workers);
        }
        MirrorIndex {
            threshold,
            mirror_workers,
        }
    }

    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Is `v` mirrored?
    pub fn is_mirrored(&self, v: VertexId) -> bool {
        self.mirror_workers[v as usize].is_some()
    }

    /// Remote workers holding mirrors of `v` (empty slice if not
    /// mirrored or all neighbors are local).
    pub fn workers(&self, v: VertexId) -> &[WorkerId] {
        self.mirror_workers[v as usize].as_deref().unwrap_or(&[])
    }

    /// Single-lookup combination of [`is_mirrored`](Self::is_mirrored)
    /// and [`workers`](Self::workers) for the routing hot path:
    /// `Some(remote mirror workers)` if `v` is mirrored (possibly empty
    /// when every neighbor is local), `None` for per-neighbor wire
    /// accounting.
    pub fn fanout(&self, v: VertexId) -> Option<&[WorkerId]> {
        self.mirror_workers[v as usize].as_deref()
    }

    /// Wire messages a broadcast from `v` costs on the network:
    /// mirrored ⇒ one per remote mirror worker; not mirrored ⇒ one per
    /// remote neighbor (computed by the router instead — this returns
    /// `None` to signal per-neighbor accounting).
    pub fn broadcast_wire_count(&self, v: VertexId) -> Option<u64> {
        self.mirror_workers[v as usize]
            .as_ref()
            .map(|ws| ws.len() as u64)
    }

    /// Number of mirrored vertices.
    pub fn mirrored_count(&self) -> usize {
        self.mirror_workers.iter().filter(|m| m.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;
    use mtvc_graph::partition::{Partitioner, RangePartitioner};

    #[test]
    fn hub_is_mirrored_leaves_are_not() {
        let g = generators::star(40); // hub 0 has degree 39
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 10);
        assert!(idx.is_mirrored(0));
        assert!(!idx.is_mirrored(5));
        assert_eq!(idx.mirrored_count(), 1);
    }

    #[test]
    fn mirror_workers_exclude_owner() {
        let g = generators::star(40);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 10);
        let owner = p.owner_of(0);
        assert!(!idx.workers(0).contains(&owner));
        // Hub neighbors span all 4 workers; 3 remote mirror workers.
        assert_eq!(idx.workers(0).len(), 3);
        assert_eq!(idx.broadcast_wire_count(0), Some(3));
    }

    #[test]
    fn unmirrored_vertex_signals_per_neighbor_accounting() {
        let g = generators::star(40);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 10);
        assert_eq!(idx.broadcast_wire_count(7), None);
        assert!(idx.workers(7).is_empty());
        assert_eq!(idx.fanout(7), None);
    }

    #[test]
    fn fanout_matches_is_mirrored_and_workers() {
        let g = generators::star(40);
        let p = RangePartitioner.partition(&g, 4);
        let idx = MirrorIndex::build(&g, &p, 10);
        for v in g.vertices() {
            match idx.fanout(v) {
                Some(ws) => {
                    assert!(idx.is_mirrored(v));
                    assert_eq!(ws, idx.workers(v));
                }
                None => assert!(!idx.is_mirrored(v)),
            }
        }
    }

    #[test]
    fn threshold_inclusive_boundary() {
        // ring: all degree 2. threshold 2 means "degree > 2" -> none.
        let g = generators::ring(10, true);
        let p = RangePartitioner.partition(&g, 2);
        let idx = MirrorIndex::build(&g, &p, 2);
        assert_eq!(idx.mirrored_count(), 0);
        let idx1 = MirrorIndex::build(&g, &p, 1);
        assert_eq!(idx1.mirrored_count(), 10);
    }

    #[test]
    fn single_worker_mirrors_have_no_remote_targets() {
        let g = generators::star(20);
        let p = RangePartitioner.partition(&g, 1);
        let idx = MirrorIndex::build(&g, &p, 5);
        assert!(idx.is_mirrored(0));
        assert_eq!(idx.broadcast_wire_count(0), Some(0));
    }
}
