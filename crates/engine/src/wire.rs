//! Compact wire format for shard buckets.
//!
//! The router's default accounting charges `payload_units * msg_bytes`
//! per (source, destination) pair — a `size_of`-style estimate that
//! ships a full `(VertexId u64, query, payload u64)` tuple for every
//! unit. This module defines the **compact struct-of-arrays encoding**
//! one shard bucket takes on the wire instead, and the measurement the
//! routing pipeline feeds to the cost model when a profile selects
//! [`WireFormat::Compact`]:
//!
//! ```text
//! header     varint(n_tuples)  varint(n_runs)
//! directory  per distinct destination local index, ascending:
//!            varint(delta_li)  varint(run_len)        (delta-sorted u32)
//! mults      per tuple, in li-sorted order: varint(mult)
//! queries    run-length groups over li-sorted order:
//!            varint(run_len)  flag_byte  [varint(query) if flagged]
//! payloads   per tuple, in li-sorted order: PayloadCodec bytes
//! ```
//!
//! Tuples are transmitted in **destination-local-index order, stable by
//! send order** — exactly the grouped order the merge stage scatters
//! into, so destinations carry no per-tuple address at all: the
//! delta-varint directory reconstructs every local index. Query ids ride
//! a run-length stream ([`Message::wire_query`]) and payloads choose
//! their own representation through [`PayloadCodec`] (fixed-width for
//! float residues, varints for distances and ids).
//!
//! [`measure_bucket`] computes the encoded size of a bucket without
//! materializing bytes; it is the serial router oracle's measurement and
//! is pinned `== encode_bucket(..).len()` by property tests (the grid
//! computes the same quantity a third way, from its histogram scatter).
//!
//! [`Message::wire_query`]: crate::message::Message::wire_query

use crate::message::{Envelope, Message};
use mtvc_graph::VertexId;

/// Which wire representation a profile's network accounting assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum WireFormat {
    /// Full tuples: every payload unit costs `msg_bytes` (the paper's
    /// baseline systems, and the default).
    #[default]
    Tuples,
    /// Struct-of-arrays shard buckets: delta-varint index directory,
    /// query run-length groups, per-payload codecs. Network bytes are
    /// the real encoded size.
    Compact,
}

/// Bytes of `x` as an LEB128 varint. Branchless — one byte per started
/// 7-bit group of the value's significant bits (`x | 1` gives zero one
/// significant bit) — because the measurement paths call this per
/// envelope per lane, where a shift-loop's data-dependent branch
/// mispredicts on mixed-magnitude payloads.
#[inline]
pub fn varint_len(x: u64) -> u64 {
    (64 - (x | 1).leading_zeros() as u64).div_ceil(7)
}

/// Append `x` to `out` as an LEB128 varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push(x as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Read one LEB128 varint at `*pos`, advancing it.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        x |= ((b & 0x7F) as u64) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// A message payload that knows its own compact byte representation.
/// The encoded bytes must **exclude** the destination (carried by the
/// bucket directory) and the query id (carried by the run-length
/// stream); `encode_payload` must write exactly
/// [`Message::encoded_payload_bytes`] bytes.
pub trait PayloadCodec: Message {
    /// Append this payload's bytes to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decode one payload. `wire_query` is the value recovered from the
    /// bucket's query stream for this tuple (what
    /// [`Message::wire_query`] returned at encode time).
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self;
}

/// Bytes of the query-stream entry for one run of `key`.
#[inline]
fn query_run_len(key: Option<u64>) -> u64 {
    // varint(run_len) is added by the caller; this is flag + payload.
    1 + key.map_or(0, varint_len)
}

/// Stable order of bucket positions by destination local index — the
/// canonical transmission (and delivery) order.
fn sorted_order<M>(envs: &[Envelope<M>], li_of: &impl Fn(VertexId) -> u32) -> Vec<u32> {
    let mut order: Vec<u32> = (0..envs.len() as u32).collect();
    order.sort_by_key(|&i| li_of(envs[i as usize].dest));
    order
}

/// Encoded size of `envs` as one compact bucket, in bytes, without
/// materializing the encoding. An empty bucket measures 0.
pub fn measure_bucket<M: Message>(envs: &[Envelope<M>], li_of: impl Fn(VertexId) -> u32) -> u64 {
    if envs.is_empty() {
        return 0;
    }
    let order = sorted_order(envs, &li_of);
    let mut bytes = varint_len(envs.len() as u64);

    // Directory: delta-sorted distinct local indices with run lengths.
    let mut runs = 0u64;
    let mut dir_bytes = 0u64;
    let mut prev_li = 0u32;
    let mut run_len = 0u64;
    let mut cur_li: Option<u32> = None;
    for &i in &order {
        let li = li_of(envs[i as usize].dest);
        if cur_li == Some(li) {
            run_len += 1;
        } else {
            if let Some(last) = cur_li {
                dir_bytes += varint_len((last - prev_li) as u64) + varint_len(run_len);
                prev_li = last;
            }
            cur_li = Some(li);
            run_len = 1;
            runs += 1;
        }
    }
    if let Some(last) = cur_li {
        dir_bytes += varint_len((last - prev_li) as u64) + varint_len(run_len);
    }
    bytes += varint_len(runs) + dir_bytes;

    // Mults and payloads: order-independent sums.
    for e in envs {
        bytes += varint_len(e.mult) + e.msg.encoded_payload_bytes();
    }

    // Query stream: run-length groups over the sorted order.
    let mut i = 0usize;
    while i < order.len() {
        let key = envs[order[i] as usize].msg.wire_query();
        let mut len = 1u64;
        while i + (len as usize) < order.len()
            && envs[order[i + len as usize] as usize].msg.wire_query() == key
        {
            len += 1;
        }
        bytes += varint_len(len) + query_run_len(key);
        i += len as usize;
    }
    bytes
}

/// Encode `envs` as one compact bucket. An empty bucket encodes to an
/// empty byte vector.
pub fn encode_bucket<M: PayloadCodec>(
    envs: &[Envelope<M>],
    li_of: impl Fn(VertexId) -> u32,
) -> Vec<u8> {
    let mut out = Vec::new();
    if envs.is_empty() {
        return out;
    }
    let order = sorted_order(envs, &li_of);
    write_varint(&mut out, envs.len() as u64);

    // Directory.
    let mut dir: Vec<(u32, u64)> = Vec::new();
    for &i in &order {
        let li = li_of(envs[i as usize].dest);
        match dir.last_mut() {
            Some((last, len)) if *last == li => *len += 1,
            _ => dir.push((li, 1)),
        }
    }
    write_varint(&mut out, dir.len() as u64);
    let mut prev = 0u32;
    for &(li, len) in &dir {
        write_varint(&mut out, (li - prev) as u64);
        write_varint(&mut out, len);
        prev = li;
    }

    // Mult stream.
    for &i in &order {
        write_varint(&mut out, envs[i as usize].mult);
    }

    // Query stream.
    let mut i = 0usize;
    while i < order.len() {
        let key = envs[order[i] as usize].msg.wire_query();
        let mut len = 1u64;
        while i + (len as usize) < order.len()
            && envs[order[i + len as usize] as usize].msg.wire_query() == key
        {
            len += 1;
        }
        write_varint(&mut out, len);
        match key {
            Some(q) => {
                out.push(1);
                write_varint(&mut out, q);
            }
            None => out.push(0),
        }
        i += len as usize;
    }

    // Payload stream.
    for &i in &order {
        let msg = &envs[i as usize].msg;
        let before = out.len();
        msg.encode_payload(&mut out);
        debug_assert_eq!(
            (out.len() - before) as u64,
            msg.encoded_payload_bytes(),
            "encode_payload must write exactly encoded_payload_bytes"
        );
    }
    out
}

/// Decode one compact bucket back into envelopes, in the canonical
/// (li-sorted, stable) order. `vertex_of` maps a destination local
/// index back to its vertex id (the receiving worker's [`LocalIndex`]
/// slice).
///
/// [`LocalIndex`]: crate::router::LocalIndex
pub fn decode_bucket<M: PayloadCodec>(
    buf: &[u8],
    vertex_of: impl Fn(u32) -> VertexId,
) -> Vec<Envelope<M>> {
    if buf.is_empty() {
        return Vec::new();
    }
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos) as usize;
    let runs = read_varint(buf, &mut pos) as usize;

    let mut dests: Vec<VertexId> = Vec::with_capacity(n);
    let mut li = 0u32;
    for r in 0..runs {
        let delta = read_varint(buf, &mut pos) as u32;
        li = if r == 0 { delta } else { li + delta };
        let len = read_varint(buf, &mut pos) as usize;
        let v = vertex_of(li);
        dests.extend(std::iter::repeat_n(v, len));
    }
    debug_assert_eq!(dests.len(), n);

    let mut mults: Vec<u64> = Vec::with_capacity(n);
    for _ in 0..n {
        mults.push(read_varint(buf, &mut pos));
    }

    let mut queries: Vec<Option<u64>> = Vec::with_capacity(n);
    while queries.len() < n {
        let len = read_varint(buf, &mut pos) as usize;
        let key = if buf[pos] == 1 {
            pos += 1;
            Some(read_varint(buf, &mut pos))
        } else {
            pos += 1;
            None
        };
        queries.extend(std::iter::repeat_n(key, len));
    }

    let mut envs: Vec<Envelope<M>> = Vec::with_capacity(n);
    for i in 0..n {
        let msg = M::decode_payload(queries[i], buf, &mut pos);
        envs.push(Envelope::new(dests[i], msg, mults[i]));
    }
    debug_assert_eq!(pos, buf.len(), "bucket decoded exactly");
    envs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal codec payload: an optional grouping key and a value.
    #[derive(Debug, Clone, PartialEq)]
    struct P {
        q: Option<u64>,
        val: u64,
    }

    impl Message for P {
        fn combine_key(&self) -> Option<u64> {
            self.q
        }
        fn merge(&mut self, o: &Self) {
            self.val += o.val;
        }
        fn wire_query(&self) -> Option<u64> {
            self.q
        }
        fn encoded_payload_bytes(&self) -> u64 {
            varint_len(self.val)
        }
    }

    impl PayloadCodec for P {
        fn encode_payload(&self, out: &mut Vec<u8>) {
            write_varint(out, self.val);
        }
        fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
            P {
                q: wire_query,
                val: read_varint(buf, pos),
            }
        }
    }

    fn env(dest: VertexId, q: Option<u64>, val: u64, mult: u64) -> Envelope<P> {
        Envelope::new(dest, P { q, val }, mult)
    }

    #[test]
    fn varint_roundtrip_and_len() {
        for x in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            assert_eq!(buf.len() as u64, varint_len(x), "x={x}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn empty_bucket_is_empty() {
        let envs: Vec<Envelope<P>> = Vec::new();
        assert_eq!(measure_bucket(&envs, |v| v), 0);
        assert!(encode_bucket(&envs, |v| v).is_empty());
        assert!(decode_bucket::<P>(&[], |li| li as VertexId).is_empty());
    }

    #[test]
    fn roundtrip_restores_sorted_bucket() {
        let envs = vec![
            env(7, Some(1), 10, 1),
            env(2, Some(1), 11, 3),
            env(7, None, 12, 1),
            env(2, Some(9), 500, 1),
            env(2, Some(9), 2, 2),
        ];
        let buf = encode_bucket(&envs, |v| v);
        assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
        let back = decode_bucket::<P>(&buf, |li| li as VertexId);
        let mut want = envs.clone();
        want.sort_by_key(|e| e.dest); // stable: canonical delivery order
        assert_eq!(back, want);
    }

    /// Every tuple its own destination: the directory degenerates to
    /// one run per tuple and the query stream to one group per tuple —
    /// the per-run overhead paths must still measure and decode
    /// exactly.
    #[test]
    fn single_entry_runs_roundtrip() {
        let envs: Vec<Envelope<P>> = (0..9)
            .map(|i| env(i * 3, Some(i as u64), 100 + i as u64, 1 + i as u64))
            .collect();
        let buf = encode_bucket(&envs, |v| v);
        assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
        let back = decode_bucket::<P>(&buf, |li| li as VertexId);
        assert_eq!(back, envs); // already li-sorted: order preserved
    }

    /// Local indices at the u32 extremes: the first directory entry's
    /// delta is the absolute index, so a lone `u32::MAX` destination
    /// exercises the widest delta varint; a 0→MAX pair exercises the
    /// widest inter-run delta.
    #[test]
    fn max_delta_local_indices_roundtrip() {
        let far = u32::MAX as VertexId;
        for envs in [
            vec![env(far, Some(2), 5, 1)],
            vec![env(0, None, 1, 1), env(far, Some(7), 9, 4)],
        ] {
            let buf = encode_bucket(&envs, |v| v);
            assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
            let back = decode_bucket::<P>(&buf, |li| li as VertexId);
            assert_eq!(back, envs);
        }
    }

    /// A payload that encodes to zero bytes (it rides entirely on the
    /// query stream, like BKHS reach notifications): the payload
    /// stream is empty and decode must reconstruct every message from
    /// `wire_query` alone.
    #[test]
    fn zero_length_payload_stream_roundtrip() {
        #[derive(Debug, Clone, PartialEq)]
        struct Tag {
            q: u64,
        }
        impl Message for Tag {
            fn combine_key(&self) -> Option<u64> {
                Some(self.q)
            }
            fn merge(&mut self, _o: &Self) {}
            fn wire_query(&self) -> Option<u64> {
                Some(self.q)
            }
            fn encoded_payload_bytes(&self) -> u64 {
                0
            }
        }
        impl PayloadCodec for Tag {
            fn encode_payload(&self, _out: &mut Vec<u8>) {}
            fn decode_payload(wire_query: Option<u64>, _buf: &[u8], _pos: &mut usize) -> Self {
                Tag {
                    q: wire_query.expect("Tag always carries its query"),
                }
            }
        }
        let envs: Vec<Envelope<Tag>> = (0..6)
            .map(|i| Envelope::new((i % 3) as VertexId, Tag { q: i as u64 % 2 }, 1))
            .collect();
        let buf = encode_bucket(&envs, |v| v);
        assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
        let back = decode_bucket::<Tag>(&buf, |li| li as VertexId);
        let mut want = envs.clone();
        want.sort_by_key(|e| e.dest);
        assert_eq!(back, want);
    }

    #[test]
    fn compact_beats_fixed_width_estimate() {
        // 64 tuples of a 20-byte fixed format: estimate 1280 bytes.
        let envs: Vec<Envelope<P>> = (0..64)
            .map(|i| env(i % 8, Some(i as u64 / 8), i as u64, 1))
            .collect();
        let encoded = measure_bucket(&envs, |v| v);
        assert!(
            encoded * 10 < 1280 * 6,
            "encoded {encoded} must undercut the estimate by >40%"
        );
    }
}
