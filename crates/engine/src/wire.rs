//! Compact wire format for shard buckets.
//!
//! The router's default accounting charges `payload_units * msg_bytes`
//! per (source, destination) pair — a `size_of`-style estimate that
//! ships a full `(VertexId u64, query, payload u64)` tuple for every
//! unit. This module defines the **compact struct-of-arrays encoding**
//! one shard bucket takes on the wire instead, and the measurement the
//! routing pipeline feeds to the cost model when a profile selects
//! [`WireFormat::Compact`]:
//!
//! ```text
//! header     varint(n_tuples)  varint(n_runs)
//! directory  per distinct destination local index, ascending:
//!            varint(delta_li)  varint(run_len)        (delta-sorted u32)
//! mults      per tuple, in li-sorted order: varint(mult)
//! queries    run-length groups over li-sorted order:
//!            varint(run_len)  flag_byte  [varint(query) if flagged]
//! payloads   per tuple, in li-sorted order: PayloadCodec bytes
//! ```
//!
//! Tuples are transmitted in **destination-local-index order, stable by
//! send order** — exactly the grouped order the merge stage scatters
//! into, so destinations carry no per-tuple address at all: the
//! delta-varint directory reconstructs every local index. Query ids ride
//! a run-length stream ([`Message::wire_query`]) and payloads choose
//! their own representation through [`PayloadCodec`] (fixed-width for
//! float residues, varints for distances and ids).
//!
//! [`measure_bucket`] computes the encoded size of a bucket without
//! materializing bytes; it is the serial router oracle's measurement and
//! is pinned `== encode_bucket(..).len()` by property tests (the grid
//! computes the same quantity a third way, from its histogram scatter).
//!
//! # Integrity frames
//!
//! On the wire a bucket travels inside a checksummed frame
//! ([`FRAME_HEADER_BYTES`]: little-endian body length + 64-bit FNV-1a of
//! the body). [`decode_frame`] verifies both before the fully-validated
//! [`try_decode_bucket`] parse, so a corrupted bucket is *detected* as a
//! typed [`WireError`] — never a panic or a silently wrong decode — and
//! repaired by per-bucket retransmission from the sender's retained
//! shard buffers. Header bytes are excluded from the cost model's
//! encoded-byte accounting (see [`FRAME_HEADER_BYTES`]).
//!
//! [`Message::wire_query`]: crate::message::Message::wire_query

use crate::message::{Envelope, Message};
use mtvc_graph::VertexId;

/// Which wire representation a profile's network accounting assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum WireFormat {
    /// Full tuples: every payload unit costs `msg_bytes` (the paper's
    /// baseline systems, and the default).
    #[default]
    Tuples,
    /// Struct-of-arrays shard buckets: delta-varint index directory,
    /// query run-length groups, per-payload codecs. Network bytes are
    /// the real encoded size.
    Compact,
}

// The LEB128 varint primitives live in `mtvc_graph::varint` (shared
// with the out-of-core chunk codec, which sits below this crate in the
// dependency order); re-exported here so wire-format callers keep
// their historical import path.
pub use mtvc_graph::varint::{read_varint, varint_len, write_varint};

/// Why an encoded bucket or frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the encoding did.
    Truncated,
    /// The frame header's body length disagrees with the bytes present.
    LengthMismatch {
        /// Body length the header claims.
        expected: u64,
        /// Body bytes actually present after the header.
        actual: u64,
    },
    /// The frame checksum does not match the body — the payload was
    /// corrupted in flight.
    ChecksumMismatch {
        /// Checksum the header carries.
        expected: u64,
        /// FNV-1a of the body as received.
        actual: u64,
    },
    /// The bytes parse but violate the bucket's structural invariants
    /// (impossible counts, zero multiplicities, unknown flags, trailing
    /// garbage).
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "encoded bucket is truncated"),
            WireError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "frame length mismatch: header says {expected}, got {actual}"
                )
            }
            WireError::ChecksumMismatch { expected, actual } => {
                write!(f, "frame checksum mismatch: header says {expected:#018x}, body hashes to {actual:#018x}")
            }
            WireError::Malformed => write!(f, "encoded bucket violates structural invariants"),
        }
    }
}

impl std::error::Error for WireError {}

/// 64-bit FNV-1a over `bytes` — the frame checksum. Not cryptographic;
/// it detects the seeded bit-flip corruption the fault model injects
/// (any single flipped bit changes the hash) at one multiply per byte.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Size of the integrity frame header: an 8-byte little-endian body
/// length followed by an 8-byte little-endian FNV-1a checksum of the
/// body. Frame header bytes are *not* part of the cost model's encoded
/// wire accounting ([`measure_bucket`] stays `== encode_bucket().len()`);
/// they model the per-bucket transport envelope whose cost is already
/// folded into the cost model's per-message overhead.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Wrap an encoded bucket body in the checksummed integrity frame.
pub fn frame_bucket(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Verify a frame's header and checksum, returning the body on
/// success. This is where in-flight corruption is *detected*: any
/// bit-flip in header or body yields a typed error, never a silently
/// wrong decode.
pub fn check_frame(frame: &[u8]) -> Result<&[u8], WireError> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    let expected_len = u64::from_le_bytes(frame[0..8].try_into().unwrap());
    let body = &frame[FRAME_HEADER_BYTES..];
    if expected_len != body.len() as u64 {
        return Err(WireError::LengthMismatch {
            expected: expected_len,
            actual: body.len() as u64,
        });
    }
    let expected_sum = u64::from_le_bytes(frame[8..16].try_into().unwrap());
    let actual_sum = fnv1a(body);
    if expected_sum != actual_sum {
        return Err(WireError::ChecksumMismatch {
            expected: expected_sum,
            actual: actual_sum,
        });
    }
    Ok(body)
}

/// Encode `envs` as one checksummed frame: [`encode_bucket`] body
/// behind a [`FRAME_HEADER_BYTES`] integrity header.
pub fn encode_frame<M: PayloadCodec>(
    envs: &[Envelope<M>],
    li_of: impl Fn(VertexId) -> u32,
) -> Vec<u8> {
    frame_bucket(&encode_bucket(envs, li_of))
}

/// Decode one checksummed frame: verify length and checksum, then run
/// the fully-validated bucket decode. The sender keeps its shard
/// buffers until the receiver acknowledges, so an `Err` here is
/// repaired by retransmitting this one bucket — not by rolling the
/// superstep back.
pub fn decode_frame<M: PayloadCodec>(
    frame: &[u8],
    vertex_of: impl Fn(u32) -> VertexId,
) -> Result<Vec<Envelope<M>>, WireError> {
    try_decode_bucket(check_frame(frame)?, vertex_of)
}

/// Decode one compact bucket with every structural invariant checked:
/// counts bounded by the input size, directory indices monotone and in
/// `u32` range, run lengths covering exactly `n` tuples, multiplicities
/// nonzero, query flags valid, and the input consumed exactly. Returns
/// [`WireError`] instead of panicking on any malformed input; payload
/// codecs built on [`read_varint`] stay total because it never reads
/// out of bounds.
pub fn try_decode_bucket<M: PayloadCodec>(
    buf: &[u8],
    vertex_of: impl Fn(u32) -> VertexId,
) -> Result<Vec<Envelope<M>>, WireError> {
    if buf.is_empty() {
        return Ok(Vec::new());
    }
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos) as usize;
    if pos > buf.len() {
        return Err(WireError::Truncated);
    }
    // Every tuple needs at least one mult byte; a count beyond the
    // input size is malformed (and guards allocation against hostile
    // lengths). An empty bucket encodes to an empty buffer, so n == 0
    // with bytes present is malformed too. Checked before the run
    // count is read so a hostile count is rejected as malformed even
    // when it exhausts the buffer.
    if n == 0 || n > buf.len() {
        return Err(WireError::Malformed);
    }
    let runs = read_varint(buf, &mut pos) as usize;
    if pos > buf.len() {
        return Err(WireError::Truncated);
    }
    if runs == 0 || runs > n {
        return Err(WireError::Malformed);
    }

    let mut dests: Vec<VertexId> = Vec::with_capacity(n);
    let mut li = 0u32;
    for r in 0..runs {
        let delta = read_varint(buf, &mut pos);
        let len = read_varint(buf, &mut pos) as usize;
        if pos > buf.len() {
            return Err(WireError::Truncated);
        }
        let next = if r == 0 {
            u32::try_from(delta).map_err(|_| WireError::Malformed)?
        } else {
            u64::from(li)
                .checked_add(delta)
                .and_then(|x| u32::try_from(x).ok())
                .ok_or(WireError::Malformed)?
        };
        li = next;
        if len == 0 || dests.len() + len > n {
            return Err(WireError::Malformed);
        }
        dests.extend(std::iter::repeat_n(vertex_of(li), len));
    }
    if dests.len() != n {
        return Err(WireError::Malformed);
    }

    let mut mults: Vec<u64> = Vec::with_capacity(n);
    for _ in 0..n {
        let m = read_varint(buf, &mut pos);
        if pos > buf.len() {
            return Err(WireError::Truncated);
        }
        if m == 0 {
            return Err(WireError::Malformed);
        }
        mults.push(m);
    }

    let mut queries: Vec<Option<u64>> = Vec::with_capacity(n);
    while queries.len() < n {
        let len = read_varint(buf, &mut pos) as usize;
        let flag = *buf.get(pos).ok_or(WireError::Truncated)?;
        pos += 1;
        let key = match flag {
            1 => {
                let q = read_varint(buf, &mut pos);
                if pos > buf.len() {
                    return Err(WireError::Truncated);
                }
                Some(q)
            }
            0 => None,
            _ => return Err(WireError::Malformed),
        };
        if len == 0 || queries.len() + len > n {
            return Err(WireError::Malformed);
        }
        queries.extend(std::iter::repeat_n(key, len));
    }

    let mut envs: Vec<Envelope<M>> = Vec::with_capacity(n);
    for i in 0..n {
        let msg = M::decode_payload(queries[i], buf, &mut pos);
        if pos > buf.len() {
            return Err(WireError::Truncated);
        }
        envs.push(Envelope::new(dests[i], msg, mults[i]));
    }
    if pos != buf.len() {
        return Err(WireError::Malformed);
    }
    Ok(envs)
}

/// A message payload that knows its own compact byte representation.
/// The encoded bytes must **exclude** the destination (carried by the
/// bucket directory) and the query id (carried by the run-length
/// stream); `encode_payload` must write exactly
/// [`Message::encoded_payload_bytes`] bytes.
pub trait PayloadCodec: Message {
    /// Append this payload's bytes to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decode one payload. `wire_query` is the value recovered from the
    /// bucket's query stream for this tuple (what
    /// [`Message::wire_query`] returned at encode time).
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self;
}

/// Bytes of the query-stream entry for one run of `key`.
#[inline]
fn query_run_len(key: Option<u64>) -> u64 {
    // varint(run_len) is added by the caller; this is flag + payload.
    1 + key.map_or(0, varint_len)
}

/// Stable order of bucket positions by destination local index — the
/// canonical transmission (and delivery) order.
fn sorted_order<M>(envs: &[Envelope<M>], li_of: &impl Fn(VertexId) -> u32) -> Vec<u32> {
    let mut order: Vec<u32> = (0..envs.len() as u32).collect();
    order.sort_by_key(|&i| li_of(envs[i as usize].dest));
    order
}

/// Encoded size of `envs` as one compact bucket, in bytes, without
/// materializing the encoding. An empty bucket measures 0.
pub fn measure_bucket<M: Message>(envs: &[Envelope<M>], li_of: impl Fn(VertexId) -> u32) -> u64 {
    if envs.is_empty() {
        return 0;
    }
    let order = sorted_order(envs, &li_of);
    let mut bytes = varint_len(envs.len() as u64);

    // Directory: delta-sorted distinct local indices with run lengths.
    let mut runs = 0u64;
    let mut dir_bytes = 0u64;
    let mut prev_li = 0u32;
    let mut run_len = 0u64;
    let mut cur_li: Option<u32> = None;
    for &i in &order {
        let li = li_of(envs[i as usize].dest);
        if cur_li == Some(li) {
            run_len += 1;
        } else {
            if let Some(last) = cur_li {
                dir_bytes += varint_len((last - prev_li) as u64) + varint_len(run_len);
                prev_li = last;
            }
            cur_li = Some(li);
            run_len = 1;
            runs += 1;
        }
    }
    if let Some(last) = cur_li {
        dir_bytes += varint_len((last - prev_li) as u64) + varint_len(run_len);
    }
    bytes += varint_len(runs) + dir_bytes;

    // Mults and payloads: order-independent sums.
    for e in envs {
        bytes += varint_len(e.mult) + e.msg.encoded_payload_bytes();
    }

    // Query stream: run-length groups over the sorted order.
    let mut i = 0usize;
    while i < order.len() {
        let key = envs[order[i] as usize].msg.wire_query();
        let mut len = 1u64;
        while i + (len as usize) < order.len()
            && envs[order[i + len as usize] as usize].msg.wire_query() == key
        {
            len += 1;
        }
        bytes += varint_len(len) + query_run_len(key);
        i += len as usize;
    }
    bytes
}

/// Encode `envs` as one compact bucket. An empty bucket encodes to an
/// empty byte vector.
pub fn encode_bucket<M: PayloadCodec>(
    envs: &[Envelope<M>],
    li_of: impl Fn(VertexId) -> u32,
) -> Vec<u8> {
    let mut out = Vec::new();
    if envs.is_empty() {
        return out;
    }
    let order = sorted_order(envs, &li_of);
    write_varint(&mut out, envs.len() as u64);

    // Directory.
    let mut dir: Vec<(u32, u64)> = Vec::new();
    for &i in &order {
        let li = li_of(envs[i as usize].dest);
        match dir.last_mut() {
            Some((last, len)) if *last == li => *len += 1,
            _ => dir.push((li, 1)),
        }
    }
    write_varint(&mut out, dir.len() as u64);
    let mut prev = 0u32;
    for &(li, len) in &dir {
        write_varint(&mut out, (li - prev) as u64);
        write_varint(&mut out, len);
        prev = li;
    }

    // Mult stream.
    for &i in &order {
        write_varint(&mut out, envs[i as usize].mult);
    }

    // Query stream.
    let mut i = 0usize;
    while i < order.len() {
        let key = envs[order[i] as usize].msg.wire_query();
        let mut len = 1u64;
        while i + (len as usize) < order.len()
            && envs[order[i + len as usize] as usize].msg.wire_query() == key
        {
            len += 1;
        }
        write_varint(&mut out, len);
        match key {
            Some(q) => {
                out.push(1);
                write_varint(&mut out, q);
            }
            None => out.push(0),
        }
        i += len as usize;
    }

    // Payload stream.
    for &i in &order {
        let msg = &envs[i as usize].msg;
        let before = out.len();
        msg.encode_payload(&mut out);
        debug_assert_eq!(
            (out.len() - before) as u64,
            msg.encoded_payload_bytes(),
            "encode_payload must write exactly encoded_payload_bytes"
        );
    }
    out
}

/// Decode one compact bucket back into envelopes, in the canonical
/// (li-sorted, stable) order. `vertex_of` maps a destination local
/// index back to its vertex id (the receiving worker's [`LocalIndex`]
/// slice).
///
/// [`LocalIndex`]: crate::router::LocalIndex
pub fn decode_bucket<M: PayloadCodec>(
    buf: &[u8],
    vertex_of: impl Fn(u32) -> VertexId,
) -> Vec<Envelope<M>> {
    if buf.is_empty() {
        return Vec::new();
    }
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos) as usize;
    let runs = read_varint(buf, &mut pos) as usize;

    let mut dests: Vec<VertexId> = Vec::with_capacity(n);
    let mut li = 0u32;
    for r in 0..runs {
        let delta = read_varint(buf, &mut pos) as u32;
        li = if r == 0 { delta } else { li + delta };
        let len = read_varint(buf, &mut pos) as usize;
        let v = vertex_of(li);
        dests.extend(std::iter::repeat_n(v, len));
    }
    debug_assert_eq!(dests.len(), n);

    let mut mults: Vec<u64> = Vec::with_capacity(n);
    for _ in 0..n {
        mults.push(read_varint(buf, &mut pos));
    }

    let mut queries: Vec<Option<u64>> = Vec::with_capacity(n);
    while queries.len() < n {
        let len = read_varint(buf, &mut pos) as usize;
        let key = if buf[pos] == 1 {
            pos += 1;
            Some(read_varint(buf, &mut pos))
        } else {
            pos += 1;
            None
        };
        queries.extend(std::iter::repeat_n(key, len));
    }

    let mut envs: Vec<Envelope<M>> = Vec::with_capacity(n);
    for i in 0..n {
        let msg = M::decode_payload(queries[i], buf, &mut pos);
        envs.push(Envelope::new(dests[i], msg, mults[i]));
    }
    debug_assert_eq!(pos, buf.len(), "bucket decoded exactly");
    envs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal codec payload: an optional grouping key and a value.
    #[derive(Debug, Clone, PartialEq)]
    struct P {
        q: Option<u64>,
        val: u64,
    }

    impl Message for P {
        fn combine_key(&self) -> Option<u64> {
            self.q
        }
        fn merge(&mut self, o: &Self) {
            self.val += o.val;
        }
        fn wire_query(&self) -> Option<u64> {
            self.q
        }
        fn encoded_payload_bytes(&self) -> u64 {
            varint_len(self.val)
        }
    }

    impl PayloadCodec for P {
        fn encode_payload(&self, out: &mut Vec<u8>) {
            write_varint(out, self.val);
        }
        fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
            P {
                q: wire_query,
                val: read_varint(buf, pos),
            }
        }
    }

    fn env(dest: VertexId, q: Option<u64>, val: u64, mult: u64) -> Envelope<P> {
        Envelope::new(dest, P { q, val }, mult)
    }

    #[test]
    fn varint_roundtrip_and_len() {
        for x in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            assert_eq!(buf.len() as u64, varint_len(x), "x={x}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn empty_bucket_is_empty() {
        let envs: Vec<Envelope<P>> = Vec::new();
        assert_eq!(measure_bucket(&envs, |v| v), 0);
        assert!(encode_bucket(&envs, |v| v).is_empty());
        assert!(decode_bucket::<P>(&[], |li| li as VertexId).is_empty());
    }

    #[test]
    fn roundtrip_restores_sorted_bucket() {
        let envs = vec![
            env(7, Some(1), 10, 1),
            env(2, Some(1), 11, 3),
            env(7, None, 12, 1),
            env(2, Some(9), 500, 1),
            env(2, Some(9), 2, 2),
        ];
        let buf = encode_bucket(&envs, |v| v);
        assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
        let back = decode_bucket::<P>(&buf, |li| li as VertexId);
        let mut want = envs.clone();
        want.sort_by_key(|e| e.dest); // stable: canonical delivery order
        assert_eq!(back, want);
    }

    /// Every tuple its own destination: the directory degenerates to
    /// one run per tuple and the query stream to one group per tuple —
    /// the per-run overhead paths must still measure and decode
    /// exactly.
    #[test]
    fn single_entry_runs_roundtrip() {
        let envs: Vec<Envelope<P>> = (0..9)
            .map(|i| env(i * 3, Some(i as u64), 100 + i as u64, 1 + i as u64))
            .collect();
        let buf = encode_bucket(&envs, |v| v);
        assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
        let back = decode_bucket::<P>(&buf, |li| li as VertexId);
        assert_eq!(back, envs); // already li-sorted: order preserved
    }

    /// Local indices at the u32 extremes: the first directory entry's
    /// delta is the absolute index, so a lone `u32::MAX` destination
    /// exercises the widest delta varint; a 0→MAX pair exercises the
    /// widest inter-run delta.
    #[test]
    fn max_delta_local_indices_roundtrip() {
        let far = u32::MAX as VertexId;
        for envs in [
            vec![env(far, Some(2), 5, 1)],
            vec![env(0, None, 1, 1), env(far, Some(7), 9, 4)],
        ] {
            let buf = encode_bucket(&envs, |v| v);
            assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
            let back = decode_bucket::<P>(&buf, |li| li as VertexId);
            assert_eq!(back, envs);
        }
    }

    /// A payload that encodes to zero bytes (it rides entirely on the
    /// query stream, like BKHS reach notifications): the payload
    /// stream is empty and decode must reconstruct every message from
    /// `wire_query` alone.
    #[test]
    fn zero_length_payload_stream_roundtrip() {
        #[derive(Debug, Clone, PartialEq)]
        struct Tag {
            q: u64,
        }
        impl Message for Tag {
            fn combine_key(&self) -> Option<u64> {
                Some(self.q)
            }
            fn merge(&mut self, _o: &Self) {}
            fn wire_query(&self) -> Option<u64> {
                Some(self.q)
            }
            fn encoded_payload_bytes(&self) -> u64 {
                0
            }
        }
        impl PayloadCodec for Tag {
            fn encode_payload(&self, _out: &mut Vec<u8>) {}
            fn decode_payload(wire_query: Option<u64>, _buf: &[u8], _pos: &mut usize) -> Self {
                Tag {
                    q: wire_query.expect("Tag always carries its query"),
                }
            }
        }
        let envs: Vec<Envelope<Tag>> = (0..6)
            .map(|i| Envelope::new((i % 3) as VertexId, Tag { q: i as u64 % 2 }, 1))
            .collect();
        let buf = encode_bucket(&envs, |v| v);
        assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
        let back = decode_bucket::<Tag>(&buf, |li| li as VertexId);
        let mut want = envs.clone();
        want.sort_by_key(|e| e.dest);
        assert_eq!(back, want);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Offset basis for the empty input; "a" from the published
        // FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn frame_roundtrip_matches_unframed_decode() {
        let envs = vec![
            env(7, Some(1), 10, 1),
            env(2, Some(1), 11, 3),
            env(7, None, 12, 1),
        ];
        let frame = encode_frame(&envs, |v| v);
        assert_eq!(
            frame.len(),
            FRAME_HEADER_BYTES + measure_bucket(&envs, |v| v) as usize
        );
        let back = decode_frame::<P>(&frame, |li| li as VertexId).unwrap();
        assert_eq!(
            back,
            decode_bucket::<P>(&frame[FRAME_HEADER_BYTES..], |li| li as VertexId)
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let envs = vec![
            env(3, Some(4), 77, 2),
            env(3, None, 5, 1),
            env(9, Some(4), 1, 1),
        ];
        let frame = encode_frame(&envs, |v| v);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame::<P>(&bad, |li| li as VertexId).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let envs = vec![env(1, Some(0), 9, 1)];
        let frame = encode_frame(&envs, |v| v);
        for cut in 0..frame.len() {
            assert!(decode_frame::<P>(&frame[..cut], |li| li as VertexId).is_err());
        }
        assert_eq!(
            decode_frame::<P>(&frame[..4], |li| li as VertexId),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn try_decode_matches_trusted_decode_on_valid_input() {
        let envs = vec![
            env(7, Some(1), 10, 1),
            env(2, Some(1), 11, 3),
            env(2, Some(9), 500, 1),
        ];
        let buf = encode_bucket(&envs, |v| v);
        let checked = try_decode_bucket::<P>(&buf, |li| li as VertexId).unwrap();
        assert_eq!(checked, decode_bucket::<P>(&buf, |li| li as VertexId));
        assert!(try_decode_bucket::<P>(&[], |li| li as VertexId)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn try_decode_rejects_structural_garbage() {
        // Truncated mid-stream.
        let envs = vec![env(4, Some(2), 300, 2), env(6, None, 1, 1)];
        let buf = encode_bucket(&envs, |v| v);
        for cut in 1..buf.len() {
            assert!(
                try_decode_bucket::<P>(&buf[..cut], |li| li as VertexId).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Hostile tuple count far beyond the input size.
        let mut hostile = Vec::new();
        write_varint(&mut hostile, u64::MAX);
        assert_eq!(
            try_decode_bucket::<P>(&hostile, |li| li as VertexId),
            Err(WireError::Malformed)
        );
        // Trailing garbage after a valid bucket.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(try_decode_bucket::<P>(&padded, |li| li as VertexId).is_err());
    }

    #[test]
    fn read_varint_is_total_past_the_end() {
        // Reading past the end consumes a phantom zero and flags via
        // pos; a run of continuation bytes terminates without overflow.
        let mut pos = 0usize;
        assert_eq!(read_varint(&[], &mut pos), 0);
        assert!(pos > 0);
        let all_cont = [0x80u8; 20];
        let mut pos = 0usize;
        let _ = read_varint(&all_cont, &mut pos);
        assert!(pos > all_cont.len());
    }

    #[test]
    fn compact_beats_fixed_width_estimate() {
        // 64 tuples of a 20-byte fixed format: estimate 1280 bytes.
        let envs: Vec<Envelope<P>> = (0..64)
            .map(|i| env(i % 8, Some(i as u64 / 8), i as u64, 1))
            .collect();
        let encoded = measure_bucket(&envs, |v| v);
        assert!(
            encoded * 10 < 1280 * 6,
            "encoded {encoded} must undercut the estimate by >40%"
        );
    }
}
