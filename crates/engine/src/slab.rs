//! Dense batch-state slabs: hash-free multi-task vertex state.
//!
//! A [`StateSlab`] stores one fixed-size **row of `W` cells per local
//! vertex**, local-index-major, so the compute hot loop addresses the
//! state of `(vertex, query)` with one multiply instead of a hash
//! probe. A companion **frontier bitset** (one bit per cell, row-major)
//! marks the cells a round actually improved, so a program's send phase
//! walks only the dirty cells — the GraphLab/Ligra layout (DESIGN.md
//! §4.2) adapted to multi-task batches.
//!
//! Programs opt in by implementing [`SlabProgram`] instead of
//! [`VertexProgram`](crate::program::VertexProgram) and running via
//! [`Runner::run_slab`](crate::runner::Runner::run_slab). Slab-backed
//! state is accounted **exactly**: the runner reports the slab's
//! resident capacity per superstep instead of trusting manual
//! `add_state_bytes` calls.
//!
//! Slabs are recycled across batches through a [`SlabRecycler`]:
//! [`StateSlab::reset`] re-stamps the cells to the empty sentinel and
//! clears the frontier without releasing capacity, so back-to-back
//! batches of similar shape perform no state allocation at all.

use crate::message::{Delivery, Message};
use crate::program::{Context, ProgramCore};
use mtvc_graph::VertexId;
use parking_lot::Mutex;

/// Query lanes per SIMD chunk. Rows are processed in fixed-width
/// `[u64; LANES]` blocks whose branchless min/mask bodies autovectorize
/// on stable Rust; 8 × u64 fills one AVX-512 register (two AVX2 ops)
/// and 8 lane bits always land inside a single frontier word, so a
/// chunk's mask update is one shifted OR.
pub const LANES: usize = 8;

/// One dense state slab: `rows × width` cells plus a frontier bitset.
///
/// Layout (local-index-major, unpadded):
///
/// ```text
/// cells:    [ v0: q0 q1 .. qW-1 | v1: q0 q1 .. qW-1 | ... ]
/// frontier: [ v0: ceil(W/64) words | v1: ... ]               (1 bit/cell)
/// ```
#[derive(Debug)]
pub struct StateSlab<C> {
    width: usize,
    words_per_row: usize,
    rows: usize,
    empty: C,
    cells: Vec<C>,
    frontier: Vec<u64>,
}

impl<C: Copy> StateSlab<C> {
    /// Build a slab of `rows × width` cells, all set to `empty`.
    pub fn new(rows: usize, width: usize, empty: C) -> StateSlab<C> {
        let mut slab = StateSlab {
            width: 0,
            words_per_row: 0,
            rows: 0,
            empty,
            cells: Vec::new(),
            frontier: Vec::new(),
        };
        slab.reset(rows, width, empty);
        slab
    }

    /// Re-shape for a new batch, **reusing the existing allocation**:
    /// cells are re-stamped to the empty sentinel and the frontier is
    /// cleared, but capacity is never released. This is what makes
    /// slabs recyclable across batches.
    pub fn reset(&mut self, rows: usize, width: usize, empty: C) {
        self.width = width;
        self.words_per_row = width.div_ceil(64);
        self.rows = rows;
        self.empty = empty;
        self.cells.clear();
        self.cells.resize(rows * width, empty);
        self.frontier.clear();
        self.frontier.resize(rows * self.words_per_row, 0);
    }

    /// Cells per row (the batch width `W`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows (local vertices).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The empty-cell sentinel.
    pub fn empty_cell(&self) -> C {
        self.empty
    }

    /// Exact resident bytes of this slab (cells + frontier). This is
    /// what the runner reports to the memory ledger each superstep.
    pub fn resident_bytes(&self) -> u64 {
        (self.cells.len() * std::mem::size_of::<C>() + self.frontier.len() * 8) as u64
    }

    /// The resident bytes a `rows × width` slab must report — the
    /// debug-build cross-check for exact state accounting.
    pub fn capacity_bytes(rows: usize, width: usize) -> u64 {
        (rows * width * std::mem::size_of::<C>() + rows * width.div_ceil(64) * 8) as u64
    }

    /// Immutable view of one vertex's row.
    pub fn row(&self, li: u32) -> &[C] {
        let li = li as usize;
        &self.cells[li * self.width..(li + 1) * self.width]
    }

    /// Mutable row view with its frontier words.
    pub fn row_mut(&mut self, li: u32) -> SlabRowMut<'_, C> {
        let li = li as usize;
        SlabRowMut {
            cells: &mut self.cells[li * self.width..(li + 1) * self.width],
            front: &mut self.frontier[li * self.words_per_row..(li + 1) * self.words_per_row],
        }
    }
}

/// A slab cell with a fixed, explicit byte encoding, so whole row
/// ranges can be paged out to a byte store and restored bit-identically
/// ([`StateSlab::page_out_rows`] / [`StateSlab::page_in_rows`]).
/// Little-endian fixed width; floats go through their IEEE-754 bit
/// patterns so `decode(encode(x)) == x` for every value (NaN payloads
/// included).
pub trait PageableCell: Copy + PartialEq + Send + Sync + 'static {
    /// Encoded bytes per cell.
    const CELL_BYTES: usize;

    /// Append this cell's encoding to `out` (exactly
    /// [`Self::CELL_BYTES`] bytes).
    fn write_to(self, out: &mut Vec<u8>);

    /// Decode one cell from the front of `buf`
    /// (`buf.len() >= CELL_BYTES`).
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! impl_pageable_uint {
    ($($t:ty),*) => {$(
        impl PageableCell for $t {
            const CELL_BYTES: usize = std::mem::size_of::<$t>();

            #[inline]
            fn write_to(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::CELL_BYTES].try_into().unwrap())
            }
        }
    )*};
}

impl_pageable_uint!(u8, u16, u32, u64);

impl<C: PageableCell> StateSlab<C> {
    /// Page rows `[start, end)` out: encode their cells and frontier
    /// words into `out` (cleared first), then re-stamp the range to the
    /// empty sentinel / zero words. The bytes are real state movement —
    /// failing to [`page_in_rows`](Self::page_in_rows) them back before
    /// the rows are touched again loses the state. Returns the encoded
    /// size.
    pub fn page_out_rows(&mut self, start: u32, end: u32, out: &mut Vec<u8>) -> u64 {
        out.clear();
        let (cs, ce) = (start as usize * self.width, end as usize * self.width);
        for cell in &self.cells[cs..ce] {
            cell.write_to(out);
        }
        let (fs, fe) = (
            start as usize * self.words_per_row,
            end as usize * self.words_per_row,
        );
        for &w in &self.frontier[fs..fe] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        self.cells[cs..ce].fill(self.empty);
        self.frontier[fs..fe].fill(0);
        out.len() as u64
    }

    /// Restore rows `[start, end)` from bytes produced by
    /// [`page_out_rows`](Self::page_out_rows) over the same range and
    /// shape. Bit-identical by construction.
    pub fn page_in_rows(&mut self, start: u32, end: u32, bytes: &[u8]) {
        let (cs, ce) = (start as usize * self.width, end as usize * self.width);
        let mut pos = 0usize;
        for cell in &mut self.cells[cs..ce] {
            *cell = C::read_from(&bytes[pos..]);
            pos += C::CELL_BYTES;
        }
        let (fs, fe) = (
            start as usize * self.words_per_row,
            end as usize * self.words_per_row,
        );
        for w in &mut self.frontier[fs..fe] {
            *w = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
        }
        debug_assert_eq!(pos, bytes.len(), "page-in bytes must match the range");
    }
}

/// A sparse difference between two same-shape [`StateSlab`]s: the cells
/// and frontier words that changed, by flat index. Produced by
/// [`StateSlab::diff`] and replayed by [`StateSlab::apply_delta`] —
/// the storage unit of the runner's incremental checkpoints. On
/// sparse-frontier rounds (a BSP wavefront touches few rows) a delta is
/// orders of magnitude smaller than the full `rows × width` snapshot.
#[derive(Debug, Clone)]
pub struct SlabDelta<C> {
    /// `(flat cell index, new value)` for every changed cell.
    pub cell_changes: Vec<(u32, C)>,
    /// `(frontier word index, new word)` for every changed word.
    pub front_changes: Vec<(u32, u64)>,
}

impl<C> SlabDelta<C> {
    /// Stored size of the delta: 4 index bytes + the cell payload per
    /// cell change, 4 + 8 per frontier-word change.
    pub fn stored_bytes(&self) -> u64 {
        (self.cell_changes.len() * (4 + std::mem::size_of::<C>()) + self.front_changes.len() * 12)
            as u64
    }
}

impl<C: Copy + PartialEq> StateSlab<C> {
    /// Diff `cur` (self) against `prev`, producing a [`SlabDelta`] that
    /// [`StateSlab::apply_delta`] replays onto a clone of `prev` to
    /// reconstruct `self` bit-identically. Returns `None` when the two
    /// slabs differ in shape (or the slab is too large for 32-bit flat
    /// indices) — callers fall back to a full snapshot.
    pub fn diff(&self, prev: &StateSlab<C>) -> Option<SlabDelta<C>> {
        if self.width != prev.width
            || self.rows != prev.rows
            || self.words_per_row != prev.words_per_row
            || self.cells.len() != prev.cells.len()
            || self.frontier.len() != prev.frontier.len()
            || self.cells.len() > u32::MAX as usize
        {
            return None;
        }
        let mut delta = SlabDelta {
            cell_changes: Vec::new(),
            front_changes: Vec::new(),
        };
        for (i, (cur, old)) in self.cells.iter().zip(&prev.cells).enumerate() {
            if cur != old {
                delta.cell_changes.push((i as u32, *cur));
            }
        }
        for (i, (cur, old)) in self.frontier.iter().zip(&prev.frontier).enumerate() {
            if cur != old {
                delta.front_changes.push((i as u32, *cur));
            }
        }
        Some(delta)
    }

    /// Replay a delta produced by [`StateSlab::diff`] onto this slab
    /// (which must have the shape of the diff's `prev`).
    pub fn apply_delta(&mut self, delta: &SlabDelta<C>) {
        for &(i, c) in &delta.cell_changes {
            self.cells[i as usize] = c;
        }
        for &(i, w) in &delta.front_changes {
            self.frontier[i as usize] = w;
        }
    }
}

impl<C: Copy> Clone for StateSlab<C> {
    fn clone(&self) -> Self {
        StateSlab {
            width: self.width,
            words_per_row: self.words_per_row,
            rows: self.rows,
            empty: self.empty,
            cells: self.cells.clone(),
            frontier: self.frontier.clone(),
        }
    }

    /// Checkpointing clones slabs at the cadence; reusing the snapshot
    /// buffers keeps steady-state checkpointing allocation-free (the
    /// runner's `recycle_into` relies on this).
    fn clone_from(&mut self, src: &Self) {
        self.width = src.width;
        self.words_per_row = src.words_per_row;
        self.rows = src.rows;
        self.empty = src.empty;
        self.cells.clone_from(&src.cells);
        self.frontier.clone_from(&src.frontier);
    }
}

/// Mutable view of one vertex's slab row: `W` cells plus the row's
/// frontier words. Handed to [`SlabProgram::init`] / [`compute`].
///
/// [`compute`]: SlabProgram::compute
pub struct SlabRowMut<'a, C> {
    cells: &'a mut [C],
    front: &'a mut [u64],
}

impl<C: Copy> SlabRowMut<'_, C> {
    /// Cells in this row (the batch width `W`).
    #[inline]
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    /// Read cell `q`.
    #[inline]
    pub fn get(&self, q: usize) -> C {
        self.cells[q]
    }

    /// Overwrite cell `q` without touching the frontier.
    #[inline]
    pub fn set(&mut self, q: usize, value: C) {
        self.cells[q] = value;
    }

    /// Mutable access to cell `q` (in-place accumulation).
    #[inline]
    pub fn cell_mut(&mut self, q: usize) -> &mut C {
        &mut self.cells[q]
    }

    /// Mark cell `q` dirty in the frontier.
    #[inline]
    pub fn mark(&mut self, q: usize) {
        self.front[q >> 6] |= 1u64 << (q & 63);
    }

    /// Whether cell `q` is currently marked.
    #[inline]
    pub fn is_marked(&self, q: usize) -> bool {
        self.front[q >> 6] >> (q & 63) & 1 != 0
    }

    /// Visit every marked cell in ascending `q` order, clearing the
    /// marks as it goes. The visitor gets mutable cell access so push
    /// kernels can settle residuals in place.
    #[inline]
    pub fn drain(&mut self, mut f: impl FnMut(usize, &mut C)) {
        for (wi, word) in self.front.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                let q = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(q, &mut self.cells[q]);
            }
        }
    }

    /// Visit every marked cell in **chunks of [`LANES`] lanes**,
    /// ascending, clearing marks as it goes. The visitor receives the
    /// chunk index, an 8-bit mask of which lanes in the chunk are
    /// marked, and mutable access to the chunk's cells (the final chunk
    /// of a non-multiple-of-8 row is a short slice). Frontier words are
    /// scanned a word at a time — a row with no marks costs
    /// `ceil(W/64)` word loads, never a per-bit probe.
    #[inline]
    pub fn drain_chunks(&mut self, mut f: impl FnMut(usize, u8, &mut [C])) {
        let len = self.cells.len();
        for (wi, word) in self.front.iter_mut().enumerate() {
            let mut bits = *word;
            *word = 0;
            while bits != 0 {
                // Jump straight to the next dirty byte of the word.
                let byte = bits.trailing_zeros() as usize >> 3;
                let mask = (bits >> (byte * 8)) as u8;
                bits &= !(0xFFu64 << (byte * 8));
                let chunk = wi * 8 + byte;
                let start = chunk * LANES;
                let end = (start + LANES).min(len);
                f(chunk, mask, &mut self.cells[start..end]);
            }
        }
    }

    /// The raw cell slice.
    #[inline]
    pub fn cells(&self) -> &[C] {
        self.cells
    }
}

impl SlabRowMut<'_, u64> {
    /// Branchless min-relax: lower cell `q` to `cand` if it improves,
    /// marking the frontier iff it did. The MSSP inner loop.
    #[inline]
    pub fn relax_min(&mut self, q: usize, cand: u64) {
        let cur = self.cells[q];
        let better = cand < cur;
        self.cells[q] = if better { cand } else { cur };
        self.front[q >> 6] |= (better as u64) << (q & 63);
    }

    /// Relax one [`LANES`]-wide chunk of cells against `cand`,
    /// branchlessly, OR-ing the improvement mask into the frontier with
    /// a single shifted store. `base` must be chunk-aligned
    /// (`base % LANES == 0`); lanes past the row width are ignored, and
    /// `u64::MAX` candidate lanes are natural no-ops. Semantically
    /// identical to `LANES` scalar [`relax_min`] calls — pinned by
    /// proptest against that oracle.
    ///
    /// [`relax_min`]: SlabRowMut::relax_min
    #[inline]
    pub fn relax_min_lanes(&mut self, base: usize, cand: &[u64; LANES]) {
        debug_assert_eq!(base % LANES, 0, "chunk base must be LANES-aligned");
        let n = LANES.min(self.cells.len() - base);
        let mut mask = 0u64;
        if n == LANES {
            // Fixed-width slice: one bounds check, then the compiler
            // vectorizes the branchless min/mask body.
            let row: &mut [u64] = &mut self.cells[base..base + LANES];
            for (l, cell) in row.iter_mut().enumerate() {
                let cur = *cell;
                let c = cand[l];
                let better = c < cur;
                *cell = if better { c } else { cur };
                mask |= (better as u64) << l;
            }
        } else {
            for (l, &c) in cand.iter().enumerate().take(n) {
                let cur = self.cells[base + l];
                let better = c < cur;
                self.cells[base + l] = if better { c } else { cur };
                mask |= (better as u64) << l;
            }
        }
        // 8 aligned lanes never straddle a frontier word.
        self.front[base >> 6] |= mask << (base & 63);
    }

    /// Relax the whole row against a candidate slice (`cands.len()`
    /// must equal the row width), chunk by chunk. Equivalent to `W`
    /// scalar [`relax_min`](SlabRowMut::relax_min) calls.
    #[inline]
    pub fn relax_min_row(&mut self, cands: &[u64]) {
        debug_assert_eq!(cands.len(), self.cells.len());
        let mut chunk = [u64::MAX; LANES];
        for (ci, block) in cands.chunks(LANES).enumerate() {
            chunk[..block.len()].copy_from_slice(block);
            chunk[block.len()..].fill(u64::MAX);
            self.relax_min_lanes(ci * LANES, &chunk);
        }
    }
}

impl SlabRowMut<'_, u8> {
    /// Absorb a reachability mask into one [`LANES`]-wide chunk of 0/1
    /// cells: every lane set in `mask` whose cell is still 0 flips to 1
    /// and is marked in the frontier; lanes already reached are no-ops.
    /// Returns the mask of **newly** reached lanes. `base` must be
    /// chunk-aligned (`base % LANES == 0`); mask bits past the row
    /// width are ignored. Semantically identical to `LANES` scalar
    /// "if cell == 0 { cell = 1; mark }" steps — the BKHS hop-set
    /// inner loop, pinned by proptest against the scalar slab program.
    #[inline]
    pub fn absorb_lanes(&mut self, base: usize, mask: u8) -> u8 {
        debug_assert_eq!(base % LANES, 0, "chunk base must be LANES-aligned");
        let n = LANES.min(self.cells.len() - base);
        let mut fresh = 0u8;
        if n == LANES {
            // Fixed-width slice: one bounds check, branchless body.
            let row: &mut [u8] = &mut self.cells[base..base + LANES];
            for (l, cell) in row.iter_mut().enumerate() {
                let arriving = (mask >> l) & 1;
                let newly = arriving & (*cell == 0) as u8;
                *cell |= arriving;
                fresh |= newly << l;
            }
        } else {
            for l in 0..n {
                let arriving = (mask >> l) & 1;
                let newly = arriving & (self.cells[base + l] == 0) as u8;
                self.cells[base + l] |= arriving;
                fresh |= newly << l;
            }
        }
        // 8 aligned lanes never straddle a frontier word.
        self.front[base >> 6] |= (fresh as u64) << (base & 63);
        fresh
    }
}

/// A vertex program whose per-vertex state is one dense slab row of
/// `W` cells instead of an owned `State` value. Semantics otherwise
/// match [`VertexProgram`](crate::program::VertexProgram): `init` runs
/// at round 0, `compute` per delivered run, determinism per the
/// context RNG.
///
/// Slab programs never call `Context::add_state_bytes` — the runner
/// accounts the slab's resident capacity exactly, each superstep.
pub trait SlabProgram: Sync {
    /// Wire message payload.
    type Message: Message;
    /// One `(vertex, query)` state cell. [`PageableCell`] so inactive
    /// row ranges can be paged to the out-of-core backing store.
    type Cell: PageableCell;
    /// Per-vertex output extracted once after the run (cold path);
    /// usually the sparse state type downstream consumers already use.
    type Out: Default + Clone + Send;

    /// Batch width `W`: cells per vertex row.
    fn width(&self) -> usize;

    /// The sentinel stored in untouched cells.
    fn empty_cell(&self) -> Self::Cell;

    /// Bytes of one wire message.
    fn message_bytes(&self) -> u64;

    /// Round 0: activate sources, seed initial messages.
    fn init(
        &self,
        v: VertexId,
        row: SlabRowMut<'_, Self::Cell>,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Rounds ≥ 1: fold the vertex's delivered messages into its row.
    fn compute(
        &self,
        v: VertexId,
        row: SlabRowMut<'_, Self::Cell>,
        inbox: &[Delivery<Self::Message>],
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Materialize vertex `v`'s final output from its row.
    fn extract(&self, v: VertexId, row: &[Self::Cell]) -> Self::Out;

    /// Fixed round bound; `None` runs to quiescence.
    fn max_rounds(&self) -> Option<usize> {
        None
    }
}

/// A pool of retired slabs, shared across batches (and safely across
/// threads). Runs started via
/// [`Runner::run_slab_recycled`](crate::runner::Runner::run_slab_recycled)
/// draw their worker slabs from here and return them after output
/// extraction, so consecutive batches re-stamp existing buffers
/// instead of allocating new ones.
pub struct SlabRecycler<C> {
    pool: Mutex<Vec<StateSlab<C>>>,
}

impl<C> Default for SlabRecycler<C> {
    fn default() -> Self {
        SlabRecycler {
            pool: Mutex::new(Vec::new()),
        }
    }
}

impl<C: Copy> SlabRecycler<C> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a retired slab (shape unspecified — callers `reset` it), or
    /// `None` if the pool is empty.
    pub fn take(&self) -> Option<StateSlab<C>> {
        self.pool.lock().pop()
    }

    /// Return slabs after a run.
    pub fn put_all(&self, slabs: impl IntoIterator<Item = StateSlab<C>>) {
        self.pool.lock().extend(slabs);
    }

    /// Retired slabs currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }
}

impl<C> std::fmt::Debug for SlabRecycler<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabRecycler")
            .field("pooled", &self.pool.lock().len())
            .finish()
    }
}

/// [`ProgramCore`] adapter executing a [`SlabProgram`] with one
/// [`StateSlab`] per worker as the store. Created internally by
/// [`Runner::run_slab`](crate::runner::Runner::run_slab); public so
/// benches can drive slab programs through generic round loops.
pub struct PerSlab<'p, P: SlabProgram> {
    program: &'p P,
    recycler: Option<&'p SlabRecycler<P::Cell>>,
}

impl<'p, P: SlabProgram> PerSlab<'p, P> {
    pub fn new(program: &'p P) -> Self {
        PerSlab {
            program,
            recycler: None,
        }
    }

    /// Draw worker slabs from (and retire them to) `recycler`.
    pub fn with_recycler(program: &'p P, recycler: &'p SlabRecycler<P::Cell>) -> Self {
        PerSlab {
            program,
            recycler: Some(recycler),
        }
    }
}

impl<P: SlabProgram> ProgramCore for PerSlab<'_, P> {
    type Message = P::Message;
    type Store = StateSlab<P::Cell>;
    type Out = P::Out;
    type Delta = SlabDelta<P::Cell>;

    fn message_bytes(&self) -> u64 {
        self.program.message_bytes()
    }

    fn store_delta(&self, prev: &Self::Store, cur: &Self::Store) -> Option<Self::Delta> {
        cur.diff(prev)
    }

    fn apply_store_delta(&self, store: &mut Self::Store, delta: &Self::Delta) {
        store.apply_delta(delta);
    }

    fn delta_bytes(&self, delta: &Self::Delta) -> u64 {
        delta.stored_bytes()
    }

    fn max_rounds(&self) -> Option<usize> {
        self.program.max_rounds()
    }

    fn make_store(&self, vertices: &[VertexId]) -> Self::Store {
        let width = self.program.width();
        let empty = self.program.empty_cell();
        match self.recycler.and_then(|r| r.take()) {
            Some(mut slab) => {
                slab.reset(vertices.len(), width, empty);
                slab
            }
            None => StateSlab::new(vertices.len(), width, empty),
        }
    }

    fn exact_store_bytes(&self, store: &Self::Store) -> Option<u64> {
        let bytes = store.resident_bytes();
        // Satellite check: the bytes reported to the ledger must equal
        // the slab's nominal capacity — accounting cannot drift from
        // the layout.
        debug_assert_eq!(
            bytes,
            StateSlab::<P::Cell>::capacity_bytes(store.rows(), self.program.width()),
            "slab resident bytes must equal rows x width capacity"
        );
        Some(bytes)
    }

    fn initial_state_bytes(&self) -> u64 {
        0 // unused: slab stores are exactly accounted
    }

    fn init_vertex(
        &self,
        v: VertexId,
        li: u32,
        store: &mut Self::Store,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        self.program.init(v, store.row_mut(li), ctx);
    }

    fn compute_vertex(
        &self,
        v: VertexId,
        li: u32,
        store: &mut Self::Store,
        inbox: &[Delivery<Self::Message>],
        ctx: &mut Context<'_, Self::Message>,
    ) {
        self.program.compute(v, store.row_mut(li), inbox, ctx);
    }

    fn take_out(&self, v: VertexId, li: u32, store: &mut Self::Store) -> Self::Out {
        self.program.extract(v, store.row(li))
    }

    fn recycle(&self, stores: Vec<Self::Store>) {
        if let Some(recycler) = self.recycler {
            recycler.put_all(stores);
        }
    }

    fn page_out_rows(
        &self,
        store: &mut Self::Store,
        start: u32,
        end: u32,
        out: &mut Vec<u8>,
    ) -> Option<u64> {
        Some(store.page_out_rows(start, end, out))
    }

    fn page_in_rows(&self, store: &mut Self::Store, start: u32, end: u32, bytes: &[u8]) {
        store.page_in_rows(start, end, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_layout_and_rows() {
        let mut slab: StateSlab<u64> = StateSlab::new(3, 5, u64::MAX);
        assert_eq!(slab.rows(), 3);
        assert_eq!(slab.width(), 5);
        assert!(slab.row(2).iter().all(|&c| c == u64::MAX));
        {
            let mut row = slab.row_mut(1);
            row.set(4, 7);
            assert_eq!(row.get(4), 7);
        }
        assert_eq!(slab.row(1)[4], 7);
        assert_eq!(slab.row(0)[4], u64::MAX); // rows are disjoint
        assert_eq!(slab.row(2)[4], u64::MAX);
    }

    #[test]
    fn frontier_drain_is_ascending_and_clears() {
        let mut slab: StateSlab<u64> = StateSlab::new(1, 130, 0);
        let mut row = slab.row_mut(0);
        for q in [129, 3, 64, 63] {
            row.set(q, q as u64 + 1);
            row.mark(q);
        }
        assert!(row.is_marked(64));
        let mut seen = Vec::new();
        row.drain(|q, cell| {
            seen.push((q, *cell));
            *cell += 100;
        });
        assert_eq!(seen, vec![(3, 4), (63, 64), (64, 65), (129, 130)]);
        assert!(!row.is_marked(64));
        let mut again = Vec::new();
        row.drain(|q, _| again.push(q));
        assert!(again.is_empty(), "drain clears the frontier");
        assert_eq!(row.get(3), 104, "drain visits cells mutably");
    }

    #[test]
    fn relax_min_marks_only_improvements() {
        let mut slab: StateSlab<u64> = StateSlab::new(1, 4, u64::MAX);
        let mut row = slab.row_mut(0);
        row.relax_min(1, 10);
        row.relax_min(1, 12); // worse: no-op
        row.relax_min(1, 9); // better: improves
        row.relax_min(3, 5);
        let mut seen = Vec::new();
        row.drain(|q, cell| seen.push((q, *cell)));
        assert_eq!(seen, vec![(1, 9), (3, 5)]);
        // After drain, a non-improving relax leaves the frontier clean.
        row.relax_min(1, 50);
        let mut empty = Vec::new();
        row.drain(|q, _| empty.push(q));
        assert!(empty.is_empty());
    }

    #[test]
    fn reset_reuses_capacity() {
        let mut slab: StateSlab<u64> = StateSlab::new(100, 64, u64::MAX);
        slab.row_mut(10).set(3, 42);
        slab.row_mut(10).mark(3);
        let cap_before = slab.cells.capacity();
        slab.reset(50, 8, u64::MAX);
        assert_eq!(slab.cells.capacity(), cap_before, "no reallocation");
        assert_eq!(slab.rows(), 50);
        assert_eq!(slab.width(), 8);
        assert!(slab.row(10).iter().all(|&c| c == u64::MAX));
        let mut none = Vec::new();
        slab.row_mut(10).drain(|q, _| none.push(q));
        assert!(none.is_empty(), "frontier cleared by reset");
    }

    #[test]
    fn resident_bytes_match_capacity_formula() {
        let slab: StateSlab<u64> = StateSlab::new(7, 65, 0);
        assert_eq!(
            slab.resident_bytes(),
            StateSlab::<u64>::capacity_bytes(7, 65)
        );
        // 65 cells need 2 frontier words per row.
        assert_eq!(slab.resident_bytes(), 7 * 65 * 8 + 7 * 2 * 8);
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let mut a: StateSlab<u64> = StateSlab::new(4, 3, u64::MAX);
        a.row_mut(2).relax_min(1, 5);
        let mut b = a.clone();
        assert_eq!(b.row(2)[1], 5);
        a.row_mut(2).relax_min(1, 2);
        b.clone_from(&a);
        assert_eq!(b.row(2)[1], 2);
        let mut marks = Vec::new();
        b.row_mut(2).drain(|q, _| marks.push(q));
        assert_eq!(marks, vec![1], "frontier words travel with the clone");
    }

    #[test]
    fn lane_relax_matches_scalar_on_partial_chunk() {
        // Width 7: the single chunk is short; lane 7 must be ignored.
        let mut lanes: StateSlab<u64> = StateSlab::new(1, 7, u64::MAX);
        let mut scalar = lanes.clone();
        let cand = [9, u64::MAX, 3, 100, u64::MAX, 0, 7, 42];
        lanes.row_mut(0).relax_min_lanes(0, &cand);
        {
            let mut row = scalar.row_mut(0);
            for (q, &c) in cand.iter().take(7).enumerate() {
                row.relax_min(q, c);
            }
        }
        assert_eq!(lanes.row(0), scalar.row(0));
        let mut a = Vec::new();
        let mut b = Vec::new();
        lanes.row_mut(0).drain(|q, c| a.push((q, *c)));
        scalar.row_mut(0).drain(|q, c| b.push((q, *c)));
        assert_eq!(a, b);
        assert_eq!(a, vec![(0, 9), (2, 3), (3, 100), (5, 0), (6, 7)]);
    }

    #[test]
    fn drain_chunks_reports_masks_ascending_and_clears() {
        let mut slab: StateSlab<u64> = StateSlab::new(1, 130, 0);
        {
            let mut row = slab.row_mut(0);
            for q in [129, 3, 64, 63, 8] {
                row.set(q, q as u64);
                row.mark(q);
            }
        }
        let mut seen = Vec::new();
        slab.row_mut(0).drain_chunks(|chunk, mask, cells| {
            seen.push((chunk, mask, cells.len()));
        });
        // q=3 -> chunk 0 bit 3; q=8 -> chunk 1 bit 0; q=63 -> chunk 7
        // bit 7; q=64 -> chunk 8 bit 0; q=129 -> chunk 16 bit 1 (short
        // tail chunk of 2 cells).
        assert_eq!(
            seen,
            vec![
                (0, 1 << 3, 8),
                (1, 1 << 0, 8),
                (7, 1 << 7, 8),
                (8, 1 << 0, 8),
                (16, 1 << 1, 2),
            ]
        );
        let mut again = Vec::new();
        slab.row_mut(0).drain_chunks(|c, _, _| again.push(c));
        assert!(again.is_empty(), "drain_chunks clears the frontier");
    }

    #[test]
    fn relax_min_row_equals_scalar_sequence() {
        let mut lanes: StateSlab<u64> = StateSlab::new(1, 19, u64::MAX);
        let mut scalar = lanes.clone();
        let cands: Vec<u64> = (0..19).map(|q| (q as u64 * 37) % 23).collect();
        lanes.row_mut(0).relax_min_row(&cands);
        {
            let mut row = scalar.row_mut(0);
            for (q, &c) in cands.iter().enumerate() {
                row.relax_min(q, c);
            }
        }
        assert_eq!(lanes.row(0), scalar.row(0));
        let mut a = Vec::new();
        let mut b = Vec::new();
        lanes.row_mut(0).drain(|q, c| a.push((q, *c)));
        scalar.row_mut(0).drain(|q, c| b.push((q, *c)));
        assert_eq!(a, b);
    }

    #[test]
    fn diff_apply_reconstructs_bit_identically() {
        let mut prev: StateSlab<u64> = StateSlab::new(6, 9, u64::MAX);
        prev.row_mut(1).relax_min(2, 40);
        let mut cur = prev.clone();
        cur.row_mut(1).relax_min(2, 7);
        cur.row_mut(4).relax_min(8, 3);
        cur.row_mut(0).set(0, 99);
        let delta = cur.diff(&prev).expect("same shape diffs");
        // 3 cells changed; two frontier words (rows 1 and 4) — row 1's
        // word was already dirty in prev, so only row 4's word differs.
        assert_eq!(delta.cell_changes.len(), 3);
        assert_eq!(delta.front_changes.len(), 1);
        assert!(delta.stored_bytes() < StateSlab::<u64>::capacity_bytes(6, 9));
        let mut rebuilt = prev.clone();
        rebuilt.apply_delta(&delta);
        assert_eq!(rebuilt.cells, cur.cells);
        assert_eq!(rebuilt.frontier, cur.frontier);
        // No changes → empty delta.
        let none = cur.diff(&cur.clone()).unwrap();
        assert!(none.cell_changes.is_empty() && none.front_changes.is_empty());
        assert_eq!(none.stored_bytes(), 0);
    }

    #[test]
    fn diff_refuses_shape_mismatch() {
        let a: StateSlab<u64> = StateSlab::new(4, 3, 0);
        let b: StateSlab<u64> = StateSlab::new(4, 5, 0);
        assert!(a.diff(&b).is_none());
        let c: StateSlab<u64> = StateSlab::new(5, 3, 0);
        assert!(a.diff(&c).is_none());
    }

    #[test]
    fn page_out_in_roundtrips_and_really_moves_state() {
        let mut slab: StateSlab<u64> = StateSlab::new(8, 70, u64::MAX);
        slab.row_mut(3).relax_min(5, 17);
        slab.row_mut(4).relax_min(69, 2);
        slab.row_mut(6).relax_min(0, 9);
        let reference = slab.clone();
        let mut bytes = Vec::new();
        let n = slab.page_out_rows(3, 5, &mut bytes);
        // 2 rows × (70 cells × 8B + 2 frontier words × 8B).
        assert_eq!(n, 2 * (70 * 8 + 2 * 8));
        assert_eq!(n as usize, bytes.len());
        // The range really left the slab: cells back to the sentinel,
        // frontier cleared; untouched rows intact.
        assert!(slab.row(3).iter().all(|&c| c == u64::MAX));
        assert!(slab.row(4).iter().all(|&c| c == u64::MAX));
        assert!(!slab.row_mut(4).is_marked(69));
        assert_eq!(slab.row(6)[0], 9);
        slab.page_in_rows(3, 5, &bytes);
        assert_eq!(slab.cells, reference.cells);
        assert_eq!(slab.frontier, reference.frontier);
    }

    #[test]
    fn pageable_cells_encode_fixed_width() {
        let mut out = Vec::new();
        7u8.write_to(&mut out);
        0xDEAD_BEEFu32.write_to(&mut out);
        u64::MAX.write_to(&mut out);
        assert_eq!(out.len(), 1 + 4 + 8);
        assert_eq!(u8::read_from(&out), 7);
        assert_eq!(u32::read_from(&out[1..]), 0xDEAD_BEEF);
        assert_eq!(u64::read_from(&out[5..]), u64::MAX);
    }

    #[test]
    fn recycler_round_trips_slabs() {
        let recycler: SlabRecycler<u64> = SlabRecycler::new();
        assert!(recycler.take().is_none());
        recycler.put_all([StateSlab::new(10, 4, 0), StateSlab::new(5, 2, 0)]);
        assert_eq!(recycler.pooled(), 2);
        let slab = recycler.take().unwrap();
        assert_eq!(recycler.pooled(), 1);
        recycler.put_all([slab]);
        assert_eq!(recycler.pooled(), 2);
    }
}
