//! The vertex-program abstraction (`compute(v)` in the paper's §2.1).

use crate::message::{Delivery, Envelope, Message};
use mtvc_graph::csr::EdgeWeights;
use mtvc_graph::{Graph, VertexId};
use rand::rngs::SmallRng;

/// Adjacency of the current vertex served from a decoded out-of-core
/// chunk instead of the resident [`Graph`]. When a paged run hands this
/// to [`Context`], every neighbor the program observes really came
/// through the backing store's encode/decode path — a codec bug breaks
/// results, not just counters.
#[derive(Debug, Clone, Copy)]
pub struct PagedNeighbors<'a> {
    /// Out-neighbors of the current vertex, decoded from its partition.
    pub neighbors: &'a [VertexId],
    /// Parallel edge weights; `None` on unweighted graphs.
    pub weights: Option<&'a [u32]>,
}

/// Where a [`Context`] delivers emissions. Two implementations exist:
/// the flat [`Outbox`] (queue now, shard in the routing stage — the
/// historic pipeline and the serial oracle's input) and the router's
/// [`ShardedOutbox`](crate::router::ShardedOutbox), which routes each
/// emission into its destination shard at emit time and runs the
/// sender-side combiner's fold probe there, so folded envelopes are
/// never materialised (fold-at-send). Programs are oblivious: they call
/// [`Context::send`]/[`Context::broadcast`] either way.
///
/// The methods are raw — multiplicity-0 and degree-0 filtering happens
/// in [`Context`], so both sinks observe the exact same emission
/// sequence.
pub trait EmitSink<M> {
    /// Accept one point-to-point envelope.
    fn emit(&mut self, env: Envelope<M>);

    /// Accept one broadcast (origin, payload, per-neighbor
    /// multiplicity); the origin's degree is known non-zero.
    fn emit_broadcast(&mut self, origin: VertexId, msg: M, mult: u64);

    /// Record persistent-state growth declared by a compute call.
    fn add_state_bytes(&mut self, bytes: u64);
}

/// Per-worker send buffer, reused across compute calls *and* across
/// rounds: the routing pipeline drains `sends`/`broadcasts` in place,
/// so the vectors keep their capacity and a steady-state round
/// performs no outbox allocation.
///
/// Public so benches and property tests can drive
/// [`route`](crate::router::route) / [`RouteGrid`](crate::RouteGrid)
/// with synthetic traffic; vertex programs never see an `Outbox`
/// directly — they go through [`Context`].
#[derive(Debug, Default, Clone)]
pub struct Outbox<M> {
    /// Point-to-point envelopes.
    pub sends: Vec<Envelope<M>>,
    /// Broadcast payloads: (origin vertex, payload, per-neighbor
    /// multiplicity).
    pub broadcasts: Vec<(VertexId, M, u64)>,
    /// State bytes added by compute calls this round.
    pub state_bytes_added: u64,
}

impl<M> Outbox<M> {
    pub fn new() -> Self {
        Outbox {
            sends: Vec::new(),
            broadcasts: Vec::new(),
            state_bytes_added: 0,
        }
    }

    /// Reset for reuse across rounds; capacity is retained.
    pub fn clear(&mut self) {
        self.sends.clear();
        self.broadcasts.clear();
        self.state_bytes_added = 0;
    }
}

impl<M> EmitSink<M> for Outbox<M> {
    #[inline]
    fn emit(&mut self, env: Envelope<M>) {
        self.sends.push(env);
    }

    #[inline]
    fn emit_broadcast(&mut self, origin: VertexId, msg: M, mult: u64) {
        self.broadcasts.push((origin, msg, mult));
    }

    #[inline]
    fn add_state_bytes(&mut self, bytes: u64) {
        self.state_bytes_added += bytes;
    }
}

/// Execution context handed to `compute`. Borrow-scoped to one vertex
/// activation: sends are attributed to [`Context::vertex`].
///
/// Emissions flow to an [`EmitSink`] — a flat [`Outbox`] on the
/// two-stage routing path, a pre-sharded
/// [`ShardedOutbox`](crate::router::ShardedOutbox) on the fold-at-send
/// path. The dynamic dispatch is one perfectly-predicted indirect call
/// per emission (the sink never changes within a round).
pub struct Context<'a, M: Message> {
    vertex: VertexId,
    round: usize,
    graph: &'a Graph,
    paged: Option<PagedNeighbors<'a>>,
    rng: &'a mut SmallRng,
    sink: &'a mut dyn EmitSink<M>,
}

impl<'a, M: Message> Context<'a, M> {
    /// Build a context for one vertex activation. Public so benches and
    /// harnesses can drive programs directly; the engine's round loop
    /// constructs one per `init`/`compute` call. A plain
    /// `&mut Outbox<M>` coerces to the sink parameter.
    pub fn new(
        vertex: VertexId,
        round: usize,
        graph: &'a Graph,
        rng: &'a mut SmallRng,
        sink: &'a mut dyn EmitSink<M>,
    ) -> Self {
        Context {
            vertex,
            round,
            graph,
            paged: None,
            rng,
            sink,
        }
    }

    /// Build a context whose adjacency comes from a decoded out-of-core
    /// chunk. The graph reference stays for global metadata
    /// ([`Context::num_vertices`]); neighbor and weight access is
    /// served from `paged` exclusively.
    pub fn new_paged(
        vertex: VertexId,
        round: usize,
        graph: &'a Graph,
        paged: PagedNeighbors<'a>,
        rng: &'a mut SmallRng,
        sink: &'a mut dyn EmitSink<M>,
    ) -> Self {
        Context {
            vertex,
            round,
            graph,
            paged: Some(paged),
            rng,
            sink,
        }
    }

    /// The vertex currently executing.
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// Current round (0 = initialization round).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Total vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Out-neighbors of the current vertex.
    pub fn neighbors(&self) -> &'a [VertexId] {
        match self.paged {
            Some(p) => p.neighbors,
            None => self.graph.neighbors(self.vertex),
        }
    }

    /// Out-degree of the current vertex.
    pub fn degree(&self) -> usize {
        self.neighbors().len()
    }

    /// `(neighbor, weight)` pairs for the current vertex.
    pub fn weighted_neighbors(&self) -> impl Iterator<Item = (VertexId, u32)> + 'a {
        let (targets, weights) = match self.paged {
            Some(p) => (
                p.neighbors,
                match p.weights {
                    Some(w) => EdgeWeights::Explicit(w),
                    None => EdgeWeights::Unit(p.neighbors.len()),
                },
            ),
            None => (
                self.graph.neighbors(self.vertex),
                self.graph.edge_weights(self.vertex),
            ),
        };
        targets
            .iter()
            .enumerate()
            .map(move |(i, &t)| (t, weights.get(i)))
    }

    /// Deterministic per-(vertex, round) random generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Send `msg` to `dest`, representing `mult` wire messages.
    /// `mult = 0` is a silent no-op so callers don't need to branch on
    /// empty aggregates.
    pub fn send(&mut self, dest: VertexId, msg: M, mult: u64) {
        if mult == 0 {
            return;
        }
        self.sink.emit(Envelope::new(dest, msg, mult));
    }

    /// Broadcast `msg` to every out-neighbor (the only interface
    /// Pregel+(mirror) supports — §3 "Pregel-Mirror"). `mult` is the
    /// per-neighbor wire multiplicity, usually 1.
    pub fn broadcast(&mut self, msg: M, mult: u64) {
        if mult == 0 || self.degree() == 0 {
            return;
        }
        self.sink.emit_broadcast(self.vertex, msg, mult);
    }

    /// Record growth of persistent vertex state (distance tables, walk
    /// counters, visited sets) for the memory ledger.
    pub fn add_state_bytes(&mut self, bytes: u64) {
        self.sink.add_state_bytes(bytes);
    }

    /// Send `count` copies of `msg`, each to an independently uniform
    /// random neighbor — the aggregated random-walk hop. Equivalent to
    /// `count` individual `send`s but allocation-free and `O(min(count,
    /// degree))` via multinomial sampling.
    pub fn send_uniform_spread(&mut self, msg: M, count: u64) {
        let neighbors = self.neighbors();
        if count == 0 || neighbors.is_empty() {
            return;
        }
        let sink = &mut *self.sink;
        crate::sampling::multinomial_uniform(self.rng, count, neighbors.len(), |bin, c| {
            sink.emit(Envelope::new(neighbors[bin], msg.clone(), c));
        });
    }
}

/// A vertex-centric program (user-defined `compute` plus metadata).
///
/// Programs must be deterministic given the context RNG; the engine
/// seeds the RNG per `(run seed, round, vertex)` so results do not
/// depend on thread scheduling.
pub trait VertexProgram: Sync {
    /// Wire message payload.
    type Message: Message;
    /// Per-vertex persistent state.
    type State: Default + Clone + Send;

    /// Bytes of one wire message (the paper's footnote: "a message
    /// contains a constant number of integers").
    fn message_bytes(&self) -> u64;

    /// Round 0: activate sources, seed initial messages.
    fn init(&self, v: VertexId, state: &mut Self::State, ctx: &mut Context<'_, Self::Message>);

    /// Rounds ≥ 1: process the vertex's delivered messages. The slice
    /// is a contiguous borrowed run inside the worker's grouped
    /// [`Inbox`](crate::router::Inbox) — deliveries arrive in (source
    /// worker, send order) and are never cloned on the way here.
    fn compute(
        &self,
        v: VertexId,
        state: &mut Self::State,
        inbox: &[Delivery<Self::Message>],
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Fixed round bound (BKHS stops after k+1 rounds); `None` runs to
    /// quiescence.
    fn max_rounds(&self) -> Option<usize> {
        None
    }

    /// Baseline per-vertex state bytes at initialization.
    fn initial_state_bytes(&self) -> u64 {
        8
    }
}

/// The worker-granular execution contract the round loop actually
/// runs: one `Store` per worker holding every local vertex's state,
/// addressed by local index. [`VertexProgram`]s run through the
/// [`PerVertex`] adapter (`Store = Vec<State>`); slab programs run
/// through [`PerSlab`](crate::slab::PerSlab) (`Store =
/// StateSlab<Cell>`). Coherence forbids one blanket impl covering
/// both, hence two concrete adapters over one shared loop.
pub trait ProgramCore: Sync {
    /// Wire message payload.
    type Message: Message;
    /// One worker's state container. `Clone` must recycle via
    /// `clone_from` (checkpointing relies on it).
    type Store: Clone + Send;
    /// Per-vertex output extracted after the run.
    type Out: Default + Clone + Send;
    /// Difference between two stores of the same shape, for
    /// incremental checkpoints. Programs without a compact diff use
    /// `()` and leave [`ProgramCore::store_delta`] at its `None`
    /// default (the runner then falls back to full snapshots).
    type Delta: Clone + Send;

    fn message_bytes(&self) -> u64;

    /// Diff `cur` against `prev`, producing a delta that
    /// [`ProgramCore::apply_store_delta`] replays onto a clone of
    /// `prev` to reconstruct `cur` **bit-identically**. Return `None`
    /// when no compact diff exists (shape mismatch, or the program
    /// does not support deltas) — the runner falls back to a full
    /// snapshot.
    fn store_delta(&self, _prev: &Self::Store, _cur: &Self::Store) -> Option<Self::Delta> {
        None
    }

    /// Replay a delta produced by [`ProgramCore::store_delta`]. Only
    /// called with deltas this program produced; the default is
    /// unreachable for programs that never produce one.
    fn apply_store_delta(&self, _store: &mut Self::Store, _delta: &Self::Delta) {
        unreachable!("apply_store_delta on a program that never produces deltas")
    }

    /// Stored size of a delta in bytes, for checkpoint accounting.
    fn delta_bytes(&self, _delta: &Self::Delta) -> u64 {
        0
    }

    fn max_rounds(&self) -> Option<usize> {
        None
    }

    /// Build (or recycle) the store for a worker owning `vertices`,
    /// listed in local-index order.
    fn make_store(&self, vertices: &[VertexId]) -> Self::Store;

    /// Exact resident state bytes of `store`, if this program accounts
    /// state exactly (dense layouts know their capacity). Returning
    /// `None` makes the runner fall back to the `add_state_bytes`
    /// ledger seeded with [`ProgramCore::initial_state_bytes`] per
    /// vertex.
    fn exact_store_bytes(&self, store: &Self::Store) -> Option<u64>;

    /// Ledger baseline per vertex; unused when exact accounting is on.
    fn initial_state_bytes(&self) -> u64;

    /// Round 0 activation of vertex `v` at local index `li`.
    fn init_vertex(
        &self,
        v: VertexId,
        li: u32,
        store: &mut Self::Store,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Rounds ≥ 1: fold `v`'s delivered messages into the store.
    fn compute_vertex(
        &self,
        v: VertexId,
        li: u32,
        store: &mut Self::Store,
        inbox: &[Delivery<Self::Message>],
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Extract vertex `v`'s final output (cold path, once per run).
    fn take_out(&self, v: VertexId, li: u32, store: &mut Self::Store) -> Self::Out;

    /// Hand the run's stores back after extraction, e.g. to a
    /// recycler pool. Default: drop them.
    fn recycle(&self, stores: Vec<Self::Store>) {
        drop(stores);
    }

    /// Page local-index rows `[start, end)` of the store out: encode
    /// them into `out` and blank the range, returning the encoded size.
    /// `None` means the store cannot page state (the [`PerVertex`]
    /// ledger path) — the runner then pages adjacency only.
    fn page_out_rows(
        &self,
        _store: &mut Self::Store,
        _start: u32,
        _end: u32,
        _out: &mut Vec<u8>,
    ) -> Option<u64> {
        None
    }

    /// Restore rows paged out by [`ProgramCore::page_out_rows`]. Only
    /// called with bytes this program produced over the same range.
    fn page_in_rows(&self, _store: &mut Self::Store, _start: u32, _end: u32, _bytes: &[u8]) {
        unreachable!("page_in_rows on a program that never pages out")
    }
}

/// [`ProgramCore`] adapter for classic [`VertexProgram`]s: the store is
/// a plain `Vec<State>` in local-index order, state growth is tracked
/// by the `add_state_bytes` ledger. This is the path
/// [`Runner::run`](crate::runner::Runner::run) takes; behavior is
/// identical to the pre-slab engine.
pub struct PerVertex<'p, P: VertexProgram>(pub &'p P);

impl<P: VertexProgram> ProgramCore for PerVertex<'_, P> {
    type Message = P::Message;
    type Store = Vec<P::State>;
    type Out = P::State;
    type Delta = ();

    fn message_bytes(&self) -> u64 {
        self.0.message_bytes()
    }

    fn max_rounds(&self) -> Option<usize> {
        self.0.max_rounds()
    }

    fn make_store(&self, vertices: &[VertexId]) -> Self::Store {
        vec![P::State::default(); vertices.len()]
    }

    fn exact_store_bytes(&self, _store: &Self::Store) -> Option<u64> {
        None
    }

    fn initial_state_bytes(&self) -> u64 {
        self.0.initial_state_bytes()
    }

    fn init_vertex(
        &self,
        v: VertexId,
        li: u32,
        store: &mut Self::Store,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        self.0.init(v, &mut store[li as usize], ctx);
    }

    fn compute_vertex(
        &self,
        v: VertexId,
        li: u32,
        store: &mut Self::Store,
        inbox: &[Delivery<Self::Message>],
        ctx: &mut Context<'_, Self::Message>,
    ) {
        self.0.compute(v, &mut store[li as usize], inbox, ctx);
    }

    fn take_out(&self, _v: VertexId, li: u32, store: &mut Self::Store) -> Self::Out {
        std::mem::take(&mut store[li as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;
    use rand::SeedableRng;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u32);
    impl Message for Ping {
        fn combine_key(&self) -> Option<u64> {
            Some(self.0 as u64)
        }
        fn merge(&mut self, _o: &Self) {}
    }

    #[test]
    fn context_collects_sends_and_broadcasts() {
        let g = generators::ring(4, true);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut outbox = Outbox::new();
        let mut ctx = Context::new(2, 5, &g, &mut rng, &mut outbox);
        assert_eq!(ctx.vertex(), 2);
        assert_eq!(ctx.round(), 5);
        assert_eq!(ctx.degree(), 2);
        ctx.send(0, Ping(9), 3);
        ctx.send(1, Ping(8), 0); // no-op
        ctx.broadcast(Ping(7), 1);
        ctx.add_state_bytes(16);
        assert_eq!(outbox.sends.len(), 1);
        assert_eq!(outbox.sends[0].mult, 3);
        assert_eq!(outbox.broadcasts.len(), 1);
        assert_eq!(outbox.broadcasts[0].0, 2);
        assert_eq!(outbox.state_bytes_added, 16);
    }

    #[test]
    fn broadcast_from_isolated_vertex_is_noop() {
        let g = Graph::empty(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut outbox: Outbox<Ping> = Outbox::new();
        let mut ctx = Context::new(0, 0, &g, &mut rng, &mut outbox);
        ctx.broadcast(Ping(1), 1);
        assert!(outbox.broadcasts.is_empty());
    }

    #[test]
    fn outbox_clear_resets_everything() {
        let g = generators::ring(3, true);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut outbox = Outbox::new();
        {
            let mut ctx = Context::new(0, 0, &g, &mut rng, &mut outbox);
            ctx.send(1, Ping(1), 1);
            ctx.add_state_bytes(4);
        }
        outbox.clear();
        assert!(outbox.sends.is_empty());
        assert_eq!(outbox.state_bytes_added, 0);
    }
}
