//! Cluster topologies and the three presets of Table 1.

use crate::machine::MachineSpec;
use serde::{Deserialize, Serialize};

/// A homogeneous cluster: `machines` identical [`MachineSpec`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub name: String,
    pub machines: usize,
    pub machine: MachineSpec,
}

impl ClusterSpec {
    pub fn new(name: impl Into<String>, machines: usize, machine: MachineSpec) -> ClusterSpec {
        assert!(machines > 0, "cluster needs at least one machine");
        ClusterSpec {
            name: name.into(),
            machines,
            machine,
        }
    }

    /// Galaxy-8: 8 local machines (Table 1).
    pub fn galaxy8() -> ClusterSpec {
        ClusterSpec::new("Galaxy-8", 8, MachineSpec::galaxy())
    }

    /// Galaxy-27: 27 local machines (Table 1).
    pub fn galaxy27() -> ClusterSpec {
        ClusterSpec::new("Galaxy-27", 27, MachineSpec::galaxy())
    }

    /// Docker-32: 32 cloud nodes (Table 1).
    pub fn docker32() -> ClusterSpec {
        ClusterSpec::new("Docker-32", 32, MachineSpec::docker())
    }

    /// A Galaxy-style cluster with an arbitrary machine count — the
    /// paper's machine-scaling experiments use 1/2/4/8/16/27.
    pub fn galaxy(machines: usize) -> ClusterSpec {
        ClusterSpec::new(
            format!("Galaxy-{machines}"),
            machines,
            MachineSpec::galaxy(),
        )
    }

    /// A Docker-style cluster with an arbitrary machine count.
    pub fn docker(machines: usize) -> ClusterSpec {
        ClusterSpec::new(
            format!("Docker-{machines}"),
            machines,
            MachineSpec::docker(),
        )
    }

    /// Scale machine capacities to match a σ-scaled dataset (see
    /// [`MachineSpec::scaled`]).
    pub fn scaled(&self, sigma: f64) -> ClusterSpec {
        ClusterSpec {
            name: self.name.clone(),
            machines: self.machines,
            machine: self.machine.scaled(sigma),
        }
    }

    /// Total memory across the cluster.
    pub fn total_memory(&self) -> mtvc_metrics::Bytes {
        self.machine.memory * self.machines as u64
    }
}

impl std::fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} x {} mem, {} cores)",
            self.name, self.machines, self.machine.memory, self.machine.cores
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_metrics::Bytes;

    #[test]
    fn presets_match_table1() {
        assert_eq!(ClusterSpec::galaxy8().machines, 8);
        assert_eq!(ClusterSpec::galaxy27().machines, 27);
        assert_eq!(ClusterSpec::docker32().machines, 32);
        assert_eq!(ClusterSpec::docker32().machine.cores, 15);
    }

    #[test]
    fn total_memory_sums() {
        assert_eq!(ClusterSpec::galaxy8().total_memory(), Bytes::gib(128));
    }

    #[test]
    fn scaled_cluster_keeps_count() {
        let c = ClusterSpec::galaxy27().scaled(256.0);
        assert_eq!(c.machines, 27);
        assert_eq!(c.machine.memory, Bytes::gib(16).scaled(1.0 / 256.0));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        ClusterSpec::new("bad", 0, MachineSpec::galaxy());
    }

    #[test]
    fn display_is_informative() {
        let s = ClusterSpec::galaxy8().to_string();
        assert!(s.contains("Galaxy-8"));
        assert!(s.contains("8 x"));
    }
}
