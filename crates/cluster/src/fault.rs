//! Deterministic fault injection for chaos testing.
//!
//! The paper's central hazard is memory overload: full-parallelism runs
//! crash real systems (Giraph OOMs in §4), and the §5 tuner exists to
//! keep every machine under `p·M`. A production substrate must survive
//! a mispredicted memory model, not just report it — so this module
//! provides the *fault side* of the failure path: a seeded, fully
//! deterministic [`FaultPlan`] describing which machines crash at which
//! supersteps, which rounds lose their in-flight messages, which
//! machines straggle (slow rounds), when the interconnect partitions,
//! which inbound buckets arrive corrupted, and whether the simulated
//! kernel OOM-kills a worker the moment its memory demand exceeds
//! physical capacity (instead of the cost model's softer
//! thrashing-then-overflow regime).
//!
//! The engine consumes a plan through a [`FaultInjector`]: each
//! recoverable event fires exactly once (transient semantics — the
//! replayed superstep succeeds), which makes Pregel-style
//! checkpoint-rollback-replay recovery terminate. Everything is seeded,
//! so a chaos run is reproducible bit for bit.

use serde::{Deserialize, Serialize};

/// One recoverable injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The machine's in-memory state (vertex states, received message
    /// buffers) is lost at the start of the superstep. Pregel recovery:
    /// global rollback to the last checkpoint and replay.
    MachineCrash {
        /// The machine that crashes.
        machine: usize,
    },
    /// The messages routed *to* this machine at the end of the previous
    /// superstep are lost in transit. Recovered the same way a crash
    /// is: rollback and retransmit via replay.
    DeliveryFailure {
        /// The machine whose inbound messages are dropped.
        machine: usize,
    },
    /// The machine runs slow for a window of supersteps: its compute
    /// demand is scaled by `factor_pct / 100` for `rounds` rounds
    /// starting at the fault's round. No state is lost — the cost is
    /// pure simulated time, accounted as recovery overhead so the
    /// run's first-run completion time stays fault-free-identical.
    Straggler {
        /// The machine that slows down.
        machine: usize,
        /// Slowdown factor in percent (150 = 1.5× compute time; always
        /// ≥ 100 when drawn from [`FaultPlan::chaos`]).
        factor_pct: u32,
        /// How many consecutive supersteps the window covers (≥ 1).
        rounds: usize,
    },
    /// The cluster's interconnect splits: every cross-machine delivery
    /// of the superstep fails, for `rounds` consecutive supersteps.
    /// Recovered like a delivery failure — rollback and replay — plus a
    /// barrier-stall charge per blocked round while the partition heals.
    Partition {
        /// How many consecutive supersteps the partition lasts (≥ 1).
        rounds: usize,
    },
    /// `flips` encoded message buckets addressed to this machine arrive
    /// with flipped bits. The checksummed wire frame detects each at
    /// decode; the sender retransmits the affected buckets from its
    /// retained shard buffers — no rollback, only retransmission time.
    PayloadCorruption {
        /// The machine whose inbound buckets are corrupted.
        machine: usize,
        /// How many buckets arrive corrupted (each is retransmitted
        /// once; retransmissions are assumed clean).
        flips: u32,
    },
}

impl FaultKind {
    /// The machine the fault strikes, if the fault targets a single
    /// machine (`None` for cluster-wide faults such as partitions).
    pub fn machine(&self) -> Option<usize> {
        match *self {
            FaultKind::MachineCrash { machine }
            | FaultKind::DeliveryFailure { machine }
            | FaultKind::Straggler { machine, .. }
            | FaultKind::PayloadCorruption { machine, .. } => Some(machine),
            FaultKind::Partition { .. } => None,
        }
    }
}

/// How many of each fault kind a seeded chaos schedule should draw.
///
/// The all-zeros default injects nothing; fill in the kinds a scenario
/// needs and pass the mix to [`FaultPlan::chaos`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosMix {
    /// Machine crashes (rollback + replay).
    pub crashes: usize,
    /// Transient delivery failures (rollback + replay).
    pub losses: usize,
    /// Straggler windows (slow rounds, no state loss).
    pub stragglers: usize,
    /// Network partitions (cluster-wide delivery loss for a window).
    pub partitions: usize,
    /// Payload-corruption events (per-bucket retransmission).
    pub corruptions: usize,
}

impl ChaosMix {
    /// Total events the mix schedules.
    pub fn total(&self) -> usize {
        self.crashes + self.losses + self.stragglers + self.partitions + self.corruptions
    }
}

/// A fault scheduled at a specific superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The superstep (engine round) at whose start the fault fires. A
    /// round beyond the run's natural length never fires.
    pub round: usize,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults for one run.
///
/// Plans are data: build one explicitly with [`FaultPlan::with_crash`]
/// / [`FaultPlan::with_delivery_failure`], or draw a seeded random
/// schedule with [`FaultPlan::random`]. The same plan always produces
/// the same faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    hard_oom: bool,
}

/// SplitMix64 step — keeps the plan generator self-contained (no RNG
/// dependency in this crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults, soft overflow semantics).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule a machine crash at the start of `round`.
    pub fn with_crash(mut self, round: usize, machine: usize) -> FaultPlan {
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::MachineCrash { machine },
        });
        self
    }

    /// Schedule a transient loss of `machine`'s inbound messages at the
    /// start of `round`.
    pub fn with_delivery_failure(mut self, round: usize, machine: usize) -> FaultPlan {
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::DeliveryFailure { machine },
        });
        self
    }

    /// Schedule a straggler window: `machine` computes `factor_pct`%
    /// slower for `rounds` supersteps starting at `round`.
    pub fn with_straggler(
        mut self,
        round: usize,
        machine: usize,
        factor_pct: u32,
        rounds: usize,
    ) -> FaultPlan {
        assert!(factor_pct >= 100, "a straggler cannot speed a machine up");
        assert!(rounds >= 1, "a straggler window covers at least one round");
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::Straggler {
                machine,
                factor_pct,
                rounds,
            },
        });
        self
    }

    /// Schedule a network partition lasting `rounds` supersteps starting
    /// at `round`.
    pub fn with_partition(mut self, round: usize, rounds: usize) -> FaultPlan {
        assert!(rounds >= 1, "a partition lasts at least one round");
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::Partition { rounds },
        });
        self
    }

    /// Schedule `flips` corrupted inbound buckets on `machine` at the
    /// start of `round`.
    pub fn with_corruption(mut self, round: usize, machine: usize, flips: u32) -> FaultPlan {
        assert!(flips >= 1, "corruption must flip at least one bucket");
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::PayloadCorruption { machine, flips },
        });
        self
    }

    /// Enable the hard OOM kill: the run is terminated the moment any
    /// machine's simulated memory demand exceeds its physical capacity,
    /// instead of entering the cost model's thrashing regime and only
    /// overflowing at `overflow_limit × capacity`.
    pub fn with_hard_oom(mut self) -> FaultPlan {
        self.hard_oom = true;
        self
    }

    /// Draw a seeded random schedule: `crashes` machine crashes and
    /// `losses` delivery failures, uniformly over supersteps
    /// `1..=horizon` and `machines` machines. Deterministic in `seed`.
    pub fn random(
        seed: u64,
        machines: usize,
        horizon: usize,
        crashes: usize,
        losses: usize,
    ) -> FaultPlan {
        assert!(machines >= 1, "need at least one machine");
        assert!(horizon >= 1, "need at least one superstep");
        let mut state = seed ^ 0xFA17_FA17_FA17_FA17;
        let mut plan = FaultPlan::none();
        for _ in 0..crashes {
            let round = 1 + (splitmix64(&mut state) as usize) % horizon;
            let machine = (splitmix64(&mut state) as usize) % machines;
            plan = plan.with_crash(round, machine);
        }
        for _ in 0..losses {
            let round = 1 + (splitmix64(&mut state) as usize) % horizon;
            let machine = (splitmix64(&mut state) as usize) % machines;
            plan = plan.with_delivery_failure(round, machine);
        }
        plan
    }

    /// Draw a seeded random schedule covering the full fault taxonomy:
    /// `mix` counts of each kind, rounds uniform over `1..=horizon`,
    /// machines uniform over `machines`. Straggler factors land in
    /// 150..=400 %, straggler windows in 1..=3 rounds, partitions in
    /// 1..=2 rounds, corruption in 1..=4 buckets. Deterministic in
    /// `seed`; [`FaultPlan::random`] draws are unaffected (different
    /// stream).
    pub fn chaos(seed: u64, machines: usize, horizon: usize, mix: ChaosMix) -> FaultPlan {
        assert!(machines >= 1, "need at least one machine");
        assert!(horizon >= 1, "need at least one superstep");
        let mut state = seed ^ 0xC4A0_5C4A_05C4_A05C;
        let draw_round = |state: &mut u64| 1 + (splitmix64(state) as usize) % horizon;
        let mut plan = FaultPlan::none();
        for _ in 0..mix.crashes {
            let round = draw_round(&mut state);
            let machine = (splitmix64(&mut state) as usize) % machines;
            plan = plan.with_crash(round, machine);
        }
        for _ in 0..mix.losses {
            let round = draw_round(&mut state);
            let machine = (splitmix64(&mut state) as usize) % machines;
            plan = plan.with_delivery_failure(round, machine);
        }
        for _ in 0..mix.stragglers {
            let round = draw_round(&mut state);
            let machine = (splitmix64(&mut state) as usize) % machines;
            let factor_pct = 150 + (splitmix64(&mut state) % 251) as u32;
            let rounds = 1 + (splitmix64(&mut state) as usize) % 3;
            plan = plan.with_straggler(round, machine, factor_pct, rounds);
        }
        for _ in 0..mix.partitions {
            let round = draw_round(&mut state);
            let rounds = 1 + (splitmix64(&mut state) as usize) % 2;
            plan = plan.with_partition(round, rounds);
        }
        for _ in 0..mix.corruptions {
            let round = draw_round(&mut state);
            let machine = (splitmix64(&mut state) as usize) % machines;
            let flips = 1 + (splitmix64(&mut state) % 4) as u32;
            plan = plan.with_corruption(round, machine, flips);
        }
        plan
    }

    /// Whether the hard OOM kill is armed.
    pub fn hard_oom(&self) -> bool {
        self.hard_oom
    }

    /// The scheduled recoverable events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && !self.hard_oom
    }
}

/// Runtime consumer of a [`FaultPlan`] for one run.
///
/// Events are delivered by [`FaultInjector::take_all_at`] exactly once
/// each (transient-fault semantics): after a rollback, the replayed
/// superstep passes the point of failure cleanly, so recovery
/// terminates even when several faults stack up.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Remaining events, sorted by round (stable for equal rounds).
    pending: Vec<FaultEvent>,
    /// Events returned by the latest [`FaultInjector::take_all_at`];
    /// kept owned so the call can hand back a slice.
    taken: Vec<FaultEvent>,
    hard_oom: bool,
    fired: u64,
}

impl FaultInjector {
    /// Arm an injector for one run of `plan`.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let mut pending = plan.events.clone();
        // Sort descending by round so firing pops from the back.
        pending.sort_by_key(|e| std::cmp::Reverse(e.round));
        FaultInjector {
            pending,
            taken: Vec::new(),
            hard_oom: plan.hard_oom,
            fired: 0,
        }
    }

    /// Fire (and consume) every event scheduled at or before `round`,
    /// in schedule order. Co-scheduled faults — several events at the
    /// same round — all fire in one call; each event fires exactly
    /// once across the run. Returns an empty slice when nothing is due.
    pub fn take_all_at(&mut self, round: usize) -> &[FaultEvent] {
        self.taken.clear();
        while let Some(e) = self.pending.last() {
            if e.round > round {
                break;
            }
            self.taken.push(self.pending.pop().unwrap());
            self.fired += 1;
        }
        &self.taken
    }

    /// Whether the hard OOM kill is armed.
    pub fn hard_oom(&self) -> bool {
        self.hard_oom
    }

    /// Events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Events still scheduled.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_once_in_round_order() {
        let plan = FaultPlan::none()
            .with_crash(5, 1)
            .with_delivery_failure(2, 0)
            .with_crash(5, 3);
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.take_all_at(0).is_empty());
        assert!(inj.take_all_at(1).is_empty());
        let due = inj.take_all_at(2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::DeliveryFailure { machine: 0 });
        assert!(inj.take_all_at(2).is_empty());
        // Both round-5 events fire together in one call.
        assert_eq!(inj.take_all_at(5).len(), 2);
        assert!(inj.take_all_at(5).is_empty());
        assert_eq!(inj.fired(), 3);
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn co_scheduled_faults_all_fire_in_one_call() {
        let plan = FaultPlan::none()
            .with_crash(4, 1)
            .with_delivery_failure(4, 0)
            .with_partition(4, 1)
            .with_corruption(4, 2, 3);
        let mut inj = FaultInjector::new(&plan);
        let due = inj.take_all_at(4);
        assert_eq!(due.len(), 4, "every co-scheduled event fires at once");
        assert!(inj.take_all_at(4).is_empty());
        assert_eq!(inj.fired(), 4);
    }

    #[test]
    fn skipped_rounds_still_fire_late() {
        // A fault at round 3 queried first at round 7 (e.g. the engine
        // only polls at checkpoint boundaries) still fires.
        let plan = FaultPlan::none().with_crash(3, 0);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.take_all_at(7).len(), 1);
    }

    #[test]
    fn random_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::random(42, 4, 10, 3, 2);
        let b = FaultPlan::random(42, 4, 10, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 5);
        for e in a.events() {
            assert!((1..=10).contains(&e.round));
            assert!(e.kind.machine().unwrap() < 4);
        }
        let c = FaultPlan::random(43, 4, 10, 3, 2);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn chaos_plans_are_deterministic_and_in_range() {
        let mix = ChaosMix {
            crashes: 2,
            losses: 2,
            stragglers: 3,
            partitions: 1,
            corruptions: 2,
        };
        let a = FaultPlan::chaos(42, 4, 10, mix);
        let b = FaultPlan::chaos(42, 4, 10, mix);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), mix.total());
        for e in a.events() {
            assert!((1..=10).contains(&e.round));
            if let Some(m) = e.kind.machine() {
                assert!(m < 4);
            }
            match e.kind {
                FaultKind::Straggler {
                    factor_pct, rounds, ..
                } => {
                    assert!((150..=400).contains(&factor_pct));
                    assert!((1..=3).contains(&rounds));
                }
                FaultKind::Partition { rounds } => assert!((1..=2).contains(&rounds)),
                FaultKind::PayloadCorruption { flips, .. } => assert!((1..=4).contains(&flips)),
                _ => {}
            }
        }
        assert_ne!(a, FaultPlan::chaos(43, 4, 10, mix));
        assert!(FaultPlan::chaos(1, 3, 8, ChaosMix::default()).is_empty());
    }

    #[test]
    fn hard_oom_is_carried_through() {
        let plan = FaultPlan::none().with_hard_oom();
        assert!(plan.hard_oom());
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan);
        assert!(inj.hard_oom());
        assert_eq!(inj.remaining(), 0);
    }
}
