//! Deterministic fault injection for chaos testing.
//!
//! The paper's central hazard is memory overload: full-parallelism runs
//! crash real systems (Giraph OOMs in §4), and the §5 tuner exists to
//! keep every machine under `p·M`. A production substrate must survive
//! a mispredicted memory model, not just report it — so this module
//! provides the *fault side* of the failure path: a seeded, fully
//! deterministic [`FaultPlan`] describing which machines crash at which
//! supersteps, which rounds lose their in-flight messages, and whether
//! the simulated kernel OOM-kills a worker the moment its memory demand
//! exceeds physical capacity (instead of the cost model's softer
//! thrashing-then-overflow regime).
//!
//! The engine consumes a plan through a [`FaultInjector`]: each
//! recoverable event fires exactly once (transient semantics — the
//! replayed superstep succeeds), which makes Pregel-style
//! checkpoint-rollback-replay recovery terminate. Everything is seeded,
//! so a chaos run is reproducible bit for bit.

use serde::{Deserialize, Serialize};

/// One recoverable injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The machine's in-memory state (vertex states, received message
    /// buffers) is lost at the start of the superstep. Pregel recovery:
    /// global rollback to the last checkpoint and replay.
    MachineCrash {
        /// The machine that crashes.
        machine: usize,
    },
    /// The messages routed *to* this machine at the end of the previous
    /// superstep are lost in transit. Recovered the same way a crash
    /// is: rollback and retransmit via replay.
    DeliveryFailure {
        /// The machine whose inbound messages are dropped.
        machine: usize,
    },
}

impl FaultKind {
    /// The machine the fault strikes.
    pub fn machine(&self) -> usize {
        match *self {
            FaultKind::MachineCrash { machine } | FaultKind::DeliveryFailure { machine } => machine,
        }
    }
}

/// A fault scheduled at a specific superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The superstep (engine round) at whose start the fault fires. A
    /// round beyond the run's natural length never fires.
    pub round: usize,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults for one run.
///
/// Plans are data: build one explicitly with [`FaultPlan::with_crash`]
/// / [`FaultPlan::with_delivery_failure`], or draw a seeded random
/// schedule with [`FaultPlan::random`]. The same plan always produces
/// the same faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    hard_oom: bool,
}

/// SplitMix64 step — keeps the plan generator self-contained (no RNG
/// dependency in this crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults, soft overflow semantics).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule a machine crash at the start of `round`.
    pub fn with_crash(mut self, round: usize, machine: usize) -> FaultPlan {
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::MachineCrash { machine },
        });
        self
    }

    /// Schedule a transient loss of `machine`'s inbound messages at the
    /// start of `round`.
    pub fn with_delivery_failure(mut self, round: usize, machine: usize) -> FaultPlan {
        self.events.push(FaultEvent {
            round,
            kind: FaultKind::DeliveryFailure { machine },
        });
        self
    }

    /// Enable the hard OOM kill: the run is terminated the moment any
    /// machine's simulated memory demand exceeds its physical capacity,
    /// instead of entering the cost model's thrashing regime and only
    /// overflowing at `overflow_limit × capacity`.
    pub fn with_hard_oom(mut self) -> FaultPlan {
        self.hard_oom = true;
        self
    }

    /// Draw a seeded random schedule: `crashes` machine crashes and
    /// `losses` delivery failures, uniformly over supersteps
    /// `1..=horizon` and `machines` machines. Deterministic in `seed`.
    pub fn random(
        seed: u64,
        machines: usize,
        horizon: usize,
        crashes: usize,
        losses: usize,
    ) -> FaultPlan {
        assert!(machines >= 1, "need at least one machine");
        assert!(horizon >= 1, "need at least one superstep");
        let mut state = seed ^ 0xFA17_FA17_FA17_FA17;
        let mut plan = FaultPlan::none();
        for _ in 0..crashes {
            let round = 1 + (splitmix64(&mut state) as usize) % horizon;
            let machine = (splitmix64(&mut state) as usize) % machines;
            plan = plan.with_crash(round, machine);
        }
        for _ in 0..losses {
            let round = 1 + (splitmix64(&mut state) as usize) % horizon;
            let machine = (splitmix64(&mut state) as usize) % machines;
            plan = plan.with_delivery_failure(round, machine);
        }
        plan
    }

    /// Whether the hard OOM kill is armed.
    pub fn hard_oom(&self) -> bool {
        self.hard_oom
    }

    /// The scheduled recoverable events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && !self.hard_oom
    }
}

/// Runtime consumer of a [`FaultPlan`] for one run.
///
/// Events are delivered by [`FaultInjector::take_at`] exactly once each
/// (transient-fault semantics): after a rollback, the replayed
/// superstep passes the point of failure cleanly, so recovery
/// terminates even when several faults stack up.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Remaining events, sorted by round (stable for equal rounds).
    pending: Vec<FaultEvent>,
    hard_oom: bool,
    fired: u64,
}

impl FaultInjector {
    /// Arm an injector for one run of `plan`.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let mut pending = plan.events.clone();
        // Sort descending by round so firing pops from the back.
        pending.sort_by_key(|e| std::cmp::Reverse(e.round));
        FaultInjector {
            pending,
            hard_oom: plan.hard_oom,
            fired: 0,
        }
    }

    /// Fire (and consume) one event scheduled at `round`, if any. Call
    /// repeatedly per round until `None`: stacked events at the same
    /// round each fire once.
    pub fn take_at(&mut self, round: usize) -> Option<FaultEvent> {
        match self.pending.last() {
            Some(e) if e.round <= round => {
                self.fired += 1;
                self.pending.pop()
            }
            _ => None,
        }
    }

    /// Whether the hard OOM kill is armed.
    pub fn hard_oom(&self) -> bool {
        self.hard_oom
    }

    /// Events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Events still scheduled.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_once_in_round_order() {
        let plan = FaultPlan::none()
            .with_crash(5, 1)
            .with_delivery_failure(2, 0)
            .with_crash(5, 3);
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.take_at(0).is_none());
        assert!(inj.take_at(1).is_none());
        let e = inj.take_at(2).unwrap();
        assert_eq!(e.kind, FaultKind::DeliveryFailure { machine: 0 });
        assert!(inj.take_at(2).is_none());
        // Both round-5 events fire, one take_at call each.
        assert!(inj.take_at(5).is_some());
        assert!(inj.take_at(5).is_some());
        assert!(inj.take_at(5).is_none());
        assert_eq!(inj.fired(), 3);
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn skipped_rounds_still_fire_late() {
        // A fault at round 3 queried first at round 7 (e.g. the engine
        // only polls at checkpoint boundaries) still fires.
        let plan = FaultPlan::none().with_crash(3, 0);
        let mut inj = FaultInjector::new(&plan);
        assert!(inj.take_at(7).is_some());
    }

    #[test]
    fn random_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::random(42, 4, 10, 3, 2);
        let b = FaultPlan::random(42, 4, 10, 3, 2);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 5);
        for e in a.events() {
            assert!((1..=10).contains(&e.round));
            assert!(e.kind.machine() < 4);
        }
        let c = FaultPlan::random(43, 4, 10, 3, 2);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn hard_oom_is_carried_through() {
        let plan = FaultPlan::none().with_hard_oom();
        assert!(plan.hard_oom());
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(&plan);
        assert!(inj.hard_oom());
        assert_eq!(inj.remaining(), 0);
    }
}
