//! The cost model: resource demand → simulated time.
//!
//! The engine measures, per synchronous round, how much work each
//! simulated machine must do (compute operations, bytes in/out on the
//! network, peak memory demand, disk streaming and spill volume) and the
//! cost model prices that demand against a [`MachineSpec`]:
//!
//! ```text
//! worker_time  = max(compute + net, disk_busy) · thrash(memory)
//! round_time   = max over workers (worker_time) + barrier + lock
//! ```
//!
//! Three regimes drive the paper's findings and are modeled explicitly:
//!
//! * **memory-bound** (§4.3): demand above the usable capacity (~14 GB of
//!   16 GB) triggers a thrashing multiplier that grows super-linearly
//!   once demand exceeds *physical* capacity; far above physical
//!   capacity the run fails with [`ChargeError::MemoryOverflow`]
//!   (Table 2's "Overflow").
//! * **disk-bound** (§4.4): out-of-core systems stream edges every round
//!   and spill over-budget messages; when disk busy time exceeds the
//!   overlapping compute+network time, the round is disk-bound and
//!   *disk overuse* (time at 100% utilization) accrues, with the I/O
//!   queue exploding as utilization saturates (Table 3). When the
//!   engine runs with partition paging enabled, the `spill`/`stream`
//!   demand entering these terms is *measured* by the pager (exact
//!   bytes written out and streamed in per round) instead of the
//!   whole-graph demand estimate, so schedule choices (round-robin vs
//!   frontier-density) change the priced disk time.
//! * **network overuse** (§4.3, §4.4): a round's message burst saturates
//!   the NIC for `bytes/bandwidth` seconds; sustained saturation beyond
//!   a floor counts as overuse, so smaller per-round bursts (more
//!   batches) reduce overuse, exactly as Tables 2 and 3 observe.

use crate::machine::MachineSpec;
use mtvc_metrics::{Bytes, SimTime};
use serde::{Deserialize, Serialize};

/// Per-round resource demand, one entry per worker.
///
/// All quantities must already include any system-profile scaling
/// (language CPU factors, memory object overhead): the engine owns
/// semantics, this crate owns pricing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundDemand {
    /// Abstract compute operations per worker.
    pub compute_ops: Vec<f64>,
    /// Bytes each worker sends to *other* machines this round.
    pub net_out: Vec<Bytes>,
    /// Bytes each worker receives from other machines this round.
    pub net_in: Vec<Bytes>,
    /// Peak memory demand per worker during the round.
    pub memory: Vec<Bytes>,
    /// Message bytes spilled to disk (out-of-core over-budget traffic).
    /// Under partition paging this also carries the slab-state bytes
    /// the pager actually wrote out, so the disk term prices measured
    /// traffic rather than the demand-based estimate.
    pub spill: Vec<Bytes>,
    /// Number of spilled messages (for I/O queue accounting).
    pub spill_messages: Vec<u64>,
    /// Unconditional disk streaming per round. Without paging this is
    /// the estimate-path value (e.g. GraphD streams the whole edge
    /// list from disk every round); with paging active it is the exact
    /// partition bytes the pager loaded this round, so frontier-density
    /// scheduling shows up directly as a smaller disk term.
    pub stream: Vec<Bytes>,
    /// Whether a synchronization barrier ends this round.
    pub barrier: bool,
    /// Distributed-lock acquisitions (asynchronous engines; §4.8).
    pub lock_ops: f64,
}

impl RoundDemand {
    /// Demand skeleton for `workers` workers, all zeros.
    pub fn zeros(workers: usize, barrier: bool) -> RoundDemand {
        RoundDemand {
            compute_ops: vec![0.0; workers],
            net_out: vec![Bytes::ZERO; workers],
            net_in: vec![Bytes::ZERO; workers],
            memory: vec![Bytes::ZERO; workers],
            spill: vec![Bytes::ZERO; workers],
            spill_messages: vec![0; workers],
            stream: vec![Bytes::ZERO; workers],
            barrier,
            lock_ops: 0.0,
        }
    }

    pub fn workers(&self) -> usize {
        self.compute_ops.len()
    }

    fn validate(&self) {
        let w = self.workers();
        assert!(w > 0, "demand must cover at least one worker");
        assert!(
            self.net_out.len() == w
                && self.net_in.len() == w
                && self.memory.len() == w
                && self.spill.len() == w
                && self.spill_messages.len() == w
                && self.stream.len() == w,
            "demand vectors must have equal lengths"
        );
    }
}

/// Priced result for one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundCharge {
    /// Simulated duration of the round.
    pub duration: SimTime,
    /// Time with the NIC saturated beyond the burst floor.
    pub network_overuse: SimTime,
    /// Disk busy time at the busiest worker.
    pub disk_busy: SimTime,
    /// Time the round was purely disk-bound (100% utilization).
    pub disk_overuse: SimTime,
    /// Average I/O queue length at the busiest worker.
    pub io_queue_len: f64,
    /// Peak memory demand across workers.
    pub peak_memory: Bytes,
    /// Thrashing multiplier applied to the slowest worker (1.0 = none).
    pub thrash_factor: f64,
}

/// Pricing failure: the run cannot proceed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChargeError {
    /// A worker's memory demand exceeded physical capacity by more than
    /// the overflow limit — the paper's "Overflow" outcome.
    MemoryOverflow {
        worker: usize,
        demand: Bytes,
        capacity: Bytes,
    },
}

impl std::fmt::Display for ChargeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChargeError::MemoryOverflow {
                worker,
                demand,
                capacity,
            } => write!(
                f,
                "memory overflow on worker {worker}: demand {demand} vs capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ChargeError {}

/// Tunable pricing constants. Defaults are calibrated so the benchmark
/// harness reproduces the paper's figure shapes at the default dataset
/// scale (see EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed barrier latency per synchronous round (seconds).
    pub barrier_base: f64,
    /// Additional barrier latency per machine (seconds) — sync cost
    /// grows with the cluster (§4.8).
    pub barrier_per_machine: f64,
    /// NIC saturation below this many seconds per round does not count
    /// as overuse (short bursts; see module docs).
    pub net_overuse_floor: f64,
    /// Thrash multiplier slope within (usable, capacity]: factor at
    /// exactly full physical capacity is `1 + swap_mild`.
    pub swap_mild: f64,
    /// Super-linear exponent once demand exceeds physical capacity.
    pub swap_exponent: f64,
    /// Demand above `overflow_limit × capacity` is a hard Overflow.
    pub overflow_limit: f64,
    /// Spilled bytes are written then read back: amplification 2.0.
    pub disk_rw_amplification: f64,
    /// Throughput degradation once the disk is the round's bottleneck:
    /// a saturated disk serving queued concurrent streams loses
    /// sequential bandwidth to seeks, so disk-bound time is multiplied
    /// by this factor (drives Table 3's saturated rows).
    pub disk_saturation_penalty: f64,
    /// Seconds per distributed-lock acquisition (async engines).
    pub lock_cost_per_op: f64,
    /// Lock cost growth per machine (more fibers ⇒ more contention).
    pub lock_machine_coeff: f64,
    /// Baseline in-flight I/O queue length when the disk is unsaturated.
    pub io_queue_base: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            barrier_base: 0.05,
            barrier_per_machine: 0.002,
            net_overuse_floor: 2.0,
            swap_mild: 2.0,
            swap_exponent: 8.0,
            overflow_limit: 1.4,
            disk_rw_amplification: 2.0,
            disk_saturation_penalty: 3.0,
            lock_cost_per_op: 6.0e-7,
            lock_machine_coeff: 0.25,
            io_queue_base: 15.0,
        }
    }
}

impl CostModel {
    /// Thrashing multiplier for memory demand `m` on `spec`.
    /// Piecewise: 1 below usable memory; linear ramp to `1+swap_mild`
    /// at physical capacity; power-law blow-up beyond.
    pub fn thrash_factor(&self, m: Bytes, spec: &MachineSpec) -> f64 {
        let usable = spec.usable_memory().as_f64();
        let cap = spec.memory.as_f64();
        let m = m.as_f64();
        if m <= usable {
            1.0
        } else if m <= cap {
            let span = (cap - usable).max(1.0);
            1.0 + self.swap_mild * (m - usable) / span
        } else {
            (1.0 + self.swap_mild) * (m / cap).powf(self.swap_exponent)
        }
    }

    /// Price one round of demand on a homogeneous cluster of
    /// `spec`-machines. The number of machines is `demand.workers()`.
    pub fn charge(
        &self,
        spec: &MachineSpec,
        demand: &RoundDemand,
    ) -> Result<RoundCharge, ChargeError> {
        demand.validate();
        let machines = demand.workers();
        let ops_rate = spec.total_ops_per_sec().max(1.0);
        let net_bw = spec.network_bandwidth.max(1.0);
        let disk_bw = spec.disk_bandwidth.max(1.0);

        let mut slowest = 0.0f64;
        let mut slowest_thrash = 1.0f64;
        let mut peak_mem = Bytes::ZERO;
        let mut net_overuse = 0.0f64;
        let mut max_disk_busy = 0.0f64;
        let mut disk_overuse = 0.0f64;
        let mut busiest_disk_worker: Option<usize> = None;

        for w in 0..machines {
            // Overflow check first: a worker that cannot hold its data
            // fails the whole round.
            let mem = demand.memory[w];
            let cap = spec.memory;
            if mem.as_f64() > cap.as_f64() * self.overflow_limit {
                return Err(ChargeError::MemoryOverflow {
                    worker: w,
                    demand: mem,
                    capacity: cap,
                });
            }
            peak_mem = peak_mem.max(mem);

            let compute_t = demand.compute_ops[w] / ops_rate;
            let net_t = demand.net_out[w].as_f64().max(demand.net_in[w].as_f64()) / net_bw;
            let mut disk_t = (demand.spill[w].as_f64() * self.disk_rw_amplification
                + demand.stream[w].as_f64())
                / disk_bw;

            // Disk streaming overlaps compute+network; the worker is
            // disk-bound when disk work exceeds everything else, and a
            // saturated disk additionally loses throughput to seeks.
            let cpu_net = compute_t + net_t;
            if disk_t > cpu_net && disk_t > 0.0 {
                disk_t *= self.disk_saturation_penalty;
            }
            let thrash = self.thrash_factor(mem, spec);
            let worker_t = cpu_net.max(disk_t) * thrash;

            if net_t > self.net_overuse_floor {
                net_overuse = net_overuse.max(net_t - self.net_overuse_floor);
            }
            if disk_t > max_disk_busy {
                max_disk_busy = disk_t;
                busiest_disk_worker = Some(w);
            }
            if disk_t > cpu_net {
                disk_overuse = disk_overuse.max((disk_t - cpu_net) * thrash);
            }
            if worker_t > slowest {
                slowest = worker_t;
                slowest_thrash = thrash;
            }
        }

        let barrier_t = if demand.barrier {
            self.barrier_base + self.barrier_per_machine * machines as f64
        } else {
            0.0
        };
        let lock_t = demand.lock_ops
            * self.lock_cost_per_op
            * (1.0 + self.lock_machine_coeff * machines as f64);

        let duration = slowest + barrier_t + lock_t;

        // "Overuse (I/O)" is the time spent at 100% disk utilization
        // (§4.4). A round whose disk busy time does not dominate its
        // duration never saturates, so its overuse is zero.
        if duration > 0.0 && max_disk_busy / duration < 0.9 {
            disk_overuse = 0.0;
        }

        // I/O queue at the busiest disk worker (Little's-law flavoured:
        // explodes as utilization saturates).
        let io_queue_len = match busiest_disk_worker {
            Some(w) if max_disk_busy > 0.0 => {
                let util = (max_disk_busy / duration.max(1e-12)).min(1.0);
                let msgs = demand.spill_messages[w] as f64;
                if util >= 0.999 {
                    // Saturated: roughly half of the spilled messages
                    // wait in queue on average.
                    (msgs * 0.5).max(self.io_queue_base)
                } else {
                    self.io_queue_base + (util * util / (1.0 - util)) * msgs.sqrt()
                }
            }
            _ => 0.0,
        };

        Ok(RoundCharge {
            duration: SimTime::secs(duration),
            network_overuse: SimTime::secs(net_overuse),
            disk_busy: SimTime::secs(max_disk_busy),
            disk_overuse: SimTime::secs(disk_overuse),
            io_queue_len,
            peak_memory: peak_mem,
            thrash_factor: slowest_thrash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec::galaxy()
    }

    fn demand_one(ops: f64, out: u64, mem: Bytes) -> RoundDemand {
        let mut d = RoundDemand::zeros(1, true);
        d.compute_ops[0] = ops;
        d.net_out[0] = Bytes(out);
        d.memory[0] = mem;
        d
    }

    #[test]
    fn compute_only_round() {
        let m = CostModel::default();
        let d = demand_one(16.0e6, 0, Bytes::gib(1));
        let c = m.charge(&spec(), &d).unwrap();
        let expect = 16.0e6 / spec().total_ops_per_sec();
        let barrier = m.barrier_base + m.barrier_per_machine;
        assert!((c.duration.as_secs() - (expect + barrier)).abs() < 1e-9);
        assert_eq!(c.thrash_factor, 1.0);
        assert_eq!(c.network_overuse, SimTime::ZERO);
    }

    #[test]
    fn slowest_worker_dominates() {
        let m = CostModel::default();
        let mut d = RoundDemand::zeros(4, false);
        d.compute_ops = vec![1.0e6, 2.0e6, 64.0e6, 3.0e6];
        let c = m.charge(&spec(), &d).unwrap();
        let expect = 64.0e6 / spec().total_ops_per_sec();
        assert!((c.duration.as_secs() - expect).abs() < 1e-9);
    }

    #[test]
    fn thrash_regimes_are_ordered_and_continuous() {
        let m = CostModel::default();
        let s = spec();
        let usable = s.usable_memory();
        assert_eq!(m.thrash_factor(Bytes::gib(1), &s), 1.0);
        assert_eq!(m.thrash_factor(usable, &s), 1.0);
        // Just above usable: tiny ramp.
        let just_above = Bytes(usable.get() + 1024);
        assert!(m.thrash_factor(just_above, &s) > 1.0);
        assert!(m.thrash_factor(just_above, &s) < 1.01);
        // At capacity: exactly 1 + swap_mild.
        let at_cap = m.thrash_factor(s.memory, &s);
        assert!((at_cap - (1.0 + m.swap_mild)).abs() < 1e-9);
        // Beyond capacity grows super-linearly but continuously.
        let above = m.thrash_factor(s.memory.scaled(1.01), &s);
        assert!(above > at_cap && above < at_cap * 1.2);
        let far = m.thrash_factor(s.memory.scaled(1.3), &s);
        assert!(far > 2.0 * at_cap);
    }

    #[test]
    fn overflow_detected() {
        let m = CostModel::default();
        let d = demand_one(1.0, 0, Bytes::gib(16).scaled(1.5));
        match m.charge(&spec(), &d) {
            Err(ChargeError::MemoryOverflow { worker, .. }) => assert_eq!(worker, 0),
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn network_overuse_only_beyond_floor() {
        let m = CostModel::default();
        // 125 MB/s NIC: 100 MB burst = 0.8 s, below the 2 s floor.
        let c = m
            .charge(&spec(), &demand_one(0.0, 100_000_000, Bytes::ZERO))
            .unwrap();
        assert_eq!(c.network_overuse, SimTime::ZERO);
        // 1 GB burst = 8 s: 6 s of overuse.
        let c = m
            .charge(&spec(), &demand_one(0.0, 1_000_000_000, Bytes::ZERO))
            .unwrap();
        assert!((c.network_overuse.as_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn disk_bound_round_accrues_overuse_and_queue() {
        let m = CostModel::default();
        let mut d = RoundDemand::zeros(1, true);
        d.compute_ops[0] = 1.0e6; // 0.0625 s of compute
        d.spill[0] = Bytes(600_000_000); // 1.2 GB r/w at 120 MB/s = 10 s
        d.spill_messages[0] = 50_000;
        let c = m.charge(&spec(), &d).unwrap();
        assert!(c.disk_busy.as_secs() > 9.9);
        assert!(c.disk_overuse.as_secs() > 9.0);
        assert!(c.io_queue_len > 1000.0, "queue {}", c.io_queue_len);
    }

    #[test]
    fn unsaturated_disk_small_queue() {
        let m = CostModel::default();
        let mut d = RoundDemand::zeros(1, true);
        d.compute_ops[0] = 320.0e6; // 20 s compute
        d.stream[0] = Bytes(120_000_000); // 1 s of streaming -> ~5% util
        d.spill_messages[0] = 10_000;
        let c = m.charge(&spec(), &d).unwrap();
        assert_eq!(c.disk_overuse, SimTime::ZERO);
        assert!(c.io_queue_len >= m.io_queue_base);
        assert!(c.io_queue_len < m.io_queue_base + 5.0);
    }

    #[test]
    fn async_lock_cost_grows_with_machines() {
        let m = CostModel::default();
        let mut d2 = RoundDemand::zeros(2, false);
        d2.lock_ops = 1.0e6;
        let mut d16 = RoundDemand::zeros(16, false);
        d16.lock_ops = 1.0e6;
        let c2 = m.charge(&spec(), &d2).unwrap();
        let c16 = m.charge(&spec(), &d16).unwrap();
        assert!(c16.duration > c2.duration);
    }

    #[test]
    fn barrier_scales_with_machines() {
        let m = CostModel::default();
        let c8 = m.charge(&spec(), &RoundDemand::zeros(8, true)).unwrap();
        let c27 = m.charge(&spec(), &RoundDemand::zeros(27, true)).unwrap();
        assert!(c27.duration > c8.duration);
        let c_async = m.charge(&spec(), &RoundDemand::zeros(8, false)).unwrap();
        assert_eq!(c_async.duration, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_vectors_rejected() {
        let mut d = RoundDemand::zeros(2, true);
        d.net_out.pop();
        let _ = CostModel::default().charge(&spec(), &d);
    }
}
