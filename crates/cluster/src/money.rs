//! Monetary cost accounting (§4.6).
//!
//! In the Docker cloud the credit cost is proportional to running time,
//! with the per-unit-time rate determined by the machine specification
//! (disk, memory, CPU). Overloaded runs are billed at the 6000 s cutoff
//! and reported as a lower bound with a `>` prefix, as in Figure 7.

use crate::topology::ClusterSpec;
use mtvc_metrics::{RunOutcome, SimTime, OVERLOAD_CUTOFF};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A credit amount, possibly a lower bound (overloaded run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonetaryCost {
    pub credits: f64,
    /// True when at least one contributing run overloaded, making this
    /// a lower bound on the true cost.
    pub lower_bound: bool,
}

impl MonetaryCost {
    pub const ZERO: MonetaryCost = MonetaryCost {
        credits: 0.0,
        lower_bound: false,
    };

    /// Cost of one run on `cluster`: runtime × machines × rate. An
    /// overloaded run bills the cutoff duration and marks the result as
    /// a lower bound.
    pub fn of_run(outcome: RunOutcome, cluster: &ClusterSpec) -> MonetaryCost {
        let rate = cluster.machine.credit_rate * cluster.machines as f64;
        match outcome {
            RunOutcome::Completed(t) => MonetaryCost {
                credits: t.as_secs() * rate,
                lower_bound: false,
            },
            RunOutcome::Overload | RunOutcome::Overflow => MonetaryCost {
                credits: OVERLOAD_CUTOFF.as_secs() * rate,
                lower_bound: true,
            },
        }
    }

    /// Cost of a raw duration (no overload semantics).
    pub fn of_time(t: SimTime, cluster: &ClusterSpec) -> MonetaryCost {
        MonetaryCost {
            credits: t.as_secs() * cluster.machine.credit_rate * cluster.machines as f64,
            lower_bound: false,
        }
    }
}

impl Add for MonetaryCost {
    type Output = MonetaryCost;
    fn add(self, rhs: MonetaryCost) -> MonetaryCost {
        MonetaryCost {
            credits: self.credits + rhs.credits,
            lower_bound: self.lower_bound || rhs.lower_bound,
        }
    }
}

impl Sum for MonetaryCost {
    fn sum<I: Iterator<Item = MonetaryCost>>(iter: I) -> MonetaryCost {
        iter.fold(MonetaryCost::ZERO, Add::add)
    }
}

impl fmt::Display for MonetaryCost {
    /// Renders like the paper's x-axis annotations: `$59` or `>$117`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lower_bound {
            write!(f, ">${:.0}", self.credits)
        } else {
            write!(f, "${:.0}", self.credits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> ClusterSpec {
        ClusterSpec::docker32()
    }

    #[test]
    fn completed_run_billed_by_time() {
        let c = MonetaryCost::of_run(RunOutcome::Completed(SimTime::secs(1000.0)), &cloud());
        let expect = 1000.0 * cloud().machine.credit_rate * 32.0;
        assert!((c.credits - expect).abs() < 1e-9);
        assert!(!c.lower_bound);
    }

    #[test]
    fn overload_is_lower_bound_at_cutoff() {
        let c = MonetaryCost::of_run(RunOutcome::Overload, &cloud());
        let expect = 6000.0 * cloud().machine.credit_rate * 32.0;
        assert!((c.credits - expect).abs() < 1e-9);
        assert!(c.lower_bound);
        assert!(c.to_string().starts_with(">$"));
    }

    #[test]
    fn sum_propagates_lower_bound() {
        let a = MonetaryCost::of_run(RunOutcome::Completed(SimTime::secs(10.0)), &cloud());
        let b = MonetaryCost::of_run(RunOutcome::Overflow, &cloud());
        let total: MonetaryCost = [a, b].into_iter().sum();
        assert!(total.lower_bound);
        assert!(total.credits > b.credits);
    }

    #[test]
    fn local_clusters_are_free() {
        let c = MonetaryCost::of_run(
            RunOutcome::Completed(SimTime::secs(5000.0)),
            &ClusterSpec::galaxy8(),
        );
        assert_eq!(c.credits, 0.0);
    }

    #[test]
    fn display_rounds_to_whole_credits() {
        let c = MonetaryCost {
            credits: 59.4,
            lower_bound: false,
        };
        assert_eq!(c.to_string(), "$59");
    }
}
