//! Machine specifications.
//!
//! A [`MachineSpec`] captures the hardware attributes the paper's
//! analysis identifies as *static system parameters* (§4): memory
//! capacity (and the usable fraction left after the OS), core count,
//! CPU throughput, network bandwidth, and disk kind/bandwidth.

use mtvc_metrics::Bytes;
use serde::{Deserialize, Serialize};

/// Disk technology; bandwidth presets differ (Galaxy uses HDDs,
/// Docker-32 uses SSDs — Table 1 environment description).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskKind {
    Hdd,
    Ssd,
}

impl DiskKind {
    /// Sequential streaming bandwidth in bytes/second.
    pub fn bandwidth(self) -> f64 {
        match self {
            DiskKind::Hdd => 120.0e6,
            DiskKind::Ssd => 500.0e6,
        }
    }
}

/// Hardware description of one (simulated) machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Physical memory capacity.
    pub memory: Bytes,
    /// Fraction of physical memory usable by the VC-system. The paper
    /// measures ~14 GB usable of 16 GB (§4.3), i.e. 0.875.
    pub usable_fraction: f64,
    /// Physical/virtual cores available for compute threads.
    pub cores: u32,
    /// Abstract compute operations per second *per core*. One operation
    /// corresponds to handling one message or one vertex activation.
    pub cpu_ops_per_sec: f64,
    /// NIC bandwidth in bytes/second (full duplex per direction).
    pub network_bandwidth: f64,
    /// Disk technology.
    pub disk: DiskKind,
    /// Disk streaming bandwidth in bytes/second. Defaults to the disk
    /// kind's preset but kept explicit so scaling can adjust it.
    pub disk_bandwidth: f64,
    /// Cloud credit rate in credits per machine-second (0 for owned
    /// local clusters; only Docker-32 is metered in the paper).
    pub credit_rate: f64,
}

impl MachineSpec {
    /// The Galaxy machines: 16 GB memory, 8 Intel i7-3770 cores, HDD,
    /// gigabit LAN, no cloud metering.
    pub fn galaxy() -> MachineSpec {
        MachineSpec {
            memory: Bytes::gib(16),
            usable_fraction: 0.875,
            cores: 8,
            cpu_ops_per_sec: 1.2e6,
            network_bandwidth: 125.0e6, // 1 Gbps
            disk: DiskKind::Hdd,
            disk_bandwidth: DiskKind::Hdd.bandwidth(),
            credit_rate: 0.0,
        }
    }

    /// The Docker-32 cloud nodes: 16 GB memory, 15 virtual Xeon cores,
    /// SSD, 10 Gbps fabric, metered per machine-second.
    pub fn docker() -> MachineSpec {
        MachineSpec {
            memory: Bytes::gib(16),
            usable_fraction: 0.875,
            cores: 15,
            cpu_ops_per_sec: 1.4e6,
            network_bandwidth: 1.25e9, // 10 Gbps
            disk: DiskKind::Ssd,
            disk_bandwidth: DiskKind::Ssd.bandwidth(),
            credit_rate: 6.0e-4,
        }
    }

    /// Memory usable by the VC-system (capacity minus the OS /
    /// bootstrap reservation).
    pub fn usable_memory(&self) -> Bytes {
        self.memory.scaled(self.usable_fraction)
    }

    /// Aggregate compute throughput (ops/second across all cores).
    pub fn total_ops_per_sec(&self) -> f64 {
        self.cpu_ops_per_sec * self.cores as f64
    }

    /// Scale every capacity/rate by `1/sigma` where `sigma` is the
    /// dataset scale divisor. A σ-scaled dataset on a σ-scaled machine
    /// crosses memory/bandwidth thresholds at the same *workload*
    /// values as the paper's full-size setup, and simulated times stay
    /// in the paper's numeric range.
    pub fn scaled(&self, sigma: f64) -> MachineSpec {
        assert!(sigma >= 1.0, "scale divisor must be >= 1, got {sigma}");
        MachineSpec {
            memory: self.memory.scaled(1.0 / sigma),
            usable_fraction: self.usable_fraction,
            cores: self.cores,
            cpu_ops_per_sec: self.cpu_ops_per_sec / sigma,
            network_bandwidth: self.network_bandwidth / sigma,
            disk: self.disk,
            disk_bandwidth: self.disk_bandwidth / sigma,
            credit_rate: self.credit_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galaxy_matches_table1() {
        let m = MachineSpec::galaxy();
        assert_eq!(m.memory, Bytes::gib(16));
        assert_eq!(m.cores, 8);
        assert_eq!(m.disk, DiskKind::Hdd);
        assert_eq!(m.credit_rate, 0.0);
    }

    #[test]
    fn docker_matches_table1() {
        let m = MachineSpec::docker();
        assert_eq!(m.cores, 15);
        assert_eq!(m.disk, DiskKind::Ssd);
        assert!(m.credit_rate > 0.0);
    }

    #[test]
    fn usable_memory_is_14_of_16_gb() {
        let m = MachineSpec::galaxy();
        assert_eq!(m.usable_memory(), Bytes::gib(14));
    }

    #[test]
    fn scaling_divides_capacities() {
        let m = MachineSpec::galaxy().scaled(256.0);
        assert_eq!(m.memory, Bytes::gib(16).scaled(1.0 / 256.0));
        assert_eq!(m.cores, 8);
        assert!((m.network_bandwidth - 125.0e6 / 256.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "scale divisor")]
    fn upscaling_rejected() {
        MachineSpec::galaxy().scaled(0.5);
    }

    #[test]
    fn disk_bandwidths_ordered() {
        assert!(DiskKind::Ssd.bandwidth() > DiskKind::Hdd.bandwidth());
    }
}
