//! Simulated cluster substrate.
//!
//! The paper runs on three physical clusters (Galaxy-8, Galaxy-27,
//! Docker-32). This crate replaces them with a deterministic resource
//! model: machine specifications, cluster topologies, a **cost model**
//! that converts per-round resource demand (compute operations, network
//! bytes, memory, disk spill) into simulated seconds — including the
//! memory-bound thrashing, overflow, and disk-bound regimes the paper's
//! analysis hinges on — and the monetary-cost accounting of §4.6.
//!
//! The division of labour with `mtvc-engine`: the engine executes real
//! vertex programs and *measures* demand; this crate *prices* demand.
//! See DESIGN.md §4.

pub mod costmodel;
pub mod fault;
pub mod machine;
pub mod money;
pub mod topology;

pub use costmodel::{ChargeError, CostModel, RoundCharge, RoundDemand};
pub use fault::{ChaosMix, FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use machine::{DiskKind, MachineSpec};
pub use money::MonetaryCost;
pub use topology::ClusterSpec;
