//! Property-based tests for the cost model: monotonicity and regime
//! invariants that every figure implicitly relies on.

use mtvc_cluster::{ChargeError, CostModel, MachineSpec, RoundDemand};
use mtvc_metrics::Bytes;
use proptest::prelude::*;

fn demand(workers: usize, ops: f64, out_bytes: u64, mem: u64, spill: u64) -> RoundDemand {
    let mut d = RoundDemand::zeros(workers, true);
    for w in 0..workers {
        d.compute_ops[w] = ops;
        d.net_out[w] = Bytes(out_bytes);
        d.net_in[w] = Bytes(out_bytes);
        d.memory[w] = Bytes(mem);
        d.spill[w] = Bytes(spill);
        d.spill_messages[w] = spill / 16;
    }
    d
}

proptest! {
    #[test]
    fn duration_monotone_in_compute(
        ops in 0.0f64..1e9,
        extra in 1.0f64..1e9,
        workers in 1usize..16,
    ) {
        let m = CostModel::default();
        let spec = MachineSpec::galaxy();
        let lo = m.charge(&spec, &demand(workers, ops, 0, 0, 0)).unwrap();
        let hi = m.charge(&spec, &demand(workers, ops + extra, 0, 0, 0)).unwrap();
        prop_assert!(hi.duration >= lo.duration);
    }

    #[test]
    fn duration_monotone_in_network(
        bytes in 0u64..10_000_000_000,
        extra in 1u64..10_000_000_000,
    ) {
        let m = CostModel::default();
        let spec = MachineSpec::galaxy();
        let lo = m.charge(&spec, &demand(2, 0.0, bytes, 0, 0)).unwrap();
        let hi = m.charge(&spec, &demand(2, 0.0, bytes.saturating_add(extra), 0, 0)).unwrap();
        prop_assert!(hi.duration >= lo.duration);
        prop_assert!(hi.network_overuse >= lo.network_overuse);
    }

    #[test]
    fn thrash_factor_monotone_in_memory(
        mem in 0u64..20_000_000_000,
        extra in 1u64..10_000_000_000,
    ) {
        let m = CostModel::default();
        let spec = MachineSpec::galaxy();
        let lo = m.thrash_factor(Bytes(mem), &spec);
        let hi = m.thrash_factor(Bytes(mem.saturating_add(extra)), &spec);
        prop_assert!(hi >= lo);
        prop_assert!(lo >= 1.0);
    }

    #[test]
    fn overflow_exactly_when_beyond_limit(mem_gb in 0.1f64..40.0) {
        let m = CostModel::default();
        let spec = MachineSpec::galaxy();
        let mem = Bytes::gib(1).scaled(mem_gb);
        let result = m.charge(&spec, &demand(1, 0.0, 0, mem.get(), 0));
        let limit = spec.memory.as_f64() * m.overflow_limit;
        let overflowed = matches!(result, Err(ChargeError::MemoryOverflow { .. }));
        if mem.as_f64() > limit {
            prop_assert!(overflowed);
        } else {
            prop_assert!(!overflowed && result.is_ok());
        }
    }

    #[test]
    fn spill_increases_disk_busy(
        spill in 1u64..5_000_000_000,
    ) {
        let m = CostModel::default();
        let spec = MachineSpec::galaxy();
        let without = m.charge(&spec, &demand(1, 1e6, 0, 0, 0)).unwrap();
        let with = m.charge(&spec, &demand(1, 1e6, 0, 0, spill)).unwrap();
        prop_assert!(with.disk_busy > without.disk_busy);
        prop_assert!(with.duration >= without.duration);
    }

    #[test]
    fn barrier_costs_grow_with_machines(workers in 1usize..64) {
        let m = CostModel::default();
        let spec = MachineSpec::galaxy();
        let small = m.charge(&spec, &RoundDemand::zeros(workers, true)).unwrap();
        let large = m.charge(&spec, &RoundDemand::zeros(workers + 1, true)).unwrap();
        prop_assert!(large.duration >= small.duration);
    }

    #[test]
    fn scaled_machines_preserve_relative_time(
        sigma in 1.0f64..4096.0,
        ops in 1.0f64..1e8,
    ) {
        // time(ops/sigma on spec/sigma) == time(ops on spec): the σ
        // invariance DESIGN.md relies on (barrier excluded).
        let m = CostModel::default();
        let base = MachineSpec::galaxy();
        let scaled = base.scaled(sigma);
        let t_base = m
            .charge(&base, &demand(1, ops, 0, 0, 0))
            .unwrap()
            .duration
            .as_secs();
        let t_scaled = m
            .charge(&scaled, &demand(1, ops / sigma, 0, 0, 0))
            .unwrap()
            .duration
            .as_secs();
        prop_assert!((t_base - t_scaled).abs() < 1e-6 * t_base.max(1.0));
    }

    #[test]
    fn charge_is_deterministic(
        ops in 0.0f64..1e8,
        bytes in 0u64..1_000_000_000,
        mem in 0u64..17_000_000_000,
    ) {
        let m = CostModel::default();
        let spec = MachineSpec::docker();
        let d = demand(3, ops, bytes, mem, 0);
        let a = m.charge(&spec, &d);
        let b = m.charge(&spec, &d);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "non-deterministic charge: {:?}", other),
        }
    }
}
