//! End-to-end validation: every task executed through the distributed
//! engine must agree with its exact sequential reference.

use mtvc_cluster::ClusterSpec;
use mtvc_engine::{EngineConfig, ExecutionMode, Runner, SystemProfile};
use mtvc_graph::partition::HashPartitioner;
use mtvc_graph::{generators, reference as gref, Graph, VertexId};
use mtvc_metrics::SimTime;
use mtvc_tasks::bkhs::BkhsCounts;
use mtvc_tasks::bppr::{BpprEstimates, PushEstimates};
use mtvc_tasks::mssp::MsspDistances;
use mtvc_tasks::{
    reference as tref, BkhsBroadcastProgram, BkhsProgram, BpprProgram, BpprPushProgram,
    MsspBroadcastProgram, MsspProgram, PageRankProgram, SourceSet,
};

/// Roomy config: validation must never hit overload/overflow.
fn roomy_config(machines: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(
        ClusterSpec::galaxy(machines),
        SystemProfile::base("validate"),
    );
    cfg.cutoff = SimTime::secs(1.0e12);
    cfg
}

fn run<P: mtvc_engine::VertexProgram>(g: &Graph, machines: usize, p: &P) -> Vec<P::State> {
    let runner = Runner::new(g, &HashPartitioner::default(), roomy_config(machines));
    let result = runner.run(p);
    assert!(
        result.outcome.is_completed(),
        "validation run must complete: {:?}",
        result.outcome
    );
    result.states
}

#[test]
fn mssp_matches_dijkstra_weighted() {
    let base = generators::power_law(150, 700, 2.3, 11);
    let g = generators::with_random_weights(&base, 1, 9, 4);
    let sources = vec![0, 3, 77, 149];
    let states = run(&g, 4, &MsspProgram::new(sources.clone()));
    let dist = MsspDistances::new(states);
    for (q, &s) in sources.iter().enumerate() {
        let want = gref::dijkstra(&g, s);
        for v in g.vertices() {
            let got = dist.dist(q as u32, v);
            if want[v as usize] == u64::MAX {
                assert_eq!(got, None, "s={s} v={v}");
            } else {
                assert_eq!(got, Some(want[v as usize]), "s={s} v={v}");
            }
        }
    }
}

#[test]
fn mssp_broadcast_matches_bfs_hops() {
    let g = generators::power_law(120, 500, 2.4, 7);
    let sources = vec![5, 60];
    let mut cfg = roomy_config(3);
    cfg.profile.mode = ExecutionMode::Broadcast {
        mirror_threshold: 12,
    };
    let runner = Runner::new(&g, &HashPartitioner::default(), cfg);
    let result = runner.run(&MsspBroadcastProgram::new(sources.clone()));
    assert!(result.outcome.is_completed());
    let dist = MsspDistances::new(result.states);
    for (q, &s) in sources.iter().enumerate() {
        let want = gref::bfs_levels(&g, s);
        for v in g.vertices() {
            let got = dist.dist(q as u32, v);
            if want[v as usize] == u32::MAX {
                assert_eq!(got, None, "s={s} v={v}");
            } else {
                assert_eq!(got, Some(want[v as usize] as u64), "s={s} v={v}");
            }
        }
    }
}

#[test]
fn bkhs_matches_reference_k_hop_sets() {
    let g = generators::power_law(130, 520, 2.5, 9);
    let sources = vec![1, 42, 99];
    let k = 2;
    let states = run(&g, 4, &BkhsProgram::new(sources.clone(), k));
    for (q, &s) in sources.iter().enumerate() {
        let mut want = gref::k_hop_set(&g, s, k);
        want.sort_unstable();
        let got = BkhsCounts::members(&states, q as u32);
        assert_eq!(got, want, "source {s}");
    }
}

#[test]
fn bkhs_broadcast_agrees_with_p2p() {
    let g = generators::power_law(110, 480, 2.2, 13);
    let sources = vec![2, 50];
    let k = 3;
    let p2p = run(&g, 3, &BkhsProgram::new(sources.clone(), k));
    let mut cfg = roomy_config(3);
    cfg.profile.mode = ExecutionMode::Broadcast {
        mirror_threshold: 10,
    };
    let runner = Runner::new(&g, &HashPartitioner::default(), cfg);
    let bc = runner.run(&BkhsBroadcastProgram::new(sources.clone(), k));
    assert!(bc.outcome.is_completed());
    for (q, &s) in sources.iter().enumerate() {
        assert_eq!(
            BkhsCounts::members(&p2p, q as u32),
            BkhsCounts::members(&bc.states, q as u32),
            "source {s}"
        );
    }
}

#[test]
fn bppr_walk_conservation() {
    // Every injected walk must stop somewhere: total stops == W * n.
    let g = generators::power_law(80, 350, 2.3, 21);
    let w = 64;
    let states = run(&g, 4, &BpprProgram::new(w, 0.2));
    let mut est = BpprEstimates::new(g.num_vertices());
    est.absorb(states, w);
    assert_eq!(est.total_stopped(), w * g.num_vertices() as u64);
}

#[test]
fn bppr_estimates_unbiased_vs_exact_ppr() {
    // One source, many walks: the empirical stop distribution must be
    // close to the exact α-decay stop distribution.
    let g = generators::power_law(60, 260, 2.4, 31);
    let alpha = 0.2;
    let w = 60_000;
    let source: VertexId = 0;
    let prog = BpprProgram::new(w, alpha).with_sources(SourceSet::subset(vec![source]));
    let states = run(&g, 4, &prog);
    let mut est = BpprEstimates::new(g.num_vertices());
    est.absorb(states, w);
    let exact = tref::exact_ppr(&g, source, alpha);
    let l1: f64 = g
        .vertices()
        .map(|v| (est.ppr(source, v) - exact[v as usize]).abs())
        .sum();
    assert!(l1 < 0.05, "L1 error {l1} too large for W={w}");
}

#[test]
fn bppr_push_matches_exact_ppr_closely() {
    let g = generators::power_law(70, 300, 2.3, 41);
    let alpha = 0.2;
    let w = 10_000;
    let source: VertexId = 3;
    let prog = BpprPushProgram::new(w, alpha)
        .with_sources(SourceSet::subset(vec![source]))
        .with_epsilon(0.01);
    let mut cfg = roomy_config(4);
    cfg.profile.mode = ExecutionMode::Broadcast {
        mirror_threshold: 16,
    };
    let runner = Runner::new(&g, &HashPartitioner::default(), cfg);
    let result = runner.run(&prog);
    assert!(result.outcome.is_completed());
    let mut est = PushEstimates::new(g.num_vertices());
    est.absorb(result.states, w);
    // Mass conservation: all W walks' mass is absorbed somewhere.
    assert!((est.total_mass() - w as f64).abs() < 1e-6 * w as f64);
    let exact = tref::exact_ppr(&g, source, alpha);
    let linf = g
        .vertices()
        .map(|v| (est.ppr(source, v) - exact[v as usize]).abs())
        .fold(0.0f64, f64::max);
    // Push truncation bias is bounded by epsilon-scale effects.
    assert!(linf < 0.01, "Linf error {linf}");
}

#[test]
fn pagerank_matches_power_iteration() {
    let g = generators::power_law(90, 400, 2.3, 51);
    let prog = PageRankProgram::new(0.85, 25);
    let states = run(&g, 4, &prog);
    let exact = tref::exact_pagerank(&g, 0.85, 25);
    for v in g.vertices() {
        let got = states[v as usize].rank;
        let want = exact[v as usize];
        assert!((got - want).abs() < 1e-9, "vertex {v}: {got} vs {want}");
    }
}

#[test]
fn bppr_two_half_batches_equal_one_full_batch_statistically() {
    // Splitting the workload in two batches halves memory but must not
    // change the estimator's expectation. Check both come close to the
    // exact distribution.
    let g = generators::power_law(50, 220, 2.4, 61);
    let alpha = 0.25;
    let source: VertexId = 7;
    let exact = tref::exact_ppr(&g, source, alpha);
    let estimate = |w: u64, seed: u64| {
        let mut cfg = roomy_config(2);
        cfg.seed = seed;
        let prog = BpprProgram::new(w, alpha).with_sources(SourceSet::subset(vec![source]));
        let runner = Runner::new(&g, &HashPartitioner::default(), cfg);
        runner.run(&prog).states
    };
    let mut split = BpprEstimates::new(g.num_vertices());
    split.absorb(estimate(20_000, 1), 20_000);
    split.absorb(estimate(20_000, 2), 20_000);
    let l1: f64 = g
        .vertices()
        .map(|v| (split.ppr(source, v) - exact[v as usize]).abs())
        .sum();
    assert!(l1 < 0.05, "split-batch L1 error {l1}");
}
