//! Property tests for the dense-slab task kernels: across random
//! graphs, batch widths, worker counts, and combining on/off, the slab
//! programs must (a) agree with the exact sequential oracles and
//! (b) be bit-identical to the hash-map baseline programs — same
//! per-vertex results, same message traffic, same RNG consumption.

use mtvc_cluster::ClusterSpec;
use mtvc_engine::{EngineConfig, ExecutionMode, RunResult, Runner, SystemProfile, WireFormat};
use mtvc_graph::partition::HashPartitioner;
use mtvc_graph::{generators, reference as gref, Graph, VertexId};
use mtvc_metrics::SimTime;
use mtvc_tasks::bppr::{BpprState, PushState};
use mtvc_tasks::{
    BkhsLaneSlabProgram, BkhsProgram, BkhsSlabProgram, BpprProgram, BpprPushLaneSlabProgram,
    BpprPushProgram, BpprPushSlabProgram, BpprSlabProgram, MsspBroadcastProgram,
    MsspBroadcastSlabProgram, MsspLaneSlabProgram, MsspProgram, MsspSlabProgram, SourceIndex,
    SourceSet,
};
use proptest::prelude::*;
use std::sync::Arc;

fn roomy_config(machines: usize, seed: u64, combine: bool) -> EngineConfig {
    let mut cfg = EngineConfig::new(ClusterSpec::galaxy(machines), SystemProfile::base("prop"));
    cfg.cutoff = SimTime::secs(1.0e12);
    cfg.seed = seed;
    cfg.profile.combiner = combine;
    cfg
}

fn broadcast_config(machines: usize, seed: u64, combine: bool) -> EngineConfig {
    let mut cfg = roomy_config(machines, seed, combine);
    cfg.profile.mode = ExecutionMode::Broadcast {
        mirror_threshold: 8,
    };
    cfg
}

fn runner<'g>(g: &'g Graph, cfg: EngineConfig) -> Runner<'g> {
    Runner::new(g, &HashPartitioner::default(), cfg)
}

fn completed<S>(r: &RunResult<S>) {
    assert!(r.outcome.is_completed(), "must complete: {:?}", r.outcome);
}

/// Deterministic pseudo-random sources, duplicates allowed (duplicate
/// start vertices are distinct unit tasks and must stay distinct).
fn pick_sources(n: usize, width: usize, seed: u64) -> Vec<VertexId> {
    (0..width)
        .map(|q| (mtvc_graph::hash::mix64(seed ^ q as u64) % n as u64) as VertexId)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Slab MSSP == Dijkstra, and bit-identical to the hash-map kernel.
    #[test]
    fn slab_mssp_matches_dijkstra_and_hashmap(
        n in 20usize..110,
        width in 1usize..10,
        workers in 1usize..5,
        combine in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let base = generators::power_law(n, n * 4, 2.3, seed);
        let g = generators::with_random_weights(&base, 1, 9, seed ^ 3);
        let sources = pick_sources(n, width, seed ^ 7);

        let slab = runner(&g, roomy_config(workers, seed, combine))
            .run_slab(&MsspSlabProgram::new(sources.clone()));
        completed(&slab);
        // Oracle: per-query Dijkstra.
        for (q, &s) in sources.iter().enumerate() {
            let want = gref::dijkstra(&g, s);
            for v in g.vertices() {
                let got = slab.states[v as usize].dist.get(&(q as u32)).copied();
                let expect = (want[v as usize] != u64::MAX).then(|| want[v as usize]);
                prop_assert_eq!(got, expect, "q={} s={} v={}", q, s, v);
            }
        }
        // Bit-identity with the hash-map baseline.
        let hash = runner(&g, roomy_config(workers, seed, combine))
            .run(&MsspProgram::new(sources));
        prop_assert_eq!(&hash.outcome, &slab.outcome);
        prop_assert_eq!(hash.stats.total_messages_sent, slab.stats.total_messages_sent);
        prop_assert_eq!(hash.stats.total_messages_delivered, slab.stats.total_messages_delivered);
        prop_assert_eq!(hash.stats.rounds, slab.stats.rounds);
        for v in g.vertices() {
            prop_assert_eq!(&hash.states[v as usize], &slab.states[v as usize], "v={}", v);
        }
    }

    /// Lane-batched MSSP (chunked envelopes, `relax_min_lanes`, and
    /// optionally the compact wire format) must complete in the same
    /// rounds, put the same wire-message count on the network, and
    /// produce bit-identical distances to the scalar slab kernel —
    /// across widths on and off the `LANES` boundary.
    #[test]
    fn lane_mssp_matches_scalar_slab(
        n in 20usize..110,
        width_sel in 0usize..4,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Widths on and off the LANES boundary.
        let width = [1usize, 7, 8, 64][width_sel];
        let base = generators::power_law(n, n * 4, 2.3, seed);
        let g = generators::with_random_weights(&base, 1, 9, seed ^ 3);
        let sources = pick_sources(n, width, seed ^ 7);

        let mut cfg = roomy_config(workers, seed, combine);
        if compact {
            cfg.profile.wire_format = WireFormat::Compact;
        }
        let scalar = runner(&g, cfg.clone())
            .run_slab(&MsspSlabProgram::new(sources.clone()));
        let lane = runner(&g, cfg)
            .run_slab(&MsspLaneSlabProgram::new(sources));
        completed(&scalar);
        completed(&lane);
        prop_assert_eq!(lane.stats.rounds, scalar.stats.rounds);
        prop_assert_eq!(lane.stats.total_messages_sent, scalar.stats.total_messages_sent);
        for v in g.vertices() {
            prop_assert_eq!(
                &lane.states[v as usize].dist, &scalar.states[v as usize].dist, "v={}", v
            );
        }
    }

    /// Lane-batched BKHS (`ReachLanesMsg`, `absorb_lanes`) must finish
    /// in the same rounds, send the same mult-weighted wire traffic,
    /// and reach exactly the same (query, vertex) pairs as the scalar
    /// slab kernel — across widths on and off the `LANES` boundary.
    #[test]
    fn lane_bkhs_matches_scalar_slab(
        n in 20usize..100,
        width_sel in 0usize..4,
        k in 1u32..5,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let width = [1usize, 7, 8, 64][width_sel];
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = pick_sources(n, width, seed ^ 13);

        let mut cfg = roomy_config(workers, seed, combine);
        if compact {
            cfg.profile.wire_format = WireFormat::Compact;
        }
        let scalar = runner(&g, cfg.clone())
            .run_slab(&BkhsSlabProgram::new(sources.clone(), k));
        let lane = runner(&g, cfg)
            .run_slab(&BkhsLaneSlabProgram::new(sources, k));
        completed(&scalar);
        completed(&lane);
        prop_assert_eq!(lane.stats.rounds, scalar.stats.rounds);
        prop_assert_eq!(lane.stats.total_messages_sent, scalar.stats.total_messages_sent);
        for v in g.vertices() {
            prop_assert_eq!(
                &lane.states[v as usize].reached,
                &scalar.states[v as usize].reached,
                "v={}", v
            );
        }
    }

    /// Lane-batched forward-push BPPR (`PushLanesMsg`) must finish in
    /// the same rounds, send the same mult-weighted traffic, and leave
    /// exactly the same f64 masses as the scalar slab push — same adds
    /// in the same per-cell order — across source-set widths on and
    /// off the `LANES` boundary.
    #[test]
    fn lane_bppr_push_matches_scalar_slab(
        n in 20usize..90,
        width_sel in 0usize..5,
        walks in 1u64..200,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.3, seed);
        // Subset widths on and off the LANES boundary (duplicates
        // dedup away — both kernels see the identical set), plus the
        // AllVertices default.
        let sources = if width_sel < 4 {
            SourceSet::subset(pick_sources(n, [1usize, 7, 8, 64][width_sel], seed ^ 19))
        } else {
            SourceSet::AllVertices
        };

        let mut cfg = broadcast_config(workers, seed, combine);
        if compact {
            cfg.profile.wire_format = WireFormat::Compact;
        }
        let scalar = runner(&g, cfg.clone()).run_slab(
            &BpprPushSlabProgram::new(walks, 0.2, n).with_sources(sources.clone()),
        );
        let lane = runner(&g, cfg).run_slab(
            &BpprPushLaneSlabProgram::new(walks, 0.2, n).with_sources(sources),
        );
        completed(&scalar);
        completed(&lane);
        prop_assert_eq!(lane.stats.rounds, scalar.stats.rounds);
        prop_assert_eq!(lane.stats.total_messages_sent, scalar.stats.total_messages_sent);
        for v in g.vertices() {
            // Exact f64 equality: same adds in the same order.
            prop_assert_eq!(
                &lane.states[v as usize].mass,
                &scalar.states[v as usize].mass,
                "v={}", v
            );
        }
    }

    /// Slab broadcast MSSP == BFS hop levels.
    #[test]
    fn slab_mssp_broadcast_matches_bfs(
        n in 20usize..100,
        width in 1usize..8,
        workers in 1usize..5,
        combine in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = pick_sources(n, width, seed ^ 11);
        let slab = runner(&g, broadcast_config(workers, seed, combine))
            .run_slab(&MsspBroadcastSlabProgram::new(sources.clone()));
        completed(&slab);
        for (q, &s) in sources.iter().enumerate() {
            let want = gref::bfs_levels(&g, s);
            for v in g.vertices() {
                let got = slab.states[v as usize].dist.get(&(q as u32)).copied();
                let expect = (want[v as usize] != u32::MAX).then(|| want[v as usize] as u64);
                prop_assert_eq!(got, expect, "q={} s={} v={}", q, s, v);
            }
        }
        let hash = runner(&g, broadcast_config(workers, seed, combine))
            .run(&MsspBroadcastProgram::new(sources));
        prop_assert_eq!(hash.stats.total_messages_sent, slab.stats.total_messages_sent);
        for v in g.vertices() {
            prop_assert_eq!(&hash.states[v as usize], &slab.states[v as usize], "v={}", v);
        }
    }

    /// Slab BKHS == reference k-hop sets, and identical to the hash-set
    /// kernel.
    #[test]
    fn slab_bkhs_matches_k_hop_sets_and_hashmap(
        n in 20usize..100,
        width in 1usize..8,
        k in 1u32..5,
        workers in 1usize..5,
        combine in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = pick_sources(n, width, seed ^ 13);
        let slab = runner(&g, roomy_config(workers, seed, combine))
            .run_slab(&BkhsSlabProgram::new(sources.clone(), k));
        completed(&slab);
        for (q, &s) in sources.iter().enumerate() {
            let mut want = gref::k_hop_set(&g, s, k);
            want.sort_unstable();
            let got: Vec<VertexId> = g
                .vertices()
                .filter(|&v| slab.states[v as usize].reached.contains(&(q as u32)))
                .collect();
            prop_assert_eq!(got, want, "q={} s={}", q, s);
        }
        let hash = runner(&g, roomy_config(workers, seed, combine))
            .run(&BkhsProgram::new(sources, k));
        prop_assert_eq!(hash.stats.total_messages_sent, slab.stats.total_messages_sent);
        prop_assert_eq!(hash.stats.rounds, slab.stats.rounds);
        for v in g.vertices() {
            prop_assert_eq!(
                &hash.states[v as usize].reached,
                &slab.states[v as usize].reached,
                "v={}", v
            );
        }
    }

    /// Slab Monte-Carlo BPPR consumes the RNG identically to the
    /// hash-map kernel: the sampled walks — and therefore every stop
    /// counter and message statistic — are bit-identical. Walk
    /// conservation holds: every injected walk stops somewhere.
    #[test]
    fn slab_bppr_mc_is_bit_identical_and_conserves_walks(
        n in 20usize..90,
        walks in 1u64..40,
        workers in 1usize..5,
        subset in any::<bool>(),
        combine in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.3, seed);
        let sources = if subset {
            SourceSet::subset(pick_sources(n, 5, seed ^ 17))
        } else {
            SourceSet::AllVertices
        };
        let slab = runner(&g, roomy_config(workers, seed, combine)).run_slab(
            &BpprSlabProgram::new(walks, 0.2, n).with_sources(sources.clone()),
        );
        completed(&slab);
        let hash = runner(&g, roomy_config(workers, seed, combine)).run(
            &BpprProgram::new(walks, 0.2).with_sources(sources.clone()),
        );
        prop_assert_eq!(hash.stats.total_messages_sent, slab.stats.total_messages_sent);
        prop_assert_eq!(hash.stats.rounds, slab.stats.rounds);
        for v in g.vertices() {
            prop_assert_eq!(
                &hash.states[v as usize].stops,
                &slab.states[v as usize].stops,
                "v={}", v
            );
        }
        let stopped: u64 = slab
            .states
            .iter()
            .flat_map(|st: &BpprState| st.stops.values())
            .sum();
        prop_assert_eq!(stopped, walks * sources.len(n) as u64);
    }

    /// Slab forward-push BPPR: identical f64 masses to the hash-map
    /// kernel (same summation order), and total mass is conserved.
    #[test]
    fn slab_bppr_push_is_bit_identical_and_conserves_mass(
        n in 20usize..90,
        walks in 1u64..200,
        workers in 1usize..5,
        subset in any::<bool>(),
        combine in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.3, seed);
        let sources = if subset {
            SourceSet::subset(pick_sources(n, 5, seed ^ 19))
        } else {
            SourceSet::AllVertices
        };
        let slab = runner(&g, broadcast_config(workers, seed, combine)).run_slab(
            &BpprPushSlabProgram::new(walks, 0.2, n).with_sources(sources.clone()),
        );
        completed(&slab);
        let hash = runner(&g, broadcast_config(workers, seed, combine)).run(
            &BpprPushProgram::new(walks, 0.2).with_sources(sources.clone()),
        );
        prop_assert_eq!(hash.stats.total_messages_sent, slab.stats.total_messages_sent);
        prop_assert_eq!(hash.stats.rounds, slab.stats.rounds);
        for v in g.vertices() {
            // Exact f64 equality: same adds in the same order.
            prop_assert_eq!(
                &hash.states[v as usize].mass,
                &slab.states[v as usize].mass,
                "v={}", v
            );
        }
        let mass: f64 = slab
            .states
            .iter()
            .flat_map(|st: &PushState| st.mass.values())
            .sum();
        let injected = walks as f64 * sources.len(n) as f64;
        prop_assert!(
            (mass - injected).abs() < 1e-6 * injected.max(1.0),
            "mass {} vs injected {}", mass, injected
        );
    }

    /// Batch slicing: running the query pool as two batches over one
    /// shared job-wide SourceIndex covers exactly the same (query,
    /// vertex) results as one full-width batch, after remapping the
    /// second batch's local ids.
    #[test]
    fn sliced_batches_cover_the_full_pool(
        n in 20usize..90,
        width in 2usize..10,
        split in 1usize..9,
        workers in 1usize..5,
        seed in any::<u64>(),
    ) {
        let split = split.min(width - 1);
        let base = generators::power_law(n, n * 4, 2.3, seed);
        let g = generators::with_random_weights(&base, 1, 9, seed ^ 23);
        let sources = pick_sources(n, width, seed ^ 29);
        let index = SourceIndex::shared(sources.clone());

        let full = runner(&g, roomy_config(workers, seed, true))
            .run_slab(&MsspSlabProgram::new(sources));
        completed(&full);
        let first = runner(&g, roomy_config(workers, seed, true))
            .run_slab(&MsspSlabProgram::batch(Arc::clone(&index), 0..split));
        let second = runner(&g, roomy_config(workers, seed, true))
            .run_slab(&MsspSlabProgram::batch(index, split..width));
        completed(&first);
        completed(&second);

        for v in g.vertices() {
            let mut merged = first.states[v as usize].dist.clone();
            for (&q, &d) in &second.states[v as usize].dist {
                merged.insert(q + split as u32, d);
            }
            prop_assert_eq!(&merged, &full.states[v as usize].dist, "v={}", v);
        }
    }
}
