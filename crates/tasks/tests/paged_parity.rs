//! Paged ≡ resident parity: running any task kernel through the real
//! out-of-core paging path (partitioned adjacency moved through a
//! bounded cache) must be *bit-identical* to the fully-resident run —
//! same states, same rounds, same message traffic — because compute
//! order is unchanged; only the bytes moved differ. Checked across
//! partition sizes (budget ⇒ partition count), cache budgets, both
//! partition schedules, combining on/off, and both wire formats, for
//! all six slab kernels.

use mtvc_cluster::ClusterSpec;
use mtvc_engine::{
    EngineConfig, PagingConfig, PartitionSchedule, Runner, SlabProgram, StoreKind, SystemProfile,
    WireFormat,
};
use mtvc_graph::partition::HashPartitioner;
use mtvc_graph::{generators, Graph, VertexId};
use mtvc_metrics::{Bytes, SimTime};
use mtvc_tasks::{
    BkhsLaneSlabProgram, BkhsSlabProgram, BpprPushLaneSlabProgram, BpprSlabProgram,
    MsspLaneSlabProgram, MsspSlabProgram, SourceSet,
};
use proptest::prelude::*;

/// (budget, partition_bytes) grid: tiny budgets force eviction every
/// round, the large one keeps everything resident after the first
/// touch — the paging machinery must be exact in both regimes.
const BUDGETS: [(u64, u64); 3] = [(768, 192), (4096, 1024), (1 << 26, 1 << 24)];

fn base_config(machines: usize, seed: u64, combine: bool, compact: bool) -> EngineConfig {
    let mut cfg = EngineConfig::new(ClusterSpec::galaxy(machines), SystemProfile::base("parity"));
    cfg.cutoff = SimTime::secs(1.0e12);
    cfg.seed = seed;
    cfg.profile.combiner = combine;
    if compact {
        cfg.profile.wire_format = WireFormat::Compact;
    }
    cfg
}

fn paged_config(
    machines: usize,
    seed: u64,
    combine: bool,
    compact: bool,
    budget: u64,
    partition_bytes: u64,
    schedule: PartitionSchedule,
) -> EngineConfig {
    let mut cfg = base_config(machines, seed, combine, compact);
    cfg.profile.out_of_core = Some(mtvc_engine::OocConfig {
        // Roomy message budget: message spill is pure accounting and
        // orthogonal to what this suite pins down.
        message_budget: Bytes::gib(4),
        stream_edges: true,
        paging: Some(PagingConfig {
            budget: Bytes::new(budget),
            partition_bytes: Bytes::new(partition_bytes),
            schedule,
            page_state: false,
            store: StoreKind::Memory,
        }),
    });
    cfg
}

fn pick_sources(n: usize, width: usize, seed: u64) -> Vec<VertexId> {
    (0..width)
        .map(|q| (mtvc_graph::hash::mix64(seed ^ q as u64) % n as u64) as VertexId)
        .collect()
}

/// Run `program` fully resident and through the pager under both
/// schedules, asserting bit-identity of results and traffic.
fn assert_parity<P: SlabProgram>(
    g: &Graph,
    program: &P,
    workers: usize,
    combine: bool,
    compact: bool,
    budget_sel: usize,
) where
    P::Out: PartialEq + std::fmt::Debug,
{
    let seed = 42u64 ^ budget_sel as u64;
    let resident = Runner::new(
        g,
        &HashPartitioner::default(),
        base_config(workers, seed, combine, compact),
    )
    .run_slab(program);
    assert!(resident.outcome.is_completed(), "{:?}", resident.outcome);

    let (budget, part_bytes) = BUDGETS[budget_sel];
    for schedule in [
        PartitionSchedule::RoundRobin,
        PartitionSchedule::FrontierDensity,
    ] {
        let cfg = paged_config(
            workers, seed, combine, compact, budget, part_bytes, schedule,
        );
        let runner = Runner::new(g, &HashPartitioner::default(), cfg);
        assert!(runner.paged_layout().is_some(), "paging must engage");
        let paged = runner.run_slab(program);
        assert!(paged.outcome.is_completed(), "{:?}", paged.outcome);
        assert!(
            paged.stats.total_partition_loads > 0,
            "pager must actually move partitions"
        );
        assert_eq!(resident.stats.rounds, paged.stats.rounds, "{schedule:?}");
        assert_eq!(
            resident.stats.total_messages_sent, paged.stats.total_messages_sent,
            "{schedule:?}"
        );
        assert_eq!(
            resident.stats.total_messages_delivered, paged.stats.total_messages_delivered,
            "{schedule:?}"
        );
        assert_eq!(resident.states.len(), paged.states.len());
        for (v, (a, b)) in resident.states.iter().zip(&paged.states).enumerate() {
            assert_eq!(a, b, "vertex {v} under {schedule:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scalar slab MSSP, weighted graphs.
    #[test]
    fn paged_mssp_scalar(
        n in 24usize..90,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        budget_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let base = generators::power_law(n, n * 4, 2.3, seed);
        let g = generators::with_random_weights(&base, 1, 9, seed ^ 3);
        let sources = pick_sources(n, 3, seed ^ 7);
        assert_parity(&g, &MsspSlabProgram::new(sources), workers, combine, compact, budget_sel);
    }

    /// Lane-batched MSSP on the LANES boundary.
    #[test]
    fn paged_mssp_lane(
        n in 24usize..90,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        budget_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let base = generators::power_law(n, n * 4, 2.3, seed);
        let g = generators::with_random_weights(&base, 1, 9, seed ^ 3);
        let sources = pick_sources(n, 8, seed ^ 11);
        assert_parity(&g, &MsspLaneSlabProgram::new(sources), workers, combine, compact, budget_sel);
    }

    /// Scalar slab BKHS.
    #[test]
    fn paged_bkhs_scalar(
        n in 24usize..90,
        k in 1u32..4,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        budget_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = pick_sources(n, 3, seed ^ 13);
        assert_parity(&g, &BkhsSlabProgram::new(sources, k), workers, combine, compact, budget_sel);
    }

    /// Lane-batched BKHS.
    #[test]
    fn paged_bkhs_lane(
        n in 24usize..90,
        k in 1u32..4,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        budget_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.4, seed);
        let sources = pick_sources(n, 8, seed ^ 17);
        assert_parity(&g, &BkhsLaneSlabProgram::new(sources, k), workers, combine, compact, budget_sel);
    }

    /// Monte-Carlo random-walk BPPR (RNG-heavy: parity additionally
    /// pins the per-vertex RNG streams across the paged compute order).
    #[test]
    fn paged_bppr_walks(
        n in 24usize..70,
        walks in 1u64..120,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        budget_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.3, seed);
        let sources = SourceSet::subset(pick_sources(n, 4, seed ^ 19));
        let program = BpprSlabProgram::new(walks, 0.2, n).with_sources(sources);
        assert_parity(&g, &program, workers, combine, compact, budget_sel);
    }

    /// Lane-batched forward-push BPPR (exact f64 masses).
    #[test]
    fn paged_bppr_push_lane(
        n in 24usize..70,
        walks in 1u64..120,
        workers in 1usize..5,
        combine in any::<bool>(),
        compact in any::<bool>(),
        budget_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, n * 4, 2.3, seed);
        let sources = SourceSet::subset(pick_sources(n, 8, seed ^ 23));
        let program = BpprPushLaneSlabProgram::new(walks, 0.2, n).with_sources(sources);
        assert_parity(&g, &program, workers, combine, compact, budget_sel);
    }
}
