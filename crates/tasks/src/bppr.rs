//! Batch Personalized PageRank (BPPR).
//!
//! §2.3: "The Batch Personalized PageRanks computes PPR(s) for each node
//! s ∈ V… each PPR is approximated by running α-decay random walks";
//! the workload is the number `W` of walks per source.
//!
//! Two algorithms, mirroring §3:
//!
//! * **Monte-Carlo** ([`BpprSlabProgram`], hash-map baseline
//!   [`BpprProgram`]) — the Pregel point-to-point method. Each round is
//!   one walk step; a message carries the walk's source id. Walks are
//!   moved in **aggregated form**: an envelope with multiplicity `c`
//!   stands for `c` individual walks, the stop events are
//!   `Binomial(c, α)` and the survivors spread over the neighbors with
//!   a uniform multinomial — exactly the distribution of `c`
//!   independent walks, while the cost accounting still charges `c`
//!   wire messages.
//! * **Forward-push** ([`BpprPushSlabProgram`], baseline
//!   [`BpprPushProgram`]) — the Pregel-Mirror broadcast variant: the
//!   "generalized random walk" (fractional forward-push) of §3, where a
//!   vertex broadcasts one common message per source and the walk mass
//!   is split evenly among neighbors. Deterministic and unbiased.
//!
//! The slab kernels store per-source state in a dense row indexed by
//! **source slot** (see [`SourceSet::slot_of`]): stop counters for the
//! Monte-Carlo walk, `(mass, residue)` cells for the push. The push is
//! *in place* — incoming mass accumulates into the residue cell and the
//! frontier bitset marks which slots to settle, so a round touches only
//! the sources that actually received mass. Message traffic, RNG
//! consumption and f64 summation order are bit-identical to the
//! hash-map baselines.
//!
//! [`BpprPushLaneSlabProgram`] lane-batches the push: one
//! [`PushLanesMsg`] moves the surviving mass of up to eight adjacent
//! source slots (the Monte-Carlo variant is excluded from lane
//! batching — its per-envelope RNG draws pin it to scalar traffic).

use mtvc_engine::{
    Context, Delivery, Message, PageableCell, PayloadCodec, SlabProgram, SlabRowMut, VertexProgram,
    LANES,
};
use mtvc_graph::hash::FastMap;
use mtvc_graph::VertexId;

/// Which vertices start walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSet {
    /// Every vertex is a PPR source (the paper's default BPPR).
    AllVertices,
    /// An explicit source subset (§4.9 "Alternative Workload Settings").
    Subset(Vec<VertexId>),
}

impl SourceSet {
    /// Normalize: subsets are sorted and deduplicated.
    pub fn subset(mut sources: Vec<VertexId>) -> SourceSet {
        sources.sort_unstable();
        sources.dedup();
        SourceSet::Subset(sources)
    }

    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            SourceSet::AllVertices => true,
            SourceSet::Subset(s) => s.binary_search(&v).is_ok(),
        }
    }

    /// Number of sources given the graph's vertex count.
    pub fn len(&self, num_vertices: usize) -> usize {
        match self {
            SourceSet::AllVertices => num_vertices,
            SourceSet::Subset(s) => s.len(),
        }
    }

    pub fn is_empty(&self, num_vertices: usize) -> bool {
        self.len(num_vertices) == 0
    }

    /// Dense slab slot of source `v`: its rank in the sorted source
    /// list (`v` itself for [`SourceSet::AllVertices`]). `None` when
    /// `v` is not a source. Slot order equals source-id order, which
    /// keeps slab drains aligned with the baselines' sorted pushes.
    pub fn slot_of(&self, v: VertexId) -> Option<usize> {
        match self {
            SourceSet::AllVertices => Some(v as usize),
            SourceSet::Subset(s) => s.binary_search(&v).ok(),
        }
    }

    /// Inverse of [`SourceSet::slot_of`].
    pub fn source_at(&self, slot: usize) -> VertexId {
        match self {
            SourceSet::AllVertices => slot as VertexId,
            SourceSet::Subset(s) => s[slot],
        }
    }
}

/// Wire message of the Monte-Carlo walk: the walk's source. The
/// envelope multiplicity is the number of walks taking the same hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkMsg {
    pub source: VertexId,
}

impl Message for WalkMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.source as u64)
    }
    fn merge(&mut self, _other: &Self) {}
    fn wire_query(&self) -> Option<u64> {
        Some(self.source as u64)
    }
    fn encoded_payload_bytes(&self) -> u64 {
        0 // the source id *is* the walk token — it rides the query stream
    }
}

impl PayloadCodec for WalkMsg {
    fn encode_payload(&self, _out: &mut Vec<u8>) {}
    fn decode_payload(wire_query: Option<u64>, _buf: &[u8], _pos: &mut usize) -> Self {
        WalkMsg {
            source: wire_query.expect("WalkMsg always carries its source") as VertexId,
        }
    }
}

/// Per-vertex BPPR state: how many walks of each source stopped here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BpprState {
    pub stops: FastMap<VertexId, u64>,
}

/// Monte-Carlo BPPR for point-to-point systems (hash-map state layout;
/// the production kernel is [`BpprSlabProgram`]).
#[derive(Debug, Clone)]
pub struct BpprProgram {
    /// Walks per source in this batch (the paper's workload unit).
    pub walks_per_node: u64,
    /// Decay probability α (walk stops with probability α per step).
    pub alpha: f64,
    /// Walk sources.
    pub sources: SourceSet,
}

impl BpprProgram {
    pub fn new(walks_per_node: u64, alpha: f64) -> BpprProgram {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        BpprProgram {
            walks_per_node,
            alpha,
            sources: SourceSet::AllVertices,
        }
    }

    pub fn with_sources(mut self, sources: SourceSet) -> Self {
        self.sources = sources;
        self
    }

    /// Step `count` walks of `source` standing at the context vertex:
    /// stop some, spread the rest.
    fn step_walks(
        &self,
        source: VertexId,
        count: u64,
        state: &mut BpprState,
        ctx: &mut Context<'_, WalkMsg>,
    ) {
        if count == 0 {
            return;
        }
        let degree = ctx.degree();
        let stopped = if degree == 0 {
            count // dangling vertices absorb their walks
        } else {
            crate::sampling::binomial(ctx.rng(), count, self.alpha)
        };
        if stopped > 0 {
            *state.stops.entry(source).or_insert(0) += stopped;
        }
        let moving = count - stopped;
        if moving == 0 {
            return;
        }
        ctx.send_uniform_spread(WalkMsg { source }, moving);
    }
}

impl VertexProgram for BpprProgram {
    type Message = WalkMsg;
    type State = BpprState;

    fn message_bytes(&self) -> u64 {
        16 // source id + walk bookkeeping (a constant number of ints)
    }

    fn init(&self, v: VertexId, state: &mut BpprState, ctx: &mut Context<'_, WalkMsg>) {
        if self.sources.contains(v) {
            self.step_walks(v, self.walks_per_node, state, ctx);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut BpprState,
        inbox: &[Delivery<WalkMsg>],
        ctx: &mut Context<'_, WalkMsg>,
    ) {
        for d in inbox {
            self.step_walks(d.msg.source, d.mult, state, ctx);
        }
    }

    fn initial_state_bytes(&self) -> u64 {
        48 // empty hash map header
    }
}

/// Monte-Carlo BPPR on a dense state slab: one `u64` stop counter per
/// `(vertex, source-slot)`. RNG consumption and message traffic are
/// bit-identical to [`BpprProgram`], so the sampled walks are the same.
#[derive(Debug, Clone)]
pub struct BpprSlabProgram {
    pub walks_per_node: u64,
    pub alpha: f64,
    pub sources: SourceSet,
    num_vertices: usize,
}

impl BpprSlabProgram {
    /// `num_vertices` sizes the slab row for [`SourceSet::AllVertices`].
    pub fn new(walks_per_node: u64, alpha: f64, num_vertices: usize) -> BpprSlabProgram {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        BpprSlabProgram {
            walks_per_node,
            alpha,
            sources: SourceSet::AllVertices,
            num_vertices,
        }
    }

    pub fn with_sources(mut self, sources: SourceSet) -> Self {
        self.sources = sources;
        self
    }

    fn step_walks(
        &self,
        source: VertexId,
        count: u64,
        row: &mut SlabRowMut<'_, u64>,
        ctx: &mut Context<'_, WalkMsg>,
    ) {
        if count == 0 {
            return;
        }
        let degree = ctx.degree();
        let stopped = if degree == 0 {
            count
        } else {
            crate::sampling::binomial(ctx.rng(), count, self.alpha)
        };
        if stopped > 0 {
            let slot = self.sources.slot_of(source).expect("walk from non-source");
            *row.cell_mut(slot) += stopped;
        }
        let moving = count - stopped;
        if moving == 0 {
            return;
        }
        ctx.send_uniform_spread(WalkMsg { source }, moving);
    }
}

impl SlabProgram for BpprSlabProgram {
    type Message = WalkMsg;
    type Cell = u64;
    type Out = BpprState;

    fn width(&self) -> usize {
        self.sources.len(self.num_vertices)
    }

    fn empty_cell(&self) -> u64 {
        0
    }

    fn message_bytes(&self) -> u64 {
        16
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u64>, ctx: &mut Context<'_, WalkMsg>) {
        if self.sources.contains(v) {
            self.step_walks(v, self.walks_per_node, &mut row, ctx);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u64>,
        inbox: &[Delivery<WalkMsg>],
        ctx: &mut Context<'_, WalkMsg>,
    ) {
        for d in inbox {
            self.step_walks(d.msg.source, d.mult, &mut row, ctx);
        }
    }

    fn extract(&self, _v: VertexId, row: &[u64]) -> BpprState {
        let mut state = BpprState::default();
        for (slot, &count) in row.iter().enumerate() {
            if count > 0 {
                state.stops.insert(self.sources.source_at(slot), count);
            }
        }
        state
    }
}

/// Accumulated BPPR output across one or more batches.
#[derive(Debug, Clone, Default)]
pub struct BpprEstimates {
    /// stops[v][s] = walks from source s that stopped at v.
    stops: Vec<FastMap<VertexId, u64>>,
    /// Total walks per source accumulated so far.
    walks_per_source: u64,
}

impl BpprEstimates {
    pub fn new(num_vertices: usize) -> BpprEstimates {
        BpprEstimates {
            stops: vec![FastMap::default(); num_vertices],
            walks_per_source: 0,
        }
    }

    /// Fold one batch's final states in (aggregation across batches —
    /// the residual-memory-relevant intermediate results of §4.5).
    pub fn absorb(&mut self, states: Vec<BpprState>, walks_per_source: u64) {
        assert_eq!(states.len(), self.stops.len());
        for (v, st) in states.into_iter().enumerate() {
            for (s, c) in st.stops {
                *self.stops[v].entry(s).or_insert(0) += c;
            }
        }
        self.walks_per_source += walks_per_source;
    }

    /// Estimated PPR of `target` personalised to `source`.
    pub fn ppr(&self, source: VertexId, target: VertexId) -> f64 {
        if self.walks_per_source == 0 {
            return 0.0;
        }
        let hits = self.stops[target as usize]
            .get(&source)
            .copied()
            .unwrap_or(0);
        hits as f64 / self.walks_per_source as f64
    }

    /// Total stopped walks across all vertices and sources.
    pub fn total_stopped(&self) -> u64 {
        self.stops.iter().map(|m| m.values().sum::<u64>()).sum()
    }

    /// Memory footprint of the accumulated intermediate results — the
    /// residual-memory contribution this batch output adds (§4.5, §5).
    pub fn residual_bytes(&self) -> u64 {
        self.stops.iter().map(|m| 48 + m.len() as u64 * 16).sum()
    }

    pub fn walks_per_source(&self) -> u64 {
        self.walks_per_source
    }
}

// ---------------------------------------------------------------------
// Forward-push (Pregel-Mirror) variant
// ---------------------------------------------------------------------

/// Broadcast message of the fractional walk: per-neighbor walk mass of
/// one source ("the number of random walks received at that particular
/// neighbor is (1−α)·r/d" — §3).
#[derive(Debug, Clone, PartialEq)]
pub struct PushMsg {
    pub source: VertexId,
    pub amount: f64,
}

impl Message for PushMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.source as u64)
    }
    fn merge(&mut self, other: &Self) {
        self.amount += other.amount;
    }
    fn wire_query(&self) -> Option<u64> {
        Some(self.source as u64)
    }
    fn encoded_payload_bytes(&self) -> u64 {
        8 // fractional residue: fixed-width f64 bits, never varint
    }
}

impl PayloadCodec for PushMsg {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.amount.to_le_bytes());
    }
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
        let amount = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        *pos += 8;
        PushMsg {
            source: wire_query.expect("PushMsg always carries its source") as VertexId,
            amount,
        }
    }
}

/// Per-vertex push state: fractional walk mass stopped here per source.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PushState {
    pub mass: FastMap<VertexId, f64>,
}

/// Fractional-walk BPPR for the broadcast (mirror) interface (hash-map
/// state layout; the production kernel is [`BpprPushSlabProgram`]).
#[derive(Debug, Clone)]
pub struct BpprPushProgram {
    pub walks_per_node: u64,
    pub alpha: f64,
    /// Residues below this many walk units stop propagating and are
    /// absorbed locally; bounds both rounds and total error.
    pub epsilon: f64,
    pub sources: SourceSet,
}

impl BpprPushProgram {
    pub fn new(walks_per_node: u64, alpha: f64) -> BpprPushProgram {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        BpprPushProgram {
            walks_per_node,
            alpha,
            epsilon: 0.25,
            sources: SourceSet::AllVertices,
        }
    }

    pub fn with_sources(mut self, sources: SourceSet) -> Self {
        self.sources = sources;
        self
    }

    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        self.epsilon = epsilon;
        self
    }

    fn push(
        &self,
        source: VertexId,
        residue: f64,
        state: &mut PushState,
        ctx: &mut Context<'_, PushMsg>,
    ) {
        if residue <= 0.0 {
            return;
        }
        let degree = ctx.degree();
        let absorb_here = |state: &mut PushState, amt: f64| {
            *state.mass.entry(source).or_insert(0.0) += amt;
        };
        if degree == 0 {
            absorb_here(state, residue);
            return;
        }
        let stopped = self.alpha * residue;
        absorb_here(state, stopped);
        let forward = residue - stopped;
        if forward < self.epsilon {
            // Too small to keep pushing; absorb to conserve mass.
            absorb_here(state, forward);
        } else {
            ctx.broadcast(
                PushMsg {
                    source,
                    amount: forward / degree as f64,
                },
                1,
            );
        }
    }
}

impl VertexProgram for BpprPushProgram {
    type Message = PushMsg;
    type State = PushState;

    fn message_bytes(&self) -> u64 {
        20 // source id + f64 amount + receiver handling tag
    }

    fn init(&self, v: VertexId, state: &mut PushState, ctx: &mut Context<'_, PushMsg>) {
        if self.sources.contains(v) {
            self.push(v, self.walks_per_node as f64, state, ctx);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut PushState,
        inbox: &[Delivery<PushMsg>],
        ctx: &mut Context<'_, PushMsg>,
    ) {
        // Multiple tuples of the same source may arrive (one per sending
        // worker); accumulate before pushing so the per-source residue
        // is pushed once.
        let mut per_source: FastMap<VertexId, f64> = FastMap::default();
        for d in inbox {
            // `amount` is the total delivered mass: combiner merges add
            // amounts, so multiplicity must NOT scale it again.
            *per_source.entry(d.msg.source).or_insert(0.0) += d.msg.amount;
        }
        let mut sources: Vec<(VertexId, f64)> = per_source.into_iter().collect();
        sources.sort_unstable_by_key(|(s, _)| *s); // deterministic order
        for (source, residue) in sources {
            self.push(source, residue, state, ctx);
        }
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

/// Dense push cell: absorbed walk `mass` plus the `residue` delivered
/// this round and not yet settled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PushCell {
    pub mass: f64,
    pub residue: f64,
}

impl PageableCell for PushCell {
    const CELL_BYTES: usize = 16;

    fn write_to(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.mass.to_bits().to_le_bytes());
        out.extend_from_slice(&self.residue.to_bits().to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        let bits = |range: std::ops::Range<usize>| {
            f64::from_bits(u64::from_le_bytes(buf[range].try_into().unwrap()))
        };
        PushCell {
            mass: bits(0..8),
            residue: bits(8..16),
        }
    }
}

/// Forward-push BPPR on a dense state slab: `(mass, residue)` per
/// `(vertex, source-slot)`. Incoming mass accumulates **in place** into
/// the residue cell (inbox order, so f64 sums match the baseline) and
/// the frontier bitset marks the slot; settling drains marked slots in
/// ascending slot order — the same order the baseline's sorted push
/// uses. Traffic and results are bit-identical to [`BpprPushProgram`].
#[derive(Debug, Clone)]
pub struct BpprPushSlabProgram {
    pub walks_per_node: u64,
    pub alpha: f64,
    pub epsilon: f64,
    pub sources: SourceSet,
    num_vertices: usize,
}

impl BpprPushSlabProgram {
    /// `num_vertices` sizes the slab row for [`SourceSet::AllVertices`].
    pub fn new(walks_per_node: u64, alpha: f64, num_vertices: usize) -> BpprPushSlabProgram {
        assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha in (0,1)");
        BpprPushSlabProgram {
            walks_per_node,
            alpha,
            epsilon: 0.25,
            sources: SourceSet::AllVertices,
            num_vertices,
        }
    }

    pub fn with_sources(mut self, sources: SourceSet) -> Self {
        self.sources = sources;
        self
    }

    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0);
        self.epsilon = epsilon;
        self
    }

    /// Settle `residue` units of `source` into `cell`: absorb the
    /// stopped fraction, broadcast the survivors. Mirrors
    /// [`BpprPushProgram::push`] operation for operation.
    fn settle(
        &self,
        source: VertexId,
        residue: f64,
        cell: &mut PushCell,
        ctx: &mut Context<'_, PushMsg>,
    ) {
        if residue <= 0.0 {
            return;
        }
        let degree = ctx.degree();
        if degree == 0 {
            cell.mass += residue;
            return;
        }
        let stopped = self.alpha * residue;
        cell.mass += stopped;
        let forward = residue - stopped;
        if forward < self.epsilon {
            cell.mass += forward;
        } else {
            ctx.broadcast(
                PushMsg {
                    source,
                    amount: forward / degree as f64,
                },
                1,
            );
        }
    }
}

impl SlabProgram for BpprPushSlabProgram {
    type Message = PushMsg;
    type Cell = PushCell;
    type Out = PushState;

    fn width(&self) -> usize {
        self.sources.len(self.num_vertices)
    }

    fn empty_cell(&self) -> PushCell {
        PushCell::default()
    }

    fn message_bytes(&self) -> u64 {
        20
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, PushCell>, ctx: &mut Context<'_, PushMsg>) {
        if self.sources.contains(v) {
            let slot = self.sources.slot_of(v).expect("source without slot");
            self.settle(v, self.walks_per_node as f64, row.cell_mut(slot), ctx);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, PushCell>,
        inbox: &[Delivery<PushMsg>],
        ctx: &mut Context<'_, PushMsg>,
    ) {
        // Accumulate in place, inbox order: same f64 summation order as
        // the baseline's scratch map.
        for d in inbox {
            let slot = self.sources.slot_of(d.msg.source).expect("non-source push");
            row.cell_mut(slot).residue += d.msg.amount;
            row.mark(slot);
        }
        // Settle marked slots ascending — slot order == source order.
        row.drain(|slot, cell| {
            let residue = std::mem::replace(&mut cell.residue, 0.0);
            self.settle(self.sources.source_at(slot), residue, cell, ctx);
        });
    }

    fn extract(&self, _v: VertexId, row: &[PushCell]) -> PushState {
        let mut state = PushState::default();
        for (slot, cell) in row.iter().enumerate() {
            if cell.mass != 0.0 {
                state.mass.insert(self.sources.source_at(slot), cell.mass);
            }
        }
        state
    }
}

/// Lane-batched push message: the surviving walk mass of up to
/// [`LANES`] adjacent source slots in one envelope. `mask` flags the
/// live lanes; dead lanes carry `0.0`, so merging can add lanewise
/// unconditionally — per-lane f64 sums accumulate in the same emission
/// order the scalar [`PushMsg`] combiner uses. The wire payload is the
/// mask byte plus one fixed-width f64 per live lane.
#[derive(Debug, Clone, PartialEq)]
pub struct PushLanesMsg {
    /// Chunk index: lanes cover slots `[chunk*LANES, chunk*LANES+LANES)`.
    pub chunk: u32,
    /// Bit `l` set = lane `l` carries walk mass.
    pub mask: u8,
    /// Per-lane walk mass; `0.0` on dead lanes.
    pub amount: [f64; LANES],
}

impl Message for PushLanesMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.chunk as u64)
    }
    fn merge(&mut self, other: &Self) {
        self.mask |= other.mask;
        for (a, b) in self.amount.iter_mut().zip(other.amount.iter()) {
            *a += b; // dead lanes hold 0.0 on both sides
        }
    }
    fn wire_query(&self) -> Option<u64> {
        Some(self.chunk as u64)
    }
    fn encoded_payload_bytes(&self) -> u64 {
        1 + 8 * self.mask.count_ones() as u64
    }
}

impl PayloadCodec for PushLanesMsg {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(self.mask);
        for l in 0..LANES {
            if self.mask & (1 << l) != 0 {
                out.extend_from_slice(&self.amount[l].to_le_bytes());
            }
        }
    }
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
        let mask = buf[*pos];
        *pos += 1;
        let mut amount = [0.0f64; LANES];
        for (l, a) in amount.iter_mut().enumerate() {
            if mask & (1 << l) != 0 {
                *a = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
                *pos += 8;
            }
        }
        PushLanesMsg {
            chunk: wire_query.expect("PushLanesMsg always carries its chunk") as u32,
            mask,
            amount,
        }
    }
}

/// Lane-batched forward-push BPPR: eight source slots settle per
/// envelope. Arrivals add their live lanes into the residue cells in
/// inbox order (each sender contributes to a given cell at most once
/// per round, so per-cell f64 summation order matches
/// [`BpprPushSlabProgram`]); settling drains dirty chunks ascending —
/// the same slot order as the scalar drain — and broadcasts one
/// message per chunk whose multiplicity is the number of lanes that
/// forwarded. Rounds, mult-weighted traffic and final states are
/// bit-identical to the scalar program — pinned by proptest.
#[derive(Debug, Clone)]
pub struct BpprPushLaneSlabProgram {
    inner: BpprPushSlabProgram,
}

impl BpprPushLaneSlabProgram {
    /// `num_vertices` sizes the slab row for [`SourceSet::AllVertices`].
    pub fn new(walks_per_node: u64, alpha: f64, num_vertices: usize) -> BpprPushLaneSlabProgram {
        BpprPushLaneSlabProgram {
            inner: BpprPushSlabProgram::new(walks_per_node, alpha, num_vertices),
        }
    }

    pub fn with_sources(mut self, sources: SourceSet) -> Self {
        self.inner = self.inner.with_sources(sources);
        self
    }

    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.inner = self.inner.with_epsilon(epsilon);
        self
    }

    /// Settle every live lane of one dirty chunk, then broadcast the
    /// survivors as a single [`PushLanesMsg`]. Lane-for-lane the same
    /// arithmetic as [`BpprPushSlabProgram::settle`].
    fn settle_chunk(
        &self,
        chunk: usize,
        in_mask: u8,
        cells: &mut [PushCell],
        ctx: &mut Context<'_, PushLanesMsg>,
    ) {
        let degree = ctx.degree();
        let mut out_mask = 0u8;
        let mut amount = [0.0f64; LANES];
        for (l, cell) in cells.iter_mut().enumerate() {
            if in_mask & (1 << l) == 0 {
                continue;
            }
            let residue = std::mem::replace(&mut cell.residue, 0.0);
            if residue <= 0.0 {
                continue;
            }
            if degree == 0 {
                cell.mass += residue;
                continue;
            }
            let stopped = self.inner.alpha * residue;
            cell.mass += stopped;
            let forward = residue - stopped;
            if forward < self.inner.epsilon {
                cell.mass += forward;
            } else {
                amount[l] = forward / degree as f64;
                out_mask |= 1 << l;
            }
        }
        if out_mask != 0 {
            ctx.broadcast(
                PushLanesMsg {
                    chunk: chunk as u32,
                    mask: out_mask,
                    amount,
                },
                out_mask.count_ones() as u64,
            );
        }
    }
}

impl SlabProgram for BpprPushLaneSlabProgram {
    type Message = PushLanesMsg;
    type Cell = PushCell;
    type Out = PushState;

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn empty_cell(&self) -> PushCell {
        PushCell::default()
    }

    fn message_bytes(&self) -> u64 {
        20
    }

    fn init(
        &self,
        v: VertexId,
        mut row: SlabRowMut<'_, PushCell>,
        ctx: &mut Context<'_, PushLanesMsg>,
    ) {
        if self.inner.sources.contains(v) {
            let slot = self.inner.sources.slot_of(v).expect("source without slot");
            row.cell_mut(slot).residue = self.inner.walks_per_node as f64;
            row.mark(slot);
            row.drain_chunks(|chunk, mask, cells| self.settle_chunk(chunk, mask, cells, ctx));
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, PushCell>,
        inbox: &[Delivery<PushLanesMsg>],
        ctx: &mut Context<'_, PushLanesMsg>,
    ) {
        // Accumulate in place, inbox order: each sender touches a cell
        // at most once per round, so per-cell f64 order matches the
        // scalar program.
        for d in inbox {
            let base = d.msg.chunk as usize * LANES;
            for l in 0..LANES {
                if d.msg.mask & (1 << l) != 0 {
                    row.cell_mut(base + l).residue += d.msg.amount[l];
                    row.mark(base + l);
                }
            }
        }
        // Settle dirty chunks ascending — lane order == slot order.
        row.drain_chunks(|chunk, mask, cells| self.settle_chunk(chunk, mask, cells, ctx));
    }

    fn extract(&self, _v: VertexId, row: &[PushCell]) -> PushState {
        self.inner.extract(_v, row)
    }
}

/// Accumulated push-BPPR output.
#[derive(Debug, Clone, Default)]
pub struct PushEstimates {
    mass: Vec<FastMap<VertexId, f64>>,
    walks_per_source: f64,
}

impl PushEstimates {
    pub fn new(num_vertices: usize) -> PushEstimates {
        PushEstimates {
            mass: vec![FastMap::default(); num_vertices],
            walks_per_source: 0.0,
        }
    }

    pub fn absorb(&mut self, states: Vec<PushState>, walks_per_source: u64) {
        assert_eq!(states.len(), self.mass.len());
        for (v, st) in states.into_iter().enumerate() {
            for (s, m) in st.mass {
                *self.mass[v].entry(s).or_insert(0.0) += m;
            }
        }
        self.walks_per_source += walks_per_source as f64;
    }

    pub fn ppr(&self, source: VertexId, target: VertexId) -> f64 {
        if self.walks_per_source == 0.0 {
            return 0.0;
        }
        self.mass[target as usize]
            .get(&source)
            .copied()
            .unwrap_or(0.0)
            / self.walks_per_source
    }

    /// Total walk mass absorbed (conservation check).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().map(|m| m.values().sum::<f64>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_set_semantics() {
        let all = SourceSet::AllVertices;
        assert!(all.contains(7));
        assert_eq!(all.len(100), 100);
        let sub = SourceSet::subset(vec![5, 2, 5, 9]);
        assert!(sub.contains(2) && sub.contains(5) && sub.contains(9));
        assert!(!sub.contains(3));
        assert_eq!(sub.len(100), 3);
    }

    #[test]
    fn slots_rank_sources() {
        let all = SourceSet::AllVertices;
        assert_eq!(all.slot_of(7), Some(7));
        assert_eq!(all.source_at(7), 7);
        let sub = SourceSet::subset(vec![9, 2, 5]);
        assert_eq!(sub.slot_of(2), Some(0));
        assert_eq!(sub.slot_of(5), Some(1));
        assert_eq!(sub.slot_of(9), Some(2));
        assert_eq!(sub.slot_of(3), None);
        assert_eq!(sub.source_at(1), 5);
    }

    #[test]
    fn walk_msg_combines_by_source() {
        let m = WalkMsg { source: 4 };
        assert_eq!(m.combine_key(), Some(4));
    }

    #[test]
    fn push_msg_merges_amounts() {
        let mut a = PushMsg {
            source: 1,
            amount: 0.5,
        };
        a.merge(&PushMsg {
            source: 1,
            amount: 0.25,
        });
        assert_eq!(a.amount, 0.75);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_must_be_fractional() {
        BpprProgram::new(10, 1.0);
    }

    #[test]
    fn slab_width_follows_source_set() {
        let all = BpprSlabProgram::new(8, 0.2, 50);
        assert_eq!(all.width(), 50);
        let sub = BpprPushSlabProgram::new(8, 0.2, 50).with_sources(SourceSet::subset(vec![3, 7]));
        assert_eq!(sub.width(), 2);
    }

    #[test]
    fn slab_extract_maps_slots_to_sources() {
        let p = BpprSlabProgram::new(8, 0.2, 4).with_sources(SourceSet::subset(vec![9, 2]));
        let st = p.extract(0, &[3, 0]);
        assert_eq!(st.stops.get(&2), Some(&3), "slot 0 = source 2");
        assert_eq!(st.stops.get(&9), None, "zero counts are skipped");
    }

    #[test]
    fn estimates_fold_batches() {
        let mut est = BpprEstimates::new(3);
        let mut s1 = vec![BpprState::default(); 3];
        s1[2].stops.insert(0, 7);
        est.absorb(s1, 10);
        let mut s2 = vec![BpprState::default(); 3];
        s2[2].stops.insert(0, 3);
        est.absorb(s2, 10);
        assert_eq!(est.walks_per_source(), 20);
        assert_eq!(est.ppr(0, 2), 0.5);
        assert_eq!(est.total_stopped(), 10);
        assert!(est.residual_bytes() > 0);
    }
}
