//! Job-level source indexing, shared across batches.
//!
//! Source-based tasks (MSSP, BKHS) address queries by **query id** —
//! the index into the job's source pool. Historically every batch
//! program rebuilt its own `vertex → query ids` hash map from its
//! source slice; a job with many narrow batches paid that rebuild per
//! batch. A [`SourceIndex`] is built **once per job** over the whole
//! pool and shared (`Arc`) by every batch program, which addresses its
//! batch as a contiguous query range `[start, end)` and translates to
//! batch-local ids by subtracting `start`.

use crate::mssp::QueryId;
use mtvc_graph::hash::FastMap;
use mtvc_graph::VertexId;
use std::ops::Range;
use std::sync::Arc;

/// Immutable map of a job's source pool: `sources[q]` is the start
/// vertex of global query `q`, plus the inverted `vertex → query ids`
/// index. Duplicate start vertices are legal — each occurrence is an
/// independent unit task with its own query id.
#[derive(Debug, Clone, Default)]
pub struct SourceIndex {
    sources: Vec<VertexId>,
    starts: FastMap<VertexId, Vec<QueryId>>,
}

impl SourceIndex {
    /// Build the index for a job's whole source pool.
    pub fn build(sources: Vec<VertexId>) -> SourceIndex {
        let mut starts: FastMap<VertexId, Vec<QueryId>> = FastMap::default();
        for (q, &v) in sources.iter().enumerate() {
            starts.entry(v).or_default().push(q as QueryId);
        }
        SourceIndex { sources, starts }
    }

    /// [`SourceIndex::build`], wrapped for sharing across batches.
    pub fn shared(sources: Vec<VertexId>) -> Arc<SourceIndex> {
        Arc::new(Self::build(sources))
    }

    /// Total queries in the pool.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The full source pool, indexed by global query id.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Global query ids starting at `v`, in ascending order.
    pub fn queries_at(&self, v: VertexId) -> &[QueryId] {
        self.starts.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Queries of `v` that fall in the batch `range`, yielded as
    /// **batch-local** ids (`global - range.start`). This is the
    /// per-batch slice of the once-per-job index.
    pub fn batch_queries_at(
        &self,
        v: VertexId,
        range: &Range<usize>,
    ) -> impl Iterator<Item = QueryId> + '_ {
        let qs = self.queries_at(v);
        let lo = qs.partition_point(|&q| (q as usize) < range.start);
        let hi = qs.partition_point(|&q| (q as usize) < range.end);
        let start = range.start as QueryId;
        qs[lo..hi].iter().map(move |&q| q - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_inverts_the_pool() {
        let idx = SourceIndex::build(vec![9, 3, 9, 5]);
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.sources(), &[9, 3, 9, 5]);
        assert_eq!(idx.queries_at(9), &[0, 2]);
        assert_eq!(idx.queries_at(3), &[1]);
        assert_eq!(idx.queries_at(7), &[] as &[QueryId]);
    }

    #[test]
    fn batch_ranges_yield_local_ids() {
        // Pool: q0..q5 start at vertices 1,1,2,1,3,1.
        let idx = SourceIndex::build(vec![1, 1, 2, 1, 3, 1]);
        let all: Vec<_> = idx.batch_queries_at(1, &(0..6)).collect();
        assert_eq!(all, vec![0, 1, 3, 5]);
        // Batch [2, 5): global q3 and q5 start at 1, but q5 is outside.
        let batch: Vec<_> = idx.batch_queries_at(1, &(2..5)).collect();
        assert_eq!(batch, vec![1], "global q3 = local q1 in batch [2,5)");
        let v3: Vec<_> = idx.batch_queries_at(3, &(2..5)).collect();
        assert_eq!(v3, vec![2], "global q4 = local q2");
        let none: Vec<_> = idx.batch_queries_at(2, &(3..6)).collect();
        assert!(none.is_empty());
    }
}
