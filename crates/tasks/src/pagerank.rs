//! Classic (global) PageRank.
//!
//! Used by §4.8 / Table 4 as the *single-task* counterpoint to BPPR:
//! "PageRank is a global metric of node importance, and its computation
//! workload is similar to a Personalized PageRank query that takes a
//! single source as input." Standard Pregel formulation: fixed number
//! of iterations; each round a vertex sets
//! `rank = (1-d)/n + d · Σ incoming` and sends `rank/degree` onward.

use mtvc_engine::{Context, Delivery, Message, VertexProgram};
use mtvc_graph::VertexId;

/// Rank contribution flowing along an edge. All contributions to a
/// vertex combine by summation (combine key 0).
#[derive(Debug, Clone, PartialEq)]
pub struct RankMsg {
    pub value: f64,
}

impl Message for RankMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(0)
    }
    fn merge(&mut self, other: &Self) {
        self.value += other.value;
    }
}

/// Per-vertex PageRank state.
#[derive(Debug, Clone, Default)]
pub struct RankState {
    pub rank: f64,
}

/// Fixed-iteration PageRank.
#[derive(Debug, Clone)]
pub struct PageRankProgram {
    pub damping: f64,
    pub iterations: usize,
}

impl PageRankProgram {
    pub fn new(damping: f64, iterations: usize) -> PageRankProgram {
        assert!((0.0..1.0).contains(&damping), "damping in [0,1)");
        assert!(iterations >= 1);
        PageRankProgram {
            damping,
            iterations,
        }
    }
}

impl Default for PageRankProgram {
    fn default() -> Self {
        PageRankProgram::new(0.85, 30)
    }
}

impl VertexProgram for PageRankProgram {
    type Message = RankMsg;
    type State = RankState;

    fn message_bytes(&self) -> u64 {
        12 // f64 contribution + tag
    }

    fn init(&self, _v: VertexId, state: &mut RankState, ctx: &mut Context<'_, RankMsg>) {
        let n = ctx.num_vertices() as f64;
        state.rank = 1.0 / n;
        let degree = ctx.degree();
        if degree > 0 {
            let share = state.rank / degree as f64;
            for &t in ctx.neighbors() {
                ctx.send(t, RankMsg { value: share }, 1);
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut RankState,
        inbox: &[Delivery<RankMsg>],
        ctx: &mut Context<'_, RankMsg>,
    ) {
        let sum: f64 = inbox.iter().map(|d| d.msg.value).sum();
        let n = ctx.num_vertices() as f64;
        state.rank = (1.0 - self.damping) / n + self.damping * sum;
        if ctx.round() < self.iterations {
            let degree = ctx.degree();
            if degree > 0 {
                let share = state.rank / degree as f64;
                for &t in ctx.neighbors() {
                    ctx.send(t, RankMsg { value: share }, 1);
                }
            }
        }
    }

    fn max_rounds(&self) -> Option<usize> {
        Some(self.iterations)
    }

    fn initial_state_bytes(&self) -> u64 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_messages_sum_when_merged() {
        let mut a = RankMsg { value: 0.25 };
        a.merge(&RankMsg { value: 0.5 });
        assert_eq!(a.value, 0.75);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_validated() {
        PageRankProgram::new(1.0, 10);
    }

    #[test]
    fn default_matches_convention() {
        let p = PageRankProgram::default();
        assert_eq!(p.damping, 0.85);
        assert_eq!(p.iterations, 30);
        assert_eq!(p.max_rounds(), Some(30));
    }
}
