//! Batch k-Hop Search (BKHS).
//!
//! §2.3/§3: for each source `s`, collect the vertices within `k` hops.
//! "The implementations of BKHS are similar to those of MSSP except for
//! the termination condition: the program stops after k + 1
//! communication rounds." The workload is the number of source queries.
//! Like MSSP, queries are addressed by query id, so duplicate start
//! vertices are distinct (independently-charged) unit tasks.
//!
//! Two state layouts per variant (see `mssp` module docs for the
//! rationale): the slab kernels [`BkhsSlabProgram`] /
//! [`BkhsBroadcastSlabProgram`] keep one reach byte per
//! `(vertex, query)` in a dense slab row; the hash-set baselines
//! [`BkhsProgram`] / [`BkhsBroadcastProgram`] remain for benchmarking
//! and cross-checking. Message traffic is bit-identical between the
//! layouts. [`BkhsLaneSlabProgram`] additionally batches eight
//! adjacent queries per envelope ([`ReachLanesMsg`]), the same lane
//! scheme as MSSP's `DistLanesMsg` — mult-weighted traffic stays
//! bit-identical to the scalar slab kernel.

use crate::mssp::QueryId;
use crate::sources::SourceIndex;
use mtvc_engine::{
    Context, Delivery, Message, PayloadCodec, SlabProgram, SlabRowMut, VertexProgram, LANES,
};
use mtvc_graph::hash::FastSet;
use mtvc_graph::VertexId;
use std::ops::Range;
use std::sync::Arc;

/// Reachability notification: "query `q` reaches you".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachMsg {
    pub query: QueryId,
}

impl Message for ReachMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.query as u64)
    }
    fn merge(&mut self, _other: &Self) {}
    fn wire_query(&self) -> Option<u64> {
        Some(self.query as u64)
    }
    fn encoded_payload_bytes(&self) -> u64 {
        0 // the query id *is* the message — it rides the query stream
    }
}

impl PayloadCodec for ReachMsg {
    fn encode_payload(&self, _out: &mut Vec<u8>) {}
    fn decode_payload(wire_query: Option<u64>, _buf: &[u8], _pos: &mut usize) -> Self {
        ReachMsg {
            query: wire_query.expect("ReachMsg always carries a query id") as QueryId,
        }
    }
}

/// Lane-batched reachability notification: "the queries of `chunk`
/// whose bit is set in `mask` reach you". One envelope per
/// (chunk, edge) replaces up to [`LANES`] scalar [`ReachMsg`]s; the
/// multiplicity is the number of set lanes, so wire accounting matches
/// the scalar traffic unit for unit. The payload is the single mask
/// byte — the chunk id rides the query stream, like [`ReachMsg`]'s
/// query id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachLanesMsg {
    /// Chunk index: lanes cover queries `[chunk*LANES, chunk*LANES+LANES)`.
    pub chunk: u32,
    /// Bit `l` set = lane `l`'s query reaches the destination.
    pub mask: u8,
}

impl Message for ReachLanesMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.chunk as u64)
    }
    fn merge(&mut self, other: &Self) {
        self.mask |= other.mask;
    }
    fn wire_query(&self) -> Option<u64> {
        Some(self.chunk as u64)
    }
    fn encoded_payload_bytes(&self) -> u64 {
        1 // the mask byte; the chunk id rides the query stream
    }
}

impl PayloadCodec for ReachLanesMsg {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(self.mask);
    }
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
        let mask = buf[*pos];
        *pos += 1;
        ReachLanesMsg {
            chunk: wire_query.expect("ReachLanesMsg always carries its chunk") as u32,
            mask,
        }
    }
}

/// Per-vertex BKHS state: queries whose k-hop ball contains this vertex.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BkhsState {
    pub reached: FastSet<QueryId>,
}

/// Point-to-point BKHS (hash-set state layout).
#[derive(Debug, Clone)]
pub struct BkhsProgram {
    index: Arc<SourceIndex>,
    range: Range<usize>,
    k: u32,
}

impl BkhsProgram {
    pub fn new(sources: Vec<VertexId>, k: u32) -> BkhsProgram {
        assert!(k >= 1, "k-hop search requires k >= 1");
        let range = 0..sources.len();
        BkhsProgram {
            index: SourceIndex::shared(sources),
            range,
            k,
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>, k: u32) -> BkhsProgram {
        assert!(k >= 1, "k-hop search requires k >= 1");
        assert!(range.end <= index.len(), "batch range exceeds source pool");
        BkhsProgram { index, range, k }
    }

    pub fn k(&self) -> u32 {
        self.k
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.index.sources()[self.range.clone()]
    }
}

/// Mark never-seen queries as reached and forward each one via
/// `forward`, in inbox arrival order (deterministic: routing delivers
/// in a fixed order). The set insert already deduplicates, so no
/// scratch collection is needed.
fn absorb_and_forward(
    state: &mut BkhsState,
    inbox: &[Delivery<ReachMsg>],
    ctx: &mut Context<'_, ReachMsg>,
    mut forward: impl FnMut(QueryId, &mut Context<'_, ReachMsg>),
) {
    for d in inbox {
        if state.reached.insert(d.msg.query) {
            forward(d.msg.query, ctx);
        }
    }
}

impl VertexProgram for BkhsProgram {
    type Message = ReachMsg;
    type State = BkhsState;

    fn message_bytes(&self) -> u64 {
        12 // query id + hop tag
    }

    fn init(&self, v: VertexId, state: &mut BkhsState, ctx: &mut Context<'_, ReachMsg>) {
        for q in self.index.batch_queries_at(v, &self.range) {
            state.reached.insert(q);
            for &t in ctx.neighbors() {
                ctx.send(t, ReachMsg { query: q }, 1);
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut BkhsState,
        inbox: &[Delivery<ReachMsg>],
        ctx: &mut Context<'_, ReachMsg>,
    ) {
        absorb_and_forward(state, inbox, ctx, |query, ctx| {
            for &t in ctx.neighbors() {
                ctx.send(t, ReachMsg { query }, 1);
            }
        });
    }

    /// §3: stop after k+1 rounds total (init + k forwarding rounds).
    fn max_rounds(&self) -> Option<usize> {
        Some(self.k as usize)
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

/// Broadcast-interface BKHS (identical semantics; broadcast sends).
#[derive(Debug, Clone)]
pub struct BkhsBroadcastProgram {
    inner: BkhsProgram,
}

impl BkhsBroadcastProgram {
    pub fn new(sources: Vec<VertexId>, k: u32) -> BkhsBroadcastProgram {
        BkhsBroadcastProgram {
            inner: BkhsProgram::new(sources, k),
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>, k: u32) -> BkhsBroadcastProgram {
        BkhsBroadcastProgram {
            inner: BkhsProgram::batch(index, range, k),
        }
    }
}

impl VertexProgram for BkhsBroadcastProgram {
    type Message = ReachMsg;
    type State = BkhsState;

    fn message_bytes(&self) -> u64 {
        8 // query only — receivers handle via the broadcast contract
    }

    fn init(&self, v: VertexId, state: &mut BkhsState, ctx: &mut Context<'_, ReachMsg>) {
        for q in self.inner.index.batch_queries_at(v, &self.inner.range) {
            state.reached.insert(q);
            ctx.broadcast(ReachMsg { query: q }, 1);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut BkhsState,
        inbox: &[Delivery<ReachMsg>],
        ctx: &mut Context<'_, ReachMsg>,
    ) {
        absorb_and_forward(state, inbox, ctx, |query, ctx| {
            ctx.broadcast(ReachMsg { query }, 1);
        });
    }

    fn max_rounds(&self) -> Option<usize> {
        self.inner.max_rounds()
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

// ---------------------------------------------------------------------
// Slab kernels
// ---------------------------------------------------------------------

/// Reconstruct the sparse reach set from a dense flag row.
fn extract_reached(row: &[u8]) -> BkhsState {
    let mut state = BkhsState::default();
    for (q, &flag) in row.iter().enumerate() {
        if flag != 0 {
            state.reached.insert(q as QueryId);
        }
    }
    state
}

/// Point-to-point BKHS on a dense state slab: one reach byte per
/// `(vertex, query)`. Deduplication is a flag test instead of a
/// hash-set probe; forwarding happens per delivery in inbox order, so
/// traffic is bit-identical to [`BkhsProgram`]. The frontier bitset is
/// unused — BKHS forwards inline and never re-scans its row.
#[derive(Debug, Clone)]
pub struct BkhsSlabProgram {
    index: Arc<SourceIndex>,
    range: Range<usize>,
    k: u32,
}

impl BkhsSlabProgram {
    pub fn new(sources: Vec<VertexId>, k: u32) -> BkhsSlabProgram {
        assert!(k >= 1, "k-hop search requires k >= 1");
        let range = 0..sources.len();
        BkhsSlabProgram {
            index: SourceIndex::shared(sources),
            range,
            k,
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>, k: u32) -> BkhsSlabProgram {
        assert!(k >= 1, "k-hop search requires k >= 1");
        assert!(range.end <= index.len(), "batch range exceeds source pool");
        BkhsSlabProgram { index, range, k }
    }

    pub fn k(&self) -> u32 {
        self.k
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.index.sources()[self.range.clone()]
    }
}

impl SlabProgram for BkhsSlabProgram {
    type Message = ReachMsg;
    type Cell = u8;
    type Out = BkhsState;

    fn width(&self) -> usize {
        self.range.len()
    }

    fn empty_cell(&self) -> u8 {
        0
    }

    fn message_bytes(&self) -> u64 {
        12
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u8>, ctx: &mut Context<'_, ReachMsg>) {
        for q in self.index.batch_queries_at(v, &self.range) {
            *row.cell_mut(q as usize) = 1;
            for &t in ctx.neighbors() {
                ctx.send(t, ReachMsg { query: q }, 1);
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u8>,
        inbox: &[Delivery<ReachMsg>],
        ctx: &mut Context<'_, ReachMsg>,
    ) {
        for d in inbox {
            let cell = row.cell_mut(d.msg.query as usize);
            if *cell == 0 {
                *cell = 1;
                for &t in ctx.neighbors() {
                    ctx.send(t, ReachMsg { query: d.msg.query }, 1);
                }
            }
        }
    }

    fn extract(&self, _v: VertexId, row: &[u8]) -> BkhsState {
        extract_reached(row)
    }

    fn max_rounds(&self) -> Option<usize> {
        Some(self.k as usize)
    }
}

/// Broadcast-interface BKHS on a dense state slab. Traffic-identical
/// to [`BkhsBroadcastProgram`].
#[derive(Debug, Clone)]
pub struct BkhsBroadcastSlabProgram {
    inner: BkhsSlabProgram,
}

impl BkhsBroadcastSlabProgram {
    pub fn new(sources: Vec<VertexId>, k: u32) -> BkhsBroadcastSlabProgram {
        BkhsBroadcastSlabProgram {
            inner: BkhsSlabProgram::new(sources, k),
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>, k: u32) -> BkhsBroadcastSlabProgram {
        BkhsBroadcastSlabProgram {
            inner: BkhsSlabProgram::batch(index, range, k),
        }
    }
}

impl SlabProgram for BkhsBroadcastSlabProgram {
    type Message = ReachMsg;
    type Cell = u8;
    type Out = BkhsState;

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn empty_cell(&self) -> u8 {
        0
    }

    fn message_bytes(&self) -> u64 {
        8
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u8>, ctx: &mut Context<'_, ReachMsg>) {
        for q in self.inner.index.batch_queries_at(v, &self.inner.range) {
            *row.cell_mut(q as usize) = 1;
            ctx.broadcast(ReachMsg { query: q }, 1);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u8>,
        inbox: &[Delivery<ReachMsg>],
        ctx: &mut Context<'_, ReachMsg>,
    ) {
        for d in inbox {
            let cell = row.cell_mut(d.msg.query as usize);
            if *cell == 0 {
                *cell = 1;
                ctx.broadcast(ReachMsg { query: d.msg.query }, 1);
            }
        }
    }

    fn extract(&self, _v: VertexId, row: &[u8]) -> BkhsState {
        extract_reached(row)
    }

    fn max_rounds(&self) -> Option<usize> {
        self.inner.max_rounds()
    }
}

/// Forward every newly-reached chunk of the row: one
/// [`ReachLanesMsg`] per (dirty chunk, neighbor) whose multiplicity is
/// the number of fresh lanes, so mult-weighted traffic equals the
/// scalar program's one-unit-per-query sends.
fn send_reached_chunks(row: &mut SlabRowMut<'_, u8>, ctx: &mut Context<'_, ReachLanesMsg>) {
    row.drain_chunks(|chunk, mask, _cells| {
        let units = mask.count_ones() as u64;
        for &t in ctx.neighbors() {
            ctx.send(
                t,
                ReachLanesMsg {
                    chunk: chunk as u32,
                    mask,
                },
                units,
            );
        }
    });
}

/// Lane-batched point-to-point BKHS: eight queries advance per
/// envelope. Arrivals OR their mask into the row via
/// [`SlabRowMut::absorb_lanes`], which marks only *freshly* reached
/// lanes in the frontier; draining then forwards one message per dirty
/// chunk instead of one per query. Mult-weighted traffic, rounds and
/// final states are bit-identical to [`BkhsSlabProgram`] — pinned by
/// proptest.
#[derive(Debug, Clone)]
pub struct BkhsLaneSlabProgram {
    inner: BkhsSlabProgram,
}

impl BkhsLaneSlabProgram {
    pub fn new(sources: Vec<VertexId>, k: u32) -> BkhsLaneSlabProgram {
        BkhsLaneSlabProgram {
            inner: BkhsSlabProgram::new(sources, k),
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>, k: u32) -> BkhsLaneSlabProgram {
        BkhsLaneSlabProgram {
            inner: BkhsSlabProgram::batch(index, range, k),
        }
    }
}

impl SlabProgram for BkhsLaneSlabProgram {
    type Message = ReachLanesMsg;
    type Cell = u8;
    type Out = BkhsState;

    fn width(&self) -> usize {
        self.inner.width()
    }

    fn empty_cell(&self) -> u8 {
        0
    }

    fn message_bytes(&self) -> u64 {
        12
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u8>, ctx: &mut Context<'_, ReachLanesMsg>) {
        let mut any = false;
        for q in self.inner.index.batch_queries_at(v, &self.inner.range) {
            *row.cell_mut(q as usize) = 1;
            row.mark(q as usize);
            any = true;
        }
        if any {
            send_reached_chunks(&mut row, ctx);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u8>,
        inbox: &[Delivery<ReachLanesMsg>],
        ctx: &mut Context<'_, ReachLanesMsg>,
    ) {
        for d in inbox {
            row.absorb_lanes(d.msg.chunk as usize * LANES, d.msg.mask);
        }
        send_reached_chunks(&mut row, ctx);
    }

    fn extract(&self, _v: VertexId, row: &[u8]) -> BkhsState {
        extract_reached(row)
    }

    fn max_rounds(&self) -> Option<usize> {
        self.inner.max_rounds()
    }
}

/// Per-query k-hop neighborhood sizes, aggregated from final states.
#[derive(Debug, Clone)]
pub struct BkhsCounts {
    counts: std::collections::BTreeMap<QueryId, u64>,
}

impl BkhsCounts {
    pub fn from_states(states: &[BkhsState]) -> BkhsCounts {
        let mut counts = std::collections::BTreeMap::new();
        for st in states {
            for &q in &st.reached {
                *counts.entry(q).or_insert(0) += 1;
            }
        }
        BkhsCounts { counts }
    }

    /// Number of vertices within k hops of query `q`'s source
    /// (including the source itself).
    pub fn count(&self, q: QueryId) -> u64 {
        self.counts.get(&q).copied().unwrap_or(0)
    }

    /// Vertices reached by query `q`, reconstructed from states.
    pub fn members(states: &[BkhsState], q: QueryId) -> Vec<VertexId> {
        states
            .iter()
            .enumerate()
            .filter(|(_, st)| st.reached.contains(&q))
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_sources_kept_as_queries() {
        let p = BkhsProgram::new(vec![4, 4, 2], 3);
        assert_eq!(p.sources(), &[4, 4, 2]);
        assert_eq!(p.k(), 3);
        assert_eq!(p.max_rounds(), Some(3));
        assert_eq!(p.index.queries_at(4), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_hops_rejected() {
        BkhsProgram::new(vec![0], 0);
    }

    #[test]
    fn batch_programs_slice_a_shared_index() {
        let index = SourceIndex::shared(vec![4, 4, 2, 7]);
        let b = BkhsSlabProgram::batch(Arc::clone(&index), 2..4, 2);
        assert_eq!(b.sources(), &[2, 7]);
        assert_eq!(b.width(), 2);
        assert_eq!(SlabProgram::max_rounds(&b), Some(2));
    }

    #[test]
    fn extract_inverts_flag_rows() {
        let st = extract_reached(&[1, 0, 1]);
        assert!(st.reached.contains(&0));
        assert!(!st.reached.contains(&1));
        assert!(st.reached.contains(&2));
    }

    #[test]
    fn counts_aggregate_states() {
        let mut states = vec![BkhsState::default(); 3];
        states[0].reached.insert(0);
        states[1].reached.insert(0);
        states[2].reached.insert(1);
        let c = BkhsCounts::from_states(&states);
        assert_eq!(c.count(0), 2);
        assert_eq!(c.count(1), 1);
        assert_eq!(c.count(9), 0);
        assert_eq!(BkhsCounts::members(&states, 0), vec![0, 1]);
    }
}
