//! Batch k-Hop Search (BKHS).
//!
//! §2.3/§3: for each source `s`, collect the vertices within `k` hops.
//! "The implementations of BKHS are similar to those of MSSP except for
//! the termination condition: the program stops after k + 1
//! communication rounds." The workload is the number of source queries.
//! Like MSSP, queries are addressed by query id, so duplicate start
//! vertices are distinct (independently-charged) unit tasks.

use crate::mssp::QueryId;
use mtvc_engine::{Context, Delivery, Message, VertexProgram};
use mtvc_graph::hash::{FastMap, FastSet};
use mtvc_graph::VertexId;

/// Reachability notification: "query `q` reaches you".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachMsg {
    pub query: QueryId,
}

impl Message for ReachMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.query as u64)
    }
    fn merge(&mut self, _other: &Self) {}
}

/// Per-vertex BKHS state: queries whose k-hop ball contains this vertex.
///
/// Memory accounting note: a reach flag is boolean, and a production
/// system stores the per-vertex flag set as a (sparse) bitmap — about
/// one byte amortized per set flag including indexing — so state growth
/// is charged at 1 byte per new `(query, vertex)` flag, not at the
/// hash-set's in-simulator footprint.
#[derive(Debug, Clone, Default)]
pub struct BkhsState {
    pub reached: FastSet<QueryId>,
}

fn queries_by_vertex(sources: &[VertexId]) -> FastMap<VertexId, Vec<QueryId>> {
    let mut map: FastMap<VertexId, Vec<QueryId>> = FastMap::default();
    for (q, &v) in sources.iter().enumerate() {
        map.entry(v).or_default().push(q as QueryId);
    }
    map
}

/// Point-to-point BKHS.
#[derive(Debug, Clone)]
pub struct BkhsProgram {
    sources: Vec<VertexId>,
    starts: FastMap<VertexId, Vec<QueryId>>,
    k: u32,
}

impl BkhsProgram {
    pub fn new(sources: Vec<VertexId>, k: u32) -> BkhsProgram {
        assert!(k >= 1, "k-hop search requires k >= 1");
        let starts = queries_by_vertex(&sources);
        BkhsProgram { sources, starts, k }
    }

    pub fn k(&self) -> u32 {
        self.k
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }
}

/// Mark never-seen queries as reached and forward each one via
/// `forward`, in inbox arrival order (deterministic: routing delivers
/// in a fixed order). The set insert already deduplicates, so no
/// scratch collection is needed — the old per-call `Vec<QueryId>` +
/// sort + dedup is gone from the hot path.
fn absorb_and_forward(
    state: &mut BkhsState,
    inbox: &[Delivery<ReachMsg>],
    ctx: &mut Context<'_, ReachMsg>,
    mut forward: impl FnMut(QueryId, &mut Context<'_, ReachMsg>),
) {
    for d in inbox {
        if state.reached.insert(d.msg.query) {
            ctx.add_state_bytes(1); // bitmap-encoded reach flag
            forward(d.msg.query, ctx);
        }
    }
}

impl VertexProgram for BkhsProgram {
    type Message = ReachMsg;
    type State = BkhsState;

    fn message_bytes(&self) -> u64 {
        12 // query id + hop tag
    }

    fn init(&self, v: VertexId, state: &mut BkhsState, ctx: &mut Context<'_, ReachMsg>) {
        let Some(queries) = self.starts.get(&v) else {
            return;
        };
        for &q in queries {
            if state.reached.insert(q) {
                ctx.add_state_bytes(1); // bitmap-encoded reach flag
            }
            for &t in ctx.neighbors() {
                ctx.send(t, ReachMsg { query: q }, 1);
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut BkhsState,
        inbox: &[Delivery<ReachMsg>],
        ctx: &mut Context<'_, ReachMsg>,
    ) {
        absorb_and_forward(state, inbox, ctx, |query, ctx| {
            for &t in ctx.neighbors() {
                ctx.send(t, ReachMsg { query }, 1);
            }
        });
    }

    /// §3: stop after k+1 rounds total (init + k forwarding rounds).
    fn max_rounds(&self) -> Option<usize> {
        Some(self.k as usize)
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

/// Broadcast-interface BKHS (identical semantics; broadcast sends).
#[derive(Debug, Clone)]
pub struct BkhsBroadcastProgram {
    inner: BkhsProgram,
}

impl BkhsBroadcastProgram {
    pub fn new(sources: Vec<VertexId>, k: u32) -> BkhsBroadcastProgram {
        BkhsBroadcastProgram {
            inner: BkhsProgram::new(sources, k),
        }
    }
}

impl VertexProgram for BkhsBroadcastProgram {
    type Message = ReachMsg;
    type State = BkhsState;

    fn message_bytes(&self) -> u64 {
        8 // query only — receivers handle via the broadcast contract
    }

    fn init(&self, v: VertexId, state: &mut BkhsState, ctx: &mut Context<'_, ReachMsg>) {
        let Some(queries) = self.inner.starts.get(&v) else {
            return;
        };
        for &q in queries {
            if state.reached.insert(q) {
                ctx.add_state_bytes(1); // bitmap-encoded reach flag
            }
            ctx.broadcast(ReachMsg { query: q }, 1);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut BkhsState,
        inbox: &[Delivery<ReachMsg>],
        ctx: &mut Context<'_, ReachMsg>,
    ) {
        absorb_and_forward(state, inbox, ctx, |query, ctx| {
            ctx.broadcast(ReachMsg { query }, 1);
        });
    }

    fn max_rounds(&self) -> Option<usize> {
        self.inner.max_rounds()
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

/// Per-query k-hop neighborhood sizes, aggregated from final states.
#[derive(Debug, Clone)]
pub struct BkhsCounts {
    counts: std::collections::BTreeMap<QueryId, u64>,
}

impl BkhsCounts {
    pub fn from_states(states: &[BkhsState]) -> BkhsCounts {
        let mut counts = std::collections::BTreeMap::new();
        for st in states {
            for &q in &st.reached {
                *counts.entry(q).or_insert(0) += 1;
            }
        }
        BkhsCounts { counts }
    }

    /// Number of vertices within k hops of query `q`'s source
    /// (including the source itself).
    pub fn count(&self, q: QueryId) -> u64 {
        self.counts.get(&q).copied().unwrap_or(0)
    }

    /// Vertices reached by query `q`, reconstructed from states.
    pub fn members(states: &[BkhsState], q: QueryId) -> Vec<VertexId> {
        states
            .iter()
            .enumerate()
            .filter(|(_, st)| st.reached.contains(&q))
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_sources_kept_as_queries() {
        let p = BkhsProgram::new(vec![4, 4, 2], 3);
        assert_eq!(p.sources(), &[4, 4, 2]);
        assert_eq!(p.k(), 3);
        assert_eq!(p.max_rounds(), Some(3));
        assert_eq!(p.starts.get(&4).unwrap(), &vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_hops_rejected() {
        BkhsProgram::new(vec![0], 0);
    }

    #[test]
    fn counts_aggregate_states() {
        let mut states = vec![BkhsState::default(); 3];
        states[0].reached.insert(0);
        states[1].reached.insert(0);
        states[2].reached.insert(1);
        let c = BkhsCounts::from_states(&states);
        assert_eq!(c.count(0), 2);
        assert_eq!(c.count(1), 1);
        assert_eq!(c.count(9), 0);
        assert_eq!(BkhsCounts::members(&states, 0), vec![0, 1]);
    }
}
