//! Benchmark vertex programs (§2.3 and §3 of the paper).
//!
//! Three multi-processing benchmark tasks, each in the Pregel
//! (point-to-point) form and, where the paper defines one, the
//! Pregel-Mirror (broadcast) form:
//!
//! * **BPPR** — batch personalized PageRank via α-decay random walks
//!   ([`bppr::BpprProgram`]) and the generalized fractional-walk /
//!   forward-push variant for the broadcast interface
//!   ([`bppr::BpprPushProgram`]).
//! * **MSSP** — multi-source shortest path distances
//!   ([`mssp::MsspProgram`], [`mssp::MsspBroadcastProgram`]).
//! * **BKHS** — batch k-hop search ([`bkhs::BkhsProgram`],
//!   [`bkhs::BkhsBroadcastProgram`]).
//!
//! Each of the three benchmarks ships two state layouts: a dense
//! **slab** kernel (`*SlabProgram`, the production path — per-batch
//! state lives in a [`mtvc_engine::StateSlab`] row per vertex with
//! frontier-driven compute and exact byte accounting) and the original
//! hash-map kernel, kept as benchmarking baseline and independent
//! test oracle. Source-based tasks share a once-per-job
//! [`sources::SourceIndex`] that batches slice instead of rebuilding.
//!
//! Plus classic **PageRank** ([`pagerank::PageRankProgram`]) used by the
//! §4.8 sync-vs-async comparison (Table 4), **Connected Components**
//! ([`cc::ConnectedComponentsProgram`]) — §2.4's example of a task that
//! *does* admit a Practical Pregel Algorithm — and exact sequential
//! references ([`reference`]) the engine implementations are validated
//! against.

pub mod bkhs;
pub mod bppr;
pub mod cc;
pub mod mssp;
pub mod pagerank;
pub mod reference;
pub mod sources;

/// Re-export of the engine's samplers (historically hosted here).
pub mod sampling {
    pub use mtvc_engine::sampling::*;
}

pub use bkhs::{
    BkhsBroadcastProgram, BkhsBroadcastSlabProgram, BkhsLaneSlabProgram, BkhsProgram,
    BkhsSlabProgram, ReachLanesMsg,
};
pub use bppr::{
    BpprProgram, BpprPushLaneSlabProgram, BpprPushProgram, BpprPushSlabProgram, BpprSlabProgram,
    PushCell, PushLanesMsg, SourceSet,
};
pub use cc::ConnectedComponentsProgram;
pub use mssp::{
    DistLanesMsg, DistMsg, MsspBroadcastProgram, MsspBroadcastSlabProgram, MsspLaneSlabProgram,
    MsspProgram, MsspSlabProgram,
};
pub use pagerank::PageRankProgram;
pub use sources::SourceIndex;
