//! Multi-Source Shortest Path distance queries (MSSP).
//!
//! §3 "Pregel (MSSP)": a message `(u, v, d)` announces a length-`d`
//! path from source `u` to `v`; receivers keep the minimum per source
//! and relax their out-edges. The workload is the number of source
//! queries.
//!
//! Queries are addressed by **query id** (index into the source list),
//! not by source vertex: unit tasks are independent, so two queries may
//! share a start vertex and still count (and cost) separately — which
//! also lets a scaled-down graph carry the paper's full query counts.
//!
//! The broadcast (mirror) variant follows §3 "Pregel-Mirror (MSSP)":
//! the message shrinks to `(u, d)` and is broadcast to every neighbor.
//! That form cannot carry per-edge weights, so it computes hop
//! distances (the paper's datasets are unweighted).
//!
//! Two state layouts per variant:
//!
//! * [`MsspSlabProgram`] / [`MsspBroadcastSlabProgram`] — the
//!   production kernels: distances live in a dense
//!   [`StateSlab`](mtvc_engine::StateSlab) row of `W` cells per vertex,
//!   relaxed branchlessly and drained via the frontier bitset. Exact
//!   state accounting, no hashing, no per-compute allocation.
//! * [`MsspProgram`] / [`MsspBroadcastProgram`] — the hash-map
//!   baselines, kept for benchmarking the slab layout against and as
//!   independent oracles in property tests. Message traffic is
//!   bit-identical to the slab kernels.
//!
//! [`MsspLaneSlabProgram`] lane-batches the slab kernel: one
//! [`DistLanesMsg`] relaxes eight adjacent queries per envelope. BKHS
//! and push-BPPR use the same scheme (`ReachLanesMsg`,
//! `PushLanesMsg` in their modules).

use crate::sources::SourceIndex;
use mtvc_engine::wire::{read_varint, varint_len, write_varint};
use mtvc_engine::{
    Context, Delivery, Message, PayloadCodec, SlabProgram, SlabRowMut, VertexProgram, LANES,
};
use mtvc_graph::hash::FastMap;
use mtvc_graph::VertexId;
use std::ops::Range;
use std::sync::Arc;

/// Query id: index into the job's source list.
pub type QueryId = u32;

/// Point-to-point distance message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistMsg {
    pub query: QueryId,
    pub dist: u64,
}

impl Message for DistMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.query as u64)
    }
    fn merge(&mut self, other: &Self) {
        self.dist = self.dist.min(other.dist);
    }
    fn wire_query(&self) -> Option<u64> {
        Some(self.query as u64)
    }
    fn encoded_payload_bytes(&self) -> u64 {
        varint_len(self.dist)
    }
}

impl PayloadCodec for DistMsg {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        write_varint(out, self.dist);
    }
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
        DistMsg {
            query: wire_query.expect("DistMsg always carries a query id") as QueryId,
            dist: read_varint(buf, pos),
        }
    }
}

/// Lane-batched distance message: one envelope relaxes a whole
/// LANES-aligned chunk of the receiver's distance row. `mask` flags
/// which lanes carry a live candidate; unset lanes hold `u64::MAX` and
/// never relax anything. Multiplicity is `mask.count_ones()`, so wire
/// accounting matches the scalar [`DistMsg`] traffic unit for unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistLanesMsg {
    /// Chunk index: lanes cover queries `[chunk*LANES, chunk*LANES+LANES)`.
    pub chunk: u32,
    /// Bit `l` set = lane `l` carries a candidate distance.
    pub mask: u8,
    pub dist: [u64; LANES],
}

impl DistLanesMsg {
    /// Payload units this envelope represents (live lanes).
    pub fn units(&self) -> u64 {
        self.mask.count_ones() as u64
    }
}

impl Message for DistLanesMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.chunk as u64)
    }
    fn merge(&mut self, other: &Self) {
        // Elementwise min; dead lanes are MAX on both sides so the
        // branchless fold needs no mask test.
        self.mask |= other.mask;
        for (a, b) in self.dist.iter_mut().zip(other.dist.iter()) {
            *a = (*a).min(*b);
        }
    }
    fn wire_query(&self) -> Option<u64> {
        Some(self.chunk as u64)
    }
    fn encoded_payload_bytes(&self) -> u64 {
        // Masked accumulation instead of a per-lane branch: the lane
        // occupancy is data-dependent, so testing each bit costs a
        // mispredict per lane on the compact measurement pass.
        let mut bytes = 1; // mask byte
        for l in 0..LANES {
            let set = ((self.mask >> l) & 1) as u64;
            bytes += set * varint_len(self.dist[l]);
        }
        bytes
    }
}

impl PayloadCodec for DistLanesMsg {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(self.mask);
        for l in 0..LANES {
            if self.mask & (1 << l) != 0 {
                write_varint(out, self.dist[l]);
            }
        }
    }
    fn decode_payload(wire_query: Option<u64>, buf: &[u8], pos: &mut usize) -> Self {
        let mask = buf[*pos];
        *pos += 1;
        let mut dist = [u64::MAX; LANES];
        for (l, d) in dist.iter_mut().enumerate() {
            if mask & (1 << l) != 0 {
                *d = read_varint(buf, pos);
            }
        }
        DistLanesMsg {
            chunk: wire_query.expect("DistLanesMsg always carries its chunk") as u32,
            mask,
            dist,
        }
    }
}

/// Per-vertex distances, one entry per query that reached it. The
/// sparse output shape (also what slab runs extract into).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MsspState {
    pub dist: FastMap<QueryId, u64>,
}

/// Weighted multi-source shortest paths for point-to-point systems
/// (hash-map state layout; see module docs).
#[derive(Debug, Clone)]
pub struct MsspProgram {
    index: Arc<SourceIndex>,
    range: Range<usize>,
}

impl MsspProgram {
    /// `sources[q]` is the start vertex of query `q`. Duplicates are
    /// legal (independent unit tasks).
    pub fn new(sources: Vec<VertexId>) -> MsspProgram {
        let range = 0..sources.len();
        MsspProgram {
            index: SourceIndex::shared(sources),
            range,
        }
    }

    /// One batch of a job-wide [`SourceIndex`]: queries
    /// `[range.start, range.end)`, addressed by batch-local id.
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>) -> MsspProgram {
        assert!(range.end <= index.len(), "batch range exceeds source pool");
        MsspProgram { index, range }
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.index.sources()[self.range.clone()]
    }

    pub fn num_queries(&self) -> usize {
        self.range.len()
    }
}

fn improve(state: &mut MsspState, query: QueryId, dist: u64) -> bool {
    match state.dist.get_mut(&query) {
        Some(cur) if *cur <= dist => false,
        Some(cur) => {
            *cur = dist;
            true
        }
        None => {
            state.dist.insert(query, dist);
            true
        }
    }
}

impl VertexProgram for MsspProgram {
    type Message = DistMsg;
    type State = MsspState;

    fn message_bytes(&self) -> u64 {
        20 // (source, target, dist) — three integers as in §3
    }

    fn init(&self, v: VertexId, state: &mut MsspState, ctx: &mut Context<'_, DistMsg>) {
        for q in self.index.batch_queries_at(v, &self.range) {
            improve(state, q, 0);
            // `weighted_neighbors` borrows only the graph, so the edge
            // walk interleaves with `send` without materializing a Vec.
            for (t, w) in ctx.weighted_neighbors() {
                ctx.send(
                    t,
                    DistMsg {
                        query: q,
                        dist: w as u64,
                    },
                    1,
                );
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut MsspState,
        inbox: &[Delivery<DistMsg>],
        ctx: &mut Context<'_, DistMsg>,
    ) {
        // Receiver-side aggregation: keep the best candidate per query
        // ("if there are multiple messages that have the same source and
        // target, only the message with the smallest length is
        // retained" — §3).
        let mut best: FastMap<QueryId, u64> = FastMap::default();
        for d in inbox {
            best.entry(d.msg.query)
                .and_modify(|x| *x = (*x).min(d.msg.dist))
                .or_insert(d.msg.dist);
        }
        let mut improved: Vec<(QueryId, u64)> = Vec::new();
        for (query, dist) in best {
            if improve(state, query, dist) {
                improved.push((query, dist));
            }
        }
        improved.sort_unstable(); // deterministic send order
        for (query, dist) in improved {
            for (t, w) in ctx.weighted_neighbors() {
                ctx.send(
                    t,
                    DistMsg {
                        query,
                        dist: dist + w as u64,
                    },
                    1,
                );
            }
        }
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

/// Broadcast-interface MSSP (hop distances; hash-map baseline).
#[derive(Debug, Clone)]
pub struct MsspBroadcastProgram {
    index: Arc<SourceIndex>,
    range: Range<usize>,
}

impl MsspBroadcastProgram {
    pub fn new(sources: Vec<VertexId>) -> MsspBroadcastProgram {
        let range = 0..sources.len();
        MsspBroadcastProgram {
            index: SourceIndex::shared(sources),
            range,
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>) -> MsspBroadcastProgram {
        assert!(range.end <= index.len(), "batch range exceeds source pool");
        MsspBroadcastProgram { index, range }
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.index.sources()[self.range.clone()]
    }
}

impl VertexProgram for MsspBroadcastProgram {
    type Message = DistMsg;
    type State = MsspState;

    fn message_bytes(&self) -> u64 {
        12 // (source, dist) — the slimmer broadcast message of §3
    }

    fn init(&self, v: VertexId, state: &mut MsspState, ctx: &mut Context<'_, DistMsg>) {
        for q in self.index.batch_queries_at(v, &self.range) {
            improve(state, q, 0);
            ctx.broadcast(DistMsg { query: q, dist: 0 }, 1);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut MsspState,
        inbox: &[Delivery<DistMsg>],
        ctx: &mut Context<'_, DistMsg>,
    ) {
        let mut best: FastMap<QueryId, u64> = FastMap::default();
        for d in inbox {
            // The sender broadcast its own distance; one hop further.
            let cand = d.msg.dist + 1;
            best.entry(d.msg.query)
                .and_modify(|x| *x = (*x).min(cand))
                .or_insert(cand);
        }
        let mut improved: Vec<(QueryId, u64)> = Vec::new();
        for (query, dist) in best {
            if improve(state, query, dist) {
                improved.push((query, dist));
            }
        }
        improved.sort_unstable();
        for (query, dist) in improved {
            ctx.broadcast(DistMsg { query, dist }, 1);
        }
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

// ---------------------------------------------------------------------
// Slab kernels
// ---------------------------------------------------------------------

/// Extract the sparse [`MsspState`] from a dense distance row —
/// untouched cells hold `u64::MAX`.
fn extract_dists(row: &[u64]) -> MsspState {
    let mut state = MsspState::default();
    for (q, &d) in row.iter().enumerate() {
        if d != u64::MAX {
            state.dist.insert(q as QueryId, d);
        }
    }
    state
}

/// Weighted point-to-point MSSP on a dense state slab: one `u64`
/// distance cell per `(vertex, query)`, branchless min-relax per
/// delivery, frontier-driven edge relaxation. Message traffic is
/// bit-identical to [`MsspProgram`].
#[derive(Debug, Clone)]
pub struct MsspSlabProgram {
    index: Arc<SourceIndex>,
    range: Range<usize>,
}

impl MsspSlabProgram {
    pub fn new(sources: Vec<VertexId>) -> MsspSlabProgram {
        let range = 0..sources.len();
        MsspSlabProgram {
            index: SourceIndex::shared(sources),
            range,
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>) -> MsspSlabProgram {
        assert!(range.end <= index.len(), "batch range exceeds source pool");
        MsspSlabProgram { index, range }
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.index.sources()[self.range.clone()]
    }

    pub fn num_queries(&self) -> usize {
        self.range.len()
    }
}

impl SlabProgram for MsspSlabProgram {
    type Message = DistMsg;
    type Cell = u64;
    type Out = MsspState;

    fn width(&self) -> usize {
        self.range.len()
    }

    fn empty_cell(&self) -> u64 {
        u64::MAX
    }

    fn message_bytes(&self) -> u64 {
        20 // same wire format as the hash-map baseline
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u64>, ctx: &mut Context<'_, DistMsg>) {
        for q in self.index.batch_queries_at(v, &self.range) {
            row.set(q as usize, 0);
            for (t, w) in ctx.weighted_neighbors() {
                ctx.send(
                    t,
                    DistMsg {
                        query: q,
                        dist: w as u64,
                    },
                    1,
                );
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u64>,
        inbox: &[Delivery<DistMsg>],
        ctx: &mut Context<'_, DistMsg>,
    ) {
        // Min-relax straight into the row — no scratch map, no
        // allocation; the frontier remembers which cells improved.
        for d in inbox {
            row.relax_min(d.msg.query as usize, d.msg.dist);
        }
        // Drain ascending by query id: the same deterministic send
        // order the baseline's sort produces.
        row.drain(|q, dist| {
            let dist = *dist;
            for (t, w) in ctx.weighted_neighbors() {
                ctx.send(
                    t,
                    DistMsg {
                        query: q as QueryId,
                        dist: dist + w as u64,
                    },
                    1,
                );
            }
        });
    }

    fn extract(&self, _v: VertexId, row: &[u64]) -> MsspState {
        extract_dists(row)
    }
}

/// Relax out-edges for every improved chunk of `row`, one lane-batched
/// message per (chunk, edge). Shared by init and compute so both emit
/// the identical traffic shape.
fn send_improved_chunks(row: &mut SlabRowMut<'_, u64>, ctx: &mut Context<'_, DistLanesMsg>) {
    row.drain_chunks(|chunk, mask, cells| {
        let units = mask.count_ones() as u64;
        // Masked chunk snapshot, built once; dead lanes stay at MAX
        // and saturating_add keeps them there, so the per-edge loop
        // below is branchless and fixed-width (autovectorizes).
        let mut base = [u64::MAX; LANES];
        for (l, &c) in cells.iter().enumerate() {
            if mask & (1 << l) != 0 {
                base[l] = c;
            }
        }
        for (t, w) in ctx.weighted_neighbors() {
            let w = w as u64;
            let mut dist = base;
            for d in dist.iter_mut() {
                *d = d.saturating_add(w);
            }
            ctx.send(
                t,
                DistLanesMsg {
                    chunk: chunk as u32,
                    mask,
                    dist,
                },
                units,
            );
        }
    });
}

/// Weighted point-to-point MSSP with **lane-batched** messages and
/// chunk-vectorized relaxation: deliveries relax eight query lanes at
/// a time ([`SlabRowMut::relax_min_lanes`]) and the frontier drains by
/// chunk ([`StateSlab::drain_chunks`]), so one envelope per (chunk,
/// edge) replaces up to eight scalar [`DistMsg`]s. Payload units
/// (envelope multiplicity) equal the scalar program's message count,
/// so `sent_wire` — and therefore the cost model's traffic — is
/// bit-identical to [`MsspSlabProgram`]; final distances are pinned
/// equal by property tests.
///
/// [`StateSlab::drain_chunks`]: mtvc_engine::StateSlab
#[derive(Debug, Clone)]
pub struct MsspLaneSlabProgram {
    index: Arc<SourceIndex>,
    range: Range<usize>,
}

impl MsspLaneSlabProgram {
    pub fn new(sources: Vec<VertexId>) -> MsspLaneSlabProgram {
        let range = 0..sources.len();
        MsspLaneSlabProgram {
            index: SourceIndex::shared(sources),
            range,
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>) -> MsspLaneSlabProgram {
        assert!(range.end <= index.len(), "batch range exceeds source pool");
        MsspLaneSlabProgram { index, range }
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.index.sources()[self.range.clone()]
    }

    pub fn num_queries(&self) -> usize {
        self.range.len()
    }
}

impl SlabProgram for MsspLaneSlabProgram {
    type Message = DistLanesMsg;
    type Cell = u64;
    type Out = MsspState;

    fn width(&self) -> usize {
        self.range.len()
    }

    fn empty_cell(&self) -> u64 {
        u64::MAX
    }

    fn message_bytes(&self) -> u64 {
        20 // per payload unit — same wire estimate as the scalar kernel
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u64>, ctx: &mut Context<'_, DistLanesMsg>) {
        let mut any = false;
        for q in self.index.batch_queries_at(v, &self.range) {
            // relax (not set) so the frontier records the lane and the
            // drain below emits it.
            row.relax_min(q as usize, 0);
            any = true;
        }
        if any {
            send_improved_chunks(&mut row, ctx);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u64>,
        inbox: &[Delivery<DistLanesMsg>],
        ctx: &mut Context<'_, DistLanesMsg>,
    ) {
        for d in inbox {
            row.relax_min_lanes(d.msg.chunk as usize * LANES, &d.msg.dist);
        }
        send_improved_chunks(&mut row, ctx);
    }

    fn extract(&self, _v: VertexId, row: &[u64]) -> MsspState {
        extract_dists(row)
    }
}

/// Broadcast-interface MSSP on a dense state slab (hop distances).
/// Traffic-identical to [`MsspBroadcastProgram`].
#[derive(Debug, Clone)]
pub struct MsspBroadcastSlabProgram {
    index: Arc<SourceIndex>,
    range: Range<usize>,
}

impl MsspBroadcastSlabProgram {
    pub fn new(sources: Vec<VertexId>) -> MsspBroadcastSlabProgram {
        let range = 0..sources.len();
        MsspBroadcastSlabProgram {
            index: SourceIndex::shared(sources),
            range,
        }
    }

    /// One batch of a job-wide [`SourceIndex`].
    pub fn batch(index: Arc<SourceIndex>, range: Range<usize>) -> MsspBroadcastSlabProgram {
        assert!(range.end <= index.len(), "batch range exceeds source pool");
        MsspBroadcastSlabProgram { index, range }
    }
}

impl SlabProgram for MsspBroadcastSlabProgram {
    type Message = DistMsg;
    type Cell = u64;
    type Out = MsspState;

    fn width(&self) -> usize {
        self.range.len()
    }

    fn empty_cell(&self) -> u64 {
        u64::MAX
    }

    fn message_bytes(&self) -> u64 {
        12
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u64>, ctx: &mut Context<'_, DistMsg>) {
        for q in self.index.batch_queries_at(v, &self.range) {
            row.set(q as usize, 0);
            ctx.broadcast(DistMsg { query: q, dist: 0 }, 1);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u64>,
        inbox: &[Delivery<DistMsg>],
        ctx: &mut Context<'_, DistMsg>,
    ) {
        for d in inbox {
            // The sender broadcast its own distance; one hop further.
            row.relax_min(d.msg.query as usize, d.msg.dist + 1);
        }
        row.drain(|q, dist| {
            ctx.broadcast(
                DistMsg {
                    query: q as QueryId,
                    dist: *dist,
                },
                1,
            );
        });
    }

    fn extract(&self, _v: VertexId, row: &[u64]) -> MsspState {
        extract_dists(row)
    }
}

/// Final distances reconstructed from per-vertex states.
#[derive(Debug, Clone)]
pub struct MsspDistances {
    states: Vec<MsspState>,
}

impl MsspDistances {
    pub fn new(states: Vec<MsspState>) -> MsspDistances {
        MsspDistances { states }
    }

    /// Distance of query `q` to `target` (`None` = unreachable).
    pub fn dist(&self, q: QueryId, target: VertexId) -> Option<u64> {
        self.states[target as usize].dist.get(&q).copied()
    }

    /// Total `(query, vertex)` pairs discovered — the residual-memory
    /// driver for MSSP batches.
    pub fn total_entries(&self) -> u64 {
        self.states.iter().map(|s| s.dist.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_msg_merges_to_min() {
        let mut a = DistMsg { query: 1, dist: 9 };
        a.merge(&DistMsg { query: 1, dist: 4 });
        assert_eq!(a.dist, 4);
        a.merge(&DistMsg { query: 1, dist: 7 });
        assert_eq!(a.dist, 4);
    }

    #[test]
    fn duplicate_sources_are_distinct_queries() {
        let p = MsspProgram::new(vec![9, 3, 9]);
        assert_eq!(p.num_queries(), 3);
        assert_eq!(p.sources(), &[9, 3, 9]);
        // Vertex 9 starts queries 0 and 2.
        assert_eq!(p.index.queries_at(9), &[0, 2]);
    }

    #[test]
    fn batch_programs_slice_a_shared_index() {
        let index = SourceIndex::shared(vec![4, 7, 4, 2]);
        let b = MsspProgram::batch(Arc::clone(&index), 1..3);
        assert_eq!(b.sources(), &[7, 4]);
        assert_eq!(b.num_queries(), 2);
        let s = MsspSlabProgram::batch(index, 1..3);
        assert_eq!(s.sources(), &[7, 4]);
        assert_eq!(s.width(), 2);
    }

    #[test]
    fn message_sizes_differ_between_variants() {
        let p2p = MsspProgram::new(vec![0]);
        let bc = MsspBroadcastProgram::new(vec![0]);
        assert!(bc.message_bytes() < p2p.message_bytes());
        assert_eq!(
            SlabProgram::message_bytes(&MsspSlabProgram::new(vec![0])),
            VertexProgram::message_bytes(&p2p)
        );
    }

    #[test]
    fn lane_msg_merge_is_masked_elementwise_min() {
        let mut a = DistLanesMsg {
            chunk: 3,
            mask: 0b0000_0101,
            dist: [
                7,
                u64::MAX,
                9,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
            ],
        };
        let b = DistLanesMsg {
            chunk: 3,
            mask: 0b0000_0110,
            dist: [
                u64::MAX,
                4,
                5,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
            ],
        };
        a.merge(&b);
        assert_eq!(a.mask, 0b0000_0111);
        assert_eq!(&a.dist[..3], &[7, 4, 5]);
        assert_eq!(a.units(), 3);
    }

    #[test]
    fn lane_msg_codec_roundtrips() {
        use mtvc_engine::wire::{encode_bucket, measure_bucket};
        use mtvc_engine::Envelope;
        let msg = DistLanesMsg {
            chunk: 9,
            mask: 0b1000_0010,
            dist: [
                u64::MAX,
                300,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                u64::MAX,
                2,
            ],
        };
        // mask byte + varint(300)=2 + varint(2)=1
        assert_eq!(msg.encoded_payload_bytes(), 4);
        let envs = vec![Envelope::new(5, msg, 2)];
        let buf = encode_bucket(&envs, |v| v);
        assert_eq!(buf.len() as u64, measure_bucket(&envs, |v| v));
        let back = mtvc_engine::wire::decode_bucket::<DistLanesMsg>(&buf, |li| li as VertexId);
        assert_eq!(back, envs);
    }

    #[test]
    fn extract_skips_untouched_cells() {
        let st = extract_dists(&[u64::MAX, 5, u64::MAX, 0]);
        assert_eq!(st.dist.len(), 2);
        assert_eq!(st.dist.get(&1), Some(&5));
        assert_eq!(st.dist.get(&3), Some(&0));
    }
}
