//! Multi-Source Shortest Path distance queries (MSSP).
//!
//! §3 "Pregel (MSSP)": a message `(u, v, d)` announces a length-`d`
//! path from source `u` to `v`; receivers keep the minimum per source
//! and relax their out-edges. The workload is the number of source
//! queries.
//!
//! Queries are addressed by **query id** (index into the source list),
//! not by source vertex: unit tasks are independent, so two queries may
//! share a start vertex and still count (and cost) separately — which
//! also lets a scaled-down graph carry the paper's full query counts.
//!
//! The broadcast (mirror) variant follows §3 "Pregel-Mirror (MSSP)":
//! the message shrinks to `(u, d)` and is broadcast to every neighbor.
//! That form cannot carry per-edge weights, so it computes hop
//! distances (the paper's datasets are unweighted).

use mtvc_engine::{Context, Delivery, Message, VertexProgram};
use mtvc_graph::hash::FastMap;
use mtvc_graph::VertexId;

/// Query id: index into the job's source list.
pub type QueryId = u32;

/// Point-to-point distance message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistMsg {
    pub query: QueryId,
    pub dist: u64,
}

impl Message for DistMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(self.query as u64)
    }
    fn merge(&mut self, other: &Self) {
        self.dist = self.dist.min(other.dist);
    }
}

/// Per-vertex distances, one entry per query that reached it.
#[derive(Debug, Clone, Default)]
pub struct MsspState {
    pub dist: FastMap<QueryId, u64>,
}

/// Map from start vertex to the queries starting there.
fn queries_by_vertex(sources: &[VertexId]) -> FastMap<VertexId, Vec<QueryId>> {
    let mut map: FastMap<VertexId, Vec<QueryId>> = FastMap::default();
    for (q, &v) in sources.iter().enumerate() {
        map.entry(v).or_default().push(q as QueryId);
    }
    map
}

/// Weighted multi-source shortest paths for point-to-point systems.
#[derive(Debug, Clone)]
pub struct MsspProgram {
    sources: Vec<VertexId>,
    starts: FastMap<VertexId, Vec<QueryId>>,
}

impl MsspProgram {
    /// `sources[q]` is the start vertex of query `q`. Duplicates are
    /// legal (independent unit tasks).
    pub fn new(sources: Vec<VertexId>) -> MsspProgram {
        let starts = queries_by_vertex(&sources);
        MsspProgram { sources, starts }
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    pub fn num_queries(&self) -> usize {
        self.sources.len()
    }
}

fn improve(
    state: &mut MsspState,
    query: QueryId,
    dist: u64,
    ctx: &mut Context<'_, DistMsg>,
) -> bool {
    match state.dist.get_mut(&query) {
        Some(cur) if *cur <= dist => false,
        Some(cur) => {
            *cur = dist;
            true
        }
        None => {
            state.dist.insert(query, dist);
            ctx.add_state_bytes(16);
            true
        }
    }
}

impl VertexProgram for MsspProgram {
    type Message = DistMsg;
    type State = MsspState;

    fn message_bytes(&self) -> u64 {
        20 // (source, target, dist) — three integers as in §3
    }

    fn init(&self, v: VertexId, state: &mut MsspState, ctx: &mut Context<'_, DistMsg>) {
        let Some(queries) = self.starts.get(&v) else {
            return;
        };
        for &q in queries {
            improve(state, q, 0, ctx);
            // `weighted_neighbors` borrows only the graph, so the edge
            // walk interleaves with `send` without materializing a Vec.
            for (t, w) in ctx.weighted_neighbors() {
                ctx.send(
                    t,
                    DistMsg {
                        query: q,
                        dist: w as u64,
                    },
                    1,
                );
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut MsspState,
        inbox: &[Delivery<DistMsg>],
        ctx: &mut Context<'_, DistMsg>,
    ) {
        // Receiver-side aggregation: keep the best candidate per query
        // ("if there are multiple messages that have the same source and
        // target, only the message with the smallest length is
        // retained" — §3).
        let mut best: FastMap<QueryId, u64> = FastMap::default();
        for d in inbox {
            best.entry(d.msg.query)
                .and_modify(|x| *x = (*x).min(d.msg.dist))
                .or_insert(d.msg.dist);
        }
        let mut improved: Vec<(QueryId, u64)> = Vec::new();
        for (query, dist) in best {
            if improve(state, query, dist, ctx) {
                improved.push((query, dist));
            }
        }
        improved.sort_unstable(); // deterministic send order
        for (query, dist) in improved {
            for (t, w) in ctx.weighted_neighbors() {
                ctx.send(
                    t,
                    DistMsg {
                        query,
                        dist: dist + w as u64,
                    },
                    1,
                );
            }
        }
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

/// Broadcast-interface MSSP (hop distances; see module docs).
#[derive(Debug, Clone)]
pub struct MsspBroadcastProgram {
    sources: Vec<VertexId>,
    starts: FastMap<VertexId, Vec<QueryId>>,
}

impl MsspBroadcastProgram {
    pub fn new(sources: Vec<VertexId>) -> MsspBroadcastProgram {
        let starts = queries_by_vertex(&sources);
        MsspBroadcastProgram { sources, starts }
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }
}

impl VertexProgram for MsspBroadcastProgram {
    type Message = DistMsg;
    type State = MsspState;

    fn message_bytes(&self) -> u64 {
        12 // (source, dist) — the slimmer broadcast message of §3
    }

    fn init(&self, v: VertexId, state: &mut MsspState, ctx: &mut Context<'_, DistMsg>) {
        let Some(queries) = self.starts.get(&v) else {
            return;
        };
        for &q in queries {
            improve(state, q, 0, ctx);
            ctx.broadcast(DistMsg { query: q, dist: 0 }, 1);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut MsspState,
        inbox: &[Delivery<DistMsg>],
        ctx: &mut Context<'_, DistMsg>,
    ) {
        let mut best: FastMap<QueryId, u64> = FastMap::default();
        for d in inbox {
            // The sender broadcast its own distance; one hop further.
            let cand = d.msg.dist + 1;
            best.entry(d.msg.query)
                .and_modify(|x| *x = (*x).min(cand))
                .or_insert(cand);
        }
        let mut improved: Vec<(QueryId, u64)> = Vec::new();
        for (query, dist) in best {
            if improve(state, query, dist, ctx) {
                improved.push((query, dist));
            }
        }
        improved.sort_unstable();
        for (query, dist) in improved {
            ctx.broadcast(DistMsg { query, dist }, 1);
        }
    }

    fn initial_state_bytes(&self) -> u64 {
        48
    }
}

/// Final distances reconstructed from per-vertex states.
#[derive(Debug, Clone)]
pub struct MsspDistances {
    states: Vec<MsspState>,
}

impl MsspDistances {
    pub fn new(states: Vec<MsspState>) -> MsspDistances {
        MsspDistances { states }
    }

    /// Distance of query `q` to `target` (`None` = unreachable).
    pub fn dist(&self, q: QueryId, target: VertexId) -> Option<u64> {
        self.states[target as usize].dist.get(&q).copied()
    }

    /// Total `(query, vertex)` pairs discovered — the residual-memory
    /// driver for MSSP batches.
    pub fn total_entries(&self) -> u64 {
        self.states.iter().map(|s| s.dist.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_msg_merges_to_min() {
        let mut a = DistMsg { query: 1, dist: 9 };
        a.merge(&DistMsg { query: 1, dist: 4 });
        assert_eq!(a.dist, 4);
        a.merge(&DistMsg { query: 1, dist: 7 });
        assert_eq!(a.dist, 4);
    }

    #[test]
    fn duplicate_sources_are_distinct_queries() {
        let p = MsspProgram::new(vec![9, 3, 9]);
        assert_eq!(p.num_queries(), 3);
        assert_eq!(p.sources(), &[9, 3, 9]);
        // Vertex 9 starts queries 0 and 2.
        assert_eq!(p.starts.get(&9).unwrap(), &vec![0, 2]);
    }

    #[test]
    fn message_sizes_differ_between_variants() {
        let p2p = MsspProgram::new(vec![0]);
        let bc = MsspBroadcastProgram::new(vec![0]);
        assert!(bc.message_bytes() < p2p.message_bytes());
    }
}
