//! Exact sequential references for the probabilistic tasks.
//!
//! [`exact_ppr`] computes the α-decay-walk stationary stop distribution
//! by power iteration — the quantity the Monte-Carlo BPPR estimator is
//! unbiased for. [`exact_pagerank`] iterates the same recurrence the
//! Pregel PageRank program implements. Both are used by validation
//! tests and by the examples to report estimate quality.

use mtvc_graph::{Graph, VertexId};

/// Exact stop distribution of an α-decay random walk from `source`:
/// `ppr[v]` = probability the walk stops at `v`. Walks stop with
/// probability α per step and are absorbed at dangling vertices (the
/// same semantics the engine task uses).
pub fn exact_ppr(g: &Graph, source: VertexId, alpha: f64) -> Vec<f64> {
    let n = g.num_vertices();
    let mut current = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    let mut acc = vec![0.0f64; n];
    current[source as usize] = 1.0;
    let mut moving_mass = 1.0;
    // Geometric decay: bound iterations by the mass threshold.
    while moving_mass > 1e-12 {
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in 0..n {
            let p = current[v];
            if p <= 0.0 {
                continue;
            }
            let d = g.degree(v as VertexId);
            if d == 0 {
                acc[v] += p; // absorbed
            } else {
                acc[v] += alpha * p;
                let share = (1.0 - alpha) * p / d as f64;
                for &t in g.neighbors(v as VertexId) {
                    next[t as usize] += share;
                }
            }
        }
        std::mem::swap(&mut current, &mut next);
        moving_mass = current.iter().sum();
    }
    acc
}

/// Exact fixed-iteration PageRank with the same dangling-leak semantics
/// as [`crate::PageRankProgram`] (dangling mass vanishes).
pub fn exact_pagerank(g: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let mut incoming = vec![0.0f64; n];
    // Pregel semantics: a vertex with no incoming messages never
    // recomputes. Vertices with zero in-degree therefore keep their
    // initial rank, exactly as the engine behaves.
    let mut in_degree = vec![0u32; n];
    for v in 0..n {
        for &t in g.neighbors(v as VertexId) {
            in_degree[t as usize] += 1;
        }
    }
    for _ in 0..iterations {
        incoming.iter_mut().for_each(|x| *x = 0.0);
        for (v, &rv) in rank.iter().enumerate() {
            let d = g.degree(v as VertexId);
            if d > 0 {
                let share = rv / d as f64;
                for &t in g.neighbors(v as VertexId) {
                    incoming[t as usize] += share;
                }
            }
        }
        for (v, r) in rank.iter_mut().enumerate() {
            if in_degree[v] > 0 {
                *r = (1.0 - damping) / n as f64 + damping * incoming[v];
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    #[test]
    fn ppr_sums_to_one() {
        let g = generators::power_law(100, 400, 2.3, 1);
        let p = exact_ppr(&g, 0, 0.2);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn ppr_on_isolated_vertex_is_delta() {
        let g = Graph::empty(3);
        let p = exact_ppr(&g, 1, 0.2);
        assert_eq!(p, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn ppr_mass_concentrates_near_source() {
        let g = generators::ring(50, true);
        let p = exact_ppr(&g, 10, 0.3);
        // The source should hold the largest stop probability.
        let max_idx = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 10);
        assert!(p[10] > p[12]);
    }

    #[test]
    fn pagerank_uniform_on_regular_graph() {
        let g = generators::ring(20, true);
        let r = exact_pagerank(&g, 0.85, 40);
        for (v, rv) in r.iter().enumerate() {
            assert!((rv - 0.05).abs() < 1e-9, "rank[{v}] = {rv}");
        }
    }

    #[test]
    fn pagerank_hub_outranks_leaves() {
        let g = generators::star(11);
        let r = exact_pagerank(&g, 0.85, 50);
        assert!(r[0] > 3.0 * r[1]);
    }
}
