//! Connected Components (HashMin label propagation).
//!
//! §2.4 cites Connected Components as a task for which a Practical
//! Pregel Algorithm *does* exist (Yan et al.) — the counterpoint to the
//! multi-processing tasks that cannot satisfy the PPA bounds. Each
//! vertex repeatedly adopts the minimum label seen among itself and its
//! neighbors; on graphs with small diameter this converges in few
//! rounds with O(d(v)) communication per vertex per round.

use mtvc_engine::{Context, Delivery, Message, VertexProgram};
use mtvc_graph::VertexId;

/// Label message: the sender's current component label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelMsg {
    pub label: VertexId,
}

impl Message for LabelMsg {
    fn combine_key(&self) -> Option<u64> {
        Some(0) // all labels to a vertex combine to the minimum
    }
    fn merge(&mut self, other: &Self) {
        self.label = self.label.min(other.label);
    }
}

/// Per-vertex state: the smallest vertex id seen in its component.
#[derive(Debug, Clone)]
pub struct CcState {
    pub label: VertexId,
}

impl Default for CcState {
    fn default() -> Self {
        CcState {
            label: VertexId::MAX,
        }
    }
}

/// HashMin connected components.
#[derive(Debug, Clone, Default)]
pub struct ConnectedComponentsProgram;

impl VertexProgram for ConnectedComponentsProgram {
    type Message = LabelMsg;
    type State = CcState;

    fn message_bytes(&self) -> u64 {
        8
    }

    fn init(&self, v: VertexId, state: &mut CcState, ctx: &mut Context<'_, LabelMsg>) {
        state.label = v;
        for &t in ctx.neighbors() {
            ctx.send(t, LabelMsg { label: v }, 1);
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        state: &mut CcState,
        inbox: &[Delivery<LabelMsg>],
        ctx: &mut Context<'_, LabelMsg>,
    ) {
        let best = inbox.iter().map(|d| d.msg.label).min().unwrap();
        if best < state.label {
            state.label = best;
            for &t in ctx.neighbors() {
                ctx.send(t, LabelMsg { label: best }, 1);
            }
        }
    }
}

/// Extract component labels from final states.
pub fn labels(states: &[CcState]) -> Vec<VertexId> {
    states.iter().map(|s| s.label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_cluster::ClusterSpec;
    use mtvc_engine::{EngineConfig, Runner, SystemProfile};
    use mtvc_graph::partition::HashPartitioner;
    use mtvc_graph::{generators, reference, GraphBuilder};
    use mtvc_metrics::SimTime;

    fn run_cc(g: &mtvc_graph::Graph, machines: usize) -> Vec<VertexId> {
        let mut cfg = EngineConfig::new(ClusterSpec::galaxy(machines), SystemProfile::base("cc"));
        cfg.cutoff = SimTime::secs(1e12);
        let runner = Runner::new(g, &HashPartitioner::default(), cfg);
        let result = runner.run(&ConnectedComponentsProgram);
        assert!(result.outcome.is_completed());
        labels(&result.states)
    }

    #[test]
    fn matches_union_find_reference() {
        let mut b = GraphBuilder::new(9).undirected(true);
        for &(u, v) in &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let got = run_cc(&g, 3);
        let want = reference::weakly_connected_components(&g);
        assert_eq!(got, want);
        // Isolated vertex keeps its own label.
        assert_eq!(got[8], 8);
    }

    #[test]
    fn random_graph_components_agree() {
        let g = generators::erdos_renyi(200, 150, 17); // sparse, many CCs
        let got = run_cc(&g, 4);
        let want = reference::weakly_connected_components(&g);
        assert_eq!(got, want);
    }

    #[test]
    fn label_messages_combine_to_min() {
        let mut a = LabelMsg { label: 9 };
        a.merge(&LabelMsg { label: 3 });
        assert_eq!(a.label, 3);
    }
}
