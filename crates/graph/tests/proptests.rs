//! Property-based tests for the graph substrate.

use mtvc_graph::partition::{
    EdgeBalancedPartitioner, HashPartitioner, Partitioner, RangePartitioner,
};
use mtvc_graph::{generators, GraphBuilder, VertexId};
use proptest::prelude::*;

/// Arbitrary edge list over `n` vertices.
fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n as u32, 0..n as u32), 0..max_edges)
}

proptest! {
    #[test]
    fn builder_degree_sum_equals_edge_count(list in edges(40, 200)) {
        let mut b = GraphBuilder::new(40);
        for &(s, d) in &list {
            b.add_edge(s, d);
        }
        let g = b.build();
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_edges());
    }

    #[test]
    fn builder_neighbors_sorted_and_deduped(list in edges(30, 150)) {
        let mut b = GraphBuilder::new(30);
        for &(s, d) in &list {
            b.add_edge(s, d);
        }
        let g = b.build();
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1], "neighbors must be strictly sorted");
            }
            prop_assert!(!nbrs.contains(&v), "self loops dropped by default");
        }
    }

    #[test]
    fn undirected_graphs_are_symmetric(list in edges(25, 120)) {
        let mut b = GraphBuilder::new(25).undirected(true);
        for &(s, d) in &list {
            b.add_edge(s, d);
        }
        let g = b.build();
        for v in g.vertices() {
            for &t in g.neighbors(v) {
                prop_assert!(
                    g.neighbors(t).contains(&v),
                    "missing reverse edge {t}->{v}"
                );
            }
        }
    }

    #[test]
    fn partitions_cover_every_vertex_exactly_once(
        n in 1usize..400,
        workers in 1usize..16,
        salt in any::<u64>(),
    ) {
        let g = generators::ring(n.max(3), true);
        let partitioners: [&dyn Partitioner; 3] = [
            &HashPartitioner { salt },
            &RangePartitioner,
            &EdgeBalancedPartitioner,
        ];
        for p in partitioners {
            let part = p.partition(&g, workers);
            prop_assert_eq!(part.num_workers(), workers);
            let sizes = part.worker_sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), g.num_vertices());
            let lists = part.worker_vertices();
            let mut seen = vec![false; g.num_vertices()];
            for (w, list) in lists.iter().enumerate() {
                for &v in list {
                    prop_assert_eq!(part.owner_of(v) as usize, w);
                    prop_assert!(!seen[v as usize]);
                    seen[v as usize] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|x| x));
        }
    }

    #[test]
    fn cut_fraction_is_a_fraction(
        n in 4usize..120,
        workers in 1usize..9,
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi(n, n * 2, seed);
        let part = HashPartitioner { salt: seed }.partition(&g, workers);
        let cut = part.cut_fraction(&g);
        prop_assert!((0.0..=1.0).contains(&cut));
        if workers == 1 {
            prop_assert_eq!(cut, 0.0);
        }
    }

    #[test]
    fn generated_graph_stats_internally_consistent(
        n in 8usize..200,
        m in 8usize..400,
        seed in any::<u64>(),
    ) {
        let g = generators::power_law(n, m, 2.3, seed);
        let stats = mtvc_graph::DegreeStats::of(&g);
        prop_assert_eq!(stats.num_vertices, g.num_vertices());
        prop_assert_eq!(stats.num_edges, g.num_edges());
        prop_assert!(stats.min_degree <= stats.max_degree);
        prop_assert!(stats.p99_degree <= stats.max_degree);
        let hist = mtvc_graph::stats::degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn bfs_levels_respect_triangle_inequality(
        n in 4usize..80,
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi(n, n * 3, seed);
        let levels = mtvc_graph::reference::bfs_levels(&g, 0);
        for v in g.vertices() {
            if levels[v as usize] == u32::MAX {
                continue;
            }
            for &t in g.neighbors(v) {
                prop_assert!(
                    levels[t as usize] <= levels[v as usize] + 1,
                    "BFS level jump across edge {v}->{t}"
                );
            }
        }
    }

    #[test]
    fn dijkstra_dominated_by_hop_count_times_max_weight(
        n in 4usize..60,
        seed in any::<u64>(),
    ) {
        let base = generators::erdos_renyi(n, n * 3, seed);
        let g = generators::with_random_weights(&base, 1, 5, seed ^ 1);
        let hops = mtvc_graph::reference::bfs_levels(&g, 0);
        let dist = mtvc_graph::reference::dijkstra(&g, 0);
        for v in 0..n {
            match (hops[v], dist[v]) {
                (u32::MAX, d) => prop_assert_eq!(d, u64::MAX),
                (h, d) => {
                    prop_assert!(d >= h as u64, "distance below hop count");
                    prop_assert!(d <= h as u64 * 5, "distance above hops*max_weight");
                }
            }
        }
    }
}

/// Mirrored vertices must route strictly fewer or equal wire bytes than
/// per-neighbor broadcast would (checked structurally on the index).
#[test]
fn mirror_index_never_exceeds_neighbor_count() {
    let g = generators::power_law(300, 1500, 2.2, 9);
    let part = HashPartitioner::default().partition(&g, 8);
    let idx = mtvc_engine_free_mirror_check(&g, &part);
    for v in g.vertices() {
        if let Some(wires) = idx.get(&v) {
            assert!(*wires <= g.degree(v) as u64);
        }
    }
}

/// Helper computing per-vertex remote-worker counts without depending
/// on mtvc-engine (keeps the dependency DAG clean).
fn mirror_index_free(
    g: &mtvc_graph::Graph,
    part: &mtvc_graph::Partition,
    threshold: usize,
) -> std::collections::HashMap<VertexId, u64> {
    let mut out = std::collections::HashMap::new();
    for v in g.vertices() {
        if g.degree(v) <= threshold {
            continue;
        }
        let mut workers: Vec<u16> = g.neighbors(v).iter().map(|&t| part.owner_of(t)).collect();
        workers.sort_unstable();
        workers.dedup();
        workers.retain(|&w| w != part.owner_of(v));
        out.insert(v, workers.len() as u64);
    }
    out
}

fn mtvc_engine_free_mirror_check(
    g: &mtvc_graph::Graph,
    part: &mtvc_graph::Partition,
) -> std::collections::HashMap<VertexId, u64> {
    mirror_index_free(g, part, 16)
}
