//! Graph substrate for the `mtvc` workspace.
//!
//! Provides the in-memory compressed-sparse-row graph the engine executes
//! over, builders from edge lists, deterministic synthetic generators,
//! *paper-dataset presets* (scaled-down stand-ins for the six SNAP graphs
//! the paper evaluates — see DESIGN.md §2 for the substitution argument),
//! vertex partitioners matching the evaluated systems' defaults, degree
//! statistics, and single-machine reference algorithms used to validate
//! the distributed engine.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod hash;
pub mod ooc;
pub mod partition;
pub mod reference;
pub mod stats;
pub mod varint;

pub use builder::GraphBuilder;
pub use csr::{Graph, VertexId};
pub use datasets::{Dataset, DatasetInfo};
pub use ooc::{
    BackingStore, DecodedChunk, FileStore, MemStore, PartitionMeta, PartitionedAdjacency,
};
pub use partition::{HashPartitioner, Partition, Partitioner, RangePartitioner};
pub use stats::DegreeStats;
