//! Compressed-sparse-row graph representation.
//!
//! The engine's hot loops iterate neighbor slices, so the graph is a
//! classic CSR: one `offsets` array of `n + 1` entries into a flat
//! `targets` array. Vertex ids are `u32` (the largest preset graph stays
//! far below 4 B vertices after scaling), which halves adjacency memory
//! versus `usize` per the type-size guidance in the workspace coding
//! guides. Optional per-edge `u32` weights support weighted MSSP.

use serde::{Deserialize, Serialize};

/// A vertex identifier. Dense in `0..n`.
pub type VertexId = u32;

/// Immutable directed graph in CSR form.
///
/// Undirected graphs are represented by storing both edge directions
/// (the builders do this when asked). Parallel edges are removed by the
/// builder; self-loops are allowed but discouraged by the generators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    /// One weight per target when present. Empty means unit weights.
    weights: Vec<u32>,
}

impl Graph {
    /// Build directly from CSR arrays. Invariants are checked:
    /// `offsets` must be monotone, start at 0, end at `targets.len()`,
    /// and every target must be `< n`.
    pub fn from_csr(offsets: Vec<u64>, targets: Vec<VertexId>, weights: Vec<u32>) -> Graph {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "offsets must end at targets.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone non-decreasing"
        );
        let n = (offsets.len() - 1) as u64;
        assert!(
            targets.iter().all(|&t| (t as u64) < n),
            "edge target out of range"
        );
        assert!(
            weights.is_empty() || weights.len() == targets.len(),
            "weights must be empty or match targets"
        );
        Graph {
            offsets,
            targets,
            weights,
        }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Graph {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (an undirected edge counts twice).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// True when per-edge weights are attached.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Weights parallel to [`Self::neighbors`]; unit weights otherwise.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> EdgeWeights<'_> {
        if self.weights.is_empty() {
            EdgeWeights::Unit(self.degree(v))
        } else {
            let v = v as usize;
            EdgeWeights::Explicit(
                &self.weights[self.offsets[v] as usize..self.offsets[v + 1] as usize],
            )
        }
    }

    /// Iterate `(neighbor, weight)` pairs for `v`.
    pub fn weighted_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let nbrs = self.neighbors(v);
        let ws = self.edge_weights(v);
        nbrs.iter().enumerate().map(move |(i, &t)| (t, ws.get(i)))
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + 'static {
        (0..self.num_vertices() as u32).map(|v| v as VertexId)
    }

    /// Bytes of adjacency data a machine holding the whole graph would
    /// store (used by the cluster memory ledger and by the whole-graph
    /// access mode of §4.9).
    pub fn adjacency_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Maximum out-degree and the vertex attaining it.
    pub fn max_degree(&self) -> (VertexId, usize) {
        let mut best = (0, 0);
        for v in 0..self.num_vertices() as u32 {
            let d = self.degree(v);
            if d > best.1 {
                best = (v, d);
            }
        }
        best
    }
}

/// Edge-weight view: either explicit per-edge weights or implicit units.
#[derive(Debug, Clone, Copy)]
pub enum EdgeWeights<'a> {
    Unit(usize),
    Explicit(&'a [u32]),
}

impl EdgeWeights<'_> {
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            EdgeWeights::Unit(n) => {
                debug_assert!(i < *n);
                1
            }
            EdgeWeights::Explicit(w) => w[i],
        }
    }

    pub fn len(&self) -> usize {
        match self {
            EdgeWeights::Unit(n) => *n,
            EdgeWeights::Explicit(w) => w.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_csr(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3], vec![])
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.avg_degree(), 1.0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn unit_weights_by_default() {
        let g = diamond();
        assert!(!g.is_weighted());
        let pairs: Vec<_> = g.weighted_neighbors(0).collect();
        assert_eq!(pairs, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn explicit_weights() {
        let g = Graph::from_csr(vec![0, 2, 2], vec![1, 1], vec![7, 9]);
        assert!(g.is_weighted());
        let pairs: Vec<_> = g.weighted_neighbors(0).collect();
        assert_eq!(pairs, vec![(1, 7), (1, 9)]);
    }

    #[test]
    fn max_degree_found() {
        let g = diamond();
        assert_eq!(g.max_degree(), (0, 2));
    }

    #[test]
    fn adjacency_bytes_counts_arrays() {
        let g = diamond();
        assert_eq!(g.adjacency_bytes(), (5 * 8 + 4 * 4) as u64);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn bad_offsets_rejected() {
        Graph::from_csr(vec![0, 3, 2, 4], vec![0, 0, 0, 0], vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_rejected() {
        Graph::from_csr(vec![0, 1], vec![5], vec![]);
    }
}
