//! Deterministic synthetic graph generators.
//!
//! The experiment harness cannot download the SNAP datasets the paper
//! uses, so DESIGN.md substitutes scaled synthetic graphs with matching
//! shape. Everything here is seeded and reproducible: the same call with
//! the same seed yields the same graph on every platform.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Simple cycle `0 → 1 → … → n-1 → 0` (plus reverse edges when
/// `undirected`). Handy in unit tests: every vertex has the same degree.
pub fn ring(n: usize, undirected: bool) -> Graph {
    let mut b = GraphBuilder::new(n).undirected(undirected);
    for v in 0..n as u32 {
        b.add_edge(v, ((v as usize + 1) % n) as VertexId);
    }
    b.build()
}

/// `rows × cols` 4-neighbor grid, undirected. Useful for MSSP tests
/// where shortest distances are known in closed form.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n).undirected(true);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Star: vertex 0 connected to all others, undirected. The canonical
/// high-skew graph for mirroring tests.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).undirected(true);
    for v in 1..n as u32 {
        b.add_edge(0, v);
    }
    b.build()
}

/// Complete graph on `n` vertices (directed both ways).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi G(n, m): `target_edges` undirected edges sampled
/// uniformly (dedup may drop a few duplicates).
pub fn erdos_renyi(n: usize, target_edges: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).undirected(true);
    for _ in 0..target_edges {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Chung–Lu power-law graph: endpoint `i` of every edge is drawn with
/// probability ∝ `(i+1)^(-1/(gamma-1))`, giving an expected power-law
/// degree distribution with exponent `gamma`. `target_edges` undirected
/// edges are sampled; duplicates are deduplicated.
///
/// Social networks sit around `gamma ∈ [2.0, 2.6]`; smaller `gamma`
/// means heavier skew.
pub fn power_law(n: usize, target_edges: usize, gamma: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Cumulative weights for inverse-transform sampling.
    let alpha = -1.0 / (gamma - 1.0);
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(alpha);
        cum.push(total);
    }
    let sample = |rng: &mut SmallRng| -> VertexId {
        let x = rng.gen_range(0.0..total);
        // First index with cum[i] >= x.
        cum.partition_point(|&c| c < x) as VertexId
    };
    let mut b = GraphBuilder::new(n).undirected(true);
    for _ in 0..target_edges {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// R-MAT generator (Chakrabarti et al.): recursively drops each edge
/// into one of four adjacency-matrix quadrants with probabilities
/// `(a, b, c, d)`. `scale` is log2 of the vertex count. Produces the
/// heavy skew characteristic of web/Twitter-style graphs.
pub fn rmat(scale: u32, target_edges: usize, probs: (f64, f64, f64, f64), seed: u64) -> Graph {
    let (a, b_, c, d) = probs;
    let sum = a + b_ + c + d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "R-MAT probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n).undirected(true);
    for _ in 0..target_edges {
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        while hi_u - lo_u > 1 {
            let r: f64 = rng.gen();
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b_ {
                (true, false)
            } else if r < a + b_ + c {
                (false, true)
            } else {
                (true, true)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if down {
                lo_u = mid_u;
            } else {
                hi_u = mid_u;
            }
            if right {
                lo_v = mid_v;
            } else {
                hi_v = mid_v;
            }
        }
        if lo_u != lo_v {
            builder.add_edge(lo_u as VertexId, lo_v as VertexId);
        }
    }
    builder.build()
}

/// Return a copy of `g` with uniformly random edge weights in
/// `[lo, hi]`. Symmetric edges get independent weights (the engine's
/// MSSP treats the graph as directed, as Pregel does).
pub fn with_random_weights(g: &Graph, lo: u32, hi: u32, seed: u64) -> Graph {
    assert!(
        lo >= 1 && lo <= hi,
        "weight range must satisfy 1 <= lo <= hi"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(g.num_vertices()).force_weighted();
    for v in g.vertices() {
        for &t in g.neighbors(v) {
            b.add_weighted_edge(v, t, rng.gen_range(lo..=hi));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_degrees() {
        let g = ring(5, true);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        let gd = ring(5, false);
        for v in gd.vertices() {
            assert_eq!(gd.degree(v), 1);
        }
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        // 3*3 horizontal + 2*4 vertical = 17 undirected = 34 directed.
        assert_eq!(g.num_edges(), 34);
        assert_eq!(g.num_vertices(), 12);
    }

    #[test]
    fn star_center_degree() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.degree(5), 1);
    }

    #[test]
    fn complete_graph() {
        let g = complete(4);
        assert_eq!(g.num_edges(), 12);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn erdos_renyi_deterministic_and_sized() {
        let g1 = erdos_renyi(100, 300, 7);
        let g2 = erdos_renyi(100, 300, 7);
        assert_eq!(g1, g2);
        // Some duplicates possible, but should be close to 600 directed.
        assert!(g1.num_edges() > 400 && g1.num_edges() <= 600);
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law(1000, 5000, 2.2, 42);
        let (_, dmax) = g.max_degree();
        let avg = g.avg_degree();
        // Heavy tail: max degree far above the average.
        assert!(
            dmax as f64 > 8.0 * avg,
            "expected skew: max {dmax} vs avg {avg}"
        );
    }

    #[test]
    fn power_law_deterministic() {
        assert_eq!(power_law(200, 800, 2.5, 1), power_law(200, 800, 2.5, 1));
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 4000, (0.57, 0.19, 0.19, 0.05), 3);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 4000); // undirected doubling minus dedup
        let (_, dmax) = g.max_degree();
        assert!(dmax as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn random_weights_attach() {
        let g = with_random_weights(&ring(10, true), 2, 9, 5);
        assert!(g.is_weighted());
        for v in g.vertices() {
            for (_, w) in g.weighted_neighbors(v) {
                assert!((2..=9).contains(&w));
            }
        }
    }
}
