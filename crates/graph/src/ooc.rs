//! Out-of-core adjacency substrate: partitioned, sequential-friendly
//! on-"disk" layout behind a pluggable byte store.
//!
//! GraphD's distributed semi-streaming model (paper §2.2, §4.4) keeps
//! only vertex state resident and streams adjacency from disk. This
//! module provides the real byte layer for that regime: each worker's
//! local-index-ordered vertex list is sliced into **contiguous CSR
//! chunks** (partitions), each chunk encoded with delta-varint
//! neighbor compression ([`crate::varint`]) and written to a
//! [`BackingStore`] — real files under a temp dir for benches
//! ([`FileStore`]), a deterministic in-memory byte map for tests/CI
//! ([`MemStore`]). Every byte the engine's partition pager moves is a
//! byte that really crossed this store, not an estimate.
//!
//! The chunk codec preserves CSR neighbor order exactly (neighbor
//! order is observable: programs iterate `ctx.neighbors()` and
//! emission order feeds routing), so a paged run decodes adjacency
//! bit-identical to the resident `Graph`.

use crate::csr::{Graph, VertexId};
use crate::varint::{read_varint, unzigzag, write_varint, zigzag};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default target encoded bytes per adjacency partition.
pub const DEFAULT_PARTITION_BYTES: u64 = 64 * 1024;

/// A flat keyed byte store the pager moves partitions through. Keys
/// are opaque `u64`s; callers namespace them via
/// [`alloc_key_namespace`] so several paged structures can share one
/// store.
pub trait BackingStore: Send + Sync {
    /// Store `bytes` under `key`, replacing any previous value.
    fn put(&self, key: u64, bytes: &[u8]);

    /// Read `key` into `out` (cleared first). Returns `false` when the
    /// key is absent.
    fn get(&self, key: u64, out: &mut Vec<u8>) -> bool;

    /// Drop `key` if present.
    fn remove(&self, key: u64);
}

static NAMESPACE: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh key namespace (high bits of the key space) so
/// independent paged structures sharing one [`BackingStore`] can never
/// collide.
pub fn alloc_key_namespace() -> u64 {
    NAMESPACE.fetch_add(1, Ordering::Relaxed) << 40
}

/// Deterministic in-memory byte store for tests and CI: no disk
/// fixtures, but the same real encode/write/read/decode traffic as the
/// file-backed store.
#[derive(Default)]
pub struct MemStore {
    map: Mutex<HashMap<u64, Vec<u8>>>,
    written: AtomicU64,
    read: AtomicU64,
}

impl MemStore {
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Total bytes ever written through [`BackingStore::put`].
    pub fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Total bytes ever read through [`BackingStore::get`].
    pub fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }

    /// Bytes currently resident in the store.
    pub fn stored_bytes(&self) -> u64 {
        self.map
            .lock()
            .unwrap()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }
}

impl BackingStore for MemStore {
    fn put(&self, key: u64, bytes: &[u8]) {
        self.written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.map.lock().unwrap().insert(key, bytes.to_vec());
    }

    fn get(&self, key: u64, out: &mut Vec<u8>) -> bool {
        out.clear();
        match self.map.lock().unwrap().get(&key) {
            Some(bytes) => {
                self.read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                out.extend_from_slice(bytes);
                true
            }
            None => false,
        }
    }

    fn remove(&self, key: u64) {
        self.map.lock().unwrap().remove(&key);
    }
}

static FILE_STORE_ID: AtomicU64 = AtomicU64::new(0);

/// File-backed store: one file per key under a private directory in
/// the system temp dir, removed on drop. This is what benches use so
/// paging exercises the real filesystem.
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Create a fresh store directory under [`std::env::temp_dir`].
    pub fn new_temp() -> std::io::Result<FileStore> {
        let dir = std::env::temp_dir().join(format!(
            "mtvc-ooc-{}-{}",
            std::process::id(),
            FILE_STORE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore { dir })
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bin"))
    }
}

impl BackingStore for FileStore {
    fn put(&self, key: u64, bytes: &[u8]) {
        std::fs::write(self.path(key), bytes).expect("FileStore write");
    }

    fn get(&self, key: u64, out: &mut Vec<u8>) -> bool {
        out.clear();
        match std::fs::read(self.path(key)) {
            Ok(bytes) => {
                *out = bytes;
                true
            }
            Err(_) => false,
        }
    }

    fn remove(&self, key: u64) {
        let _ = std::fs::remove_file(self.path(key));
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Encode the adjacency of `vertices` (a contiguous slice of one
/// worker's local-index-ordered list) as one chunk:
///
/// ```text
/// varint(n)  flag(1 = weighted)
/// per vertex: varint(degree)
///             per neighbor: varint(zigzag(delta from previous))
///             per neighbor (weighted only): varint(weight)
/// ```
///
/// Neighbor order is preserved exactly — deltas are signed so unsorted
/// CSR rows cost a little, sorted rows compress hard.
pub fn encode_chunk(graph: &Graph, vertices: &[VertexId], out: &mut Vec<u8>) {
    out.clear();
    write_varint(out, vertices.len() as u64);
    out.push(graph.is_weighted() as u8);
    for &v in vertices {
        let neighbors = graph.neighbors(v);
        write_varint(out, neighbors.len() as u64);
        let mut prev = 0i64;
        for &t in neighbors {
            write_varint(out, zigzag(t as i64 - prev));
            prev = t as i64;
        }
        if graph.is_weighted() {
            let weights = graph.edge_weights(v);
            for i in 0..neighbors.len() {
                write_varint(out, weights.get(i) as u64);
            }
        }
    }
}

/// One decoded partition: a mini-CSR over the chunk's contiguous
/// local-index range. Buffers are reused across
/// [`decode_chunk_into`] calls, so steady-state paging re-decodes
/// without allocating.
#[derive(Debug, Default, Clone)]
pub struct DecodedChunk {
    li_start: u32,
    offsets: Vec<u32>,
    neighbors: Vec<VertexId>,
    weights: Vec<u32>,
}

impl DecodedChunk {
    /// First local index the chunk covers.
    pub fn li_start(&self) -> u32 {
        self.li_start
    }

    /// Vertices in the chunk.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbors of the vertex at local index `li` (absolute — the
    /// chunk subtracts its own base).
    #[inline]
    pub fn neighbors_of(&self, li: u32) -> &[VertexId] {
        let i = (li - self.li_start) as usize;
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Edge weights of the vertex at local index `li`; `None` when the
    /// graph is unweighted (unit weights).
    #[inline]
    pub fn weights_of(&self, li: u32) -> Option<&[u32]> {
        if self.weights.is_empty() {
            return None;
        }
        let i = (li - self.li_start) as usize;
        Some(&self.weights[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Exact resident bytes of the decoded representation — what the
    /// partition cache charges against its budget.
    pub fn resident_bytes(&self) -> u64 {
        (self.offsets.len() * 4 + self.neighbors.len() * 4 + self.weights.len() * 4) as u64
    }
}

/// Decode a chunk produced by [`encode_chunk`] into `chunk`, reusing
/// its buffers. `li_start` stamps the absolute base of the chunk's
/// local-index range.
pub fn decode_chunk_into(bytes: &[u8], li_start: u32, chunk: &mut DecodedChunk) {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos) as usize;
    let weighted = bytes.get(pos).copied().unwrap_or(0) != 0;
    pos += 1;
    chunk.li_start = li_start;
    chunk.offsets.clear();
    chunk.neighbors.clear();
    chunk.weights.clear();
    chunk.offsets.push(0);
    for _ in 0..n {
        let degree = read_varint(bytes, &mut pos) as usize;
        let mut prev = 0i64;
        for _ in 0..degree {
            prev += unzigzag(read_varint(bytes, &mut pos));
            chunk.neighbors.push(prev as VertexId);
        }
        if weighted {
            for _ in 0..degree {
                chunk.weights.push(read_varint(bytes, &mut pos) as u32);
            }
        }
        chunk.offsets.push(chunk.neighbors.len() as u32);
    }
    debug_assert!(pos <= bytes.len(), "chunk decode overran its bytes");
}

/// Shape of one adjacency partition: a contiguous local-index range of
/// one worker plus its encoded/decoded sizes (both exact — the encoded
/// size is what a load really reads from the store, the decoded size
/// is what residency really charges the cache budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMeta {
    pub li_start: u32,
    pub li_end: u32,
    pub edges: u64,
    pub encoded_bytes: u64,
    pub decoded_bytes: u64,
}

/// The partitioned on-"disk" adjacency of one run: per worker, an
/// ordered list of contiguous CSR chunks, each resident only in the
/// backing store until a pager loads it.
pub struct PartitionedAdjacency {
    store: Arc<dyn BackingStore>,
    parts: Vec<Vec<PartitionMeta>>,
    key_base: u64,
}

impl std::fmt::Debug for PartitionedAdjacency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedAdjacency")
            .field("workers", &self.parts.len())
            .field(
                "partitions",
                &self.parts.iter().map(Vec::len).sum::<usize>(),
            )
            .finish()
    }
}

impl PartitionedAdjacency {
    /// Slice `worker_vertices` (each list in local-index order) into
    /// partitions of roughly `partition_bytes` encoded bytes, encode
    /// each, and write them all to `store`. After this the store holds
    /// the only copy the pager ever reads.
    pub fn build(
        graph: &Graph,
        worker_vertices: &[Vec<VertexId>],
        partition_bytes: u64,
        store: Arc<dyn BackingStore>,
    ) -> PartitionedAdjacency {
        let target = partition_bytes.max(1);
        let key_base = alloc_key_namespace();
        let mut buf = Vec::new();
        let parts = worker_vertices
            .iter()
            .enumerate()
            .map(|(w, vertices)| {
                let mut metas = Vec::new();
                let mut start = 0usize;
                while start < vertices.len() {
                    // Grow the slice until the *estimated* encoded size
                    // passes the target; the exact cut is re-encoded
                    // once, so build cost stays linear.
                    let mut end = start;
                    let mut est = 0u64;
                    while end < vertices.len() && (est < target || end == start) {
                        let v = vertices[end];
                        est += 1 + graph.degree(v) as u64 * if graph.is_weighted() { 3 } else { 2 };
                        end += 1;
                    }
                    encode_chunk(graph, &vertices[start..end], &mut buf);
                    let edges = vertices[start..end]
                        .iter()
                        .map(|&v| graph.degree(v) as u64)
                        .sum::<u64>();
                    let decoded = ((end - start + 1) * 4) as u64
                        + edges * if graph.is_weighted() { 8 } else { 4 };
                    let p = metas.len();
                    store.put(chunk_key(key_base, w, p), &buf);
                    metas.push(PartitionMeta {
                        li_start: start as u32,
                        li_end: end as u32,
                        edges,
                        encoded_bytes: buf.len() as u64,
                        decoded_bytes: decoded,
                    });
                    start = end;
                }
                metas
            })
            .collect();
        PartitionedAdjacency {
            store,
            parts,
            key_base,
        }
    }

    pub fn workers(&self) -> usize {
        self.parts.len()
    }

    /// Partition shapes of worker `w`, in local-index order.
    pub fn partitions(&self, w: usize) -> &[PartitionMeta] {
        &self.parts[w]
    }

    /// Total encoded bytes of worker `w`'s adjacency on the store.
    pub fn encoded_bytes(&self, w: usize) -> u64 {
        self.parts[w].iter().map(|m| m.encoded_bytes).sum()
    }

    /// Total decoded (resident-if-loaded) bytes of worker `w`.
    pub fn decoded_bytes(&self, w: usize) -> u64 {
        self.parts[w].iter().map(|m| m.decoded_bytes).sum()
    }

    /// The shared backing store.
    pub fn store(&self) -> &Arc<dyn BackingStore> {
        &self.store
    }

    /// Read partition `(w, p)` from the store and decode it into
    /// `chunk` (buffers reused). Returns the encoded bytes actually
    /// read — the measured load traffic.
    pub fn load_into(
        &self,
        w: usize,
        p: usize,
        raw: &mut Vec<u8>,
        chunk: &mut DecodedChunk,
    ) -> u64 {
        let meta = self.parts[w][p];
        let found = self.store.get(chunk_key(self.key_base, w, p), raw);
        assert!(found, "adjacency partition ({w},{p}) missing from store");
        debug_assert_eq!(raw.len() as u64, meta.encoded_bytes);
        decode_chunk_into(raw, meta.li_start, chunk);
        debug_assert_eq!(chunk.len(), (meta.li_end - meta.li_start) as usize);
        raw.len() as u64
    }
}

#[inline]
fn chunk_key(base: u64, w: usize, p: usize) -> u64 {
    base | ((w as u64) << 24) | p as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::partition::{HashPartitioner, Partitioner};

    fn worker_lists(g: &Graph, workers: usize) -> Vec<Vec<VertexId>> {
        HashPartitioner::default()
            .partition(g, workers)
            .worker_vertices()
    }

    fn check_roundtrip(g: &Graph, partition_bytes: u64) {
        let lists = worker_lists(g, 3);
        let store = Arc::new(MemStore::new());
        let paged = PartitionedAdjacency::build(g, &lists, partition_bytes, store.clone());
        assert!(store.bytes_written() > 0, "build writes real bytes");
        let mut raw = Vec::new();
        let mut chunk = DecodedChunk::default();
        for (w, list) in lists.iter().enumerate() {
            // Partitions tile the worker's local-index range exactly.
            let metas = paged.partitions(w);
            let mut expect_start = 0u32;
            for m in metas {
                assert_eq!(m.li_start, expect_start);
                assert!(m.li_end > m.li_start);
                expect_start = m.li_end;
            }
            assert_eq!(expect_start as usize, list.len());
            for (p, m) in metas.iter().enumerate() {
                let read = paged.load_into(w, p, &mut raw, &mut chunk);
                assert_eq!(read, m.encoded_bytes);
                assert_eq!(chunk.resident_bytes(), m.decoded_bytes);
                for li in m.li_start..m.li_end {
                    let v = list[li as usize];
                    assert_eq!(chunk.neighbors_of(li), g.neighbors(v), "vertex {v}");
                    match chunk.weights_of(li) {
                        Some(ws) => {
                            assert!(g.is_weighted());
                            let expect: Vec<u32> =
                                (0..g.degree(v)).map(|i| g.edge_weights(v).get(i)).collect();
                            assert_eq!(ws, &expect[..], "vertex {v} weights");
                        }
                        None => assert!(!g.is_weighted()),
                    }
                }
            }
        }
        assert!(store.bytes_read() > 0, "loads read real bytes");
    }

    #[test]
    fn chunks_roundtrip_unweighted() {
        let g = generators::power_law(400, 1800, 2.3, 7);
        check_roundtrip(&g, 512);
    }

    #[test]
    fn chunks_roundtrip_weighted() {
        let g =
            generators::with_random_weights(&generators::power_law(300, 1400, 2.2, 9), 1, 50, 3);
        check_roundtrip(&g, 256);
    }

    #[test]
    fn tiny_partition_target_still_tiles() {
        // target 1 byte: every partition is a single vertex.
        let g = generators::ring(64, true);
        check_roundtrip(&g, 1);
    }

    #[test]
    fn delta_encoding_beats_raw_bytes_on_sorted_neighbors() {
        let g = generators::grid(40, 40);
        let lists = worker_lists(&g, 3);
        let store = Arc::new(MemStore::new());
        let paged = PartitionedAdjacency::build(&g, &lists, DEFAULT_PARTITION_BYTES, store);
        let encoded: u64 = (0..3).map(|w| paged.encoded_bytes(w)).sum();
        let raw = g.num_edges() as u64 * 4;
        assert!(
            encoded < raw,
            "delta-varint {encoded}B must beat raw {raw}B"
        );
    }

    #[test]
    fn file_store_roundtrips_and_cleans_up() {
        let store = FileStore::new_temp().unwrap();
        let dir = store.dir.clone();
        store.put(7, b"hello paging");
        let mut out = Vec::new();
        assert!(store.get(7, &mut out));
        assert_eq!(out, b"hello paging");
        assert!(!store.get(8, &mut out), "missing keys report absent");
        store.remove(7);
        assert!(!store.get(7, &mut out));
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists(), "drop removes the store directory");
    }

    #[test]
    fn namespaces_never_collide() {
        let a = alloc_key_namespace();
        let b = alloc_key_namespace();
        assert_ne!(a, b);
        assert_eq!(a & 0xFF_FFFF_FFFF, 0, "low 40 bits stay free for keys");
    }
}
