//! LEB128 varint primitives shared by the wire codec and the
//! out-of-core chunk codec.
//!
//! Historically these lived in `mtvc_engine::wire`; they moved here so
//! the on-"disk" adjacency layout ([`crate::ooc`]) can reuse the exact
//! same byte-level machinery without inverting the crate dependency
//! (`mtvc-engine` depends on `mtvc-graph`, never the reverse). The
//! engine re-exports them from `wire`, so existing callers are
//! unaffected.

/// Bytes of `x` as an LEB128 varint. Branchless — one byte per started
/// 7-bit group of the value's significant bits (`x | 1` gives zero one
/// significant bit) — because the measurement paths call this per
/// envelope per lane, where a shift-loop's data-dependent branch
/// mispredicts on mixed-magnitude payloads.
#[inline]
pub fn varint_len(x: u64) -> u64 {
    (64 - (x | 1).leading_zeros() as u64).div_ceil(7)
}

/// Append `x` to `out` as an LEB128 varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push(x as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

/// Read one LEB128 varint at `*pos`, advancing it.
///
/// Total on any input: reading past the end of `buf` consumes a
/// phantom zero byte (terminating the varint and leaving
/// `*pos > buf.len()`, which checked decoders detect as truncation),
/// and continuation bytes past the 64-bit range are consumed without
/// shifting (lenient, but never a panic or overflow). Trusted decode
/// paths rely on well-formed input for exactness; untrusted input must
/// validate every stream boundary.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        if shift < 64 {
            x |= ((b & 0x7F) as u64) << shift;
        }
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

/// ZigZag-map a signed delta onto the unsigned varint domain, so small
/// negative deltas (unsorted neighbor lists) stay short.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_and_lengths_match() {
        let samples = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &x in &samples {
            let start = buf.len();
            write_varint(&mut buf, x);
            assert_eq!((buf.len() - start) as u64, varint_len(x), "{x}");
        }
        let mut pos = 0;
        for &x in &samples {
            assert_eq!(read_varint(&buf, &mut pos), x);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrips_and_keeps_small_deltas_small() {
        for v in [0i64, 1, -1, 2, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert!(varint_len(zigzag(-1)) == 1);
        assert!(varint_len(zigzag(3)) == 1);
    }
}
