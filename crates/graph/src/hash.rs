//! Fast, non-cryptographic hashing for hot paths.
//!
//! The workspace coding guides recommend replacing SipHash for integer
//! keys in hot loops. Instead of pulling in another dependency we ship a
//! tiny splitmix64-based hasher: statistically strong enough for vertex
//! partitioning and for the per-vertex hash maps used by the tasks, and
//! fully deterministic across runs (the experiment harness depends on
//! reproducibility).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// splitmix64 finalizer — a well-known 64-bit mixing function.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A `Hasher` that mixes written words with splitmix64. Optimized for
/// integer keys (single `write_u32`/`write_u64` call); byte slices fold
/// 8 bytes at a time.
#[derive(Default, Clone)]
pub struct Mix64Hasher {
    state: u64,
}

impl Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = mix64(self.state ^ i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`Mix64Hasher`].
pub type Mix64Build = BuildHasherDefault<Mix64Hasher>;

/// Fast hash map keyed by integers (vertex ids, source ids, …).
pub type FastMap<K, V> = HashMap<K, V, Mix64Build>;

/// Fast hash set.
pub type FastSet<K> = HashSet<K, Mix64Build>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        Mix64Build::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a guarantee in general, but splitmix64 is a bijection on
        // single u64 inputs, so nearby integers must differ.
        let h: FastSet<u64> = (0..1000u64).map(|i| hash_of(&i)).collect();
        assert_eq!(h.len(), 1000);
    }

    #[test]
    fn mix64_is_bijective_sample() {
        // Spot-check injectivity on a sample.
        let s: FastSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn map_works() {
        let mut m: FastMap<u32, u32> = FastMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m[&1], 10);
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn byte_slices_hash_stably() {
        let a = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]);
        let b = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9][..]);
        assert_eq!(a, b);
        let c = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10][..]);
        assert_ne!(a, c);
    }
}
