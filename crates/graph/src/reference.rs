//! Single-machine reference algorithms.
//!
//! The distributed engine's task implementations are validated against
//! these straightforward sequential versions: BFS levels (k-hop search
//! ground truth), Dijkstra (MSSP ground truth), and weakly connected
//! components (generator sanity checks).

use crate::csr::{Graph, VertexId};
use std::collections::{BinaryHeap, VecDeque};

/// Hop distance from `source` to every vertex (`u32::MAX` = unreachable).
pub fn bfs_levels(g: &Graph, source: VertexId) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    level[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let next = level[v as usize] + 1;
        for &t in g.neighbors(v) {
            if level[t as usize] == u32::MAX {
                level[t as usize] = next;
                queue.push_back(t);
            }
        }
    }
    level
}

/// The set of vertices within `k` hops of `source` (including `source`).
pub fn k_hop_set(g: &Graph, source: VertexId, k: u32) -> Vec<VertexId> {
    bfs_levels(g, source)
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l <= k)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// Weighted shortest-path distance from `source` to every vertex
/// (`u64::MAX` = unreachable). Unit weights when the graph is
/// unweighted, making this equivalent to BFS.
pub fn dijkstra(g: &Graph, source: VertexId) -> Vec<u64> {
    let mut dist = vec![u64::MAX; g.num_vertices()];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(std::cmp::Reverse((0, source)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (t, w) in g.weighted_neighbors(v) {
            let nd = d + w as u64;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(std::cmp::Reverse((nd, t)));
            }
        }
    }
    dist
}

/// Weakly connected component label per vertex (labels are the smallest
/// vertex id in the component). Treats edges as undirected.
pub fn weakly_connected_components(g: &Graph) -> Vec<VertexId> {
    // Build reverse adjacency on the fly via union-find over edges.
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for v in g.vertices() {
        for &t in g.neighbors(v) {
            let (rv, rt) = (find(&mut parent, v), find(&mut parent, t));
            if rv != rt {
                let (lo, hi) = if rv < rt { (rv, rt) } else { (rt, rv) };
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Number of distinct weakly connected components.
pub fn num_components(g: &Graph) -> usize {
    let labels = weakly_connected_components(g);
    let mut roots: Vec<VertexId> = labels
        .iter()
        .enumerate()
        .filter(|&(v, &l)| v as u32 == l)
        .map(|(v, _)| v as VertexId)
        .collect();
    roots.dedup();
    roots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_ring() {
        let g = generators::ring(6, true);
        let l = bfs_levels(&g, 0);
        assert_eq!(l, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::empty(3);
        let l = bfs_levels(&g, 0);
        assert_eq!(l, vec![0, u32::MAX, u32::MAX]);
    }

    #[test]
    fn k_hop_on_grid() {
        let g = generators::grid(3, 3);
        let s = k_hop_set(&g, 4, 1); // center of 3x3
        assert_eq!(s, vec![1, 3, 4, 5, 7]);
        assert_eq!(k_hop_set(&g, 4, 2).len(), 9);
    }

    #[test]
    fn dijkstra_equals_bfs_when_unweighted() {
        let g = generators::grid(4, 5);
        let d = dijkstra(&g, 0);
        let b = bfs_levels(&g, 0);
        for v in 0..g.num_vertices() {
            assert_eq!(d[v], b[v] as u64);
        }
    }

    #[test]
    fn dijkstra_respects_weights() {
        // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (2): shortest 0->1 is 3.
        let mut b = crate::builder::GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(0, 2, 1);
        b.add_weighted_edge(2, 1, 2);
        let g = b.build();
        assert_eq!(dijkstra(&g, 0), vec![0, 3, 1]);
    }

    #[test]
    fn components_on_disjoint_rings() {
        let mut b = crate::builder::GraphBuilder::new(6).undirected(true);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        assert_eq!(num_components(&g), 2);
        let labels = weakly_connected_components(&g);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn generated_social_graph_is_mostly_connected() {
        let g = generators::power_law(500, 3000, 2.3, 77);
        // The giant component should dominate.
        let labels = weakly_connected_components(&g);
        let mut counts = std::collections::HashMap::new();
        for l in labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let giant = counts.values().copied().max().unwrap();
        assert!(giant > 400, "giant component only {giant}");
    }
}
