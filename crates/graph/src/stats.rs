//! Degree statistics and skew measures.
//!
//! Used by the mirroring machinery (Pregel+(mirror) mirrors *high-degree*
//! vertices) and by the dataset presets' shape checks.

use crate::csr::{Graph, VertexId};
use serde::{Deserialize, Serialize};

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    pub num_vertices: usize,
    pub num_edges: usize,
    pub min_degree: usize,
    pub max_degree: usize,
    pub avg_degree: f64,
    /// Degree of the vertex at the 99th percentile.
    pub p99_degree: usize,
    /// max / avg — a crude skew indicator (≈1 for regular graphs).
    pub skew: f64,
}

impl DegreeStats {
    pub fn of(g: &Graph) -> DegreeStats {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats {
                num_vertices: 0,
                num_edges: 0,
                min_degree: 0,
                max_degree: 0,
                avg_degree: 0.0,
                p99_degree: 0,
                skew: 0.0,
            };
        }
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let avg = g.avg_degree();
        let max = *degrees.last().unwrap();
        DegreeStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            min_degree: degrees[0],
            max_degree: max,
            avg_degree: avg,
            p99_degree: degrees[(n * 99 / 100).min(n - 1)],
            skew: if avg > 0.0 { max as f64 / avg } else { 0.0 },
        }
    }
}

/// Vertices whose degree strictly exceeds `threshold`, descending by
/// degree. This is the mirror-candidate set of Pregel+(mirror).
pub fn high_degree_vertices(g: &Graph, threshold: usize) -> Vec<VertexId> {
    let mut hubs: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > threshold).collect();
    hubs.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    hubs
}

/// Degree histogram with power-of-two buckets: `hist[i]` counts vertices
/// with degree in `[2^i, 2^(i+1))`; bucket 0 holds degrees 0 and 1.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (d as f64).log2() as usize
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ring_stats_are_regular() {
        let s = DegreeStats::of(&generators::ring(100, true));
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.avg_degree, 2.0);
        assert_eq!(s.skew, 1.0);
    }

    #[test]
    fn star_stats_are_skewed() {
        let s = DegreeStats::of(&generators::star(101));
        assert_eq!(s.max_degree, 100);
        assert_eq!(s.min_degree, 1);
        assert!(s.skew > 25.0);
    }

    #[test]
    fn empty_graph_stats() {
        let s = DegreeStats::of(&crate::csr::Graph::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.skew, 0.0);
    }

    #[test]
    fn high_degree_selection() {
        let g = generators::star(50);
        let hubs = high_degree_vertices(&g, 10);
        assert_eq!(hubs, vec![0]);
        assert!(high_degree_vertices(&g, 100).is_empty());
    }

    #[test]
    fn high_degree_sorted_descending() {
        let g = generators::power_law(500, 2000, 2.1, 11);
        let hubs = high_degree_vertices(&g, 8);
        for w in hubs.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn histogram_buckets() {
        let g = generators::ring(10, true); // all degree 2 -> bucket 1
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 10]);
    }
}
