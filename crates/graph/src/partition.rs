//! Vertex partitioners.
//!
//! Each VC-system in the paper uses its own default partitioning
//! (Section 4: "Pregel+ uses random hash on vertices; GraphLab
//! partitions the graphs by edges"). We model vertex-partitioning
//! schemes: random hash (Pregel+/Giraph/GraphD default), contiguous
//! range, and a greedy edge-balanced scheme standing in for GraphLab's
//! edge cuts (it balances *edge* load across workers, which is the
//! property that matters to the cost model).

use crate::csr::{Graph, VertexId};
use crate::hash::mix64;
use serde::{Deserialize, Serialize};

/// A worker (machine) index within the simulated cluster.
pub type WorkerId = u16;

/// An assignment of every vertex to a worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    owner: Vec<WorkerId>,
    num_workers: usize,
}

impl Partition {
    /// Build from an explicit owner array.
    pub fn from_owners(owner: Vec<WorkerId>, num_workers: usize) -> Partition {
        assert!(num_workers > 0, "at least one worker required");
        assert!(
            owner.iter().all(|&w| (w as usize) < num_workers),
            "owner out of range"
        );
        Partition { owner, num_workers }
    }

    #[inline]
    pub fn owner_of(&self, v: VertexId) -> WorkerId {
        self.owner[v as usize]
    }

    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// Vertices owned by each worker, in id order.
    pub fn worker_vertices(&self) -> Vec<Vec<VertexId>> {
        let mut per: Vec<Vec<VertexId>> = vec![Vec::new(); self.num_workers];
        for (v, &w) in self.owner.iter().enumerate() {
            per[w as usize].push(v as VertexId);
        }
        per
    }

    /// Vertex count per worker.
    pub fn worker_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_workers];
        for &w in &self.owner {
            sizes[w as usize] += 1;
        }
        sizes
    }

    /// Directed edges per worker (edges whose *source* the worker owns).
    pub fn worker_edge_loads(&self, g: &Graph) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_workers];
        for v in g.vertices() {
            loads[self.owner_of(v) as usize] += g.degree(v) as u64;
        }
        loads
    }

    /// Fraction of directed edges whose endpoints live on different
    /// workers — the traffic that crosses the (simulated) network.
    pub fn cut_fraction(&self, g: &Graph) -> f64 {
        if g.num_edges() == 0 {
            return 0.0;
        }
        let mut cut = 0u64;
        for v in g.vertices() {
            let wv = self.owner_of(v);
            for &t in g.neighbors(v) {
                if self.owner_of(t) != wv {
                    cut += 1;
                }
            }
        }
        cut as f64 / g.num_edges() as f64
    }
}

/// Strategy for producing a [`Partition`].
pub trait Partitioner {
    fn partition(&self, g: &Graph, num_workers: usize) -> Partition;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Random hash on vertex ids — the Pregel+/Giraph/GraphD default.
/// Deterministic given the same salt.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner {
    pub salt: u64,
}

impl Partitioner for HashPartitioner {
    fn partition(&self, g: &Graph, num_workers: usize) -> Partition {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize);
        let owner = g
            .vertices()
            .map(|v| (mix64(v as u64 ^ self.salt) % num_workers as u64) as WorkerId)
            .collect();
        Partition::from_owners(owner, num_workers)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Contiguous ranges of vertex ids, sizes balanced to ±1.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn partition(&self, g: &Graph, num_workers: usize) -> Partition {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize);
        let n = g.num_vertices();
        let base = n / num_workers;
        let extra = n % num_workers;
        let mut owner = Vec::with_capacity(n);
        for w in 0..num_workers {
            let count = base + usize::from(w < extra);
            owner.extend(std::iter::repeat_n(w as WorkerId, count));
        }
        Partition::from_owners(owner, num_workers)
    }

    fn name(&self) -> &'static str {
        "range"
    }
}

/// Greedy edge-balancing: vertices in decreasing degree order, each
/// assigned to the worker with the smallest current edge load. Stands in
/// for GraphLab's edge-balanced placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeBalancedPartitioner;

impl Partitioner for EdgeBalancedPartitioner {
    fn partition(&self, g: &Graph, num_workers: usize) -> Partition {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize);
        let n = g.num_vertices();
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        let mut owner = vec![0 as WorkerId; n];
        let mut loads = vec![0u64; num_workers];
        for v in order {
            let w = loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap();
            owner[v as usize] = w as WorkerId;
            // +1 so zero-degree vertices also spread out.
            loads[w] += g.degree(v) as u64 + 1;
        }
        Partition::from_owners(owner, num_workers)
    }

    fn name(&self) -> &'static str {
        "edge-balanced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn hash_partition_covers_all_workers() {
        let g = generators::ring(1000, true);
        let p = HashPartitioner::default().partition(&g, 8);
        let sizes = p.worker_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes.iter().all(|&s| s > 0), "empty worker: {sizes:?}");
        // Roughly balanced: within 3x of the mean.
        assert!(sizes.iter().all(|&s| s < 375));
    }

    #[test]
    fn range_partition_is_contiguous_and_balanced() {
        let g = generators::ring(10, true);
        let p = RangePartitioner.partition(&g, 3);
        assert_eq!(p.worker_sizes(), vec![4, 3, 3]);
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(9), 2);
    }

    #[test]
    fn edge_balanced_spreads_hubs() {
        let g = generators::star(101);
        let p = EdgeBalancedPartitioner.partition(&g, 4);
        let loads = p.worker_edge_loads(&g);
        // The hub (degree 100) lands alone on one worker; leaves spread
        // across others. No worker should carry hub + many leaves.
        let max = *loads.iter().max().unwrap();
        let total: u64 = loads.iter().sum();
        assert!(max <= total / 2 + 1, "loads too skewed: {loads:?}");
    }

    #[test]
    fn cut_fraction_bounds() {
        let g = generators::ring(100, true);
        let p1 = RangePartitioner.partition(&g, 1);
        assert_eq!(p1.cut_fraction(&g), 0.0);
        let p2 = RangePartitioner.partition(&g, 2);
        // Exactly 4 of 200 directed edges cross the boundary.
        assert!((p2.cut_fraction(&g) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn worker_vertices_consistent_with_owner() {
        let g = generators::ring(50, true);
        let p = HashPartitioner { salt: 9 }.partition(&g, 4);
        let lists = p.worker_vertices();
        let mut seen = vec![false; 50];
        for (w, list) in lists.iter().enumerate() {
            for &v in list {
                assert_eq!(p.owner_of(v) as usize, w);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn deterministic_hash_partition() {
        let g = generators::ring(64, true);
        let a = HashPartitioner { salt: 3 }.partition(&g, 4);
        let b = HashPartitioner { salt: 3 }.partition(&g, 4);
        assert_eq!(a, b);
        let c = HashPartitioner { salt: 4 }.partition(&g, 4);
        assert_ne!(a, c);
    }
}
