//! Edge-list graph builder.
//!
//! Accumulates `(src, dst[, weight])` edges, optionally symmetrizes
//! (undirected graphs store both directions, as the SNAP social graphs
//! do), removes parallel edges keeping the minimum weight, and emits a
//! CSR [`Graph`]. Building is `O(m log m)` from the sort; fine for the
//! scaled dataset sizes this workspace targets.

use crate::csr::{Graph, VertexId};

/// Accumulates edges and produces a [`Graph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId, u32)>,
    undirected: bool,
    weighted: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph with exactly `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        GraphBuilder {
            n,
            ..Default::default()
        }
    }

    /// Store both directions for every added edge.
    pub fn undirected(mut self, yes: bool) -> Self {
        self.undirected = yes;
        self
    }

    /// Keep self loops (dropped by default).
    pub fn keep_self_loops(mut self, yes: bool) -> Self {
        self.keep_self_loops = yes;
        self
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-dedup) edge insertions so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a unit-weight edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        self.add_weighted_edge(src, dst, 1);
    }

    /// Add a weighted edge. Any weighted insertion makes the final graph
    /// weighted; weights of unit insertions stay 1.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: u32) {
        debug_assert!((src as usize) < self.n, "src {src} out of range");
        debug_assert!((dst as usize) < self.n, "dst {dst} out of range");
        if weight != 1 {
            self.weighted = true;
        }
        self.edges.push((src, dst, weight));
    }

    /// Mark the output as weighted even if all weights are 1.
    pub fn force_weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Finish: sort, symmetrize, dedup (min weight wins), build CSR.
    pub fn build(mut self) -> Graph {
        if self.undirected {
            let rev: Vec<_> = self.edges.iter().map(|&(s, d, w)| (d, s, w)).collect();
            self.edges.extend(rev);
        }
        if !self.keep_self_loops {
            self.edges.retain(|&(s, d, _)| s != d);
        }
        // Sort by (src, dst, weight) so dedup keeps the min weight.
        self.edges.sort_unstable();
        self.edges.dedup_by_key(|e| (e.0, e.1));

        let mut offsets = vec![0u64; self.n + 1];
        for &(s, _, _) in &self.edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let targets: Vec<VertexId> = self.edges.iter().map(|e| e.1).collect();
        let weights: Vec<u32> = if self.weighted {
            self.edges.iter().map(|e| e.2).collect()
        } else {
            Vec::new()
        };
        Graph::from_csr(offsets, targets, weights)
    }

    /// Parse a whitespace-separated edge list (`src dst [weight]` per
    /// line, `#`-prefixed comments ignored) — the SNAP text format.
    pub fn parse_edge_list(n: usize, text: &str) -> Result<Graph, ParseError> {
        let mut b = GraphBuilder::new(n);
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let src: VertexId = it
                .next()
                .ok_or(ParseError::MissingField(lineno))?
                .parse()
                .map_err(|_| ParseError::BadNumber(lineno))?;
            let dst: VertexId = it
                .next()
                .ok_or(ParseError::MissingField(lineno))?
                .parse()
                .map_err(|_| ParseError::BadNumber(lineno))?;
            if (src as usize) >= n || (dst as usize) >= n {
                return Err(ParseError::VertexOutOfRange(lineno));
            }
            match it.next() {
                Some(w) => {
                    let w: u32 = w.parse().map_err(|_| ParseError::BadNumber(lineno))?;
                    b.add_weighted_edge(src, dst, w);
                }
                None => b.add_edge(src, dst),
            }
        }
        Ok(b.build())
    }
}

/// Errors from [`GraphBuilder::parse_edge_list`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Line is missing src or dst (0-based line number).
    MissingField(usize),
    /// A field failed integer parsing.
    BadNumber(usize),
    /// Vertex id ≥ declared vertex count.
    VertexOutOfRange(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingField(l) => write!(f, "line {}: missing field", l + 1),
            ParseError::BadNumber(l) => write!(f, "line {}: invalid number", l + 1),
            ParseError::VertexOutOfRange(l) => write!(f, "line {}: vertex out of range", l + 1),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(2, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn undirected_symmetrizes() {
        let mut b = GraphBuilder::new(2).undirected(true);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn dedup_keeps_min_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 9);
        b.add_weighted_edge(0, 1, 3);
        b.add_weighted_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(g.weighted_neighbors(0).collect::<Vec<_>>(), vec![(1, 3)]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        assert_eq!(b.clone().build().num_edges(), 1);
        let mut b2 = GraphBuilder::new(2).keep_self_loops(true);
        b2.add_edge(0, 0);
        b2.add_edge(0, 1);
        assert_eq!(b2.build().num_edges(), 2);
    }

    #[test]
    fn parse_edge_list_roundtrip() {
        let text = "# comment\n0 1\n1 2 7\n\n2 0\n";
        let g = GraphBuilder::parse_edge_list(3, text).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_weighted());
        assert_eq!(g.weighted_neighbors(1).collect::<Vec<_>>(), vec![(2, 7)]);
    }

    #[test]
    fn parse_errors_reported() {
        assert_eq!(
            GraphBuilder::parse_edge_list(3, "0"),
            Err(ParseError::MissingField(0))
        );
        assert_eq!(
            GraphBuilder::parse_edge_list(3, "0 x"),
            Err(ParseError::BadNumber(0))
        );
        assert_eq!(
            GraphBuilder::parse_edge_list(2, "0 5"),
            Err(ParseError::VertexOutOfRange(0))
        );
    }

    #[test]
    fn unit_weight_graph_stays_unweighted() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 1);
        assert!(!b.build().is_weighted());
    }
}
