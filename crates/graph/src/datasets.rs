//! Paper-dataset presets (Table 1), as scaled synthetic stand-ins.
//!
//! The paper evaluates six public SNAP graphs. This module records their
//! published statistics and generates scaled synthetic counterparts with
//! the same average degree and a matching skew profile. The scale factor
//! σ divides the node count; machine memory capacities in
//! `mtvc-cluster` are divided by the same σ so congestion and overload
//! thresholds are crossed at the same *workload* values as in the paper
//! (see DESIGN.md §2).

use crate::csr::Graph;
use crate::generators;
use serde::{Deserialize, Serialize};

/// The paging budget (bytes) that [`Dataset::generate_over_budget`]
/// presets deliberately exceed: small enough that even the scaled
/// stand-ins cannot be held resident, yet large enough to hold a few
/// partitions at the default `partition_bytes = budget / 4` split.
/// Out-of-core tests and the pr10 bench feed this value into
/// `OocConfig`'s `PagingConfig::with_budget`.
pub const OOC_DEMO_BUDGET: u64 = 64 * 1024;

/// How many times larger than [`OOC_DEMO_BUDGET`] the over-budget
/// presets must be (adjacency bytes), so eviction is forced rather
/// than marginal.
pub const OOC_OVERCOMMIT: u64 = 4;

/// The six datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    WebSt,
    Dblp,
    LiveJournal,
    Orkut,
    Twitter,
    Friendster,
}

/// Published statistics (Table 1) plus generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    pub name: &'static str,
    /// Node count reported in Table 1.
    pub paper_nodes: u64,
    /// Edge count reported in Table 1.
    pub paper_edges: u64,
    /// Average degree reported in Table 1.
    pub paper_avg_degree: f64,
    /// Source column of Table 1.
    pub source: &'static str,
    /// Default scale divisor σ for this dataset.
    pub default_scale: u64,
    /// Skew of the synthetic stand-in (power-law exponent; lower =
    /// heavier tail). Twitter/Friendster use R-MAT instead.
    gamma: f64,
}

impl Dataset {
    pub const ALL: [Dataset; 6] = [
        Dataset::WebSt,
        Dataset::Dblp,
        Dataset::LiveJournal,
        Dataset::Orkut,
        Dataset::Twitter,
        Dataset::Friendster,
    ];

    pub fn info(self) -> DatasetInfo {
        match self {
            Dataset::WebSt => DatasetInfo {
                name: "Web-St",
                paper_nodes: 281_900,
                paper_edges: 2_300_000,
                paper_avg_degree: 8.2,
                source: "stanford.edu",
                default_scale: 256,
                gamma: 2.1,
            },
            Dataset::Dblp => DatasetInfo {
                name: "DBLP",
                paper_nodes: 613_600,
                paper_edges: 4_000_000,
                paper_avg_degree: 6.5,
                source: "dblp.com",
                default_scale: 256,
                gamma: 2.6,
            },
            Dataset::LiveJournal => DatasetInfo {
                name: "LiveJournal",
                paper_nodes: 4_000_000,
                paper_edges: 34_700_000,
                paper_avg_degree: 8.7,
                source: "livejournal.com",
                default_scale: 2048,
                gamma: 2.4,
            },
            Dataset::Orkut => DatasetInfo {
                name: "Orkut",
                paper_nodes: 3_100_000,
                paper_edges: 117_200_000,
                paper_avg_degree: 36.9,
                source: "orkut.com",
                default_scale: 2048,
                gamma: 2.3,
            },
            Dataset::Twitter => DatasetInfo {
                name: "Twitter",
                paper_nodes: 41_700_000,
                paper_edges: 1_500_000_000,
                paper_avg_degree: 35.2,
                source: "twitter.com",
                default_scale: 16384,
                gamma: 2.0,
            },
            Dataset::Friendster => DatasetInfo {
                name: "Friendster",
                paper_nodes: 65_600_000,
                paper_edges: 1_800_000_000,
                paper_avg_degree: 46.1,
                source: "snap.stanford.edu",
                default_scale: 16384,
                gamma: 2.2,
            },
        }
    }

    /// Short lowercase identifier (CSV columns, CLI args).
    pub fn key(self) -> &'static str {
        match self {
            Dataset::WebSt => "web-st",
            Dataset::Dblp => "dblp",
            Dataset::LiveJournal => "livejournal",
            Dataset::Orkut => "orkut",
            Dataset::Twitter => "twitter",
            Dataset::Friendster => "friendster",
        }
    }

    /// Scaled node count at divisor `scale`.
    pub fn scaled_nodes(self, scale: u64) -> usize {
        let info = self.info();
        (info.paper_nodes.div_ceil(scale)).max(64) as usize
    }

    /// Scaled *undirected* edge target at divisor `scale`, preserving
    /// the paper's average degree.
    pub fn scaled_edges(self, scale: u64) -> usize {
        let info = self.info();
        let n = self.scaled_nodes(scale) as f64;
        // avg_degree counts directed edges per node; undirected sampling
        // doubles them, hence the /2.
        ((n * info.paper_avg_degree) / 2.0).ceil() as usize
    }

    /// Generate the synthetic stand-in at this dataset's default scale.
    pub fn generate_default(self) -> Graph {
        self.generate(self.info().default_scale)
    }

    /// Scale divisor at which this dataset's stand-in comfortably
    /// exceeds [`OOC_DEMO_BUDGET`]: the adjacency estimate (CSR
    /// offsets + directed targets) is at least
    /// [`OOC_OVERCOMMIT`]× the budget, so a pager confined to the
    /// budget *must* evict and re-load partitions to finish. Walks down
    /// from the default scale (smaller divisor ⇒ bigger graph); the
    /// estimate is conservative (ignores dedup losses) so the generated
    /// graph may land slightly under — callers that need a hard
    /// guarantee use [`Dataset::generate_over_budget`], which checks
    /// the real graph.
    pub fn over_budget_scale(self) -> u64 {
        let mut scale = self.info().default_scale;
        while scale > 1 && self.estimated_adjacency_bytes(scale) < OOC_DEMO_BUDGET * OOC_OVERCOMMIT
        {
            scale /= 2;
        }
        scale
    }

    /// Conservative adjacency-size estimate at divisor `scale`, in
    /// bytes, mirroring [`Graph::adjacency_bytes`] (u64 offsets + u32
    /// directed targets; the generators emit both directions of each
    /// sampled undirected edge).
    pub fn estimated_adjacency_bytes(self, scale: u64) -> u64 {
        let n = self.scaled_nodes(scale) as u64;
        let m = self.scaled_edges(scale) as u64;
        (n + 1) * 8 + 2 * m * 4
    }

    /// Generate a stand-in guaranteed to exceed [`OOC_DEMO_BUDGET`] by
    /// at least [`OOC_OVERCOMMIT`]×, halving the scale divisor until
    /// the *generated* graph (post-dedup) clears the bar. Deterministic
    /// like [`Dataset::generate`].
    pub fn generate_over_budget(self) -> Graph {
        let mut scale = self.over_budget_scale();
        loop {
            let g = self.generate(scale);
            if g.adjacency_bytes() >= OOC_DEMO_BUDGET * OOC_OVERCOMMIT || scale == 1 {
                return g;
            }
            scale /= 2;
        }
    }

    /// Generate the synthetic stand-in at scale divisor `scale`.
    ///
    /// Deterministic: the seed is derived from the dataset identity and
    /// the scale, so every run of the harness sees the same graph.
    pub fn generate(self, scale: u64) -> Graph {
        let info = self.info();
        let n = self.scaled_nodes(scale);
        let m = self.scaled_edges(scale);
        let seed = 0xD5_u64
            .wrapping_mul(31)
            .wrapping_add(self as u64)
            .wrapping_mul(1_000_003)
            .wrapping_add(scale);
        match self {
            Dataset::Twitter | Dataset::Friendster => {
                // Heavy-tailed web-scale graphs: R-MAT.
                let sc = (n as f64).log2().ceil() as u32;
                generators::rmat(sc, m, (0.57, 0.19, 0.19, 0.05), seed)
            }
            _ => generators::power_law(n, m, info.gamma, seed),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.info().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_statistics_recorded() {
        let d = Dataset::Dblp.info();
        assert_eq!(d.paper_nodes, 613_600);
        assert_eq!(d.paper_avg_degree, 6.5);
        let t = Dataset::Twitter.info();
        assert_eq!(t.paper_edges, 1_500_000_000);
    }

    #[test]
    fn scaled_sizes_preserve_avg_degree() {
        let g = Dataset::Dblp.generate_default();
        let info = Dataset::Dblp.info();
        // Dedup loses a few edges; allow 25% slack below, none above 2x.
        assert!(
            g.avg_degree() > info.paper_avg_degree * 0.5,
            "avg degree {} too far below paper {}",
            g.avg_degree(),
            info.paper_avg_degree
        );
        assert!(g.avg_degree() < info.paper_avg_degree * 2.0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Dataset::WebSt.generate(512), Dataset::WebSt.generate(512));
    }

    #[test]
    fn scaled_nodes_floor() {
        // Extreme scale still yields a usable graph.
        assert!(Dataset::WebSt.scaled_nodes(u64::MAX / 2) >= 64);
    }

    #[test]
    fn twitter_like_is_heavily_skewed() {
        let g = Dataset::Twitter.generate(65536);
        let (_, dmax) = g.max_degree();
        assert!(dmax as f64 > 10.0 * g.avg_degree());
    }

    #[test]
    fn all_datasets_generate_nonempty() {
        for d in Dataset::ALL {
            let g = d.generate(d.info().default_scale * 8);
            assert!(g.num_vertices() >= 64, "{d} too small");
            assert!(g.num_edges() > 0, "{d} has no edges");
        }
    }

    #[test]
    fn over_budget_preset_exceeds_demo_budget() {
        // The preset must really overcommit the paging budget (that is
        // its whole purpose) while staying test-sized.
        let g = Dataset::WebSt.generate_over_budget();
        assert!(
            g.adjacency_bytes() >= OOC_DEMO_BUDGET * OOC_OVERCOMMIT,
            "adjacency {} under budget {} x {}",
            g.adjacency_bytes(),
            OOC_DEMO_BUDGET,
            OOC_OVERCOMMIT
        );
        assert!(
            g.adjacency_bytes() < OOC_DEMO_BUDGET * OOC_OVERCOMMIT * 64,
            "preset ballooned: {} bytes",
            g.adjacency_bytes()
        );
        // Deterministic like every other preset.
        assert_eq!(
            Dataset::WebSt.generate_over_budget(),
            Dataset::WebSt.generate_over_budget()
        );
    }

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<_> = Dataset::ALL.iter().map(|d| d.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }
}
