//! End-to-end: a generated trace driven open-loop into a real
//! [`TaskService`], under both schedulers.

use mtvc_cluster::ClusterSpec;
use mtvc_core::Task;
use mtvc_graph::generators;
use mtvc_loadgen::{drive, generate, DriveCfg, Scenario};
use mtvc_serve::{SchedulerPolicy, ServiceConfig, SloClass, TaskService};
use mtvc_systems::SystemKind;
use std::sync::Arc;
use std::time::Duration;

fn service(scheduler: SchedulerPolicy) -> TaskService {
    let graph = Arc::new(generators::power_law(300, 1400, 2.4, 11));
    let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
        .with_workers(2)
        .with_quantum(16)
        .with_seed(0xD817E)
        .with_scheduler(scheduler)
        .with_shape(Task::mssp(1))
        .with_shape(Task::bppr(1));
    cfg.training_workload = 64;
    TaskService::start(graph, cfg).expect("service starts")
}

fn scenario() -> Scenario {
    Scenario::new("drive-smoke", 40, 120.0, Duration::from_millis(600))
        .with_zipf_exponent(1.1)
        .with_bursts(Duration::from_millis(200), Duration::from_millis(100), 2.0)
        .with_shape(Task::mssp(1), 1.0, 1..=3)
        .with_shape(Task::bppr(1), 1.0, 2..=6)
}

#[test]
fn open_loop_replay_accounts_for_every_event() {
    let trace = generate(&scenario(), 0x10AD);
    assert!(!trace.is_empty());
    for policy in [SchedulerPolicy::BaselineDrr, SchedulerPolicy::SloAware] {
        let svc = service(policy);
        let rep = drive(&svc, &trace, DriveCfg::default());
        let report = svc.shutdown();
        // Every trace event is offered exactly once; accepted ones
        // all reach a terminal outcome by shutdown.
        assert_eq!(rep.offered(), trace.len() as u64, "{policy:?}");
        assert_eq!(rep.refused, 0, "{policy:?}");
        assert_eq!(report.requests(), rep.submitted, "{policy:?}");
        assert_eq!(report.scheduler, policy);
        // The per-class breakdown tiles the totals.
        let class_total: u64 = report.class.iter().map(|c| c.served).sum();
        assert_eq!(class_total, report.served, "{policy:?}");
        // Interactive requests carry deadlines in the default mix, so
        // their outcomes land in met-or-missed, never unaccounted.
        let i = report.class(SloClass::Interactive);
        assert_eq!(
            i.deadline_met + i.deadline,
            i.served + i.deadline,
            "served interactive requests all carried deadlines"
        );
        if policy == SchedulerPolicy::SloAware {
            assert!(
                report.controller.decisions > 0,
                "SLO scheduler never consulted the controller"
            );
        } else {
            assert_eq!(report.controller.decisions, 0);
        }
        assert!(!report.queue_depth_series.is_empty());
    }
}

#[test]
fn time_scale_zero_front_loads_the_queue() {
    // Replaying with scale 0 fires all submissions immediately — the
    // fastest way to exercise backpressure/shed accounting.
    let trace = generate(&scenario(), 0x5AFE);
    let svc = service(SchedulerPolicy::SloAware);
    let rep = drive(&svc, &trace, DriveCfg::default().with_time_scale(0.0));
    let report = svc.shutdown();
    assert_eq!(rep.offered(), trace.len() as u64);
    assert_eq!(
        rep.shed,
        rep.shed_by_class.iter().sum::<u64>(),
        "per-class sheds must tile the total"
    );
    // Shed requests never enter the service, so the two sides add up.
    assert_eq!(report.requests() + rep.shed, trace.len() as u64);
}
