//! `mtvc-loadgen` — deterministic open-loop workload generation for
//! the online task service.
//!
//! The serving experiments need traffic that looks like production:
//! a heavy-tailed tenant population (a few tenants dominate), arrival
//! rates that breathe with a diurnal cycle and spike in correlated
//! bursts, and a mix of task shapes and SLO classes. This crate
//! synthesises such traffic *reproducibly* — every trace is a pure
//! function of a [`Scenario`] and a 64-bit seed — and replays it
//! against a [`TaskService`](mtvc_serve::TaskService) open-loop: the
//! generator never slows down because the service is struggling, which
//! is exactly what makes saturation visible.
//!
//! # Pipeline
//!
//! ```text
//! Scenario ──generate(seed)──▶ Trace ──drive()──▶ TaskService
//!  (tenants, rates,             (sorted arrival     (open-loop replay;
//!   burstiness, task mix)        events)             Full ⇒ load shed)
//! ```
//!
//! * [`Zipf`] — O(1) approximate Zipf sampler over millions of ranks
//!   (analytic inverse CDF, no per-rank tables).
//! * [`Scenario`] — the workload description: tenant population,
//!   diurnal cycle, burst episodes, shape/class mix.
//! * [`Trace`] / [`generate`] — materialised arrival events, with a
//!   [`Trace::fingerprint`] for determinism checks.
//! * [`drive`] — open-loop replay; [`DriveReport`] counts sheds
//!   (queue-full refusals) per class instead of silently retrying.

#![deny(missing_docs)]

pub mod drive;
pub mod scenario;
pub mod trace;
pub mod zipf;

pub use drive::{drive, DriveCfg, DriveReport};
pub use scenario::{BurstSpec, ClassMix, DiurnalSpec, Scenario, ShapeMix};
pub use trace::{generate, Trace, TraceEvent};
pub use zipf::Zipf;
