//! Open-loop trace replay against a running [`TaskService`].
//!
//! *Open-loop* is the defining property: submissions happen at the
//! trace's timestamps no matter how the service is coping. A
//! closed-loop driver (wait for a completion before the next submit)
//! self-throttles and hides saturation; an open-loop one exposes it —
//! the queue fills, [`SubmitError::Full`] comes back, and the driver
//! counts the request as **shed** rather than retrying it. Shed volume
//! at a given offered load is the honest saturation signal the bench
//! harness sweeps for.

use crate::trace::Trace;
use mtvc_serve::{SubmitError, TaskService};
use std::time::{Duration, Instant};

/// Replay knobs.
#[derive(Debug, Clone, Copy)]
pub struct DriveCfg {
    /// Multiplier on every event timestamp: 1.0 replays in real time,
    /// 0.5 twice as fast (doubling the offered rate), 0 as fast as
    /// the submit path allows.
    pub time_scale: f64,
}

impl Default for DriveCfg {
    fn default() -> DriveCfg {
        DriveCfg { time_scale: 1.0 }
    }
}

impl DriveCfg {
    /// Replay with timestamps scaled by `time_scale`.
    pub fn with_time_scale(mut self, scale: f64) -> DriveCfg {
        assert!(scale.is_finite() && scale >= 0.0);
        self.time_scale = scale;
        self
    }
}

/// What the replay did, from the submitter's side. The service's own
/// [`ServiceReport`](mtvc_serve::ServiceReport) holds the completion
/// side (latencies, outcomes, per-class breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct DriveReport {
    /// Requests accepted by the service.
    pub submitted: u64,
    /// Requests shed because the queue was full — the open-loop
    /// driver does NOT retry these; they are lost offered load.
    pub shed: u64,
    /// Sheds per SLO class, indexed by
    /// [`SloClass::index`](mtvc_serve::SloClass::index).
    pub shed_by_class: [u64; 3],
    /// Requests refused for any other reason (closed, unregistered
    /// shape, zero workload).
    pub refused: u64,
    /// Wall-clock time the replay took.
    pub wall: Duration,
    /// Submissions that fell behind their scaled timestamp by the
    /// time the submit call returned (the driver itself saturating —
    /// if this is large relative to `submitted`, scale the trace
    /// down before trusting the numbers).
    pub late: u64,
}

impl DriveReport {
    /// Offered requests: everything the trace asked to submit.
    pub fn offered(&self) -> u64 {
        self.submitted + self.shed + self.refused
    }

    /// Fraction of offered load shed at the queue (0 when idle).
    pub fn shed_fraction(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered() as f64
    }
}

/// Replay `trace` against `svc` open-loop. Returns once every event
/// has been offered; completions keep draining inside the service
/// (shut it down to collect them).
pub fn drive(svc: &TaskService, trace: &Trace, cfg: DriveCfg) -> DriveReport {
    let start = Instant::now();
    let mut report = DriveReport::default();
    for event in &trace.events {
        let target = event.at.mul_f64(cfg.time_scale);
        let now = start.elapsed();
        if target > now {
            std::thread::sleep(target - now);
        }
        match svc.try_submit(event.request()) {
            Ok(_ticket) => report.submitted += 1,
            Err(SubmitError::Full) => {
                report.shed += 1;
                report.shed_by_class[event.class.index()] += 1;
            }
            Err(_) => report.refused += 1,
        }
        if start.elapsed() > target + Duration::from_millis(50) {
            report.late += 1;
        }
    }
    report.wall = start.elapsed();
    report
}
