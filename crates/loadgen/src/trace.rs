//! Trace materialisation: scenario + seed → sorted arrival events.
//!
//! Arrivals are a time-varying Poisson process sampled by *thinning*
//! (Lewis–Shedler): candidates arrive at the scenario's peak rate and
//! are accepted with probability `λ(t) / λ_peak`, where `λ(t)`
//! composes the diurnal cycle with the burst-episode timeline. Both
//! the candidate stream and every per-event draw come from one seeded
//! [`SmallRng`], so a trace is a pure function of `(scenario, seed)` —
//! asserted cheaply via [`Trace::fingerprint`].

use crate::scenario::Scenario;
use crate::zipf::Zipf;
use mtvc_core::Task;
use mtvc_serve::{SloClass, TaskRequest, TenantId};
use rand::{rngs::SmallRng, Rng, RngCore, SeedableRng};
use std::time::Duration;

/// One generated arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Arrival offset from the trace start.
    pub at: Duration,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Task shape and workload.
    pub task: Task,
    /// The tenant's SLO class.
    pub class: SloClass,
    /// Dispatch deadline the class prescribes, if any.
    pub deadline: Option<Duration>,
}

impl TraceEvent {
    /// The [`TaskRequest`] this event submits.
    pub fn request(&self) -> TaskRequest {
        let mut req = TaskRequest::new(self.tenant, self.task).with_class(self.class);
        if let Some(d) = self.deadline {
            req = req.with_deadline(d);
        }
        req
    }
}

/// A materialised workload trace: events sorted by arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Name of the scenario that generated this trace.
    pub scenario: String,
    /// The seed it was generated under.
    pub seed: u64,
    /// Arrival events in non-decreasing `at` order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Arrival time of the last event (zero for an empty trace).
    pub fn span(&self) -> Duration {
        self.events.last().map_or(Duration::ZERO, |e| e.at)
    }

    /// Events per [`SloClass`], indexed by [`SloClass::index`].
    pub fn class_counts(&self) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for e in &self.events {
            counts[e.class.index()] += 1;
        }
        counts
    }

    /// Order-sensitive 64-bit digest of every event field. Two traces
    /// fingerprint equal iff they are byte-for-byte the same workload
    /// — the reproducibility check the bench harness asserts.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.seed);
        eat(self.events.len() as u64);
        for e in &self.events {
            eat(e.at.as_nanos() as u64);
            eat(u64::from(e.tenant.0));
            eat(task_code(&e.task));
            eat(e.class.index() as u64);
            eat(e.deadline.map_or(u64::MAX, |d| d.as_nanos() as u64));
        }
        h
    }
}

/// Stable numeric encoding of a task's shape and workload.
fn task_code(t: &Task) -> u64 {
    // The shape (workload stripped) distinguishes variants and their
    // parameters; hashing its debug form avoids a bespoke per-variant
    // encoding that would rot as task types grow.
    let shape = format!("{:?}", t.with_workload(1));
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in shape.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ t.workload().rotate_left(32)
}

/// SplitMix64 — stable per-tenant hashing independent of the arrival
/// RNG stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The tenant's SLO class: a deterministic function of `(seed,
/// tenant)` weighted by the scenario's class mix, so a tenant keeps
/// one class for the whole trace.
fn tenant_class(scenario: &Scenario, seed: u64, tenant: u32) -> SloClass {
    let u = (mix(seed ^ (u64::from(tenant) << 17)) >> 11) as f64 / (1u64 << 53) as f64;
    scenario.classes.pick(u)
}

/// Exponential inter-arrival draw with rate `lambda`.
fn exp_draw<R: RngCore>(rng: &mut R, lambda: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).max(1e-16).ln() / lambda
}

/// Generate the trace for `scenario` under `seed`.
///
/// Panics if the scenario's shape mix is empty.
pub fn generate(scenario: &Scenario, seed: u64) -> Trace {
    assert!(
        !scenario.shapes.is_empty(),
        "scenario '{}' has no task shapes",
        scenario.name
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(u64::from(scenario.tenants), scenario.zipf_exponent);
    let horizon = scenario.duration.as_secs_f64();

    // Burst-episode timeline, drawn up front from its own stream so
    // the arrival thinning below cannot perturb it: alternating
    // calm/burst dwell times, exponential with the configured means.
    let mut burst_windows: Vec<(f64, f64)> = Vec::new();
    if let Some(b) = scenario.bursts {
        let mut brng = SmallRng::seed_from_u64(mix(seed ^ 0xB0B5));
        let mut t = 0.0;
        while t < horizon {
            t += exp_draw(&mut brng, 1.0 / b.mean_calm.as_secs_f64().max(1e-9));
            let start = t;
            t += exp_draw(&mut brng, 1.0 / b.mean_burst.as_secs_f64().max(1e-9));
            if start < horizon {
                burst_windows.push((start, t.min(horizon)));
            }
        }
    }
    let in_burst = |t: f64| {
        // Windows are few and sorted; a scan from the back-half point
        // would micro-optimise what a short linear walk already does.
        burst_windows.iter().any(|&(s, e)| (s..e).contains(&t))
    };
    let rate_at = |t: f64| {
        let diurnal = scenario.diurnal.map_or(1.0, |d| {
            let phase = t / d.period.as_secs_f64().max(1e-9);
            1.0 + d.amplitude * (phase * std::f64::consts::TAU).sin()
        });
        let burst = match scenario.bursts {
            Some(b) if in_burst(t) => b.multiplier,
            _ => 1.0,
        };
        (scenario.base_rate * diurnal * burst).max(0.0)
    };

    let peak = scenario.peak_rate();
    let shape_total: f64 = scenario.shapes.iter().map(|s| s.weight).sum();
    let mut events = Vec::new();
    let mut t = 0.0;
    loop {
        t += exp_draw(&mut rng, peak);
        if t >= horizon {
            break;
        }
        // Thinning: accept this candidate with λ(t)/λ_peak.
        if rng.gen::<f64>() * peak > rate_at(t) {
            continue;
        }
        let tenant = zipf.sample(&mut rng) as u32;
        let class = tenant_class(scenario, seed, tenant);
        let mut pick = rng.gen::<f64>() * shape_total;
        let mix_entry = scenario
            .shapes
            .iter()
            .find(|s| {
                pick -= s.weight;
                pick < 0.0
            })
            .unwrap_or(&scenario.shapes[0]);
        let workload = if mix_entry.workload.start() == mix_entry.workload.end() {
            *mix_entry.workload.start()
        } else {
            rng.gen_range(mix_entry.workload.clone())
        };
        events.push(TraceEvent {
            at: Duration::from_secs_f64(t),
            tenant: TenantId(tenant),
            task: mix_entry.shape.with_workload(workload),
            class,
            deadline: scenario.classes.deadlines[class.index()],
        });
    }
    Trace {
        scenario: scenario.name.clone(),
        seed,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::new("test", 500, 200.0, Duration::from_secs(5))
            .with_zipf_exponent(1.1)
            .with_diurnal(Duration::from_secs(2), 0.6)
            .with_bursts(Duration::from_millis(800), Duration::from_millis(300), 2.5)
            .with_shape(Task::mssp(1), 2.0, 1..=4)
            .with_shape(Task::bppr(1), 1.0, 2..=8)
            .with_shape(Task::bkhs(1), 0.5, 1..=2)
    }

    #[test]
    fn identical_seeds_reproduce_identical_traces() {
        let s = scenario();
        let a = generate(&s, 0xFEED);
        let b = generate(&s, 0xFEED);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = generate(&s, 0xFEED + 1);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn events_are_time_ordered_within_horizon() {
        let t = generate(&scenario(), 3);
        assert!(!t.is_empty());
        assert!(t.span() < Duration::from_secs(5));
        for w in t.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn volume_tracks_expectation() {
        let s = scenario();
        let t = generate(&s, 11);
        let expect = s.expected_requests();
        let got = t.len() as f64;
        // Poisson noise plus diurnal phase effects: stay within ±40 %.
        assert!(
            got > expect * 0.6 && got < expect * 1.4,
            "got {got} events, expected ≈{expect}"
        );
    }

    #[test]
    fn tenant_classes_are_stable_and_deadlines_match() {
        let s = scenario();
        let t = generate(&s, 21);
        let mut seen: std::collections::HashMap<u32, SloClass> = Default::default();
        for e in &t.events {
            let prior = seen.insert(e.tenant.0, e.class);
            if let Some(p) = prior {
                assert_eq!(p, e.class, "tenant {} switched class", e.tenant.0);
            }
            assert_eq!(e.deadline, s.classes.deadlines[e.class.index()]);
        }
        let counts = t.class_counts();
        assert!(counts.iter().sum::<u64>() == t.len() as u64);
    }

    #[test]
    fn zipf_population_is_skewed() {
        let t = generate(&scenario(), 5);
        let head: usize = t.events.iter().filter(|e| e.tenant.0 < 10).count();
        // 10 of 500 tenants (2 %) should carry far more than 2 % of
        // the traffic under Zipf(1.1).
        assert!(
            head * 5 > t.len(),
            "head tenants carried {head}/{} events",
            t.len()
        );
    }
}
