//! O(1) approximate Zipf sampling over arbitrarily large rank spaces.
//!
//! Tenant populations in multi-tenant serving follow a power law: a
//! handful of tenants produce most of the traffic, with a long tail of
//! occasional ones. Sampling ranks Zipf-distributed with a per-rank
//! probability table costs O(n) memory and setup — untenable for the
//! "millions of tenants" scenarios the harness targets. This sampler
//! instead inverts the CDF of the *continuous* density `x^-s` on
//! `[1, n+1)` analytically, then floors to a rank; for `n ≳ 100` the
//! rank frequencies track the discrete Zipf law to within a few
//! percent, which is more fidelity than any synthetic tenant model
//! deserves, at O(1) per draw and O(1) memory.

use rand::{Rng, RngCore};

/// Approximate Zipf sampler over ranks `0..n` with exponent `s > 0`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `(n+1)^(1-s) − 1`, precomputed (unused when `s ≈ 1`).
    span: f64,
    /// `ln(n+1)`, precomputed for the `s ≈ 1` branch.
    ln_n1: f64,
}

/// Exponents this close to 1 use the logarithmic inversion (the
/// general-form denominator `1 − s` degenerates there).
const UNIT_EPS: f64 = 1e-9;

impl Zipf {
    /// A sampler over ranks `0..n` (rank 0 most popular) with
    /// exponent `s`. Panics if `n == 0`, `s` is not finite, or
    /// `s <= 0`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be > 0");
        let n1 = (n + 1) as f64;
        Zipf {
            n,
            s,
            span: n1.powf(1.0 - s) - 1.0,
            ln_n1: n1.ln(),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// Draw one rank in `0..n`.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen::<f64>();
        self.rank_of(u)
    }

    /// The rank the inverse CDF maps `u ∈ [0, 1)` to. Exposed so
    /// tests can probe the mapping without an RNG.
    pub fn rank_of(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        let x = if (self.s - 1.0).abs() < UNIT_EPS {
            // F(x) = ln x / ln(n+1)  ⇒  x = (n+1)^u
            (u * self.ln_n1).exp()
        } else {
            // F(x) = (x^(1−s) − 1) / ((n+1)^(1−s) − 1)
            (1.0 + u * self.span).powf(1.0 / (1.0 - self.s))
        };
        // x ∈ [1, n+1) ⇒ rank ∈ [0, n).
        (x.floor() as u64).clamp(1, self.n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn ranks_stay_in_bounds() {
        let z = Zipf::new(1_000_000, 1.1);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1_000_000);
        }
        // Degenerate single-rank space.
        let one = Zipf::new(1, 2.0);
        assert_eq!(one.sample(&mut rng), 0);
    }

    #[test]
    fn same_seed_same_stream() {
        let z = Zipf::new(10_000, 0.9);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u64; 4]; // rank 0, 1–9, 10–99, rest
        for _ in 0..50_000 {
            match z.sample(&mut rng) {
                0 => counts[0] += 1,
                1..=9 => counts[1] += 1,
                10..=99 => counts[2] += 1,
                _ => counts[3] += 1,
            }
        }
        // Under Zipf(1, 1000) each decade carries roughly equal mass;
        // rank 0 alone should beat the entire 900-rank tail bucket's
        // per-rank average by orders of magnitude.
        assert!(counts[0] > 2_000, "head rank starved: {counts:?}");
        assert!(
            counts[0] as f64 > counts[3] as f64 / 90.0,
            "no head skew: {counts:?}"
        );
    }

    #[test]
    fn inverse_cdf_is_monotone() {
        let z = Zipf::new(500, 1.3);
        let mut last = 0;
        for i in 0..100 {
            let r = z.rank_of(i as f64 / 100.0);
            assert!(r >= last, "rank_of not monotone at u={i}/100");
            last = r;
        }
        assert_eq!(z.rank_of(0.0), 0);
        assert_eq!(z.rank_of(1.0 - 1e-13), 499);
    }
}
