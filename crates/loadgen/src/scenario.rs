//! Workload scenario descriptions.
//!
//! A [`Scenario`] is the declarative half of the generator: *what* the
//! traffic looks like — who sends (Zipf tenant population), when
//! (base rate modulated by a diurnal cycle and burst episodes), and
//! what they ask for (task-shape mix, SLO class mix, per-class
//! deadlines). [`crate::generate`] turns it plus a seed into a
//! concrete [`crate::Trace`].

use mtvc_core::Task;
use mtvc_serve::SloClass;
use std::ops::RangeInclusive;
use std::time::Duration;

/// Sinusoidal rate modulation mimicking a day/night cycle: the
/// instantaneous rate is `base · (1 + amplitude · sin(2πt/period))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalSpec {
    /// One full cycle (a scaled-down "day").
    pub period: Duration,
    /// Peak-to-baseline swing in `[0, 1]` (1 ⇒ the trough is silent).
    pub amplitude: f64,
}

/// Correlated burst episodes: a two-state (calm/burst) renewal process
/// with exponentially distributed dwell times; during a burst the
/// instantaneous rate is multiplied by `multiplier`. Bursts are
/// *correlated* load in the sense that every tenant's arrivals
/// intensify together — the hard case for admission control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Mean dwell time in the calm state.
    pub mean_calm: Duration,
    /// Mean dwell time in the burst state.
    pub mean_burst: Duration,
    /// Rate multiplier while bursting (≥ 1).
    pub multiplier: f64,
}

/// One entry of the task-shape mix: a shape template drawn with
/// probability proportional to `weight`, its per-request workload
/// uniform in `workload`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeMix {
    /// Shape template (its own workload field is ignored).
    pub shape: Task,
    /// Relative draw weight (> 0).
    pub weight: f64,
    /// Per-request workload range (units of the shape: sources for
    /// MSSP/BKHS, walk batches for BPPR).
    pub workload: RangeInclusive<u64>,
}

/// How tenants split into SLO classes and what deadline each class
/// carries. A tenant's class is a deterministic function of its id
/// (and the trace seed), so the same tenant keeps its class across
/// the whole trace — classes describe *tenants*, not requests.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMix {
    /// Relative population weight per class, indexed by
    /// [`SloClass::index`].
    pub weights: [f64; 3],
    /// Dispatch deadline attached to each class's requests (`None` ⇒
    /// deadline-free), indexed by [`SloClass::index`].
    pub deadlines: [Option<Duration>; 3],
}

impl Default for ClassMix {
    /// 10 % interactive (tight deadline), 60 % standard (loose
    /// deadline), 30 % batch (no deadline).
    fn default() -> ClassMix {
        ClassMix {
            weights: [0.1, 0.6, 0.3],
            deadlines: [
                Some(Duration::from_millis(250)),
                Some(Duration::from_secs(2)),
                None,
            ],
        }
    }
}

impl ClassMix {
    /// The class a cumulative-weight coordinate `u ∈ [0, 1)` falls in.
    pub(crate) fn pick(&self, u: f64) -> SloClass {
        let total: f64 = self.weights.iter().sum();
        let mut acc = 0.0;
        for class in SloClass::ALL {
            acc += self.weights[class.index()] / total;
            if u < acc {
                return class;
            }
        }
        SloClass::Batch
    }
}

/// A complete workload description. Everything is plain data: two
/// scenarios compare equal iff they generate identical traces under
/// equal seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name, carried into traces and reports.
    pub name: String,
    /// Tenant population size (ranks of the Zipf draw).
    pub tenants: u32,
    /// Zipf exponent of the tenant popularity distribution (larger ⇒
    /// heavier head).
    pub zipf_exponent: f64,
    /// Baseline arrival rate, requests per second.
    pub base_rate: f64,
    /// Trace length.
    pub duration: Duration,
    /// Optional diurnal modulation.
    pub diurnal: Option<DiurnalSpec>,
    /// Optional burst episodes.
    pub bursts: Option<BurstSpec>,
    /// Task-shape mix (must be non-empty to generate).
    pub shapes: Vec<ShapeMix>,
    /// SLO class mix.
    pub classes: ClassMix,
}

impl Scenario {
    /// A scenario with the given envelope and the default mixes: no
    /// diurnal cycle, no bursts, default class split, empty shape mix
    /// (add at least one with [`Scenario::with_shape`]).
    pub fn new(name: impl Into<String>, tenants: u32, base_rate: f64, duration: Duration) -> Self {
        assert!(tenants >= 1, "scenario needs at least one tenant");
        assert!(
            base_rate.is_finite() && base_rate > 0.0,
            "base rate must be positive"
        );
        Scenario {
            name: name.into(),
            tenants,
            zipf_exponent: 1.0,
            base_rate,
            duration,
            diurnal: None,
            bursts: None,
            shapes: Vec::new(),
            classes: ClassMix::default(),
        }
    }

    /// Set the tenant-popularity Zipf exponent.
    pub fn with_zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// Add a diurnal cycle.
    pub fn with_diurnal(mut self, period: Duration, amplitude: f64) -> Self {
        assert!((0.0..=1.0).contains(&amplitude), "amplitude in [0, 1]");
        self.diurnal = Some(DiurnalSpec { period, amplitude });
        self
    }

    /// Add burst episodes.
    pub fn with_bursts(
        mut self,
        mean_calm: Duration,
        mean_burst: Duration,
        multiplier: f64,
    ) -> Self {
        assert!(multiplier >= 1.0, "burst multiplier must be ≥ 1");
        self.bursts = Some(BurstSpec {
            mean_calm,
            mean_burst,
            multiplier,
        });
        self
    }

    /// Add one task shape to the mix.
    pub fn with_shape(mut self, shape: Task, weight: f64, workload: RangeInclusive<u64>) -> Self {
        assert!(weight > 0.0, "shape weight must be positive");
        assert!(*workload.start() >= 1, "workload range must start ≥ 1");
        assert!(workload.start() <= workload.end(), "empty workload range");
        self.shapes.push(ShapeMix {
            shape: shape.with_workload(1),
            weight,
            workload,
        });
        self
    }

    /// Replace the class mix.
    pub fn with_classes(mut self, classes: ClassMix) -> Self {
        self.classes = classes;
        self
    }

    /// Peak instantaneous arrival rate this scenario can reach —
    /// diurnal crest times burst multiplier. The thinning envelope.
    pub fn peak_rate(&self) -> f64 {
        let crest = 1.0 + self.diurnal.map_or(0.0, |d| d.amplitude);
        let burst = self.bursts.map_or(1.0, |b| b.multiplier);
        self.base_rate * crest * burst
    }

    /// Expected request count over the whole trace (bursts averaged
    /// in, diurnal averaging to its baseline).
    pub fn expected_requests(&self) -> f64 {
        let burst_avg = self.bursts.map_or(1.0, |b| {
            let calm = b.mean_calm.as_secs_f64();
            let burst = b.mean_burst.as_secs_f64();
            (calm + burst * b.multiplier) / (calm + burst).max(f64::MIN_POSITIVE)
        });
        self.base_rate * burst_avg * self.duration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mix_pick_covers_all_classes() {
        let mix = ClassMix::default();
        assert_eq!(mix.pick(0.0), SloClass::Interactive);
        assert_eq!(mix.pick(0.3), SloClass::Standard);
        assert_eq!(mix.pick(0.95), SloClass::Batch);
        assert_eq!(mix.pick(1.0), SloClass::Batch);
    }

    #[test]
    fn peak_rate_composes_diurnal_and_bursts() {
        let s = Scenario::new("s", 10, 100.0, Duration::from_secs(10))
            .with_diurnal(Duration::from_secs(5), 0.5)
            .with_bursts(Duration::from_secs(2), Duration::from_secs(1), 3.0);
        assert!((s.peak_rate() - 100.0 * 1.5 * 3.0).abs() < 1e-9);
        // Burst-averaged expectation: (2 + 1·3)/(2 + 1) = 5/3.
        assert!((s.expected_requests() - 100.0 * 5.0 / 3.0 * 10.0).abs() < 1e-6);
    }
}
