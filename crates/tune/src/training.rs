//! The light-weight training phase (§5 "Training").
//!
//! "We conduct training on the task with workload 2^r (1 ≤ r ≤ h)
//! where W ≫ 2^h … Through the training we collect h sets of runtime
//! statistics, including the maximum memory {y_r} and the maximum
//! residual memory {y'_r}."

use mtvc_cluster::ClusterSpec;
use mtvc_core::{run_job, BatchSchedule, JobSpec, Task};
use mtvc_graph::Graph;
use mtvc_metrics::SimTime;
use mtvc_systems::SystemKind;

/// Probe measurements collected by the training phase.
#[derive(Debug, Clone, Default)]
pub struct TrainingData {
    /// Probe workloads `2^r`.
    pub workloads: Vec<f64>,
    /// Max per-machine memory observed for each probe (bytes).
    pub peak_memory: Vec<f64>,
    /// Max per-machine residual after each probe (bytes).
    pub residual: Vec<f64>,
    /// Total simulated time spent training (must stay ≪ evaluation).
    pub training_time: SimTime,
}

impl TrainingData {
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }
}

/// The probe levels `2^1 … 2^h` with `2^h ≤ max(8, W/4)` (the paper's
/// "the condition ensures the training cost is minor"), always at
/// least 3 levels so the 3-parameter fit is constrained.
pub fn probe_workloads(total: u64, task_cap: u64) -> Vec<u64> {
    let cap = (total / 4).max(8).min(task_cap);
    let mut probes = Vec::new();
    let mut w = 2u64;
    while w <= cap {
        probes.push(w);
        w *= 2;
    }
    while probes.len() < 3 {
        // Degenerate tiny workloads: pad with the next powers anyway.
        let next = probes.last().map(|&x| x * 2).unwrap_or(2);
        probes.push(next.min(task_cap.max(2)));
    }
    probes.dedup();
    probes
}

/// Run the probes and collect the §5 statistics.
pub fn train(
    graph: &Graph,
    task: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    seed: u64,
) -> TrainingData {
    let probes = probe_workloads(task.workload(), task.max_workload(graph));
    let mut data = TrainingData::default();
    for &w in &probes {
        let probe_task = task.with_workload(w);
        let spec = JobSpec::new(
            probe_task,
            system,
            cluster.clone(),
            BatchSchedule::full_parallelism(w),
        )
        .with_seed(seed ^ w);
        let result = run_job(graph, &spec);
        // Probes are light by construction; a failed probe would mean
        // even 2^r overloads the cluster, in which case its statistics
        // are still the best available signal.
        data.workloads.push(w as f64);
        data.peak_memory.push(result.stats.peak_memory.as_f64());
        data.residual.push(
            result
                .per_batch
                .first()
                .map(|b| b.residual_max_worker as f64)
                .unwrap_or(0.0),
        );
        data.training_time += result.plot_time();
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    #[test]
    fn probe_levels_are_doubling_and_small() {
        let p = probe_workloads(4096, u64::MAX);
        assert_eq!(p.first(), Some(&2));
        assert!(p.len() >= 3);
        assert!(*p.last().unwrap() <= 1024);
        for w in p.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn probe_levels_respect_task_cap() {
        // MSSP on a 100-vertex graph cannot probe more than 100 sources.
        let p = probe_workloads(4096, 100);
        assert!(p.iter().all(|&w| w <= 100));
    }

    #[test]
    fn tiny_workload_still_three_probes() {
        let p = probe_workloads(8, u64::MAX);
        assert!(p.len() >= 3, "{p:?}");
    }

    #[test]
    fn training_collects_monotone_memory_curve() {
        let g = generators::power_law(200, 900, 2.4, 53);
        let data = train(
            &g,
            Task::bppr(256),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(4),
            3,
        );
        assert!(data.len() >= 3);
        assert!(data.training_time > SimTime::ZERO);
        // Peak memory grows with workload.
        for w in data.peak_memory.windows(2) {
            assert!(
                w[1] >= w[0] * 0.9,
                "memory curve not growing: {:?}",
                data.peak_memory
            );
        }
        // Residual grows with workload too (more walks stored).
        assert!(data.residual.last().unwrap() > data.residual.first().unwrap());
    }
}
