//! Online batch-latency model for the SLO-aware scheduler.
//!
//! The §5 memory model answers *how much fits*; a deadline-aware
//! scheduler also needs *how long it takes*. Every batch the serve
//! layer completes is a fresh `(workload, wall latency)` measurement,
//! and the joint parallelism controller feeds each one back here as a
//! refit point. The model keeps a bounded sliding window and
//! periodically refits a least-squares line
//!
//! ```text
//! latency(W) ≈ a + b·W      (a, b ≥ 0)
//! ```
//!
//! which it can evaluate ([`OnlineLatencyModel::estimate`]) and invert
//! ([`OnlineLatencyModel::invert`]): "what is the largest batch that
//! still finishes inside this deadline slack?" — the question
//! earliest-deadline-first batch sizing asks before every dispatch.
//!
//! A straight line is deliberately the whole model: per-batch wall
//! latency is dominated by per-round fixed cost plus per-unit state
//! and message work, both near-linear in the regime the admission
//! controller already restricts batches to. The fit is closed-form
//! (no iterative optimizer to diverge), deterministic for a given
//! observation sequence, and degrades gracefully: with fewer than two
//! distinct workloads it falls back to a flat mean.

/// A self-refitting linear model of batch wall latency vs workload.
#[derive(Debug, Clone)]
pub struct OnlineLatencyModel {
    /// Intercept: seconds a zero-width batch would still cost.
    a: f64,
    /// Slope: seconds per workload unit.
    b: f64,
    obs_w: Vec<f64>,
    obs_secs: Vec<f64>,
    window: usize,
    refit_every: usize,
    since_refit: usize,
    refits: u64,
}

impl Default for OnlineLatencyModel {
    fn default() -> Self {
        OnlineLatencyModel::new()
    }
}

impl OnlineLatencyModel {
    /// Observations kept in the sliding window by default.
    pub const DEFAULT_WINDOW: usize = 64;
    /// Observations between refits by default.
    pub const DEFAULT_REFIT_EVERY: usize = 4;

    /// An empty model. Until the first refit it estimates zero latency
    /// for every workload — i.e. it never *restricts* a batch before
    /// real measurements exist.
    pub fn new() -> OnlineLatencyModel {
        OnlineLatencyModel {
            a: 0.0,
            b: 0.0,
            obs_w: Vec::new(),
            obs_secs: Vec::new(),
            window: Self::DEFAULT_WINDOW,
            refit_every: Self::DEFAULT_REFIT_EVERY,
            since_refit: 0,
            refits: 0,
        }
    }

    /// Override the observation window length (≥ 2).
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 2);
        self.window = window;
        self
    }

    /// Override the refit cadence (≥ 1 observations between refits).
    pub fn with_refit_every(mut self, every: usize) -> Self {
        assert!(every >= 1);
        self.refit_every = every;
        self
    }

    /// Successful refits so far.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Observations currently in the window.
    pub fn observations(&self) -> usize {
        self.obs_w.len()
    }

    /// Whether at least one refit has produced a usable line.
    pub fn is_fitted(&self) -> bool {
        self.refits > 0
    }

    /// Record one completed batch: `workload` units took `secs` of wall
    /// time. Non-finite or negative samples are ignored (a panicked
    /// worker clock must not poison the fit).
    pub fn observe(&mut self, workload: u64, secs: f64) {
        if !secs.is_finite() || secs < 0.0 || workload == 0 {
            return;
        }
        if self.obs_w.len() == self.window {
            self.obs_w.remove(0);
            self.obs_secs.remove(0);
        }
        self.obs_w.push(workload as f64);
        self.obs_secs.push(secs);
        self.since_refit += 1;
        if self.since_refit >= self.refit_every {
            self.since_refit = 0;
            self.refit();
        }
    }

    /// Predicted wall latency (seconds) of a `workload`-unit batch.
    /// Zero until the first refit.
    pub fn estimate(&self, workload: u64) -> f64 {
        self.a + self.b * workload as f64
    }

    /// Largest workload whose predicted latency stays within `budget`
    /// seconds. `None` when the model is unfitted (no data — no
    /// restriction) or the budget is below even the intercept (then the
    /// caller should dispatch the minimum batch and hope; returning
    /// `Some(0)` would deadlock the former).
    pub fn invert(&self, budget: f64) -> Option<u64> {
        if !self.is_fitted() || budget <= self.a {
            return None;
        }
        if self.b <= 0.0 {
            // Flat line under budget: latency does not grow with W.
            return None;
        }
        Some(((budget - self.a) / self.b).floor().max(1.0) as u64)
    }

    /// Closed-form least squares over the window; clamps `a`, `b` to be
    /// non-negative (a latency line sloping down with workload is
    /// noise, and a negative intercept would invert to absurd widths).
    fn refit(&mut self) {
        let n = self.obs_w.len() as f64;
        if n < 2.0 {
            return;
        }
        let mean_w = self.obs_w.iter().sum::<f64>() / n;
        let mean_s = self.obs_secs.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&w, &s) in self.obs_w.iter().zip(&self.obs_secs) {
            sxx += (w - mean_w) * (w - mean_w);
            sxy += (w - mean_w) * (s - mean_s);
        }
        let (a, b) = if sxx > f64::EPSILON {
            let b = (sxy / sxx).max(0.0);
            ((mean_s - b * mean_w).max(0.0), b)
        } else {
            // Every observation at the same workload: flat mean.
            (mean_s.max(0.0), 0.0)
        };
        if a.is_finite() && b.is_finite() {
            self.a = a;
            self.b = b;
            self.refits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfitted_model_never_restricts() {
        let m = OnlineLatencyModel::new();
        assert_eq!(m.estimate(1_000), 0.0);
        assert_eq!(m.invert(0.001), None);
        assert!(!m.is_fitted());
    }

    #[test]
    fn recovers_a_linear_law() {
        let mut m = OnlineLatencyModel::new().with_refit_every(1);
        for w in (10..200u64).step_by(10) {
            m.observe(w, 0.05 + 0.002 * w as f64);
        }
        assert!(m.is_fitted());
        let est = m.estimate(100);
        let want = 0.05 + 0.2;
        assert!((est - want).abs() < 0.01 * want, "{est} vs {want}");
        // Inversion is consistent with evaluation.
        let w = m.invert(want).unwrap();
        assert!((95..=100).contains(&w), "{w}");
    }

    #[test]
    fn budget_below_intercept_is_none_not_zero() {
        let mut m = OnlineLatencyModel::new().with_refit_every(1);
        for w in [10u64, 20, 30, 40] {
            m.observe(w, 1.0 + 0.01 * w as f64);
        }
        assert_eq!(m.invert(0.5), None);
        assert!(m.invert(2.0).unwrap() >= 1);
    }

    #[test]
    fn window_is_bounded_and_tracks_drift() {
        let mut m = OnlineLatencyModel::new().with_window(8).with_refit_every(1);
        for w in 1..100u64 {
            m.observe(w, 0.001 * w as f64);
        }
        assert_eq!(m.observations(), 8);
        // Latency regime shifts 10×; the windowed fit follows.
        for w in 1..20u64 {
            m.observe(w * 10, 0.01 * (w * 10) as f64);
        }
        let est = m.estimate(100);
        assert!((est - 1.0).abs() < 0.2, "{est}");
    }

    #[test]
    fn pathological_samples_are_ignored() {
        let mut m = OnlineLatencyModel::new().with_refit_every(1);
        m.observe(10, f64::NAN);
        m.observe(10, -1.0);
        m.observe(0, 1.0);
        assert_eq!(m.observations(), 0);
        assert!(!m.is_fitted());
    }

    #[test]
    fn identical_workloads_fit_a_flat_mean() {
        let mut m = OnlineLatencyModel::new().with_refit_every(1);
        for _ in 0..4 {
            m.observe(50, 0.2);
        }
        assert!((m.estimate(50) - 0.2).abs() < 1e-12);
        assert!((m.estimate(5_000) - 0.2).abs() < 1e-12);
        assert_eq!(m.invert(1.0), None, "flat line never restricts");
    }
}
