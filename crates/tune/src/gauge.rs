//! The §4.10 "practical guidelines" workload gauge.
//!
//! "The first step is to gauge a suitable workload that will not
//! overload the system. This can be monitored via a trial-and-error
//! process using a binary search for the workload. In each trial, the
//! overload situation can be detected by checking the memory
//! consumption or disk utilization in the master machine."
//!
//! [`gauge_max_workload`] binary-searches the largest single-batch
//! workload that completes without overloading (memory) or saturating
//! the disk (out-of-core systems), which is a model-free alternative to
//! the §5 tuner's first batch.

use mtvc_cluster::ClusterSpec;
use mtvc_core::{run_job, BatchSchedule, JobSpec, Task};
use mtvc_graph::Graph;
use mtvc_metrics::SimTime;
use mtvc_systems::SystemKind;

/// Outcome of one probe trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialVerdict {
    /// Completed with headroom.
    Healthy,
    /// Completed but with the warning signs §4.10 watches for:
    /// memory above the usable threshold or disk pinned at 100%.
    Strained,
    /// Overloaded or overflowed.
    Failed,
}

/// Result of the gauge.
#[derive(Debug, Clone)]
pub struct GaugeResult {
    /// Largest workload that ran [`TrialVerdict::Healthy`].
    pub max_healthy_workload: u64,
    /// Trials performed: (workload, verdict).
    pub trials: Vec<(u64, TrialVerdict)>,
    /// Total simulated time spent probing.
    pub probe_time: SimTime,
}

/// Classify one single-batch run per the §4.10 monitoring rules.
pub fn classify(
    graph: &Graph,
    task: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    seed: u64,
) -> (TrialVerdict, SimTime) {
    let w = task.workload();
    let spec = JobSpec::new(
        task,
        system,
        cluster.clone(),
        BatchSchedule::full_parallelism(w),
    )
    .with_seed(seed);
    let r = run_job(graph, &spec);
    let time = r.plot_time();
    if !r.outcome.is_completed() {
        return (TrialVerdict::Failed, time);
    }
    let usable = cluster.machine.usable_memory();
    let memory_strained = r.stats.peak_memory > usable;
    let disk_strained = r.stats.max_disk_utilization >= 0.99;
    if memory_strained || disk_strained {
        (TrialVerdict::Strained, time)
    } else {
        (TrialVerdict::Healthy, time)
    }
}

/// Binary-search the largest healthy single-batch workload in
/// `[1, upper]`.
///
/// Doubles up from 1 until the first unhealthy trial (or `upper`),
/// then bisects. Deterministic; typically `O(log upper)` trials, each a
/// full (simulated) run of the probe workload.
pub fn gauge_max_workload(
    graph: &Graph,
    task_shape: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    upper: u64,
    seed: u64,
) -> GaugeResult {
    assert!(upper >= 1);
    let mut trials = Vec::new();
    let mut probe_time = SimTime::ZERO;
    let try_w = |w: u64, trials: &mut Vec<(u64, TrialVerdict)>, t: &mut SimTime| {
        let (verdict, time) = classify(
            graph,
            task_shape.with_workload(w),
            system,
            cluster,
            seed ^ w,
        );
        *t += time;
        trials.push((w, verdict));
        verdict
    };

    // Exponential ramp.
    let mut lo = 0u64; // largest known-healthy
    let mut hi = None; // smallest known-unhealthy
    let mut w = 1u64;
    loop {
        let verdict = try_w(w, &mut trials, &mut probe_time);
        if verdict == TrialVerdict::Healthy {
            lo = w;
            if w >= upper {
                break;
            }
            w = (w * 2).min(upper);
        } else {
            hi = Some(w);
            break;
        }
    }
    // Bisect between lo and hi.
    if let Some(mut hi) = hi {
        while hi - lo > 1 && hi > 1 {
            let mid = lo + (hi - lo) / 2;
            if mid == lo {
                break;
            }
            let verdict = try_w(mid, &mut trials, &mut probe_time);
            if verdict == TrialVerdict::Healthy {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
    GaugeResult {
        max_healthy_workload: lo,
        trials,
        probe_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    fn setup() -> (Graph, ClusterSpec) {
        let g = generators::power_law(300, 1400, 2.4, 71);
        // Small machines so the gauge finds a real boundary.
        let cluster = ClusterSpec::galaxy(4).scaled(2048.0);
        (g, cluster)
    }

    #[test]
    fn gauge_finds_a_boundary() {
        let (g, cluster) = setup();
        let r = gauge_max_workload(
            &g,
            Task::bppr(1),
            SystemKind::PregelPlus,
            &cluster,
            1 << 20,
            3,
        );
        assert!(r.max_healthy_workload >= 1);
        assert!(r.max_healthy_workload < 1 << 20, "boundary should exist");
        // The workload just confirmed healthy must classify healthy.
        let (v, _) = classify(
            &g,
            Task::bppr(r.max_healthy_workload),
            SystemKind::PregelPlus,
            &cluster,
            3 ^ r.max_healthy_workload,
        );
        assert_eq!(v, TrialVerdict::Healthy);
        assert!(r.probe_time > SimTime::ZERO);
    }

    #[test]
    fn gauge_respects_upper_bound_when_everything_fits() {
        let (g, _) = setup();
        // Roomy cluster: everything is healthy up to the cap.
        let cluster = ClusterSpec::galaxy(8);
        let r = gauge_max_workload(&g, Task::bppr(1), SystemKind::PregelPlus, &cluster, 64, 5);
        assert_eq!(r.max_healthy_workload, 64);
    }

    #[test]
    fn trials_grow_logarithmically() {
        let (g, cluster) = setup();
        let r = gauge_max_workload(
            &g,
            Task::bppr(1),
            SystemKind::PregelPlus,
            &cluster,
            1 << 16,
            7,
        );
        assert!(
            r.trials.len() <= 2 * 17,
            "too many trials: {}",
            r.trials.len()
        );
    }
}
