//! Batch-schedule computation from the fitted memory models
//! (Equations 1–6 of §5).
//!
//! With `M*(W) = a₁W^b₁ + c₁` (peak memory of a workload-`W` batch) and
//! `M_r*(W) = a₂W^b₂ + c₂` (residual left by `W` accumulated workload),
//! each batch takes the largest workload whose predicted peak fits under
//! the overload threshold `p·M` after subtracting the residual of all
//! earlier batches:
//!
//! ```text
//! W_{i+1} = ((p·M − M_r*(Σ_{j≤i} W_j) − c₁) / a₁)^(1/b₁)     (Eq. 6)
//! ```

use crate::lma::ExpFit;
use serde::{Deserialize, Serialize};

/// The two fitted curves of §5.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// `M*`: peak per-machine memory as a function of batch workload.
    pub peak: ExpFit,
    /// `M_r*`: max per-machine residual as a function of *accumulated*
    /// workload.
    pub residual: ExpFit,
}

/// Scheduling failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduleError {
    /// Even an empty cluster cannot fit the first unit of work under
    /// `p·M` according to the model.
    Infeasible,
    /// The residual of already-scheduled work leaves no headroom for
    /// the remaining workload within the batch cap.
    OutOfHeadroom { scheduled: u64, remaining: u64 },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Infeasible => write!(f, "model predicts no feasible first batch"),
            ScheduleError::OutOfHeadroom {
                scheduled,
                remaining,
            } => write!(
                f,
                "residual memory exhausts headroom after {scheduled} units ({remaining} left)"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Compute the optimized schedule `S* = {W₁, …, Wₜ}` for `total`
/// workload units under overload threshold `p` and physical capacity
/// `capacity_bytes` per machine.
pub fn compute_schedule(
    model: &MemoryModel,
    total: u64,
    p: f64,
    capacity_bytes: f64,
    max_batches: usize,
) -> Result<Vec<u64>, ScheduleError> {
    assert!(total >= 1, "workload must be positive");
    assert!((0.0..=1.0).contains(&p) && p > 0.0, "p in (0, 1]");
    assert!(max_batches >= 1);
    let budget_cap = p * capacity_bytes;

    let mut schedule: Vec<u64> = Vec::new();
    let mut scheduled = 0u64;
    while scheduled < total && schedule.len() < max_batches {
        // Headroom after the residual of everything scheduled so far
        // (Equation 5).
        let residual = if scheduled == 0 {
            // Model floor: no batches run yet. Use the fitted constant
            // only if it is positive (c₂ can be slightly negative from
            // fitting noise).
            model.residual.c.max(0.0)
        } else {
            model.residual.eval(scheduled as f64).max(0.0)
        };
        let headroom = budget_cap - residual;
        // Invert M* at the headroom (Equation 6).
        let w = model
            .peak
            .invert(headroom)
            .map(|w| w.floor())
            .unwrap_or(0.0);
        if w < 1.0 {
            return if scheduled == 0 {
                Err(ScheduleError::Infeasible)
            } else {
                Err(ScheduleError::OutOfHeadroom {
                    scheduled,
                    remaining: total - scheduled,
                })
            };
        }
        let w = (w as u64).min(total - scheduled);
        schedule.push(w);
        scheduled += w;
    }
    if scheduled < total {
        return Err(ScheduleError::OutOfHeadroom {
            scheduled,
            remaining: total - scheduled,
        });
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(a: f64, b: f64, c: f64) -> ExpFit {
        ExpFit { a, b, c, sse: 0.0 }
    }

    #[test]
    fn single_batch_when_everything_fits() {
        // Peak = W + 0, capacity 10_000, p=1: W1 = 10_000 >= total.
        let model = MemoryModel {
            peak: fit(1.0, 1.0, 0.0),
            residual: fit(0.1, 1.0, 0.0),
        };
        let s = compute_schedule(&model, 5_000, 1.0, 10_000.0, 64).unwrap();
        assert_eq!(s, vec![5_000]);
    }

    #[test]
    fn batches_shrink_monotonically() {
        // Residual grows linearly: later batches must shrink, like the
        // paper's example division [2747, 1388, 644, 266, 75].
        let model = MemoryModel {
            peak: fit(1.0, 1.0, 0.0),
            residual: fit(0.5, 1.0, 0.0),
        };
        let s = compute_schedule(&model, 5_000, 0.9, 4_000.0, 64).unwrap();
        assert!(s.len() > 1);
        assert_eq!(s.iter().sum::<u64>(), 5_000);
        for w in s.windows(2) {
            assert!(w[0] >= w[1], "not monotone: {s:?}");
        }
    }

    #[test]
    fn infeasible_when_floor_exceeds_budget() {
        let model = MemoryModel {
            peak: fit(1.0, 1.0, 10_000.0), // c1 alone above the budget
            residual: fit(0.0, 1.0, 0.0),
        };
        assert_eq!(
            compute_schedule(&model, 100, 0.9, 5_000.0, 64),
            Err(ScheduleError::Infeasible)
        );
    }

    #[test]
    fn out_of_headroom_when_residual_saturates() {
        // Residual eats the entire budget after ~1800 units.
        let model = MemoryModel {
            peak: fit(1.0, 1.0, 0.0),
            residual: fit(1.0, 1.0, 0.0),
        };
        let err = compute_schedule(&model, 10_000, 0.9, 2_000.0, 64).unwrap_err();
        match err {
            ScheduleError::OutOfHeadroom { scheduled, .. } => assert!(scheduled > 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn respects_max_batches() {
        let model = MemoryModel {
            peak: fit(1.0, 1.0, 0.0),
            residual: fit(0.0, 1.0, 0.0),
        };
        // Each batch caps at 10 units; 100 total needs 10 batches but
        // only 3 allowed.
        let r = compute_schedule(&model, 100, 1.0, 10.0, 3);
        assert!(matches!(r, Err(ScheduleError::OutOfHeadroom { .. })));
    }

    #[test]
    fn superlinear_peak_model() {
        // Peak ∝ W^1.5: the first batch solves the inverse power.
        let model = MemoryModel {
            peak: fit(2.0, 1.5, 100.0),
            residual: fit(0.2, 1.0, 0.0),
        };
        let s = compute_schedule(&model, 400, 0.9, 10_000.0, 64).unwrap();
        assert_eq!(s.iter().sum::<u64>(), 400);
        // W1 = ((9000-100)/2)^(2/3) ≈ 270.9 → 270
        assert_eq!(s[0], 270);
    }
}
