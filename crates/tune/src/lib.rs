//! The cost-based tuning framework of §5 ("Case Study: Tuning Pregel+").
//!
//! Given a workload `W`, the framework learns an optimized batch
//! execution strategy `S* = {W₁, …, Wₜ}` with `Σ Wᵢ = W`:
//!
//! 1. **Training** ([`training`]): run light probe workloads `2^r`
//!    (`2^r ≪ W`) and record the maximum per-machine memory `M*(2^r)`
//!    and maximum residual memory `M_r*(2^r)`.
//! 2. **Fitting** ([`lma`]): model both as exponential functions
//!    `a·W^b + c` and estimate `(a, b, c)` with the standard
//!    Levenberg–Marquardt algorithm, exactly as §5 prescribes.
//! 3. **Scheduling** ([`schedule`]): solve Equations 1–6 iteratively —
//!    each batch takes the largest workload whose predicted peak
//!    memory fits under `p·M` after subtracting the residual of all
//!    earlier batches; later batches shrink monotonically.
//! 4. **End-to-end** ([`tuner`]): train, fit, schedule, and execute,
//!    for the Figure 12 comparison against Full-Parallelism.
//!
//! The §4.10 "practical guidelines" alternative — a model-free binary
//! search for the largest workload that does not strain the cluster —
//! lives in [`gauge`].
//!
//! Serving deployments extend the offline fits with two online models:
//! [`online`] refreshes the memory curves from observed batch peaks,
//! and [`latency`] learns batch wall latency vs workload from the
//! scheduler's completed-batch measurements so deadline-aware batch
//! sizing can invert "how much fits in this slack?".

pub mod gauge;
pub mod latency;
pub mod lma;
pub mod online;
pub mod schedule;
pub mod training;
pub mod tuner;

pub use gauge::{gauge_max_workload, GaugeResult, TrialVerdict};
pub use latency::OnlineLatencyModel;
pub use lma::{fit_exponential, ExpFit, FitError};
pub use online::OnlineMemoryModel;
pub use schedule::{compute_schedule, MemoryModel, ScheduleError};
pub use training::{train, TrainingData};
pub use tuner::{tune, TunedSchedule, TunerConfig};
