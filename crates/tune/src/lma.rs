//! Levenberg–Marquardt fitting of `f(x) = a·x^b + c`.
//!
//! §5 "Training": "We estimate the exponential function parameters by
//! the standard Levenberg-Marquardt algorithm (LMA). … In practice,
//! (a, b, c) will be initialized randomly and updated in a
//! gradient-descent manner until they converge or maximum trials are
//! reached." We run LM from several deterministic-seeded restarts and
//! keep the best fit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fitted exponential model `a·x^b + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpFit {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Sum of squared residuals at convergence.
    pub sse: f64,
}

impl ExpFit {
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x.powf(self.b) + self.c
    }

    /// Invert: the `x` with `eval(x) = y`. `None` when `y` is below the
    /// curve's floor or the model is degenerate.
    pub fn invert(&self, y: f64) -> Option<f64> {
        if self.a <= 0.0 || self.b <= 0.0 {
            return None;
        }
        let t = (y - self.c) / self.a;
        if t <= 0.0 {
            None
        } else {
            Some(t.powf(1.0 / self.b))
        }
    }
}

/// Fitting failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than 3 samples cannot constrain 3 parameters.
    TooFewSamples,
    /// Inputs contained non-finite or non-positive x values.
    BadInput,
    /// No restart converged to a finite fit.
    DidNotConverge,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "need at least 3 samples"),
            FitError::BadInput => write!(f, "x values must be positive and finite"),
            FitError::DidNotConverge => write!(f, "LMA did not converge"),
        }
    }
}

impl std::error::Error for FitError {}

fn sse_of(xs: &[f64], ys: &[f64], a: f64, b: f64, c: f64) -> f64 {
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let r = y - (a * x.powf(b) + c);
            r * r
        })
        .sum()
}

/// Solve a 3×3 linear system by Gaussian elimination with partial
/// pivoting. Returns `None` for singular systems.
fn solve3(mut m: [[f64; 3]; 3], mut rhs: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        // Pivot.
        let mut piv = col;
        for row in col + 1..3 {
            if m[row][col].abs() > m[piv][col].abs() {
                piv = row;
            }
        }
        if m[piv][col].abs() < 1e-14 {
            return None;
        }
        m.swap(col, piv);
        rhs.swap(col, piv);
        // Eliminate.
        for row in col + 1..3 {
            let f = m[row][col] / m[col][col];
            let pivot_row = m[col];
            for (k, mk) in m[row].iter_mut().enumerate().skip(col) {
                *mk -= f * pivot_row[k];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f64; 3];
    for col in (0..3).rev() {
        let mut s = rhs[col];
        for k in col + 1..3 {
            s -= m[col][k] * x[k];
        }
        x[col] = s / m[col][col];
    }
    Some(x)
}

/// One LM descent from an initial guess. Returns the refined fit.
fn lm_descent(xs: &[f64], ys: &[f64], mut a: f64, mut b: f64, mut c: f64) -> ExpFit {
    let mut lambda = 1e-3;
    let mut sse = sse_of(xs, ys, a, b, c);
    for _ in 0..300 {
        // Build JᵀJ and Jᵀr. Linearization per §5 Equation 4.
        let mut jtj = [[0.0f64; 3]; 3];
        let mut jtr = [0.0f64; 3];
        for (&x, &y) in xs.iter().zip(ys) {
            let xb = x.powf(b);
            let f = a * xb + c;
            let r = y - f;
            let j = [xb, a * xb * x.ln(), 1.0];
            for (i, ji) in j.iter().enumerate() {
                for (k, jk) in j.iter().enumerate() {
                    jtj[i][k] += ji * jk;
                }
                jtr[i] += ji * r;
            }
        }
        // Damped normal equations.
        let mut damped = jtj;
        for (i, row) in damped.iter_mut().enumerate() {
            row[i] += lambda * (jtj[i][i].max(1e-12));
        }
        let Some(delta) = solve3(damped, jtr) else {
            lambda *= 10.0;
            continue;
        };
        let (na, nb, nc) = (a + delta[0], (b + delta[1]).clamp(0.01, 6.0), c + delta[2]);
        let new_sse = sse_of(xs, ys, na, nb, nc);
        if new_sse.is_finite() && new_sse < sse {
            let rel = (sse - new_sse) / sse.max(1e-30);
            a = na;
            b = nb;
            c = nc;
            sse = new_sse;
            lambda = (lambda / 3.0).max(1e-12);
            if rel < 1e-12 {
                break;
            }
        } else {
            lambda *= 4.0;
            if lambda > 1e12 {
                break;
            }
        }
    }
    ExpFit { a, b, c, sse }
}

/// Fit `y ≈ a·x^b + c` to the samples.
///
/// Deterministic: restarts are seeded from `seed`.
pub fn fit_exponential(xs: &[f64], ys: &[f64], seed: u64) -> Result<ExpFit, FitError> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return Err(FitError::TooFewSamples);
    }
    if xs.iter().any(|&x| !x.is_finite() || x <= 0.0) || ys.iter().any(|y| !y.is_finite()) {
        return Err(FitError::BadInput);
    }

    let (x_min, x_max) = xs.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| {
        (lo.min(x), hi.max(x))
    });
    let (y_min, y_max) = ys
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
            (lo.min(y), hi.max(y))
        });

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best: Option<ExpFit> = None;
    // Structured guesses for b (sub-linear, linear, super-linear) plus
    // random restarts, as §5 describes random initialization.
    let mut guesses: Vec<f64> = vec![0.5, 1.0, 1.5, 2.0];
    guesses.extend((0..4).map(|_| rng.gen_range(0.1..3.0)));
    for b0 in guesses {
        let denom = x_max.powf(b0) - x_min.powf(b0);
        let a0 = if denom.abs() > 1e-12 {
            ((y_max - y_min) / denom).max(1e-9)
        } else {
            1.0
        };
        let c0 = y_min - a0 * x_min.powf(b0);
        let fit = lm_descent(xs, ys, a0, b0, c0);
        if fit.sse.is_finite() && best.map(|b| fit.sse < b.sse).unwrap_or(true) {
            best = Some(fit);
        }
    }
    best.ok_or(FitError::DidNotConverge)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(a: f64, b: f64, c: f64, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| a * x.powf(b) + c).collect()
    }

    #[test]
    fn recovers_planted_linear_model() {
        let xs: Vec<f64> = (1..=8).map(|r| (1u64 << r) as f64).collect();
        let ys = planted(3.5, 1.0, 100.0, &xs);
        let fit = fit_exponential(&xs, &ys, 1).unwrap();
        assert!(fit.sse < 1e-6 * ys.iter().map(|y| y * y).sum::<f64>());
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((fit.eval(x) - y).abs() < 1e-3 * y.abs().max(1.0));
        }
    }

    #[test]
    fn recovers_superlinear_model() {
        let xs: Vec<f64> = (1..=8).map(|r| (1u64 << r) as f64).collect();
        let ys = planted(0.7, 1.4, 12.0, &xs);
        let fit = fit_exponential(&xs, &ys, 2).unwrap();
        assert!((fit.b - 1.4).abs() < 0.05, "b = {}", fit.b);
    }

    #[test]
    fn recovers_sublinear_model() {
        let xs: Vec<f64> = (1..=8).map(|r| (1u64 << r) as f64).collect();
        let ys = planted(40.0, 0.5, 5.0, &xs);
        let fit = fit_exponential(&xs, &ys, 3).unwrap();
        assert!((fit.b - 0.5).abs() < 0.05, "b = {}", fit.b);
    }

    #[test]
    fn tolerates_noise() {
        let xs: Vec<f64> = (1..=9).map(|r| (1u64 << r) as f64).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 2.0 * x + 50.0 + rng.gen_range(-3.0..3.0))
            .collect();
        let fit = fit_exponential(&xs, &ys, 4).unwrap();
        assert!((fit.b - 1.0).abs() < 0.15, "b = {}", fit.b);
        // Predictions stay near the noiseless curve.
        assert!((fit.eval(1024.0) - 2098.0).abs() < 60.0);
    }

    #[test]
    fn invert_round_trips() {
        let fit = ExpFit {
            a: 2.0,
            b: 1.5,
            c: 10.0,
            sse: 0.0,
        };
        let x = fit.invert(fit.eval(37.0)).unwrap();
        assert!((x - 37.0).abs() < 1e-9);
        assert_eq!(fit.invert(5.0), None); // below the floor c
    }

    #[test]
    fn input_validation() {
        assert_eq!(
            fit_exponential(&[1.0, 2.0], &[1.0, 2.0], 0),
            Err(FitError::TooFewSamples)
        );
        assert_eq!(
            fit_exponential(&[0.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 0),
            Err(FitError::BadInput)
        );
        assert_eq!(
            fit_exponential(&[1.0, 2.0, 3.0], &[1.0, f64::NAN, 3.0], 0),
            Err(FitError::BadInput)
        );
    }

    #[test]
    fn solve3_handles_singular() {
        let singular = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]];
        assert_eq!(solve3(singular, [1.0, 2.0, 3.0]), None);
        let id = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        assert_eq!(solve3(id, [4.0, 5.0, 6.0]), Some([4.0, 5.0, 6.0]));
    }
}
