//! End-to-end tuner: train → fit → schedule → execute (§5).

use crate::lma::{fit_exponential, FitError};
use crate::schedule::{compute_schedule, MemoryModel, ScheduleError};
use crate::training::{train, TrainingData};
use mtvc_cluster::ClusterSpec;
use mtvc_core::{run_job, BatchSchedule, JobResult, JobSpec, Task};
use mtvc_graph::Graph;
use mtvc_metrics::SimTime;
use mtvc_systems::SystemKind;

/// Tuner hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TunerConfig {
    /// Overloading parameter `p`: a machine is overloaded when `p` of
    /// its physical memory is occupied (§5 "Machine Overloading").
    pub overload_p: f64,
    /// Upper bound on batches the scheduler may emit.
    pub max_batches: usize,
    /// Seed for training runs and LMA restarts.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            overload_p: 0.85,
            max_batches: 64,
            seed: 0x7E57,
        }
    }
}

/// Tuning failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    Fit(FitError),
    Schedule(ScheduleError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Fit(e) => write!(f, "model fitting failed: {e}"),
            TuneError::Schedule(e) => write!(f, "scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// The tuner's output: the learned model and the optimized schedule.
#[derive(Debug, Clone)]
pub struct TunedSchedule {
    pub model: MemoryModel,
    pub schedule: BatchSchedule,
    pub training: TrainingData,
}

impl TunedSchedule {
    /// Training cost in simulated seconds (§5 requires it minor).
    pub fn training_time(&self) -> SimTime {
        self.training.training_time
    }
}

/// Learn an optimized batch schedule for `task` on (`system`,
/// `cluster`) — the §5 pipeline.
pub fn tune(
    graph: &Graph,
    task: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    cfg: &TunerConfig,
) -> Result<TunedSchedule, TuneError> {
    let training = train(graph, task, system, cluster, cfg.seed);
    let peak = fit_exponential(&training.workloads, &training.peak_memory, cfg.seed)
        .map_err(TuneError::Fit)?;
    let residual = fit_exponential(&training.workloads, &training.residual, cfg.seed ^ 0xF17)
        .map_err(TuneError::Fit)?;
    let model = MemoryModel { peak, residual };
    let schedule = compute_schedule(
        &model,
        task.workload(),
        cfg.overload_p,
        cluster.machine.memory.as_f64(),
        cfg.max_batches,
    )
    .map_err(TuneError::Schedule)?;
    Ok(TunedSchedule {
        model,
        schedule: BatchSchedule::explicit(schedule),
        training,
    })
}

/// Convenience: tune, then execute the optimized schedule.
pub fn tune_and_run(
    graph: &Graph,
    task: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    cfg: &TunerConfig,
) -> Result<(TunedSchedule, JobResult), TuneError> {
    let tuned = tune(graph, task, system, cluster, cfg)?;
    let spec = JobSpec::new(task, system, cluster.clone(), tuned.schedule.clone())
        .with_seed(cfg.seed ^ 0xEE);
    let result = run_job(graph, &spec);
    Ok((tuned, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    #[test]
    fn tuner_produces_valid_schedule() {
        let g = generators::power_law(200, 900, 2.4, 59);
        let cluster = ClusterSpec::galaxy(4);
        let tuned = tune(
            &g,
            Task::bppr(512),
            SystemKind::PregelPlus,
            &cluster,
            &TunerConfig::default(),
        )
        .expect("tuning should succeed");
        assert_eq!(tuned.schedule.total(), 512);
        assert!(tuned.training_time() > SimTime::ZERO);
        // Model curves are increasing in workload.
        assert!(tuned.model.peak.eval(512.0) > tuned.model.peak.eval(2.0));
    }

    #[test]
    fn tuned_run_completes() {
        let g = generators::power_law(200, 900, 2.4, 61);
        let cluster = ClusterSpec::galaxy(4);
        let (tuned, result) = tune_and_run(
            &g,
            Task::bppr(256),
            SystemKind::PregelPlus,
            &cluster,
            &TunerConfig::default(),
        )
        .expect("tuning should succeed");
        assert!(result.outcome.is_completed(), "{:?}", result.outcome);
        assert_eq!(
            result.per_batch.len(),
            tuned.schedule.len(),
            "executor must honour the tuned schedule"
        );
    }
}
