//! Online refresh of the §5 memory model for serving workloads.
//!
//! The offline tuner fits `M*` / `M_r*` once from the training probes
//! and replays the schedule it derives. A *serving* deployment keeps
//! admitting batches long after training, and every completed batch is
//! a fresh measurement of both curves at a real operating point. This
//! module maintains the fitted [`MemoryModel`] together with a bounded
//! window of such observations and periodically refits, so the
//! admission controller tracks drift (cache warm-up, residual-encoding
//! efficiency, graph mutations) instead of trusting a stale probe fit.

use crate::lma::{fit_exponential, FitError};
use crate::schedule::MemoryModel;
use crate::training::TrainingData;

/// A [`MemoryModel`] that refits itself from observed per-batch peaks.
///
/// Training points act as permanent anchors (they cover the small-`W`
/// regime online traffic rarely revisits); observations are kept in a
/// bounded sliding window so the fit follows the live operating range.
#[derive(Debug, Clone)]
pub struct OnlineMemoryModel {
    model: MemoryModel,
    // Anchor points from the offline training phase.
    base_w: Vec<f64>,
    base_peak: Vec<f64>,
    base_resid: Vec<f64>,
    // Sliding window of online observations.
    obs_w: Vec<f64>,
    obs_peak: Vec<f64>,
    obs_accum: Vec<f64>,
    obs_resid: Vec<f64>,
    // Sliding window of censored observations: OOM-killed batches whose
    // true peak is unknown but at least `bound` (the demand measured
    // when the kill fired).
    cens_w: Vec<f64>,
    cens_bound: Vec<f64>,
    window: usize,
    refit_every: usize,
    since_refit: usize,
    refits: u64,
    seed: u64,
}

impl OnlineMemoryModel {
    /// Observations kept in the sliding window by default.
    pub const DEFAULT_WINDOW: usize = 64;
    /// Observations between refits by default.
    pub const DEFAULT_REFIT_EVERY: usize = 8;

    /// Fit the initial model from offline training data (§5 "Training"
    /// + LMA fitting), keeping the probes as anchor points.
    pub fn fit(training: &TrainingData, seed: u64) -> Result<OnlineMemoryModel, FitError> {
        let peak = fit_exponential(&training.workloads, &training.peak_memory, seed)?;
        let residual = fit_exponential(&training.workloads, &training.residual, seed ^ 0xF17)?;
        Ok(OnlineMemoryModel {
            model: MemoryModel { peak, residual },
            base_w: training.workloads.clone(),
            base_peak: training.peak_memory.clone(),
            base_resid: training.residual.clone(),
            obs_w: Vec::new(),
            obs_peak: Vec::new(),
            obs_accum: Vec::new(),
            obs_resid: Vec::new(),
            cens_w: Vec::new(),
            cens_bound: Vec::new(),
            window: Self::DEFAULT_WINDOW,
            refit_every: Self::DEFAULT_REFIT_EVERY,
            since_refit: 0,
            refits: 0,
            seed,
        })
    }

    /// Override the observation window length (≥ 1).
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1);
        self.window = window;
        self
    }

    /// Override the refit cadence (≥ 1 observations between refits).
    pub fn with_refit_every(mut self, every: usize) -> Self {
        assert!(every >= 1);
        self.refit_every = every;
        self
    }

    /// The current fitted model.
    pub fn model(&self) -> &MemoryModel {
        &self.model
    }

    /// Number of successful online refits so far.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Number of online observations currently in the window.
    pub fn observations(&self) -> usize {
        self.obs_w.len()
    }

    /// Number of censored observations currently in the window.
    pub fn censored_points(&self) -> usize {
        self.cens_w.len()
    }

    /// Record one completed batch: `batch_workload` units peaked at
    /// `observed_peak` bytes on the most loaded machine, and the
    /// accumulated (unflushed) workload `accum_workload` left
    /// `observed_residual` bytes on the most loaded machine. Refits
    /// after every [`Self::with_refit_every`] observations; a refit
    /// that fails to converge keeps the previous model (the fitter sees
    /// strictly more data next time).
    pub fn observe(
        &mut self,
        batch_workload: u64,
        observed_peak: f64,
        accum_workload: u64,
        observed_residual: f64,
    ) {
        if self.obs_w.len() == self.window {
            self.obs_w.remove(0);
            self.obs_peak.remove(0);
            self.obs_accum.remove(0);
            self.obs_resid.remove(0);
        }
        self.obs_w.push(batch_workload as f64);
        self.obs_peak.push(observed_peak);
        self.obs_accum.push(accum_workload.max(1) as f64);
        self.obs_resid.push(observed_residual);
        self.since_refit += 1;
        if self.since_refit >= self.refit_every {
            self.since_refit = 0;
            self.refit();
        }
    }

    /// Record a *censored* observation: a batch of `batch_workload`
    /// units was OOM-killed, so its true peak is unknown but at least
    /// `peak_lower_bound` bytes (the demand measured when the kill
    /// fired). Censored points participate in refits as lower bounds —
    /// each contributes `max(bound, current model prediction)`, so it
    /// pulls the curve *up* when the model under-predicts the kill and
    /// is uninformative when the model already explains it. Counts
    /// toward the refit cadence like an ordinary observation.
    pub fn observe_censored(&mut self, batch_workload: u64, peak_lower_bound: f64) {
        if self.cens_w.len() == self.window {
            self.cens_w.remove(0);
            self.cens_bound.remove(0);
        }
        self.cens_w.push(batch_workload.max(1) as f64);
        self.cens_bound.push(peak_lower_bound);
        self.since_refit += 1;
        if self.since_refit >= self.refit_every {
            self.since_refit = 0;
            self.refit();
        }
    }

    /// Refit both curves from anchors + window; keeps the old model on
    /// fitter failure or a degenerate (non-increasing) peak curve.
    fn refit(&mut self) {
        let mut xs_peak: Vec<f64> = self.base_w.iter().chain(&self.obs_w).copied().collect();
        let mut ys_peak: Vec<f64> = self
            .base_peak
            .iter()
            .chain(&self.obs_peak)
            .copied()
            .collect();
        // Censored points: the kill's demand is a lower bound on the
        // peak, so feed the fitter `max(bound, prediction)` — never
        // below what the current model already believes.
        for (&w, &bound) in self.cens_w.iter().zip(&self.cens_bound) {
            xs_peak.push(w);
            ys_peak.push(bound.max(self.model.peak.eval(w)));
        }
        let xs_res: Vec<f64> = self.base_w.iter().chain(&self.obs_accum).copied().collect();
        let ys_res: Vec<f64> = self
            .base_resid
            .iter()
            .chain(&self.obs_resid)
            .copied()
            .collect();
        let seed = self.seed ^ self.refits.wrapping_mul(0x9E37_79B9);
        let peak = fit_exponential(&xs_peak, &ys_peak, seed);
        let residual = fit_exponential(&xs_res, &ys_res, seed ^ 0xF17);
        if let (Ok(peak), Ok(residual)) = (peak, residual) {
            // A memory curve must grow with workload; a fit that does
            // not (noisy observations can produce one) would make the
            // admission inversion meaningless, so keep the old model.
            if peak.a > 0.0 && peak.b > 0.0 && residual.a >= 0.0 {
                self.model = MemoryModel { peak, residual };
                self.refits += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training(slope: f64) -> TrainingData {
        let workloads: Vec<f64> = (1..=5).map(|r| (1u64 << r) as f64).collect();
        TrainingData {
            peak_memory: workloads.iter().map(|w| slope * w + 100.0).collect(),
            residual: workloads.iter().map(|w| 0.5 * slope * w + 10.0).collect(),
            workloads,
            training_time: Default::default(),
        }
    }

    #[test]
    fn initial_fit_matches_training_curve() {
        let m = OnlineMemoryModel::fit(&training(3.0), 1).unwrap();
        let y = m.model().peak.eval(64.0);
        assert!((y - (3.0 * 64.0 + 100.0)).abs() < 0.05 * y, "{y}");
    }

    #[test]
    fn observations_drive_refit_toward_new_regime() {
        let mut m = OnlineMemoryModel::fit(&training(3.0), 2)
            .unwrap()
            .with_refit_every(4);
        // Live traffic reveals a steeper curve at large W.
        for i in 0..16u64 {
            let w = 512 + i * 64;
            m.observe(w, 6.0 * w as f64 + 100.0, w, 3.0 * w as f64 + 10.0);
        }
        assert!(m.refits() >= 1, "no refit happened");
        let before = 3.0 * 1024.0 + 100.0;
        let after = m.model().peak.eval(1024.0);
        // The refit model predicts markedly more than the stale fit.
        assert!(
            after > 1.3 * before,
            "refit ignored drift: {after} vs {before}"
        );
    }

    #[test]
    fn window_is_bounded() {
        let mut m = OnlineMemoryModel::fit(&training(2.0), 3)
            .unwrap()
            .with_window(8)
            .with_refit_every(1000); // never refit; only test the window
        for i in 0..100u64 {
            m.observe(10 + i, 1000.0, 10 + i, 100.0);
        }
        assert_eq!(m.observations(), 8);
    }

    #[test]
    fn censored_kills_raise_underpredicting_model() {
        let mut m = OnlineMemoryModel::fit(&training(3.0), 5)
            .unwrap()
            .with_refit_every(4);
        // OOM kills whose measured demand already far exceeds the
        // model's prediction: each is a hard lower bound on the peak.
        for i in 0..12u64 {
            let w = 512 + i * 64;
            m.observe_censored(w, 9.0 * w as f64);
        }
        assert!(m.censored_points() > 0);
        assert!(m.refits() >= 1, "censored points must drive refits");
        let before = 3.0 * 1024.0 + 100.0;
        let after = m.model().peak.eval(1024.0);
        assert!(
            after > 1.5 * before,
            "model ignored censored kills: {after} vs {before}"
        );
    }

    #[test]
    fn censored_bound_below_prediction_is_uninformative() {
        let mut m = OnlineMemoryModel::fit(&training(3.0), 6)
            .unwrap()
            .with_refit_every(1);
        let before = m.model().peak.eval(100.0);
        // The model already explains this kill (bound far below its
        // prediction), so the refit point is the prediction itself and
        // the curve barely moves.
        m.observe_censored(100, 1.0);
        let after = m.model().peak.eval(100.0);
        assert!(
            (after - before).abs() < 0.05 * before,
            "uninformative bound moved the model: {before} -> {after}"
        );
    }

    #[test]
    fn failed_refit_keeps_previous_model() {
        let mut m = OnlineMemoryModel::fit(&training(3.0), 4)
            .unwrap()
            .with_refit_every(1);
        let before = m.model().peak.eval(100.0);
        // Pathological observation (non-finite) cannot produce a fit.
        m.observe(100, f64::NAN, 100, f64::NAN);
        let after = m.model().peak.eval(100.0);
        assert_eq!(before, after);
    }
}
