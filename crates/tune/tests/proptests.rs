//! Property-based tests for the tuning framework: the LMA fitter must
//! recover planted exponential models, and the schedule solver must
//! produce valid monotone schedules whenever one exists.

use mtvc_tune::{compute_schedule, fit_exponential, ExpFit, MemoryModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lma_recovers_planted_models(
        a in 0.5f64..50.0,
        b in 0.3f64..2.0,
        c in 0.0f64..500.0,
        seed in any::<u64>(),
    ) {
        let xs: Vec<f64> = (1..=9).map(|r| (1u64 << r) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a * x.powf(b) + c).collect();
        let fit = fit_exponential(&xs, &ys, seed).expect("fit should succeed");
        // Prediction accuracy matters more than parameter identity
        // (a/b/c trade off near-degenerately for small b).
        for (&x, &y) in xs.iter().zip(&ys) {
            let err = (fit.eval(x) - y).abs();
            prop_assert!(err < 0.02 * y.abs().max(1.0), "err {err} at x={x}");
        }
        // Extrapolation one octave out stays within 15%.
        let x_ext = 1024.0f64;
        let y_ext = a * x_ext.powf(b) + c;
        prop_assert!(
            (fit.eval(x_ext) - y_ext).abs() < 0.15 * y_ext.max(1.0),
            "extrapolation {} vs {}", fit.eval(x_ext), y_ext
        );
    }

    #[test]
    fn schedules_are_valid_and_monotone(
        total in 1u64..200_000,
        peak_a in 0.5f64..5.0,
        peak_b in 0.7f64..1.5,
        resid_a in 0.0f64..2.0,
        budget_scale in 1.2f64..100.0,
    ) {
        let peak = ExpFit { a: peak_a, b: peak_b, c: 0.0, sse: 0.0 };
        let residual = ExpFit { a: resid_a, b: 1.0, c: 0.0, sse: 0.0 };
        let model = MemoryModel { peak, residual };
        // Budget big enough for at least one unit of work.
        let capacity = peak.eval(1.0) * budget_scale + residual.eval(total as f64);
        match compute_schedule(&model, total, 0.9, capacity / 0.9, 512) {
            Ok(schedule) => {
                prop_assert_eq!(schedule.iter().sum::<u64>(), total);
                prop_assert!(schedule.iter().all(|&w| w >= 1));
                for w in schedule.windows(2) {
                    prop_assert!(w[0] >= w[1], "schedule not monotone: {:?}", w);
                }
            }
            Err(e) => {
                // Only legitimate failure: residual saturates the budget
                // before the whole workload fits in 512 batches.
                prop_assert!(resid_a > 0.0, "unexpected failure {e} with zero residual");
            }
        }
    }

    #[test]
    fn invert_is_right_inverse_of_eval(
        a in 0.01f64..100.0,
        b in 0.1f64..3.0,
        c in -100.0f64..100.0,
        x in 0.5f64..1e6,
    ) {
        let fit = ExpFit { a, b, c, sse: 0.0 };
        let y = fit.eval(x);
        let back = fit.invert(y).expect("invertible above the floor");
        prop_assert!((back - x).abs() < 1e-6 * x, "{back} vs {x}");
    }
}
