//! `mtvc-serve` — an online multi-tenant task service with
//! tuner-driven adaptive batching.
//!
//! The offline pipeline in this workspace answers the paper's
//! questions: given a *fixed* multi-task workload, which batch scheme
//! finishes fastest without straining the cluster? This crate turns
//! that machinery into a *service*: unit-task requests arrive
//! continuously from multiple tenants, and the §5 memory model decides
//! — online, before every batch — how much of the backlog the cluster
//! can safely absorb.
//!
//! # Architecture
//!
//! ```text
//! tenants ──submit──▶ DrrQueue ──DRR round──▶ batch former ──▶ worker pool
//!                      (bounded,              (admission:       (crossbeam
//!                       backpressure)          Eq. 6 online)     channel)
//!                                                  ▲                │
//!                                                  │   observe / complete
//!                                                  └────────────────┘
//!                                         completions, histograms, gauges
//! ```
//!
//! * [`DrrQueue`] — bounded multi-tenant queue; deficit round-robin
//!   gives every backlogged tenant the same workload share.
//! * [`AdmissionController`] — solves Eq. 6 against *live* state:
//!   measured residual memory plus the predicted peaks of in-flight
//!   batches, under the `p·M` overload threshold.
//! * [`OnlineMemoryModel`](mtvc_tune::OnlineMemoryModel) — the fitted
//!   `M*`/`M_r*` curves, refreshed from observed per-batch peaks.
//! * [`TaskService`] — ties it together: training at startup, a batch
//!   former thread, a worker pool, latency histograms, graceful
//!   drain-on-shutdown.
//!
//! # Example
//!
//! ```
//! use mtvc_serve::{ServiceConfig, TaskRequest, TaskService, TenantId};
//! use mtvc_core::Task;
//! use mtvc_cluster::ClusterSpec;
//! use mtvc_systems::SystemKind;
//! use mtvc_graph::generators;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(generators::power_law(200, 900, 2.4, 7));
//! let cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
//!     .with_shape(Task::mssp(1));
//! let svc = TaskService::start(graph, cfg).unwrap();
//! let ticket = svc.submit(TaskRequest::new(TenantId(0), Task::mssp(2))).unwrap();
//! assert!(ticket.wait().outcome.is_served());
//! let report = svc.shutdown();
//! assert_eq!(report.served, 1);
//! ```

#![deny(missing_docs)]

pub mod admission;
pub mod controller;
pub mod health;
pub mod queue;
pub mod request;
pub mod service;

pub use admission::{AdmissionController, AdmissionError, BatchId};
pub use controller::{ControllerCfg, ControllerStats, Decision, JointController, SchedulerPolicy};
pub use health::{
    BrownoutCfg, BrownoutDecision, BrownoutLadder, BrownoutLevel, BrownoutReport, BrownoutState,
    CircuitBreaker, CircuitState, HealthTracker,
};
pub use queue::{same_shape, DrrQueue, ExpiredRequest, QueuePolicy, SubmitError, TakenBatch};
pub use request::{
    Completion, QueuedRequest, RequestId, RequestOutcome, SloClass, TaskRequest, TenantId,
};
pub use service::{ClassReport, ServiceConfig, ServiceReport, StartError, TaskService, Ticket};
