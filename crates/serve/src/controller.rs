//! Joint batching/parallelism controller for the SLO-aware scheduler.
//!
//! The service has two throughput levers that trade against each other
//! (the inter-task vs intra-task parallelism tension the multi-task
//! literature keeps rediscovering):
//!
//! * **Batch width** — how much of the admissible headroom one batch
//!   consumes. Wide batches amortise superstep overhead (the paper's
//!   core effect) but serialise behind each other; narrow batches keep
//!   more workers busy concurrently.
//! * **Intra-task parallelism** — whether a batch executes on the
//!   engine's persistent worker pool (wide) or serially on its own
//!   thread (narrow), via the per-batch parallel-vertex-threshold
//!   override.
//!
//! [`JointController`] couples the two to the observed queue depth:
//! a **deep** queue means latency is dominated by waiting, so it forms
//! *more, smaller* concurrent batches (cap ≈ headroom / workers) and
//! runs each serially so the worker threads do not fight over the
//! engine pool; a **shallow** queue means the cluster is
//! under-committed, so it forms one wide batch and lets it fan out on
//! the engine pool. Between the two extremes it interpolates linearly
//! in the queue occupancy.
//!
//! Independently, when the head request carries a deadline and the
//! [`OnlineLatencyModel`] has a fit, the controller caps the batch at
//! the largest workload the model predicts can finish inside a
//! configured fraction of the remaining slack — EDF ordering gets the
//! urgent request into the *next* batch, this cap keeps that batch
//! small enough to land in time.
//!
//! Every decision is a pure function of its inputs; for a fixed input
//! sequence the controller is bit-deterministic (property-tested).

use mtvc_tune::OnlineLatencyModel;
use std::time::Duration;

/// Which scheduler the service runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// PR-1 behaviour: plain DRR rotation, class-blind quanta, batches
    /// always sized to the full admissible headroom, engine-default
    /// parallel cutover.
    #[default]
    BaselineDrr,
    /// EDF-within-DRR ordering, class-weighted quanta, and the
    /// [`JointController`] sizing batches and picking the per-batch
    /// parallel cutover.
    SloAware,
}

impl SchedulerPolicy {
    /// Stable label for reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerPolicy::BaselineDrr => "baseline_drr",
            SchedulerPolicy::SloAware => "slo_aware",
        }
    }
}

/// Tunables of the [`JointController`].
#[derive(Debug, Clone, Copy)]
pub struct ControllerCfg {
    /// Worker threads the narrow end divides the headroom across.
    pub workers: usize,
    /// Queue depth (requests) treated as fully "deep"; occupancy is
    /// `depth / deep_depth`, clamped to 1.
    pub deep_depth: usize,
    /// Occupancy at or above which batches run serially (narrow
    /// intra-task parallelism) instead of on the engine pool.
    pub narrow_occupancy: f64,
    /// Fraction of the head request's remaining deadline slack the
    /// latency model may budget for its carrying batch.
    pub slack_fraction: f64,
    /// Smallest batch cap worth fanning out on the engine pool; below
    /// it a "wide" decision keeps the engine default instead of
    /// forcing the pool (whose per-batch coordination overhead would
    /// swamp a tiny batch).
    pub wide_min_workload: u64,
    /// The parallel-cutover override a "wide" decision applies:
    /// `Some(0)` forces the engine pool, `None` (the default) keeps
    /// the engine's own cutover. Deployments with idle cores should
    /// set `Some(0)`; on a saturated box forcing the pool for every
    /// shallow-queue batch only adds coordination overhead.
    pub wide_threshold: Option<usize>,
}

impl ControllerCfg {
    /// Defaults: deep at 64 queued requests, go serial above 50 %
    /// occupancy, budget half the head slack.
    pub fn new(workers: usize) -> ControllerCfg {
        ControllerCfg {
            workers: workers.max(1),
            deep_depth: 64,
            narrow_occupancy: 0.5,
            slack_fraction: 0.5,
            wide_min_workload: 32,
            wide_threshold: None,
        }
    }
}

/// One sizing decision for the batch about to be formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Workload cap for this batch (≤ the admissible headroom the
    /// controller was given, ≥ 1).
    pub batch_cap: u64,
    /// Per-batch parallel-cutover override: `Some(0)` forces the
    /// engine worker pool (wide), `Some(usize::MAX)` forces serial
    /// execution (narrow), `None` keeps the engine default.
    pub parallel_threshold: Option<usize>,
}

/// Counters describing what the controller actually did, folded into
/// the service report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Decisions that forced serial execution (deep queue).
    pub narrowed: u64,
    /// Decisions that forced the engine pool (shallow queue).
    pub widened: u64,
    /// Decisions where the latency model's deadline cap bound the
    /// batch below the occupancy-interpolated size.
    pub deadline_capped: u64,
}

/// The joint batching/parallelism controller. Cheap and lock-free on
/// its own; the caller serialises access (the batch former is the only
/// consumer).
#[derive(Debug)]
pub struct JointController {
    cfg: ControllerCfg,
    stats: ControllerStats,
}

impl JointController {
    /// A controller with the given tunables and zeroed counters.
    pub fn new(cfg: ControllerCfg) -> JointController {
        JointController {
            cfg,
            stats: ControllerStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Size the next batch. `depth` is the current queue depth in
    /// requests, `w_max` the admissible headroom in workload units,
    /// `head_slack` the remaining deadline slack of the head request
    /// (`None` when deadline-free), and `model` the latency model for
    /// the batch's shape.
    ///
    /// The returned cap is in `[1, w_max]`; the *caller* must still
    /// raise it to the head request's workload when that is larger —
    /// otherwise a head wider than the cap would never be taken and
    /// the former would spin.
    pub fn decide(
        &mut self,
        depth: usize,
        w_max: u64,
        head_slack: Option<Duration>,
        model: &OnlineLatencyModel,
    ) -> Decision {
        self.stats.decisions += 1;
        let occupancy = if self.cfg.deep_depth == 0 {
            1.0
        } else {
            (depth as f64 / self.cfg.deep_depth as f64).min(1.0)
        };
        // Interpolate the cap between the wide end (all headroom in
        // one batch) and the narrow end (headroom split across the
        // worker pool).
        let narrow = (w_max / self.cfg.workers as u64).max(1);
        let span = w_max.saturating_sub(narrow) as f64;
        let mut cap = w_max.saturating_sub((span * occupancy).round() as u64);

        // Deadline sizing: bound the batch to what the model predicts
        // finishes within the budgeted slice of the head's slack.
        if let Some(slack) = head_slack {
            let budget = slack.as_secs_f64() * self.cfg.slack_fraction;
            if let Some(w) = model.invert(budget) {
                if w < cap {
                    cap = w;
                    self.stats.deadline_capped += 1;
                }
            }
        }

        let cap = cap.clamp(1, w_max.max(1));
        let parallel_threshold = if occupancy >= self.cfg.narrow_occupancy {
            self.stats.narrowed += 1;
            Some(usize::MAX) // serial: keep workers independent
        } else {
            self.stats.widened += 1;
            if cap >= self.cfg.wide_min_workload {
                self.cfg.wide_threshold
            } else {
                None // tiny batch: not worth fanning out anywhere
            }
        };
        Decision {
            batch_cap: cap,
            parallel_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted_model() -> OnlineLatencyModel {
        let mut m = OnlineLatencyModel::new();
        // latency ≈ 0.1 + 0.01 · w
        for w in (1..=32u64).map(|i| i * 4) {
            m.observe(w, 0.1 + 0.01 * w as f64);
        }
        m
    }

    #[test]
    fn shallow_queue_goes_wide_and_full() {
        let mut cfg = ControllerCfg::new(4);
        cfg.wide_threshold = Some(0);
        let mut c = JointController::new(cfg);
        let d = c.decide(0, 1000, None, &OnlineLatencyModel::new());
        assert_eq!(d.batch_cap, 1000);
        assert_eq!(d.parallel_threshold, Some(0));
        assert_eq!(c.stats().widened, 1);
        // Below the wide minimum the engine default is kept.
        let tiny = c.decide(0, 8, None, &OnlineLatencyModel::new());
        assert_eq!(tiny.parallel_threshold, None);
        // And with the default config, widening defers to the engine.
        let mut default = JointController::new(ControllerCfg::new(4));
        let d = default.decide(0, 1000, None, &OnlineLatencyModel::new());
        assert_eq!(d.parallel_threshold, None);
        assert_eq!(default.stats().widened, 1);
    }

    #[test]
    fn deep_queue_splits_headroom_and_goes_serial() {
        let mut c = JointController::new(ControllerCfg::new(4));
        let d = c.decide(500, 1000, None, &OnlineLatencyModel::new());
        assert_eq!(d.batch_cap, 250); // w_max / workers
        assert_eq!(d.parallel_threshold, Some(usize::MAX));
        assert_eq!(c.stats().narrowed, 1);
    }

    #[test]
    fn occupancy_interpolates_between_extremes() {
        let mut c = JointController::new(ControllerCfg::new(4));
        let d = c.decide(32, 1000, None, &OnlineLatencyModel::new());
        // Half occupancy: halfway between 1000 and 250.
        assert_eq!(d.batch_cap, 625);
    }

    #[test]
    fn deadline_cap_binds_when_model_is_fitted() {
        let mut c = JointController::new(ControllerCfg::new(2));
        let model = fitted_model();
        // Slack 0.4 s, half budgeted → 0.2 s → w ≈ (0.2 − 0.1)/0.01 = 10.
        let d = c.decide(0, 1000, Some(Duration::from_millis(400)), &model);
        assert!(d.batch_cap <= 12, "cap {} not deadline-bound", d.batch_cap);
        assert!(d.batch_cap >= 1);
        assert_eq!(c.stats().deadline_capped, 1);
    }

    #[test]
    fn unfitted_model_never_caps() {
        let mut c = JointController::new(ControllerCfg::new(2));
        let d = c.decide(
            0,
            800,
            Some(Duration::from_millis(1)),
            &OnlineLatencyModel::new(),
        );
        assert_eq!(d.batch_cap, 800);
        assert_eq!(c.stats().deadline_capped, 0);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut c = JointController::new(ControllerCfg::new(3));
            let model = fitted_model();
            (0..50)
                .map(|i| {
                    c.decide(
                        (i * 7) % 97,
                        64 + (i as u64 * 13) % 512,
                        if i % 3 == 0 {
                            Some(Duration::from_millis(50 + i as u64))
                        } else {
                            None
                        },
                        &model,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
