//! Bounded multi-tenant request queue with deficit round-robin service.
//!
//! Tenants submit unit-task requests into per-tenant FIFO lanes; the
//! batch former drains them one **DRR round** at a time. Each round
//! visits every backlogged tenant once, grants it `quantum` workload
//! units of *deficit*, and takes requests from its lane head while the
//! deficit covers them — so over time every backlogged tenant receives
//! the same workload share regardless of how fast it submits
//! (max-min fairness, one of the service-level goals multi-task
//! batching enables on a shared cluster).
//!
//! The queue is bounded: when `capacity` requests are waiting,
//! [`DrrQueue::try_submit`] fails with [`SubmitError::Full`] and
//! [`DrrQueue::submit_blocking`] parks the submitter — backpressure
//! instead of unbounded buffering.
//!
//! # SLO-aware ordering
//!
//! A [`QueuePolicy`] upgrades plain DRR in two orthogonal ways, both
//! preserving the per-round fairness invariant (every backlogged
//! tenant is visited once per round and paid its quantum):
//!
//! * **EDF-within-DRR** (`edf`): the visit order inside each round is
//!   earliest-absolute-deadline first (deadline-free lanes last, by
//!   age) instead of ring rotation, so urgent heads land in earlier
//!   batches and are drained before they expire. Because the sort only
//!   permutes the visits of one round — it never skips a lane — no
//!   backlogged tenant can be starved.
//! * **Class-weighted quanta** (`class_quanta`): the quantum paid to a
//!   lane is scaled by its head request's [`SloClass`] weight, giving
//!   interactive traffic a larger workload share per round (weighted
//!   DRR). Every weight is ≥ 1, so every class still makes progress.

use crate::admission::AdmissionError;
use crate::request::{QueuedRequest, SloClass, TenantId};
use mtvc_core::Task;
use mtvc_metrics::Gauge;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a submission was turned away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitError {
    /// The queue holds `capacity` requests; try again after drains.
    Full,
    /// The service is shutting down and accepts no new work.
    Closed,
    /// The admission controller cannot handle the request — no memory
    /// model is registered for its task shape.
    Admission(AdmissionError),
    /// The request carries zero workload units.
    Empty,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "queue is at capacity"),
            SubmitError::Closed => write!(f, "service is shutting down"),
            SubmitError::Admission(e) => write!(f, "admission refused the request: {e}"),
            SubmitError::Empty => write!(f, "request has zero workload"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Admission(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AdmissionError> for SubmitError {
    fn from(e: AdmissionError) -> SubmitError {
        SubmitError::Admission(e)
    }
}

/// A request whose dispatch deadline passed while it sat in the queue,
/// stamped with the exact time it spent there. Stamping happens at
/// removal — inside the queue lock — so the reported wait measures the
/// queueing itself, not however long the caller takes to publish the
/// completion.
#[derive(Debug)]
pub struct ExpiredRequest {
    /// The expired request.
    pub request: QueuedRequest,
    /// Submission-to-removal time: how long the request waited in the
    /// queue before the expiry sweep caught it.
    pub time_in_queue: Duration,
}

/// Result of one DRR drain round.
#[derive(Debug, Default)]
pub struct TakenBatch {
    /// Requests admitted into the batch, in DRR order. All share the
    /// batch's task shape; workloads sum to at most the `max_units`
    /// given to [`DrrQueue::take_batch`].
    pub taken: Vec<QueuedRequest>,
    /// Requests whose dispatch deadline passed while queued; removed
    /// from their lanes, to be completed as expired by the caller,
    /// each carrying its measured time-in-queue.
    pub expired: Vec<ExpiredRequest>,
}

/// Two tasks batch together iff they are the same task with the same
/// parameters, workload aside (same α for BPPR, same k for BKHS).
pub fn same_shape(a: &Task, b: &Task) -> bool {
    a.with_workload(1) == b.with_workload(1)
}

/// Scheduling policy of a [`DrrQueue`]: plain DRR by default, EDF
/// ordering and class-weighted quanta for the SLO-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuePolicy {
    /// Order each DRR round's lane visits earliest-deadline-first
    /// instead of ring rotation.
    pub edf: bool,
    /// Quantum multiplier per [`SloClass`] (indexed by
    /// [`SloClass::index`]); the lane's head request picks the weight.
    pub class_quanta: [u64; 3],
    /// Percentage of the queue's capacity reserved for
    /// [`SloClass::Interactive`] submissions: other classes see
    /// [`SubmitError::Full`] once the queue reaches
    /// `capacity · (100 − reserve) / 100`, so a saturating burst
    /// sheds background traffic before it sheds interactive traffic.
    /// 0 (the default) disables the reservation.
    pub interactive_reserve_pct: u8,
}

impl Default for QueuePolicy {
    /// Plain DRR: rotation order, every class weighted 1, no
    /// reserved capacity.
    fn default() -> QueuePolicy {
        QueuePolicy {
            edf: false,
            class_quanta: [1, 1, 1],
            interactive_reserve_pct: 0,
        }
    }
}

impl QueuePolicy {
    /// The SLO-aware default: EDF ordering, Interactive paid 4×,
    /// Standard 2×, Batch 1×, and 10 % of the queue held back for
    /// interactive submissions.
    pub fn slo_aware() -> QueuePolicy {
        QueuePolicy {
            edf: true,
            class_quanta: [4, 2, 1],
            interactive_reserve_pct: 10,
        }
    }

    /// Quantum multiplier for `class` (≥ 1 is enforced at use).
    pub fn weight(&self, class: SloClass) -> u64 {
        self.class_quanta[class.index()].max(1)
    }

    /// The submit-side capacity limit `class` sees on a queue of
    /// `capacity` requests. Interactive always sees the full
    /// capacity; at least one slot always remains usable by every
    /// class.
    pub fn class_capacity(&self, capacity: usize, class: SloClass) -> usize {
        if class == SloClass::Interactive {
            return capacity;
        }
        let reserve = capacity * usize::from(self.interactive_reserve_pct.min(100)) / 100;
        capacity.saturating_sub(reserve).max(1)
    }
}

struct Lane {
    requests: VecDeque<QueuedRequest>,
    deficit: u64,
    in_ring: bool,
}

struct QueueState {
    lanes: Vec<Lane>,
    index: HashMap<TenantId, usize>,
    /// Round-robin ring of lane indices with pending requests.
    ring: VecDeque<usize>,
    len: usize,
    closed: bool,
}

impl QueueState {
    fn activate(&mut self, lane: usize) {
        if !self.lanes[lane].in_ring {
            self.lanes[lane].in_ring = true;
            self.ring.push_back(lane);
        }
    }

    fn deactivate(&mut self, lane: usize) {
        // The caller removes the ring entry; here we only reset DRR
        // state so an idle tenant cannot bank deficit.
        self.lanes[lane].in_ring = false;
        self.lanes[lane].deficit = 0;
    }

    fn lane_of(&mut self, tenant: TenantId) -> usize {
        if let Some(&i) = self.index.get(&tenant) {
            return i;
        }
        let i = self.lanes.len();
        self.lanes.push(Lane {
            requests: VecDeque::new(),
            deficit: 0,
            in_ring: false,
        });
        self.index.insert(tenant, i);
        i
    }
}

/// The bounded multi-tenant queue. All methods are thread-safe; the
/// batch former is expected to be the only *consumer*.
pub struct DrrQueue {
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    quantum: u64,
    policy: QueuePolicy,
    depth: Gauge,
}

impl DrrQueue {
    /// A queue holding at most `capacity` requests, serving tenants
    /// `quantum` workload units per DRR round under the default
    /// (plain-DRR) policy.
    pub fn new(capacity: usize, quantum: u64) -> DrrQueue {
        assert!(capacity >= 1, "capacity must be positive");
        assert!(quantum >= 1, "quantum must be positive");
        DrrQueue {
            state: Mutex::new(QueueState {
                lanes: Vec::new(),
                index: HashMap::new(),
                ring: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            quantum,
            policy: QueuePolicy::default(),
            depth: Gauge::new(),
        }
    }

    /// Replace the scheduling policy (builder-style, before sharing).
    pub fn with_policy(mut self, policy: QueuePolicy) -> DrrQueue {
        self.policy = policy;
        self
    }

    /// The active scheduling policy.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// EDF sort key of a lane: `(has-no-deadline, instant)` so lanes
    /// with deadlines order strictly before deadline-free ones, which
    /// order by head age (oldest first). Stable across a round because
    /// lane heads only leave through this queue's own drains.
    fn edf_key(lane: &Lane) -> (bool, Instant) {
        match lane.requests.front() {
            Some(head) => match head.deadline_at() {
                Some(at) => (false, at),
                None => (true, head.submitted),
            },
            // Empty lanes (cannot appear in the ring) sort last.
            None => (true, Instant::now()),
        }
    }

    /// The lane the next drain would serve: ring front under plain
    /// DRR, the earliest-deadline head under EDF.
    fn front_lane(&self, st: &QueueState) -> Option<usize> {
        if !self.policy.edf {
            return st.ring.front().copied();
        }
        st.ring
            .iter()
            .copied()
            .min_by_key(|&l| Self::edf_key(&st.lanes[l]))
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len
    }

    /// Whether no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The DRR quantum in workload units.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Live queue-depth gauge (with high-water mark).
    pub fn depth(&self) -> Gauge {
        self.depth.clone()
    }

    /// Stop accepting submissions. Queued requests remain drainable;
    /// blocked submitters and drainers wake up.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether [`DrrQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Enqueue without blocking. The capacity a submission sees is
    /// class-dependent under an interactive reservation (see
    /// [`QueuePolicy::class_capacity`]).
    pub fn try_submit(&self, req: QueuedRequest) -> Result<(), SubmitError> {
        let cap = self.policy.class_capacity(self.capacity, req.request.class);
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.len >= cap {
            return Err(SubmitError::Full);
        }
        self.push_locked(&mut st, req);
        drop(st);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Enqueue, parking the submitter while the queue is at (this
    /// class's) capacity — the backpressure path.
    pub fn submit_blocking(&self, req: QueuedRequest) -> Result<(), SubmitError> {
        let cap = self.policy.class_capacity(self.capacity, req.request.class);
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(SubmitError::Closed);
            }
            if st.len < cap {
                self.push_locked(&mut st, req);
                drop(st);
                self.not_empty.notify_all();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    fn push_locked(&self, st: &mut QueueState, req: QueuedRequest) {
        let lane = st.lane_of(req.request.tenant);
        st.lanes[lane].requests.push_back(req);
        st.len += 1;
        st.activate(lane);
        self.depth.set(st.len as u64);
    }

    /// Block until the queue has a request, then return the task shape
    /// the next DRR round would serve (the ring-head tenant's oldest
    /// request). Returns `None` once the queue is closed *and* drained.
    pub fn next_shape_blocking(&self) -> Option<Task> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(lane) = self.front_lane(&st) {
                if let Some(head) = st.lanes[lane].requests.front() {
                    return Some(head.request.task);
                }
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Workload of the front-lane head request if it matches `shape`.
    pub fn head_workload(&self, shape: &Task) -> Option<u64> {
        let st = self.state.lock().unwrap();
        let lane = self.front_lane(&st)?;
        let head = st.lanes[lane].requests.front()?;
        same_shape(&head.request.task, shape).then(|| head.workload())
    }

    /// Remaining deadline slack of the front-lane head at `now`, if it
    /// matches `shape` and carries a deadline. The SLO scheduler sizes
    /// deadline-constrained batches against this.
    pub fn head_slack(&self, shape: &Task, now: Instant) -> Option<Duration> {
        let st = self.state.lock().unwrap();
        let lane = self.front_lane(&st)?;
        let head = st.lanes[lane].requests.front()?;
        if !same_shape(&head.request.task, shape) {
            return None;
        }
        head.slack(now)
    }

    /// SLO class of the front-lane head request if it matches `shape`.
    /// The former consults this when a masked [`DrrQueue::take_batch_classes`]
    /// round comes back empty, to tell "head is shed by the brownout
    /// ladder" (park and let health recover) apart from "head does not
    /// fit the headroom" (wait for completions).
    pub fn head_class(&self, shape: &Task) -> Option<SloClass> {
        let st = self.state.lock().unwrap();
        let lane = self.front_lane(&st)?;
        let head = st.lanes[lane].requests.front()?;
        same_shape(&head.request.task, shape).then_some(head.request.class)
    }

    /// Remove and return the front-lane head request if it matches
    /// `shape` — the path the former uses to reject a request that can
    /// never be admitted.
    pub fn pop_head(&self, shape: &Task) -> Option<QueuedRequest> {
        let mut st = self.state.lock().unwrap();
        let lane = self.front_lane(&st)?;
        let matches = st.lanes[lane]
            .requests
            .front()
            .is_some_and(|h| same_shape(&h.request.task, shape));
        if !matches {
            return None;
        }
        let req = st.lanes[lane].requests.pop_front();
        st.len -= 1;
        self.depth.set(st.len as u64);
        if st.lanes[lane].requests.is_empty() {
            // Under EDF the popped lane need not be the ring front.
            st.ring.retain(|&l| l != lane);
            st.deactivate(lane);
        }
        drop(st);
        self.not_full.notify_all();
        req
    }

    /// Run one DRR round: visit every backlogged tenant once, pay each
    /// a `quantum` of deficit when its lane head matches `shape` (the
    /// quantum scaled by the head's class weight under an SLO policy),
    /// and take requests while the deficit and the `max_units` batch
    /// budget cover them. Requests past their deadline at `now` are
    /// removed and returned separately without consuming budget or
    /// deficit. Under an EDF policy the round's visit order is
    /// earliest-deadline first instead of ring rotation; every
    /// backlogged lane is still visited exactly once.
    pub fn take_batch(&self, shape: &Task, max_units: u64, now: Instant) -> TakenBatch {
        self.take_batch_classes(shape, max_units, now, [true; 3])
    }

    /// [`DrrQueue::take_batch`] restricted to the SLO classes enabled
    /// in `allowed` (indexed by [`SloClass::index`]) — the brownout
    /// ladder's shedding hook. A lane whose head belongs to a masked
    /// class is *deferred*: it is not paid a quantum (no deficit banks
    /// up while shed, so recovery cannot burst) and takes nothing this
    /// round, but it still rotates and its expired heads are still
    /// swept out.
    pub fn take_batch_classes(
        &self,
        shape: &Task,
        max_units: u64,
        now: Instant,
        allowed: [bool; 3],
    ) -> TakenBatch {
        let mut out = TakenBatch::default();
        let mut budget = max_units;
        let mut removed = 0usize;
        let mut st = self.state.lock().unwrap();
        if self.policy.edf {
            // Re-order the ring for this round: urgent heads first,
            // stably, so ties keep their rotation order. Lanes are not
            // added or removed — only permuted — so the one-visit-per-
            // round fairness invariant is untouched.
            let mut order: Vec<usize> = st.ring.iter().copied().collect();
            order.sort_by_key(|&l| Self::edf_key(&st.lanes[l]));
            st.ring.clear();
            st.ring.extend(order);
        }
        let visits = st.ring.len();
        'round: for _ in 0..visits {
            let Some(&lane) = st.ring.front() else { break };
            let l = &mut st.lanes[lane];
            // Expired requests leave the lane no matter their shape.
            while l.requests.front().is_some_and(|h| h.expired(now)) {
                let req = l.requests.pop_front().unwrap();
                out.expired.push(ExpiredRequest {
                    time_in_queue: now.duration_since(req.submitted),
                    request: req,
                });
                removed += 1;
            }
            let head_matches = l.requests.front().is_some_and(|h| {
                same_shape(&h.request.task, shape) && allowed[h.request.class.index()]
            });
            if head_matches {
                let weight = self
                    .policy
                    .weight(l.requests.front().unwrap().request.class);
                l.deficit = l
                    .deficit
                    .saturating_add(self.quantum.saturating_mul(weight));
                while let Some(head) = l.requests.front() {
                    if head.expired(now) {
                        let req = l.requests.pop_front().unwrap();
                        out.expired.push(ExpiredRequest {
                            time_in_queue: now.duration_since(req.submitted),
                            request: req,
                        });
                        removed += 1;
                        continue;
                    }
                    if !same_shape(&head.request.task, shape)
                        || !allowed[head.request.class.index()]
                    {
                        break;
                    }
                    let w = head.workload();
                    if w > l.deficit {
                        break;
                    }
                    if w > budget {
                        // Batch budget exhausted: end the round, keep
                        // the accumulated deficit for the next one.
                        break 'round;
                    }
                    l.deficit -= w;
                    budget -= w;
                    out.taken.push(l.requests.pop_front().unwrap());
                    removed += 1;
                }
            }
            // Rotate: drained lanes leave the ring, others go to the back.
            st.ring.pop_front();
            if st.lanes[lane].requests.is_empty() {
                st.deactivate(lane);
            } else {
                st.ring.push_back(lane);
            }
        }
        st.len -= removed;
        self.depth.set(st.len as u64);
        drop(st);
        if removed > 0 {
            self.not_full.notify_all();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{RequestId, TaskRequest};
    use std::time::Duration;

    fn req(id: u64, tenant: u32, task: Task) -> QueuedRequest {
        QueuedRequest {
            id: RequestId(id),
            request: TaskRequest::new(TenantId(tenant), task),
            submitted: Instant::now(),
            attempts: 0,
        }
    }

    #[test]
    fn fifo_within_a_single_tenant() {
        let q = DrrQueue::new(16, 100);
        for i in 0..5 {
            q.try_submit(req(i, 0, Task::mssp(1))).unwrap();
        }
        let b = q.take_batch(&Task::mssp(1), 100, Instant::now());
        let ids: Vec<u64> = b.taken.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn backpressure_at_capacity() {
        let q = DrrQueue::new(2, 10);
        q.try_submit(req(0, 0, Task::mssp(1))).unwrap();
        q.try_submit(req(1, 0, Task::mssp(1))).unwrap();
        assert_eq!(
            q.try_submit(req(2, 0, Task::mssp(1))),
            Err(SubmitError::Full)
        );
        q.take_batch(&Task::mssp(1), 10, Instant::now());
        q.try_submit(req(3, 0, Task::mssp(1))).unwrap();
    }

    #[test]
    fn closed_queue_rejects_submissions_but_drains() {
        let q = DrrQueue::new(4, 10);
        q.try_submit(req(0, 0, Task::mssp(1))).unwrap();
        q.close();
        assert_eq!(
            q.try_submit(req(1, 0, Task::mssp(1))),
            Err(SubmitError::Closed)
        );
        assert_eq!(q.next_shape_blocking(), Some(Task::mssp(1)));
        let b = q.take_batch(&Task::mssp(1), 10, Instant::now());
        assert_eq!(b.taken.len(), 1);
        assert_eq!(q.next_shape_blocking(), None);
    }

    #[test]
    fn drr_round_alternates_tenants() {
        let q = DrrQueue::new(32, 2);
        // Tenant 0 floods; tenant 1 trickles. Quantum 2, unit requests.
        for i in 0..8 {
            q.try_submit(req(i, 0, Task::mssp(1))).unwrap();
        }
        for i in 8..12 {
            q.try_submit(req(i, 1, Task::mssp(1))).unwrap();
        }
        let b = q.take_batch(&Task::mssp(1), 8, Instant::now());
        let per_tenant = |t: u32| {
            b.taken
                .iter()
                .filter(|r| r.request.tenant == TenantId(t))
                .count()
        };
        // One round: each backlogged tenant gets exactly its quantum.
        assert_eq!(per_tenant(0), 2);
        assert_eq!(per_tenant(1), 2);
    }

    #[test]
    fn mixed_shapes_batch_separately() {
        let q = DrrQueue::new(16, 10);
        q.try_submit(req(0, 0, Task::mssp(2))).unwrap();
        q.try_submit(req(1, 1, Task::bppr(3))).unwrap();
        let shape = q.next_shape_blocking().unwrap();
        assert!(same_shape(&shape, &Task::mssp(1)));
        let b = q.take_batch(&shape, 100, Instant::now());
        assert_eq!(b.taken.len(), 1);
        assert_eq!(b.taken[0].id.0, 0);
        let shape = q.next_shape_blocking().unwrap();
        assert!(same_shape(&shape, &Task::bppr(1)));
        let b = q.take_batch(&shape, 100, Instant::now());
        assert_eq!(b.taken.len(), 1);
        assert_eq!(b.taken[0].id.0, 1);
    }

    #[test]
    fn expired_requests_are_separated() {
        let q = DrrQueue::new(16, 10);
        let mut stale = req(0, 0, Task::mssp(1));
        stale.request.deadline = Some(Duration::from_millis(1));
        stale.submitted = Instant::now() - Duration::from_millis(50);
        q.try_submit(stale).unwrap();
        q.try_submit(req(1, 0, Task::mssp(1))).unwrap();
        let b = q.take_batch(&Task::mssp(1), 10, Instant::now());
        assert_eq!(b.expired.len(), 1);
        assert_eq!(b.expired[0].request.id.0, 0);
        assert!(b.expired[0].time_in_queue >= Duration::from_millis(50));
        assert_eq!(b.taken.len(), 1);
        assert_eq!(b.taken[0].id.0, 1);
    }

    #[test]
    fn budget_caps_the_round() {
        let q = DrrQueue::new(16, 100);
        for i in 0..6 {
            q.try_submit(req(i, 0, Task::mssp(3))).unwrap();
        }
        let b = q.take_batch(&Task::mssp(1), 7, Instant::now());
        // 3 + 3 fit; the third request of 3 would exceed 7.
        assert_eq!(b.taken.len(), 2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.head_workload(&Task::mssp(1)), Some(3));
    }

    #[test]
    fn pop_head_removes_exactly_one() {
        let q = DrrQueue::new(16, 10);
        q.try_submit(req(7, 0, Task::bppr(500))).unwrap();
        assert!(q.pop_head(&Task::mssp(1)).is_none());
        let r = q.pop_head(&Task::bppr(1)).unwrap();
        assert_eq!(r.id.0, 7);
        assert!(q.is_empty());
    }

    #[test]
    fn class_mask_defers_shed_classes_without_losing_them() {
        let q = DrrQueue::new(16, 100);
        let mut batch = req(0, 0, Task::mssp(1));
        batch.request.class = SloClass::Batch;
        q.try_submit(batch).unwrap();
        let mut inter = req(1, 1, Task::mssp(1));
        inter.request.class = SloClass::Interactive;
        q.try_submit(inter).unwrap();
        // Batch shed: only the interactive request is taken; the shed
        // one stays queued (deferral, not loss).
        let b = q.take_batch_classes(&Task::mssp(1), 100, Instant::now(), [true, true, false]);
        assert_eq!(b.taken.len(), 1);
        assert_eq!(b.taken[0].id.0, 1);
        assert!(b.expired.is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.head_class(&Task::mssp(1)), Some(SloClass::Batch));
        // A shed lane banks no deficit: lifting the mask serves it
        // from its normal quantum, not a windfall.
        let b = q.take_batch(&Task::mssp(1), 100, Instant::now());
        assert_eq!(b.taken.len(), 1);
        assert_eq!(b.taken[0].id.0, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn masked_rounds_still_sweep_expired_heads() {
        let q = DrrQueue::new(16, 100);
        let mut stale = req(0, 0, Task::mssp(1));
        stale.request.class = SloClass::Batch;
        stale.request.deadline = Some(Duration::from_millis(1));
        stale.submitted = Instant::now() - Duration::from_millis(50);
        q.try_submit(stale).unwrap();
        let b = q.take_batch_classes(&Task::mssp(1), 100, Instant::now(), [true, false, false]);
        assert!(b.taken.is_empty());
        assert_eq!(b.expired.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn depth_gauge_tracks_high_water() {
        let q = DrrQueue::new(16, 10);
        for i in 0..5 {
            q.try_submit(req(i, i as u32 % 2, Task::mssp(1))).unwrap();
        }
        q.take_batch(&Task::mssp(1), 100, Instant::now());
        assert_eq!(q.depth().get(), 0);
        assert_eq!(q.depth().high_water(), 5);
    }
}
