//! Memory-model admission control for the batch former.
//!
//! The offline tuner solves Eq. 6 once and replays the resulting
//! schedule. The serving layer solves the *same* equation before every
//! batch, against live state instead of modelled accumulation:
//!
//! ```text
//! W_next = M*⁻¹( p·M − M_r(measured) − Σ M*(W_inflight) )
//! ```
//!
//! where `M_r(measured)` is the actual residual left on the most loaded
//! machine by completed-but-unflushed batches (not the fitted
//! `M_r*(ΣW)` — we have the real number, so we use it) and the sum
//! reserves the predicted peak of every batch currently executing on
//! the worker pool. Each completed batch feeds its observed peak and
//! residual back into the per-shape [`OnlineMemoryModel`], so the
//! admitted workload tracks the cluster the service actually has,
//! not the one the training probes saw.

use crate::queue::same_shape;
use mtvc_cluster::ClusterSpec;
use mtvc_core::Task;
use mtvc_tune::OnlineMemoryModel;
use std::collections::HashMap;

/// Identifier of a dispatched batch, for reservation bookkeeping.
pub type BatchId = u64;

/// Why the admission controller could not answer a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// No memory model is registered for this task shape (it was not in
    /// [`crate::ServiceConfig::shapes`] at startup), so Eq. 6 cannot be
    /// inverted for it.
    UnregisteredShape(Task),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnregisteredShape(shape) => {
                write!(f, "no memory model registered for shape {shape}")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Tracks cluster memory headroom and decides how much workload the
/// next batch of a given shape may carry.
#[derive(Debug)]
pub struct AdmissionController {
    machines: usize,
    /// `p · M` in bytes: the overload threshold every machine must stay
    /// under (Eq. 1–2 of §5).
    budget: f64,
    /// Measured residual bytes per machine from completed, unflushed
    /// batches.
    residual: Vec<u64>,
    /// Predicted peak bytes of batches currently executing.
    inflight: HashMap<BatchId, f64>,
    /// Per-shape memory models, refreshed online.
    models: Vec<(Task, OnlineMemoryModel)>,
    /// Workload units completed since the last flush (drives the
    /// residual-model observations).
    accumulated: u64,
    completed_since_flush: usize,
    flush_every: usize,
    flushes: u64,
    batches: u64,
}

impl AdmissionController {
    /// An admission controller for `cluster` with overload threshold
    /// `p` (the paper's 0.85 default lives in the service config) that
    /// ships aggregated results — releasing residual memory — every
    /// `flush_every` completed batches.
    pub fn new(cluster: &ClusterSpec, p: f64, flush_every: usize) -> AdmissionController {
        assert!(
            p > 0.0 && p <= 1.0,
            "overload threshold p must be in (0, 1]"
        );
        assert!(flush_every >= 1);
        AdmissionController {
            machines: cluster.machines,
            budget: p * cluster.machine.usable_memory().as_f64(),
            residual: vec![0; cluster.machines],
            inflight: HashMap::new(),
            models: Vec::new(),
            accumulated: 0,
            completed_since_flush: 0,
            flush_every,
            flushes: 0,
            batches: 0,
        }
    }

    /// Register the fitted model for a task shape. One model per shape;
    /// shapes the service supports must be registered before admitting.
    pub fn register(&mut self, shape: Task, model: OnlineMemoryModel) {
        assert!(
            self.model_of(&shape).is_none(),
            "shape {shape} registered twice"
        );
        self.models.push((shape.with_workload(1), model));
    }

    /// Whether a model for `shape` is registered.
    pub fn supports(&self, shape: &Task) -> bool {
        self.model_of(shape).is_some()
    }

    fn model_of(&self, shape: &Task) -> Option<&OnlineMemoryModel> {
        self.models
            .iter()
            .find(|(s, _)| same_shape(s, shape))
            .map(|(_, m)| m)
    }

    fn model_of_mut(&mut self, shape: &Task) -> Option<&mut OnlineMemoryModel> {
        self.models
            .iter_mut()
            .find(|(s, _)| same_shape(s, shape))
            .map(|(_, m)| m)
    }

    /// Largest workload a new `shape` batch may carry right now: Eq. 6
    /// against measured residual plus reserved in-flight peaks. Zero
    /// when there is no headroom (the former then waits for a
    /// completion or forces a flush).
    pub fn max_admissible(&self, shape: &Task) -> Result<u64, AdmissionError> {
        let reserved: f64 = self.inflight.values().sum();
        let residual = self.residual.iter().copied().max().unwrap_or(0) as f64;
        self.invert_peak(shape, self.budget - residual - reserved)
    }

    /// Largest workload `shape` could ever be admitted with: an idle,
    /// fully flushed cluster. A request above this can never run and is
    /// rejected outright.
    pub fn max_possible(&self, shape: &Task) -> Result<u64, AdmissionError> {
        self.invert_peak(shape, self.budget)
    }

    fn invert_peak(&self, shape: &Task, headroom: f64) -> Result<u64, AdmissionError> {
        let model = self
            .model_of(shape)
            .ok_or(AdmissionError::UnregisteredShape(shape.with_workload(1)))?;
        if headroom <= 0.0 {
            return Ok(0);
        }
        Ok(model
            .model()
            .peak
            .invert(headroom)
            .map(|w| w.floor().max(0.0) as u64)
            .unwrap_or(0))
    }

    /// Reserve headroom for a dispatched batch; returns its id and a
    /// snapshot of the per-machine residual the batch starts against.
    pub fn reserve(
        &mut self,
        shape: &Task,
        workload: u64,
    ) -> Result<(BatchId, Vec<u64>), AdmissionError> {
        let predicted = self
            .model_of(shape)
            .ok_or(AdmissionError::UnregisteredShape(shape.with_workload(1)))?
            .model()
            .peak
            .eval(workload as f64)
            .max(0.0);
        let id = self.batches;
        self.batches += 1;
        self.inflight.insert(id, predicted);
        Ok((id, self.residual.clone()))
    }

    /// Drop the reservation of a batch that never executed (its worker
    /// found no runner for the shape). Releases the headroom without
    /// feeding the model or touching residual state.
    pub fn abort(&mut self, id: BatchId) {
        self.inflight.remove(&id);
    }

    /// Record an OOM-killed attempt as a *censored* observation: the
    /// batch's true peak is unknown but at least `peak_lower_bound`
    /// bytes. Feeds [`OnlineMemoryModel::observe_censored`] so the next
    /// refit pulls the curve up where the kill proves it under-predicts.
    pub fn record_censored(&mut self, shape: &Task, workload: u64, peak_lower_bound: f64) {
        if let Some(m) = self.model_of_mut(shape) {
            m.observe_censored(workload, peak_lower_bound);
        }
    }

    /// Record a completed batch: release its reservation, absorb the
    /// residual it left per machine, feed the observation to the
    /// shape's online model, and flush if the epoch is over. Returns
    /// `true` when this completion flushed accumulated results.
    ///
    /// `observed_peak` is the raw per-machine maximum the batch
    /// reached, and `residual_before` the per-machine residual it
    /// started against; the §5 `M*` curve models a batch on a fresh
    /// cluster, so the baseline is subtracted before the observation
    /// reaches the model. Pass `observed_peak = None` for a batch that
    /// *failed* (overload, or OOM past the degradation ladder): the
    /// reservation is released and any residual its completed
    /// sub-batches left is absorbed, but no uncensored observation is
    /// fed to the model — the failed attempt's peak belongs in
    /// [`AdmissionController::record_censored`] instead.
    pub fn complete(
        &mut self,
        id: BatchId,
        shape: &Task,
        workload: u64,
        observed_peak: Option<f64>,
        residual_before: &[u64],
        residual_delta: &[u64],
    ) -> bool {
        assert_eq!(residual_delta.len(), self.machines);
        self.inflight.remove(&id);
        for (r, d) in self.residual.iter_mut().zip(residual_delta) {
            *r += d;
        }
        self.accumulated += workload;
        if let Some(observed_peak) = observed_peak {
            let baseline = residual_before.iter().copied().max().unwrap_or(0) as f64;
            let own_peak = (observed_peak - baseline).max(1.0);
            let residual_max = self.residual.iter().copied().max().unwrap_or(0) as f64;
            let accumulated = self.accumulated;
            if let Some(m) = self.model_of_mut(shape) {
                m.observe(workload, own_peak, accumulated, residual_max);
            }
        }
        self.completed_since_flush += 1;
        if self.completed_since_flush >= self.flush_every {
            self.flush();
            true
        } else {
            false
        }
    }

    /// Ship aggregated results: residual memory is released (§5 stores
    /// intermediate results only until final aggregation).
    pub fn flush(&mut self) {
        self.residual.iter_mut().for_each(|r| *r = 0);
        self.accumulated = 0;
        self.completed_since_flush = 0;
        self.flushes += 1;
    }

    /// Whether any dispatched batch has not completed yet.
    pub fn has_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Whether unflushed residual memory is held.
    pub fn has_residual(&self) -> bool {
        self.residual.iter().any(|&r| r > 0)
    }

    /// Completed flush epochs.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Batches dispatched so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total online model refits across shapes.
    pub fn refits(&self) -> u64 {
        self.models.iter().map(|(_, m)| m.refits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_tune::TrainingData;

    /// A linear memory curve: peak = slope·W + floor.
    fn model(slope: f64, floor: f64) -> OnlineMemoryModel {
        let workloads: Vec<f64> = (1..=6).map(|r| (1u64 << r) as f64).collect();
        let data = TrainingData {
            peak_memory: workloads.iter().map(|w| slope * w + floor).collect(),
            residual: workloads.iter().map(|w| 0.1 * w + 1.0).collect(),
            workloads,
            training_time: Default::default(),
        };
        OnlineMemoryModel::fit(&data, 7).unwrap()
    }

    fn tiny_cluster() -> ClusterSpec {
        // 4 machines; usable memory comes from the Galaxy spec.
        ClusterSpec::galaxy(4)
    }

    #[test]
    fn admits_less_while_batches_are_inflight() {
        let cluster = tiny_cluster();
        let mut ac = AdmissionController::new(&cluster, 0.85, 4);
        ac.register(Task::mssp(1), model(1e6, 0.0));
        let idle = ac.max_admissible(&Task::mssp(1)).unwrap();
        assert!(idle > 0);
        let (id, residual) = ac.reserve(&Task::mssp(1), idle / 2).unwrap();
        assert_eq!(residual, vec![0; 4]);
        let busy = ac.max_admissible(&Task::mssp(1)).unwrap();
        assert!(busy < idle, "{busy} !< {idle}");
        ac.complete(
            id,
            &Task::mssp(1),
            idle / 2,
            Some(1e6 * (idle / 2) as f64),
            &[0; 4],
            &[0; 4],
        );
        assert_eq!(ac.max_admissible(&Task::mssp(1)).unwrap(), idle);
    }

    #[test]
    fn residual_shrinks_admission_until_flush() {
        let cluster = tiny_cluster();
        let mut ac = AdmissionController::new(&cluster, 0.85, 2);
        ac.register(Task::mssp(1), model(1e6, 0.0));
        let idle = ac.max_admissible(&Task::mssp(1)).unwrap();
        let (id, _) = ac.reserve(&Task::mssp(1), 100).unwrap();
        let flushed = ac.complete(
            id,
            &Task::mssp(1),
            100,
            Some(1e8),
            &[0; 4],
            &[4_000_000_000; 4],
        );
        assert!(!flushed);
        assert!(ac.has_residual());
        let after = ac.max_admissible(&Task::mssp(1)).unwrap();
        assert!(after < idle, "{after} !< {idle}");
        // Second completion closes the 2-batch flush epoch.
        let (id, _) = ac.reserve(&Task::mssp(1), 100).unwrap();
        let flushed = ac.complete(
            id,
            &Task::mssp(1),
            100,
            Some(1e8),
            &[4_000_000_000; 4],
            &[1_000_000; 4],
        );
        assert!(flushed);
        assert!(!ac.has_residual());
        assert_eq!(ac.max_admissible(&Task::mssp(1)).unwrap(), idle);
        assert_eq!(ac.flushes(), 1);
    }

    #[test]
    fn max_possible_ignores_live_state() {
        let cluster = tiny_cluster();
        let mut ac = AdmissionController::new(&cluster, 0.85, 4);
        ac.register(Task::bppr(1), model(1e6, 0.0));
        let max = ac.max_possible(&Task::bppr(1)).unwrap();
        ac.reserve(&Task::bppr(1), max).unwrap();
        assert_eq!(ac.max_possible(&Task::bppr(1)).unwrap(), max);
        assert_eq!(ac.max_admissible(&Task::bppr(1)).unwrap(), 0);
    }

    #[test]
    fn unregistered_shape_is_a_typed_error() {
        let mut ac = AdmissionController::new(&tiny_cluster(), 0.85, 4);
        let err = ac.max_admissible(&Task::mssp(1)).unwrap_err();
        assert_eq!(err, AdmissionError::UnregisteredShape(Task::mssp(1)));
        assert_eq!(
            ac.max_possible(&Task::mssp(5)).unwrap_err(),
            AdmissionError::UnregisteredShape(Task::mssp(1))
        );
        assert_eq!(
            ac.reserve(&Task::bppr(3), 10).unwrap_err(),
            AdmissionError::UnregisteredShape(Task::bppr(1))
        );
        assert!(err.to_string().contains("no memory model registered"));
    }

    #[test]
    fn abort_releases_the_reservation_without_observing() {
        let mut ac = AdmissionController::new(&tiny_cluster(), 0.85, 4);
        ac.register(Task::mssp(1), model(1e6, 0.0));
        let idle = ac.max_admissible(&Task::mssp(1)).unwrap();
        let (id, _) = ac.reserve(&Task::mssp(1), idle / 2).unwrap();
        assert!(ac.has_inflight());
        ac.abort(id);
        assert!(!ac.has_inflight());
        assert_eq!(ac.max_admissible(&Task::mssp(1)).unwrap(), idle);
    }

    #[test]
    fn failed_completion_releases_but_skips_the_model() {
        let mut ac = AdmissionController::new(&tiny_cluster(), 0.85, 2);
        ac.register(Task::mssp(1), model(1e6, 0.0));
        let m = ac.model_of(&Task::mssp(1)).unwrap();
        let obs_before = m.observations();
        let (id, _) = ac.reserve(&Task::mssp(1), 100).unwrap();
        ac.complete(id, &Task::mssp(1), 100, None, &[0; 4], &[5_000; 4]);
        assert!(!ac.has_inflight());
        assert!(ac.has_residual(), "partial-rung residual must be absorbed");
        let m = ac.model_of(&Task::mssp(1)).unwrap();
        assert_eq!(m.observations(), obs_before);
        // Censored kills still reach the model, as censored points.
        ac.record_censored(&Task::mssp(1), 100, 1e9);
        let m = ac.model_of(&Task::mssp(1)).unwrap();
        assert_eq!(m.censored_points(), 1);
    }

    #[test]
    fn supports_matches_by_shape_not_workload() {
        let mut ac = AdmissionController::new(&tiny_cluster(), 0.85, 4);
        ac.register(Task::mssp(64), model(1e6, 0.0));
        assert!(ac.supports(&Task::mssp(9999)));
        assert!(!ac.supports(&Task::bppr(1)));
    }
}
