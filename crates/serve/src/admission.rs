//! Memory-model admission control for the batch former.
//!
//! The offline tuner solves Eq. 6 once and replays the resulting
//! schedule. The serving layer solves the *same* equation before every
//! batch, against live state instead of modelled accumulation:
//!
//! ```text
//! W_next = M*⁻¹( p·M − M_r(measured) − Σ M*(W_inflight) )
//! ```
//!
//! where `M_r(measured)` is the actual residual left on the most loaded
//! machine by completed-but-unflushed batches (not the fitted
//! `M_r*(ΣW)` — we have the real number, so we use it) and the sum
//! reserves the predicted peak of every batch currently executing on
//! the worker pool. Each completed batch feeds its observed peak and
//! residual back into the per-shape [`OnlineMemoryModel`], so the
//! admitted workload tracks the cluster the service actually has,
//! not the one the training probes saw.

use crate::queue::same_shape;
use mtvc_cluster::ClusterSpec;
use mtvc_core::Task;
use mtvc_tune::OnlineMemoryModel;
use std::collections::HashMap;

/// Identifier of a dispatched batch, for reservation bookkeeping.
pub type BatchId = u64;

/// Tracks cluster memory headroom and decides how much workload the
/// next batch of a given shape may carry.
#[derive(Debug)]
pub struct AdmissionController {
    machines: usize,
    /// `p · M` in bytes: the overload threshold every machine must stay
    /// under (Eq. 1–2 of §5).
    budget: f64,
    /// Measured residual bytes per machine from completed, unflushed
    /// batches.
    residual: Vec<u64>,
    /// Predicted peak bytes of batches currently executing.
    inflight: HashMap<BatchId, f64>,
    /// Per-shape memory models, refreshed online.
    models: Vec<(Task, OnlineMemoryModel)>,
    /// Workload units completed since the last flush (drives the
    /// residual-model observations).
    accumulated: u64,
    completed_since_flush: usize,
    flush_every: usize,
    flushes: u64,
    batches: u64,
}

impl AdmissionController {
    /// An admission controller for `cluster` with overload threshold
    /// `p` (the paper's 0.85 default lives in the service config) that
    /// ships aggregated results — releasing residual memory — every
    /// `flush_every` completed batches.
    pub fn new(cluster: &ClusterSpec, p: f64, flush_every: usize) -> AdmissionController {
        assert!(
            p > 0.0 && p <= 1.0,
            "overload threshold p must be in (0, 1]"
        );
        assert!(flush_every >= 1);
        AdmissionController {
            machines: cluster.machines,
            budget: p * cluster.machine.usable_memory().as_f64(),
            residual: vec![0; cluster.machines],
            inflight: HashMap::new(),
            models: Vec::new(),
            accumulated: 0,
            completed_since_flush: 0,
            flush_every,
            flushes: 0,
            batches: 0,
        }
    }

    /// Register the fitted model for a task shape. One model per shape;
    /// shapes the service supports must be registered before admitting.
    pub fn register(&mut self, shape: Task, model: OnlineMemoryModel) {
        assert!(
            self.model_of(&shape).is_none(),
            "shape {shape} registered twice"
        );
        self.models.push((shape.with_workload(1), model));
    }

    /// Whether a model for `shape` is registered.
    pub fn supports(&self, shape: &Task) -> bool {
        self.model_of(shape).is_some()
    }

    fn model_of(&self, shape: &Task) -> Option<&OnlineMemoryModel> {
        self.models
            .iter()
            .find(|(s, _)| same_shape(s, shape))
            .map(|(_, m)| m)
    }

    fn model_of_mut(&mut self, shape: &Task) -> Option<&mut OnlineMemoryModel> {
        self.models
            .iter_mut()
            .find(|(s, _)| same_shape(s, shape))
            .map(|(_, m)| m)
    }

    /// Largest workload a new `shape` batch may carry right now: Eq. 6
    /// against measured residual plus reserved in-flight peaks. Zero
    /// when there is no headroom (the former then waits for a
    /// completion or forces a flush).
    pub fn max_admissible(&self, shape: &Task) -> u64 {
        let reserved: f64 = self.inflight.values().sum();
        let residual = self.residual.iter().copied().max().unwrap_or(0) as f64;
        self.invert_peak(shape, self.budget - residual - reserved)
    }

    /// Largest workload `shape` could ever be admitted with: an idle,
    /// fully flushed cluster. A request above this can never run and is
    /// rejected outright.
    pub fn max_possible(&self, shape: &Task) -> u64 {
        self.invert_peak(shape, self.budget)
    }

    fn invert_peak(&self, shape: &Task, headroom: f64) -> u64 {
        if headroom <= 0.0 {
            return 0;
        }
        let model = self
            .model_of(shape)
            .unwrap_or_else(|| panic!("no model registered for shape {shape}"));
        model
            .model()
            .peak
            .invert(headroom)
            .map(|w| w.floor().max(0.0) as u64)
            .unwrap_or(0)
    }

    /// Reserve headroom for a dispatched batch; returns its id and a
    /// snapshot of the per-machine residual the batch starts against.
    pub fn reserve(&mut self, shape: &Task, workload: u64) -> (BatchId, Vec<u64>) {
        let predicted = self
            .model_of(shape)
            .expect("reserve of unregistered shape")
            .model()
            .peak
            .eval(workload as f64)
            .max(0.0);
        let id = self.batches;
        self.batches += 1;
        self.inflight.insert(id, predicted);
        (id, self.residual.clone())
    }

    /// Record a completed batch: release its reservation, absorb the
    /// residual it left per machine, feed the observation to the
    /// shape's online model, and flush if the epoch is over. Returns
    /// `true` when this completion flushed accumulated results.
    ///
    /// `observed_peak` is the raw per-machine maximum the batch
    /// reached, and `residual_before` the per-machine residual it
    /// started against; the §5 `M*` curve models a batch on a fresh
    /// cluster, so the baseline is subtracted before the observation
    /// reaches the model.
    pub fn complete(
        &mut self,
        id: BatchId,
        shape: &Task,
        workload: u64,
        observed_peak: f64,
        residual_before: &[u64],
        residual_delta: &[u64],
    ) -> bool {
        assert_eq!(residual_delta.len(), self.machines);
        self.inflight.remove(&id);
        for (r, d) in self.residual.iter_mut().zip(residual_delta) {
            *r += d;
        }
        self.accumulated += workload;
        let baseline = residual_before.iter().copied().max().unwrap_or(0) as f64;
        let own_peak = (observed_peak - baseline).max(1.0);
        let residual_max = self.residual.iter().copied().max().unwrap_or(0) as f64;
        let accumulated = self.accumulated;
        if let Some(m) = self.model_of_mut(shape) {
            m.observe(workload, own_peak, accumulated, residual_max);
        }
        self.completed_since_flush += 1;
        if self.completed_since_flush >= self.flush_every {
            self.flush();
            true
        } else {
            false
        }
    }

    /// Ship aggregated results: residual memory is released (§5 stores
    /// intermediate results only until final aggregation).
    pub fn flush(&mut self) {
        self.residual.iter_mut().for_each(|r| *r = 0);
        self.accumulated = 0;
        self.completed_since_flush = 0;
        self.flushes += 1;
    }

    /// Whether any dispatched batch has not completed yet.
    pub fn has_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Whether unflushed residual memory is held.
    pub fn has_residual(&self) -> bool {
        self.residual.iter().any(|&r| r > 0)
    }

    /// Completed flush epochs.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Batches dispatched so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total online model refits across shapes.
    pub fn refits(&self) -> u64 {
        self.models.iter().map(|(_, m)| m.refits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_tune::TrainingData;

    /// A linear memory curve: peak = slope·W + floor.
    fn model(slope: f64, floor: f64) -> OnlineMemoryModel {
        let workloads: Vec<f64> = (1..=6).map(|r| (1u64 << r) as f64).collect();
        let data = TrainingData {
            peak_memory: workloads.iter().map(|w| slope * w + floor).collect(),
            residual: workloads.iter().map(|w| 0.1 * w + 1.0).collect(),
            workloads,
            training_time: Default::default(),
        };
        OnlineMemoryModel::fit(&data, 7).unwrap()
    }

    fn tiny_cluster() -> ClusterSpec {
        // 4 machines; usable memory comes from the Galaxy spec.
        ClusterSpec::galaxy(4)
    }

    #[test]
    fn admits_less_while_batches_are_inflight() {
        let cluster = tiny_cluster();
        let mut ac = AdmissionController::new(&cluster, 0.85, 4);
        ac.register(Task::mssp(1), model(1e6, 0.0));
        let idle = ac.max_admissible(&Task::mssp(1));
        assert!(idle > 0);
        let (id, residual) = ac.reserve(&Task::mssp(1), idle / 2);
        assert_eq!(residual, vec![0; 4]);
        let busy = ac.max_admissible(&Task::mssp(1));
        assert!(busy < idle, "{busy} !< {idle}");
        ac.complete(
            id,
            &Task::mssp(1),
            idle / 2,
            1e6 * (idle / 2) as f64,
            &[0; 4],
            &[0; 4],
        );
        assert_eq!(ac.max_admissible(&Task::mssp(1)), idle);
    }

    #[test]
    fn residual_shrinks_admission_until_flush() {
        let cluster = tiny_cluster();
        let mut ac = AdmissionController::new(&cluster, 0.85, 2);
        ac.register(Task::mssp(1), model(1e6, 0.0));
        let idle = ac.max_admissible(&Task::mssp(1));
        let (id, _) = ac.reserve(&Task::mssp(1), 100);
        let flushed = ac.complete(id, &Task::mssp(1), 100, 1e8, &[0; 4], &[4_000_000_000; 4]);
        assert!(!flushed);
        assert!(ac.has_residual());
        let after = ac.max_admissible(&Task::mssp(1));
        assert!(after < idle, "{after} !< {idle}");
        // Second completion closes the 2-batch flush epoch.
        let (id, _) = ac.reserve(&Task::mssp(1), 100);
        let flushed = ac.complete(
            id,
            &Task::mssp(1),
            100,
            1e8,
            &[4_000_000_000; 4],
            &[1_000_000; 4],
        );
        assert!(flushed);
        assert!(!ac.has_residual());
        assert_eq!(ac.max_admissible(&Task::mssp(1)), idle);
        assert_eq!(ac.flushes(), 1);
    }

    #[test]
    fn max_possible_ignores_live_state() {
        let cluster = tiny_cluster();
        let mut ac = AdmissionController::new(&cluster, 0.85, 4);
        ac.register(Task::bppr(1), model(1e6, 0.0));
        let max = ac.max_possible(&Task::bppr(1));
        ac.reserve(&Task::bppr(1), max);
        assert_eq!(ac.max_possible(&Task::bppr(1)), max);
        assert_eq!(ac.max_admissible(&Task::bppr(1)), 0);
    }

    #[test]
    #[should_panic(expected = "no model registered")]
    fn unregistered_shape_panics() {
        let ac = AdmissionController::new(&tiny_cluster(), 0.85, 4);
        ac.max_admissible(&Task::mssp(1));
    }

    #[test]
    fn supports_matches_by_shape_not_workload() {
        let mut ac = AdmissionController::new(&tiny_cluster(), 0.85, 4);
        ac.register(Task::mssp(64), model(1e6, 0.0));
        assert!(ac.supports(&Task::mssp(9999)));
        assert!(!ac.supports(&Task::bppr(1)));
    }
}
