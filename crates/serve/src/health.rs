//! Machine health tracking, circuit breaking, and the brownout ladder.
//!
//! Under sustained chaos the service must *degrade deliberately*
//! instead of letting every class suffer equally. Three cooperating
//! pieces implement that:
//!
//! * [`HealthTracker`] keeps a per-machine EWMA of batch "badness"
//!   (injected faults, OOM kills, terminal batch failures). The
//!   cluster score is the *worst* machine's score — one sick machine
//!   is enough to slow every barrier, so it drives the ladder.
//! * [`CircuitBreaker`] watches consecutive bad batches. Enough in a
//!   row opens the breaker; after a cooldown of former iterations it
//!   half-opens and a clean probe batch closes it again.
//! * [`BrownoutLadder`] converts score + breaker state into a
//!   [`BrownoutLevel`]: shed [`SloClass::Batch`] first, then
//!   [`SloClass::Standard`], then narrow the batch budget — always
//!   protecting [`SloClass::Interactive`] deadlines. Entry and exit
//!   thresholds differ (hysteresis) and every move waits out a
//!   minimum dwell, so the ladder cannot flap on a single noisy
//!   observation.
//!
//! Shedding is **deferral, not loss**: a shed class simply stays in
//! the queue (its deadline-free requests wait; deadline-carrying ones
//! may expire exactly as they would behind a genuinely slow cluster).
//! When the queue closes for shutdown the mask is lifted so the drain
//! always completes.

use crate::request::SloClass;

/// Tuning knobs of the brownout subsystem. The defaults are
/// deliberately conservative: roughly half the recent batches must
/// misbehave before the first rung engages.
#[derive(Debug, Clone, Copy)]
pub struct BrownoutCfg {
    /// EWMA weight of the newest batch observation (0, 1].
    pub ewma_alpha: f64,
    /// The ladder climbs one rung when the cluster score reaches this.
    pub enter_score: f64,
    /// The ladder descends one rung when the score falls to this (must
    /// be below `enter_score` — the gap is the hysteresis band).
    pub exit_score: f64,
    /// Multiplier applied to every machine score on former iterations
    /// without a fresh observation (idle recovery; < 1).
    pub idle_decay: f64,
    /// Former iterations a rung must dwell before the next move.
    pub min_dwell: u32,
    /// Consecutive bad batches that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Former iterations the breaker stays open before half-opening.
    pub breaker_cooldown: u32,
    /// Batch-budget percentage granted at [`BrownoutLevel::NarrowCaps`]
    /// (clamped to [1, 100]).
    pub narrow_cap_pct: u8,
}

impl Default for BrownoutCfg {
    fn default() -> BrownoutCfg {
        BrownoutCfg {
            ewma_alpha: 0.4,
            enter_score: 0.45,
            exit_score: 0.15,
            idle_decay: 0.98,
            min_dwell: 2,
            breaker_threshold: 3,
            breaker_cooldown: 16,
            narrow_cap_pct: 50,
        }
    }
}

/// Per-machine exponentially-weighted badness scores in [0, 1].
#[derive(Debug, Clone)]
pub struct HealthTracker {
    alpha: f64,
    scores: Vec<f64>,
}

impl HealthTracker {
    /// A tracker for `machines` machines, all starting healthy (0).
    pub fn new(machines: usize, alpha: f64) -> HealthTracker {
        assert!(machines >= 1, "need at least one machine");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        HealthTracker {
            alpha,
            scores: vec![0.0; machines],
        }
    }

    /// Fold one batch observation into `machine`'s score. `badness` is
    /// clamped to [0, 1]: 0 = clean batch, 1 = terminal failure.
    pub fn observe(&mut self, machine: usize, badness: f64) {
        let b = badness.clamp(0.0, 1.0);
        let i = machine % self.scores.len();
        let s = &mut self.scores[i];
        *s = self.alpha * b + (1.0 - self.alpha) * *s;
    }

    /// Idle tick: decay every score towards healthy by `factor`.
    /// Called once per former iteration so a shed-everything ladder
    /// still recovers even when no batches complete.
    pub fn decay(&mut self, factor: f64) {
        for s in &mut self.scores {
            *s *= factor.clamp(0.0, 1.0);
        }
    }

    /// The cluster score: the worst machine's EWMA.
    pub fn score(&self) -> f64 {
        self.scores.iter().copied().fold(0.0, f64::max)
    }

    /// The EWMA score of one machine.
    pub fn machine_score(&self, machine: usize) -> f64 {
        self.scores[machine % self.scores.len()]
    }
}

/// Breaker state: `Closed` admits everything, `Open` presses the
/// ladder towards its deepest rung, `HalfOpen` lets probe traffic
/// through to test recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: batches flow, failures are counted.
    Closed,
    /// Tripped: the ladder is pressed upwards until the cooldown runs.
    Open,
    /// Probing: the next batch decides — clean closes, bad re-opens.
    HalfOpen,
}

/// Counts consecutive bad batches and trips open at a threshold.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u32,
    state: CircuitState,
    consecutive_bad: u32,
    cooldown_left: u32,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive bad
    /// batches and cooling down for `cooldown` former iterations.
    pub fn new(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
            state: CircuitState::Closed,
            consecutive_bad: 0,
            cooldown_left: 0,
            opens: 0,
        }
    }

    /// Record one finished batch. A bad batch in `HalfOpen` re-opens
    /// immediately; a clean one closes the breaker.
    pub fn record(&mut self, bad: bool) {
        match (self.state, bad) {
            (CircuitState::Closed, true) => {
                self.consecutive_bad += 1;
                if self.consecutive_bad >= self.threshold {
                    self.trip();
                }
            }
            (CircuitState::Closed, false) => self.consecutive_bad = 0,
            (CircuitState::HalfOpen, true) => self.trip(),
            (CircuitState::HalfOpen, false) => {
                self.state = CircuitState::Closed;
                self.consecutive_bad = 0;
            }
            // Batches dispatched before the trip may still land while
            // open; a bad one refreshes the cooldown.
            (CircuitState::Open, true) => self.cooldown_left = self.cooldown,
            (CircuitState::Open, false) => {}
        }
    }

    fn trip(&mut self) {
        self.state = CircuitState::Open;
        self.opens += 1;
        self.cooldown_left = self.cooldown;
        self.consecutive_bad = 0;
    }

    /// One former iteration passes: count the cooldown down and
    /// half-open once it expires.
    pub fn tick(&mut self) {
        if self.state == CircuitState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = CircuitState::HalfOpen;
            }
        }
    }

    /// Current breaker state.
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// Times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

/// One rung of the degradation ladder, mildest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Every class admitted, full batch budget.
    Normal,
    /// [`SloClass::Batch`] deferred.
    ShedBatch,
    /// [`SloClass::Batch`] and [`SloClass::Standard`] deferred.
    ShedStandard,
    /// Only [`SloClass::Interactive`], and the batch budget narrowed
    /// to [`BrownoutCfg::narrow_cap_pct`] — small batches fail small
    /// and recover fast.
    NarrowCaps,
}

impl BrownoutLevel {
    /// Rung count (for per-level arrays).
    pub const COUNT: usize = 4;

    /// All rungs, mildest first — index matches [`BrownoutLevel::index`].
    pub const ALL: [BrownoutLevel; 4] = [
        BrownoutLevel::Normal,
        BrownoutLevel::ShedBatch,
        BrownoutLevel::ShedStandard,
        BrownoutLevel::NarrowCaps,
    ];

    /// Dense index, 0 = `Normal` … 3 = `NarrowCaps`.
    pub fn index(self) -> usize {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::ShedBatch => 1,
            BrownoutLevel::ShedStandard => 2,
            BrownoutLevel::NarrowCaps => 3,
        }
    }

    /// Short lowercase label for reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "normal",
            BrownoutLevel::ShedBatch => "shed_batch",
            BrownoutLevel::ShedStandard => "shed_standard",
            BrownoutLevel::NarrowCaps => "narrow_caps",
        }
    }

    /// Admission mask indexed by [`SloClass::index`]: which classes
    /// the former may take at this rung. Interactive is never shed.
    pub fn allowed(self) -> [bool; 3] {
        match self {
            BrownoutLevel::Normal => [true, true, true],
            BrownoutLevel::ShedBatch => [true, true, false],
            BrownoutLevel::ShedStandard | BrownoutLevel::NarrowCaps => [true, false, false],
        }
    }
}

impl std::fmt::Display for BrownoutLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The hysteretic degradation ladder: climbs one rung at a time under
/// pressure (high score or an open breaker), descends one rung at a
/// time once the score falls through the exit threshold with the
/// breaker closed, and never moves twice within the dwell window.
#[derive(Debug, Clone)]
pub struct BrownoutLadder {
    cfg: BrownoutCfg,
    level: usize,
    dwell: u32,
    transitions: u64,
    iterations_at: [u64; BrownoutLevel::COUNT],
    deepest: usize,
}

impl BrownoutLadder {
    /// A ladder at [`BrownoutLevel::Normal`].
    pub fn new(cfg: BrownoutCfg) -> BrownoutLadder {
        assert!(
            cfg.exit_score < cfg.enter_score,
            "hysteresis needs exit_score < enter_score"
        );
        BrownoutLadder {
            cfg,
            level: 0,
            dwell: 0,
            transitions: 0,
            iterations_at: [0; BrownoutLevel::COUNT],
            deepest: 0,
        }
    }

    /// Advance one former iteration and return the rung to serve it
    /// under.
    pub fn step(&mut self, score: f64, breaker: CircuitState) -> BrownoutLevel {
        self.iterations_at[self.level] += 1;
        self.dwell = self.dwell.saturating_add(1);
        if self.dwell >= self.cfg.min_dwell.max(1) {
            let press = breaker == CircuitState::Open || score >= self.cfg.enter_score;
            // Half-open permits relief: the cooldown has expired and
            // the score is what is left to judge recovery by.
            let relief = breaker != CircuitState::Open && score <= self.cfg.exit_score;
            if press && self.level + 1 < BrownoutLevel::COUNT {
                self.level += 1;
                self.deepest = self.deepest.max(self.level);
                self.transitions += 1;
                self.dwell = 0;
            } else if relief && self.level > 0 {
                self.level -= 1;
                self.transitions += 1;
                self.dwell = 0;
            }
        }
        self.level()
    }

    /// The current rung.
    pub fn level(&self) -> BrownoutLevel {
        BrownoutLevel::ALL[self.level]
    }

    /// Rung moves (in either direction) so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

/// What the former must do this iteration: which classes to take and
/// what fraction of the batch budget to grant.
#[derive(Debug, Clone, Copy)]
pub struct BrownoutDecision {
    /// The rung the decision was made at.
    pub level: BrownoutLevel,
    /// Admission mask indexed by [`SloClass::index`].
    pub allowed: [bool; 3],
    /// Batch-budget percentage in [1, 100].
    pub budget_pct: u8,
}

impl BrownoutDecision {
    /// The no-brownout decision: everything admitted at full budget.
    pub fn normal() -> BrownoutDecision {
        BrownoutDecision {
            level: BrownoutLevel::Normal,
            allowed: [true; 3],
            budget_pct: 100,
        }
    }

    /// Whether `class` may be taken this iteration.
    pub fn admits(&self, class: SloClass) -> bool {
        self.allowed[class.index()]
    }

    /// Apply the budget percentage to `budget` (never below 1).
    pub fn cap(&self, budget: u64) -> u64 {
        if self.budget_pct >= 100 {
            return budget;
        }
        (budget.saturating_mul(u64::from(self.budget_pct)) / 100).max(1)
    }
}

/// Final brownout statistics for [`crate::ServiceReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BrownoutReport {
    /// Whether the brownout subsystem was configured at all.
    pub enabled: bool,
    /// Ladder moves in either direction.
    pub transitions: u64,
    /// Former iterations spent at each rung, indexed by
    /// [`BrownoutLevel::index`].
    pub iterations_at: [u64; BrownoutLevel::COUNT],
    /// Former iterations at any rung above [`BrownoutLevel::Normal`]
    /// (i.e. while at least one class was deferred).
    pub shed_iterations: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Deepest rung reached, as [`BrownoutLevel::index`].
    pub deepest_level: u8,
}

/// The assembled brownout subsystem the service holds behind one lock:
/// tracker + breaker + ladder, stepped by the batch former and fed by
/// the workers.
#[derive(Debug)]
pub struct BrownoutState {
    cfg: BrownoutCfg,
    tracker: HealthTracker,
    breaker: CircuitBreaker,
    ladder: BrownoutLadder,
    /// Set by [`BrownoutState::observe_batch`], cleared by the next
    /// former tick: suppresses the idle decay on iterations that did
    /// receive a fresh observation.
    observed_since_tick: bool,
}

impl BrownoutState {
    /// A healthy subsystem for `machines` machines.
    pub fn new(cfg: BrownoutCfg, machines: usize) -> BrownoutState {
        BrownoutState {
            cfg,
            tracker: HealthTracker::new(machines.max(1), cfg.ewma_alpha),
            breaker: CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown),
            ladder: BrownoutLadder::new(cfg),
            observed_since_tick: false,
        }
    }

    /// Worker path: fold one finished batch into `machine`'s health.
    /// `badness` ∈ [0, 1] grades the batch; `bad` is the breaker's
    /// binary verdict (any fault, OOM kill, or terminal failure).
    pub fn observe_batch(&mut self, machine: usize, badness: f64, bad: bool) {
        self.tracker.observe(machine, badness);
        self.breaker.record(bad);
        self.observed_since_tick = true;
    }

    /// Former path: advance one iteration and decide the admission
    /// mask and budget for it.
    pub fn former_tick(&mut self) -> BrownoutDecision {
        self.breaker.tick();
        if !self.observed_since_tick {
            self.tracker.decay(self.cfg.idle_decay);
        }
        self.observed_since_tick = false;
        let level = self.ladder.step(self.tracker.score(), self.breaker.state());
        BrownoutDecision {
            level,
            allowed: level.allowed(),
            budget_pct: if level == BrownoutLevel::NarrowCaps {
                self.cfg.narrow_cap_pct.clamp(1, 100)
            } else {
                100
            },
        }
    }

    /// Current cluster health score (worst machine).
    pub fn score(&self) -> f64 {
        self.tracker.score()
    }

    /// Snapshot the statistics for the final service report.
    pub fn report(&self) -> BrownoutReport {
        let iterations_at = self.ladder.iterations_at;
        BrownoutReport {
            enabled: true,
            transitions: self.ladder.transitions,
            iterations_at,
            shed_iterations: iterations_at[1..].iter().sum(),
            breaker_opens: self.breaker.opens(),
            deepest_level: self.ladder.deepest as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_worst_machine_drives_the_score() {
        let mut t = HealthTracker::new(3, 0.5);
        t.observe(0, 0.2);
        t.observe(2, 1.0);
        assert!((t.machine_score(0) - 0.1).abs() < 1e-12);
        assert!((t.machine_score(2) - 0.5).abs() < 1e-12);
        assert_eq!(t.score(), t.machine_score(2));
        t.decay(0.5);
        assert!((t.score() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn breaker_opens_cools_and_probes() {
        let mut b = CircuitBreaker::new(2, 3);
        b.record(true);
        assert_eq!(b.state(), CircuitState::Closed);
        b.record(false); // streak broken
        b.record(true);
        b.record(true);
        assert_eq!(b.state(), CircuitState::Open);
        assert_eq!(b.opens(), 1);
        b.tick();
        b.tick();
        assert_eq!(b.state(), CircuitState::Open);
        b.tick();
        assert_eq!(b.state(), CircuitState::HalfOpen);
        // A bad probe re-opens; a clean one closes.
        b.record(true);
        assert_eq!(b.state(), CircuitState::Open);
        assert_eq!(b.opens(), 2);
        for _ in 0..3 {
            b.tick();
        }
        assert_eq!(b.state(), CircuitState::HalfOpen);
        b.record(false);
        assert_eq!(b.state(), CircuitState::Closed);
    }

    #[test]
    fn ladder_climbs_sheds_in_order_and_recovers_hysteretically() {
        let cfg = BrownoutCfg {
            min_dwell: 1,
            ..BrownoutCfg::default()
        };
        let mut l = BrownoutLadder::new(cfg);
        assert_eq!(l.level(), BrownoutLevel::Normal);
        // Pressure climbs one rung per step, Batch shed first.
        assert_eq!(l.step(0.9, CircuitState::Closed), BrownoutLevel::ShedBatch);
        assert_eq!(
            l.step(0.9, CircuitState::Closed),
            BrownoutLevel::ShedStandard
        );
        assert_eq!(l.step(0.9, CircuitState::Closed), BrownoutLevel::NarrowCaps);
        assert_eq!(l.step(0.9, CircuitState::Closed), BrownoutLevel::NarrowCaps);
        assert_eq!(l.level().allowed(), [true, false, false]);
        // Mid-band scores hold the rung (hysteresis)…
        assert_eq!(l.step(0.3, CircuitState::Closed), BrownoutLevel::NarrowCaps);
        // …and sub-exit scores descend one rung at a time, but only
        // with the breaker closed.
        assert_eq!(l.step(0.01, CircuitState::Open), BrownoutLevel::NarrowCaps);
        assert_eq!(
            l.step(0.01, CircuitState::Closed),
            BrownoutLevel::ShedStandard
        );
        assert_eq!(l.step(0.01, CircuitState::Closed), BrownoutLevel::ShedBatch);
        assert_eq!(l.step(0.01, CircuitState::Closed), BrownoutLevel::Normal);
        assert!(l.transitions() >= 6);
    }

    #[test]
    fn dwell_window_blocks_back_to_back_moves() {
        let cfg = BrownoutCfg {
            min_dwell: 3,
            ..BrownoutCfg::default()
        };
        let mut l = BrownoutLadder::new(cfg);
        assert_eq!(l.step(0.9, CircuitState::Closed), BrownoutLevel::Normal);
        assert_eq!(l.step(0.9, CircuitState::Closed), BrownoutLevel::Normal);
        assert_eq!(l.step(0.9, CircuitState::Closed), BrownoutLevel::ShedBatch);
        // The fresh rung must dwell before climbing again.
        assert_eq!(l.step(0.9, CircuitState::Closed), BrownoutLevel::ShedBatch);
    }

    #[test]
    fn decision_caps_budget_only_at_the_deepest_rung() {
        let mut s = BrownoutState::new(
            BrownoutCfg {
                min_dwell: 1,
                breaker_threshold: 1,
                ..BrownoutCfg::default()
            },
            2,
        );
        let d = s.former_tick();
        assert_eq!(d.level, BrownoutLevel::Normal);
        assert_eq!(d.cap(1000), 1000);
        assert!(d.admits(SloClass::Batch));
        // One terminally-failed batch trips the breaker and starts the
        // climb; three ticks later the budget narrows.
        s.observe_batch(0, 1.0, true);
        for _ in 0..3 {
            s.former_tick();
        }
        let d = s.former_tick();
        assert_eq!(d.level, BrownoutLevel::NarrowCaps);
        assert_eq!(d.cap(1000), 500);
        assert_eq!(d.cap(1), 1, "cap never reaches zero");
        assert!(d.admits(SloClass::Interactive));
        assert!(!d.admits(SloClass::Standard));
        let r = s.report();
        assert!(r.enabled);
        assert_eq!(r.deepest_level, 3);
        assert!(r.breaker_opens >= 1);
        assert!(r.transitions >= 3);
        assert!(r.shed_iterations >= 2);
    }

    #[test]
    fn idle_decay_recovers_a_shed_everything_ladder() {
        let mut s = BrownoutState::new(
            BrownoutCfg {
                min_dwell: 1,
                breaker_threshold: 1,
                breaker_cooldown: 2,
                idle_decay: 0.5,
                ..BrownoutCfg::default()
            },
            1,
        );
        s.observe_batch(0, 1.0, true);
        let mut deepest = BrownoutLevel::Normal;
        // No further observations: ticks alone must walk it back down.
        for _ in 0..32 {
            deepest = deepest.max(s.former_tick().level);
        }
        assert!(deepest > BrownoutLevel::Normal, "ladder never engaged");
        assert_eq!(s.former_tick().level, BrownoutLevel::Normal);
        assert!(s.score() < 0.01);
    }
}
